(* Differential execution battery.

   The array-backed core gives every operator three-plus independent
   execution paths: the stratified interpreter (Materialize.full), the
   fused plan compiler (Plan.execute, with and without optimization),
   the incremental derivation (Session/Incremental), and — where the
   state is a single-block query — the SQL engine via the inverse
   translation. Random query states over relations up to 10k rows must
   agree on all of them.

   A second battery attacks the hash-table paths (equijoin / distinct
   / diff / grouping all key on Value.hash or Row.hash): a generator
   draws key values from a pool containing a genuinely colliding
   string pair (found by birthday search at startup) plus numerically
   equal Int/Float values, and the results are compared against naive
   reference implementations that use no hashing at all. *)

open Sheet_rel
open Sheet_core
module Obs = Sheet_obs.Obs

let ( let* ) = QCheck.Gen.( let* ) [@@warning "-32"]

(* ---------- generators over the cars schema ---------- *)

let models = [ "Jetta"; "Civic"; "Accord" ]
let conditions = [ "Excellent"; "Good"; "Fair" ]

let gen_small_relation : Relation.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 0 40 in
  let* rows =
    list_repeat n
      (let* id = int_range 1 999 in
       let* model = oneofl models in
       let* price = int_range 8000 30000 in
       let* year = int_range 2000 2008 in
       let* mileage = int_range 0 150000 in
       let* condition = oneofl conditions in
       return
         (Row.of_list
            [ Value.Int id; Value.String model; Value.Int price;
              Value.Int year; Value.Int mileage; Value.String condition ]))
  in
  return (Relation.make Sample_cars.schema rows)

(* Large inputs are built deterministically from a seed so qcheck
   shrinks over (seed, size) instead of a 10k-element list. *)
let large_relation ~seed n =
  let st = Random.State.make [| seed |] in
  let model = [| "Jetta"; "Civic"; "Accord"; "Camry"; "Focus" |] in
  let condition = [| "Excellent"; "Good"; "Fair" |] in
  Relation.of_array Sample_cars.schema
    (Array.init n (fun i ->
         Row.of_list
           [ Value.Int (i + 1);
             Value.String model.(Random.State.int st 5);
             Value.Int (8000 + Random.State.int st 22000);
             Value.Int (2000 + Random.State.int st 9);
             Value.Int (Random.State.int st 150000);
             Value.String condition.(Random.State.int st 3) ]))

let numeric_cols = [ "Price"; "Year"; "Mileage" ]
let string_cols = [ "Model"; "Condition" ]

let gen_pred : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let atom =
    oneof
      [ (let* col = oneofl numeric_cols in
         let* op = oneofl [ Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge; Expr.Eq ] in
         let* v = int_range 1990 120000 in
         return (Expr.Cmp (op, Expr.Col col, Expr.Const (Value.Int v))));
        (let* col = oneofl string_cols in
         let* v = oneofl (models @ conditions) in
         return
           (Expr.Cmp (Expr.Eq, Expr.Col col, Expr.Const (Value.String v))));
        (let* col = oneofl numeric_cols in
         let* lo = int_range 0 20000 in
         let* width = int_range 1 50000 in
         return
           (Expr.Between
              ( Expr.Col col,
                Expr.Const (Value.Int lo),
                Expr.Const (Value.Int (lo + width)) ))) ]
  in
  oneof
    [ atom;
      (let* a = atom in
       let* b = atom in
       oneofl [ Expr.And (a, b); Expr.Or (a, b) ]);
      (let* a = atom in
       return (Expr.Not a)) ]

let gen_formula_expr : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* a = oneofl numeric_cols in
  let* b = oneofl numeric_cols in
  let* op = oneofl [ Expr.Add; Expr.Sub; Expr.Mul ] in
  let* k = int_range 1 4 in
  oneofl
    [ Expr.Arith (op, Expr.Col a, Expr.Col b);
      Expr.Arith (op, Expr.Col a, Expr.Const (Value.Int k)) ]

let gen_unary_op ~tag : Op.t QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [ (let* p = gen_pred in
       return (Op.Select p));
      (let* col = oneofl (numeric_cols @ string_cols) in
       return (Op.Project col));
      (let* fn = oneofl [ Expr.Sum; Expr.Avg; Expr.Min; Expr.Max ] in
       let* col = oneofl numeric_cols in
       return
         (Op.Aggregate
            { fn; col = Some col; level = 1;
              as_name = Some (Printf.sprintf "agg_%s" tag) }));
      (let* expr = gen_formula_expr in
       return (Op.Formula { name = Some (Printf.sprintf "fc_%s" tag); expr }));
      return Op.Dedup;
      (let* col = oneofl (string_cols @ [ "Year" ]) in
       let* dir = oneofl [ Grouping.Asc; Grouping.Desc ] in
       return (Op.Group { basis = [ col ]; dir }));
      (let* col = oneofl (numeric_cols @ string_cols) in
       let* dir = oneofl [ Grouping.Asc; Grouping.Desc ] in
       return (Op.Order { attr = col; dir; level = 1 })) ]

let gen_ops lo hi =
  let open QCheck.Gen in
  list_size (int_range lo hi)
    (let* i = int_range 0 999 in
     gen_unary_op ~tag:(string_of_int i))

let print_case (_, ops) =
  String.concat "; " (List.map Op.describe ops)

(* ---------- the differential check itself ---------- *)

let has_aggregate (sheet : Spreadsheet.t) =
  List.exists
    (fun (c : Computed.t) ->
      match c.Computed.spec with
      | Computed.Aggregate _ -> true
      | Computed.Formula _ -> false)
    sheet.Spreadsheet.state.Query_state.computed

(* Where the inverse translation yields a single-block query, the SQL
   engine must agree with the sheet. A grouped/aggregated sheet
   repeats each group's values on every member row while SQL returns
   one row per group, so both sides are collapsed before comparing. *)
let sql_agrees sheet base =
  match Sheet_sql.Sql_of_sheet.compile ~table:"cars" sheet with
  | Error (`Not_single_block _) -> true
  | Ok q -> (
      let catalog = Sheet_sql.Catalog.of_list [ ("cars", base) ] in
      match Sheet_sql.Sql_executor.run catalog q with
      | Error _ -> false
      | Ok sql_rel ->
          let vis = Materialize.visible sheet in
          if
            Grouping.num_levels (Spreadsheet.grouping sheet) > 0
            || has_aggregate sheet
          then
            (* an empty sheet with a whole-sheet aggregate still
               yields one SQL row (the usual COUNT-over-empty
               asymmetry); skip that corner *)
            Relation.cardinality vis = 0
            || Relation.equal_unordered_data
                 (Relation.normalize (Rel_algebra.distinct sql_rel))
                 (Relation.normalize (Rel_algebra.distinct vis))
          else
            Relation.equal_unordered_data (Relation.normalize sql_rel)
              (Relation.normalize vis))

(* Semantic-cache differential: rebuild the same ops with fresh uids
   (bypassing Session so nothing seeds the candidate's own uid), warm
   the cache with a relaxed parent — the last Select dropped — and
   require that whatever the subsumption scan decides (exact hit,
   proven subsumer, or full replay), the served relation equals
   Materialize.full. *)
let subsumption_agrees rel ops =
  let build ops =
    List.fold_left
      (fun sheet op ->
        match Engine.apply sheet op with Ok s -> s | Error _ -> sheet)
      (Spreadsheet.of_relation ~name:"cars" rel)
      ops
  in
  let drop_last_select ops =
    let is_select = function Op.Select _ -> true | _ -> false in
    let rec go = function
      | [] -> []
      | Op.Select _ :: rest when not (List.exists is_select rest) -> rest
      | op :: rest -> op :: go rest
    in
    go ops
  in
  Materialize.reset_cache ();
  let parent = build (drop_last_select ops) in
  ignore (Materialize.full_cached parent);
  let candidate = build ops in
  let served = Materialize.full_cached candidate in
  let ok = Relation.equal served (Materialize.full candidate) in
  Materialize.reset_cache ();
  ok

let check_state rel ops =
  let session = Session.create ~name:"cars" rel in
  let session =
    List.fold_left
      (fun session op ->
        match Session.apply session op with
        | Ok session -> session
        | Error _ -> session)
      session ops
  in
  let sheet = Session.current session in
  let full = Materialize.full sheet in
  (* the Sheetdoctor profile must agree with every execution path —
     and collecting it (always on, sink Off throughout this battery)
     must not change any result *)
  let rows = Relation.cardinality full in
  let profile_agrees =
    let prel, pprof =
      Plan.execute_instrumented ~uid:sheet.Spreadsheet.uid
        (Plan.of_sheet sheet)
    in
    Relation.equal prel full
    && pprof.Plan.p_rows_out = rows
    && Obs.Profile.open_regions () = 0
    &&
    match Obs.Profile.last () with
    | Some r ->
        r.Obs.Profile.p_kind = "plan"
        && r.Obs.Profile.p_uid = sheet.Spreadsheet.uid
        && r.Obs.Profile.p_rows_out = rows
    | None -> Obs.Profile.dropped () = 0 && false
  in
  let disabled_agrees =
    Obs.Profile.set_enabled false;
    Fun.protect ~finally:(fun () -> Obs.Profile.set_enabled true)
    @@ fun () -> Relation.equal (Plan.execute (Plan.of_sheet sheet)) full
  in
  Relation.equal (Plan.execute (Plan.of_sheet sheet)) full
  && Relation.equal (Plan.execute (Plan.optimize (Plan.of_sheet sheet))) full
  && Relation.equal (Session.materialized session)
       (Rel_algebra.project (Spreadsheet.visible_columns sheet) full)
  && profile_agrees && disabled_agrees
  && sql_agrees sheet rel
  && subsumption_agrees rel ops

let differential_small =
  QCheck.Test.make ~count:950
    ~name:"differential: plan == replay == incremental == SQL (small)"
    QCheck.(
      make ~print:print_case
        Gen.(
          let* rel = gen_small_relation in
          let* ops = gen_ops 0 8 in
          return (rel, ops)))
    (fun (rel, ops) -> check_state rel ops)

let differential_large =
  QCheck.Test.make ~count:30
    ~name:"differential: plan == replay == incremental == SQL (1k-10k rows)"
    QCheck.(
      make
        ~print:(fun ((seed, n), ops) ->
          Printf.sprintf "seed %d, %d rows: %s" seed n
            (String.concat "; " (List.map Op.describe ops)))
        Gen.(
          let* seed = int_range 0 1_000_000 in
          let* n = int_range 1_000 10_000 in
          let* ops = gen_ops 1 5 in
          return ((seed, n), ops)))
    (fun ((seed, n), ops) -> check_state (large_relation ~seed n) ops)

(* ---------- adversarial hash collisions ---------- *)

(* Two distinct short strings with the same [Value.hash], found by
   birthday search: [Hashtbl.hash] folds into ~2^30 buckets, so a
   collision among generated strings appears after a few tens of
   thousands of probes. *)
let colliding_strings =
  lazy
    (let tbl = Hashtbl.create (1 lsl 17) in
     let rec go i =
       if i > 3_000_000 then failwith "no Value.hash collision found"
       else
         let s = "k" ^ string_of_int i in
         let h = Value.hash (Value.String s) in
         match Hashtbl.find_opt tbl h with
         | Some s' -> (s', s)
         | None ->
             Hashtbl.add tbl h s;
             go (i + 1)
     in
     go 0)

(* Key pool: the colliding pair (distinct values, equal hashes), a
   numerically equal Int/Float pair (equal values, so they must land
   in the same bucket *and* compare equal), Null, and "". *)
let collision_pool () =
  let s1, s2 = Lazy.force colliding_strings in
  [| Value.String s1; Value.String s2; Value.Int 7; Value.Float 7.0;
     Value.Null; Value.String "" |]

(* Mixed-type columns on purpose: the algebra is untyped underneath,
   and the hash paths must cope — hence [unsafe_make]. *)
let gen_adversarial_relation key_col val_col : Relation.t QCheck.Gen.t =
  let open QCheck.Gen in
  let schema = Schema.of_list [ (key_col, Value.TString); (val_col, Value.TInt) ] in
  let* n = int_range 0 30 in
  let* cells =
    list_repeat n
      (let* k = int_range 0 5 in
       let* v = int_range 0 8 in
       return (k, v))
  in
  let pool = collision_pool () in
  return
    (Relation.unsafe_make schema
       (List.map
          (fun (k, v) ->
            Row.of_list
              [ pool.(k); (if v < 6 then pool.(v) else Value.Int (v - 6)) ])
          cells))

(* Reference implementations: no hash tables, only Row/Value equality
   and list scans. *)

let ref_equijoin ~ki ~ri a b =
  List.concat_map
    (fun ra ->
      let ka = Row.get ra ki in
      if Value.is_null ka then []
      else
        List.filter_map
          (fun rb ->
            if Value.equal ka (Row.get rb ri) then Some (Row.append ra rb)
            else None)
          (Relation.rows b))
    (Relation.rows a)

let ref_distinct rows =
  List.rev
    (List.fold_left
       (fun acc r -> if List.exists (Row.equal r) acc then acc else r :: acc)
       [] rows)

let count_of r rows = List.length (List.filter (Row.equal r) rows)

(* Bag difference cancelling the earliest left occurrences first. *)
let ref_diff a_rows b_rows =
  let budget =
    List.map (fun r -> (r, ref (count_of r b_rows))) (ref_distinct a_rows)
  in
  List.filter
    (fun r ->
      let _, cell = List.find (fun (k, _) -> Row.equal k r) budget in
      if !cell > 0 then begin
        decr cell;
        false
      end
      else true)
    a_rows

let inter_cardinality a_rows b_rows =
  List.fold_left
    (fun acc r -> acc + min (count_of r a_rows) (count_of r b_rows))
    0 (ref_distinct a_rows)

let gen_adversarial_pair =
  let open QCheck.Gen in
  let* a = gen_adversarial_relation "k" "va" in
  let* b = gen_adversarial_relation "rk" "vb" in
  return (a, b)

let print_pair (a, b) =
  Format.asprintf "a =@ %a@ b =@ %a" Relation.pp a Relation.pp b

let equijoin_under_collisions =
  QCheck.Test.make ~count:300
    ~name:"collisions: equijoin == nested-loop reference (exact order)"
    (QCheck.make ~print:print_pair gen_adversarial_pair)
    (fun (a, b) ->
      let j = Rel_algebra.equijoin ~on:("k", "rk") a b in
      List.equal Row.equal (Relation.rows j) (ref_equijoin ~ki:0 ~ri:0 a b))

let distinct_under_collisions =
  QCheck.Test.make ~count:300
    ~name:"collisions: distinct == first-occurrence reference (exact order)"
    (QCheck.make ~print:print_pair gen_adversarial_pair)
    (fun (a, _) ->
      List.equal Row.equal
        (Relation.rows (Rel_algebra.distinct a))
        (ref_distinct (Relation.rows a)))

let diff_under_collisions =
  QCheck.Test.make ~count:300
    ~name:"collisions: diff == earliest-first reference (exact order)"
    (QCheck.make ~print:print_pair gen_adversarial_pair)
    (fun (a, b) ->
      let b = Relation.with_schema (Relation.schema a) b in
      List.equal Row.equal
        (Relation.rows (Rel_algebra.diff a b))
        (ref_diff (Relation.rows a) (Relation.rows b)))

let bag_law_difference =
  QCheck.Test.make ~count:300
    ~name:"bag law: |A - B| = |A| - |A intersect B|"
    (QCheck.make ~print:print_pair gen_adversarial_pair)
    (fun (a, b) ->
      let b = Relation.with_schema (Relation.schema a) b in
      Relation.cardinality (Rel_algebra.diff a b)
      = Relation.cardinality a
        - inter_cardinality (Relation.rows a) (Relation.rows b))

let distinct_idempotent =
  QCheck.Test.make ~count:300
    ~name:"bag law: distinct (distinct A) == distinct A (exact order)"
    (QCheck.make ~print:print_pair gen_adversarial_pair)
    (fun (a, _) ->
      let d = Rel_algebra.distinct a in
      List.equal Row.equal
        (Relation.rows (Rel_algebra.distinct d))
        (Relation.rows d))

(* ---------- 10k-row diff: correctness at scale ---------- *)

(* Heavy duplication on purpose: only 15 distinct rows across 10k, so
   every hash bucket is enormous. The reference counts occurrences
   with plain integer keys — independent of Value/Row hashing — and
   the check is exact, including the earliest-first cancellation
   order. (Timing is bench/main.ml's job; this is correctness only.) *)
let test_diff_10k () =
  let tags = [| "x"; "y"; "z" |] in
  let schema = Schema.of_list [ ("g", Value.TInt); ("tag", Value.TString) ] in
  let mk shift i =
    Row.of_list [ Value.Int (i mod 5); Value.String tags.((i + shift) mod 3) ]
  in
  let a = Relation.of_array schema (Array.init 10_000 (mk 0)) in
  let b = Relation.of_array schema (Array.init 4_000 (mk 1)) in
  let key row =
    match Row.to_list row with
    | [ Value.Int g; Value.String t ] -> (g, t)
    | _ -> Alcotest.fail "unexpected row shape"
  in
  let counts rel =
    let tbl = Hashtbl.create 16 in
    Relation.iter
      (fun r ->
        let k = key r in
        Hashtbl.replace tbl k
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      rel;
    tbl
  in
  let inter =
    let ca = counts a and cb = counts b in
    Hashtbl.fold
      (fun k na acc ->
        acc + min na (Option.value ~default:0 (Hashtbl.find_opt cb k)))
      ca 0
  in
  let budget = counts b in
  let expected =
    List.filter
      (fun r ->
        let k = key r in
        match Hashtbl.find_opt budget k with
        | Some c when c > 0 ->
            Hashtbl.replace budget k (c - 1);
            false
        | _ -> true)
      (Relation.rows a)
  in
  let d = Rel_algebra.diff a b in
  Alcotest.(check int)
    "bag law at 10k" (10_000 - inter) (Relation.cardinality d);
  Alcotest.(check bool)
    "earliest-first cancellation, order preserved" true
    (List.equal Row.equal expected (Relation.rows d))

let () =
  (* Force the battery through the morsel-parallel columnar paths:
     several domains and small-enough cutoffs that even the 40-row
     random relations split into multiple morsels. *)
  Par.set_domain_count 4;
  Par.set_parallel_threshold 16;
  Par.set_morsel_rows 32;
  let suite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "sheet_diff_exec"
    [ suite "differential" [ differential_small; differential_large ];
      suite "collisions"
        [ equijoin_under_collisions; distinct_under_collisions;
          diff_under_collisions ];
      suite "bag-laws" [ bag_law_difference; distinct_idempotent ];
      ( "scale",
        [ Alcotest.test_case "diff at 10k rows" `Quick test_diff_10k ] ) ]
