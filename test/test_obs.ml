(* Sheetscope: the instrumentation must never change what a query
   returns, and what it records must be well formed.

   - with the sink off (the default), [Plan.execute_instrumented]
     equals [Plan.execute] equals [Materialize.full] on random query
     states (the generator style of test_props.ml);
   - the same with the Memory sink on, plus: spans balanced, properly
     nested, and interval-consistent;
   - counters are monotone across work; gauges are not counters;
   - the Chrome trace export parses back through Obs_json and
     round-trips;
   - the materialization cache's stats are deterministic around
     [reset_cache];
   - Obs_json itself: totality and exact round-trips on awkward
     values. *)

open Sheet_rel
open Sheet_core
module Obs = Sheet_obs.Obs
module J = Sheet_obs.Obs_json

let ( let* ) = QCheck.Gen.( let* ) [@@warning "-32"]

(* ---------- random query states over the cars schema ---------- *)

let models = [ "Jetta"; "Civic"; "Accord" ]
let conditions = [ "Excellent"; "Good"; "Fair" ]

let gen_base_relation : Relation.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 0 30 in
  let* rows =
    list_repeat n
      (let* id = int_range 1 999 in
       let* model = oneofl models in
       let* price = int_range 8000 30000 in
       let* year = int_range 2000 2008 in
       let* mileage = int_range 0 150000 in
       let* condition = oneofl conditions in
       return
         (Row.of_list
            [ Value.Int id; Value.String model; Value.Int price;
              Value.Int year; Value.Int mileage; Value.String condition ]))
  in
  return (Relation.make Sample_cars.schema rows)

let numeric_cols = [ "Price"; "Year"; "Mileage" ]
let string_cols = [ "Model"; "Condition" ]

let gen_pred : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [ (let* col = oneofl numeric_cols in
       let* op = oneofl [ Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge; Expr.Eq ] in
       let* v = int_range 1990 120000 in
       return (Expr.Cmp (op, Expr.Col col, Expr.Const (Value.Int v))));
      (let* col = oneofl string_cols in
       let* v = oneofl (models @ conditions) in
       return (Expr.Cmp (Expr.Eq, Expr.Col col, Expr.Const (Value.String v))))
    ]

let gen_unary_op ~tag : Op.t QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [ (let* p = gen_pred in
       return (Op.Select p));
      (let* col = oneofl (numeric_cols @ string_cols) in
       return (Op.Project col));
      (let* fn = oneofl [ Expr.Sum; Expr.Avg; Expr.Min; Expr.Max ] in
       let* col = oneofl numeric_cols in
       return
         (Op.Aggregate
            { fn; col = Some col; level = 1;
              as_name = Some (Printf.sprintf "agg_%s" tag) }));
      (let* a = oneofl numeric_cols in
       let* b = oneofl numeric_cols in
       return
         (Op.Formula
            { name = Some (Printf.sprintf "fc_%s" tag);
              expr = Expr.Arith (Expr.Add, Expr.Col a, Expr.Col b) }));
      return Op.Dedup;
      (let* col = oneofl (string_cols @ [ "Year" ]) in
       let* dir = oneofl [ Grouping.Asc; Grouping.Desc ] in
       return (Op.Group { basis = [ col ]; dir }));
      (let* col = oneofl (numeric_cols @ string_cols) in
       let* dir = oneofl [ Grouping.Asc; Grouping.Desc ] in
       return (Op.Order { attr = col; dir; level = 1 })) ]

(* a random sheet: ops that fail a guard are simply skipped, so every
   generated value yields a usable query state *)
let gen_sheet : Spreadsheet.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* rel = gen_base_relation in
  let* ops =
    list_size (int_range 0 6)
      (let* i = int_range 0 999 in
       gen_unary_op ~tag:(string_of_int i))
  in
  return
    (List.fold_left
       (fun sheet op ->
         match Engine.apply sheet op with
         | Ok sheet -> sheet
         | Error _ -> sheet)
       (Spreadsheet.of_relation ~name:"t" rel)
       ops)

let sheet_arbitrary =
  QCheck.make
    ~print:(fun sheet -> Render.status_line sheet)
    gen_sheet

(* ---------- instrumented = plain = materializer ---------- *)

let with_sink sink f =
  let old = Obs.sink () in
  Obs.set_sink sink;
  Fun.protect ~finally:(fun () -> Obs.set_sink old) f

let instrumented_equals_plain_off =
  QCheck.Test.make ~count:1000
    ~name:"sink off: execute_instrumented = execute = Materialize.full"
    sheet_arbitrary
    (fun sheet ->
      with_sink Obs.Off @@ fun () ->
      let plan = Plan.of_sheet sheet in
      let plain = Plan.execute plan in
      let rel, profile = Plan.execute_instrumented plan in
      Relation.equal rel plain
      && Relation.equal rel (Materialize.full sheet)
      && profile.Plan.p_rows_out = Relation.cardinality rel)

let instrumented_equals_plain_memory =
  QCheck.Test.make ~count:300
    ~name:"memory sink: same results, spans balanced and nested"
    sheet_arbitrary
    (fun sheet ->
      with_sink Obs.Memory @@ fun () ->
      Obs.clear_events ();
      let plan = Plan.of_sheet sheet in
      let rel, _profile = Plan.execute_instrumented plan in
      let ok_result = Relation.equal rel (Materialize.full sheet) in
      ok_result
      && Obs.open_spans () = 0
      && Obs.nesting_ok ()
      && Obs.events_well_formed (Obs.events ()))

let profile_chain_rows =
  QCheck.Test.make ~count:200
    ~name:"profile chain: every node reports non-negative rows and time"
    sheet_arbitrary
    (fun sheet ->
      let _rel, profile =
        Plan.execute_instrumented (Plan.of_sheet sheet)
      in
      let rec ok (p : Plan.profile) =
        p.Plan.p_rows_out >= 0
        && p.Plan.p_time_ns >= 0
        && p.Plan.p_label <> ""
        && (match p.Plan.p_child with Some c -> ok c | None -> true)
      in
      ok profile && Plan.profile_total_ns profile >= 0)

(* ---------- counters ---------- *)

let counter_names =
  [ Obs.k_engine_ops; Obs.k_engine_errors; Obs.k_cache_requests;
    Obs.k_cache_hits; Obs.k_cache_hits_subsumed;
    Obs.k_cache_misses; Obs.k_cache_evictions; Obs.k_cache_seeds;
    Obs.k_full_replays; Obs.k_incremental_derivations;
    Obs.k_incremental_fallbacks; Obs.k_plan_nodes; Obs.k_plan_rows_in;
    Obs.k_plan_rows_out; Obs.k_sql_translations;
    Obs.k_sql_inverse_translations; Obs.k_sql_executions ]

let counters_monotone =
  QCheck.Test.make ~count:200
    ~name:"counters only grow across engine + plan work"
    sheet_arbitrary
    (fun sheet ->
      let before =
        List.map (fun n -> (n, Obs.Metrics.value_of n)) counter_names
      in
      ignore (Plan.execute_instrumented (Plan.of_sheet sheet));
      ignore (Engine.apply sheet Op.Dedup);
      List.for_all
        (fun (n, v0) -> Obs.Metrics.value_of n >= v0)
        before)

let counters_snapshot () =
  let snap = Obs.Metrics.snapshot () in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (n ^ " present") true
        (List.mem_assoc n snap))
    counter_names;
  (* the typed record agrees with the registry *)
  let stats = Obs.core_stats () in
  Alcotest.(check int) "engine_ops" (Obs.Metrics.value_of Obs.k_engine_ops)
    stats.Obs.engine_ops;
  Alcotest.(check int) "plan_nodes" (Obs.Metrics.value_of Obs.k_plan_nodes)
    stats.Obs.plan_nodes

(* ---------- cache stats ---------- *)

let cache_stats_deterministic () =
  Materialize.reset_cache ();
  let s0 = Materialize.cache_stats () in
  Alcotest.(check int) "hits zero" 0 s0.Materialize.hits;
  Alcotest.(check int) "misses zero" 0 s0.Materialize.misses;
  Alcotest.(check int) "entries zero" 0 s0.Materialize.entries;
  let sheet = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation in
  let r1 = Materialize.full_cached sheet in
  let r2 = Materialize.full_cached sheet in
  Alcotest.(check bool) "same relation" true (Relation.equal r1 r2);
  let s = Materialize.cache_stats () in
  Alcotest.(check int) "one miss" 1 s.Materialize.misses;
  Alcotest.(check int) "one hit" 1 s.Materialize.hits;
  Alcotest.(check int) "one entry" 1 s.Materialize.entries;
  Alcotest.(check int) "no eviction" 0 s.Materialize.evictions;
  Materialize.reset_cache ();
  let s = Materialize.cache_stats () in
  Alcotest.(check int) "reset misses" 0 s.Materialize.misses;
  Alcotest.(check int) "reset entries" 0 s.Materialize.entries

let seed_counts_in_stats () =
  Materialize.reset_cache ();
  let sheet = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation in
  Materialize.seed_cache sheet (Materialize.full sheet);
  let s = Materialize.cache_stats () in
  Alcotest.(check int) "one seed" 1 s.Materialize.seeds;
  Alcotest.(check int) "one entry" 1 s.Materialize.entries;
  (* the seeded value is served back without a miss *)
  ignore (Materialize.full_cached sheet);
  let s = Materialize.cache_stats () in
  Alcotest.(check int) "hit on seeded" 1 s.Materialize.hits;
  Alcotest.(check int) "no miss" 0 s.Materialize.misses

(* ---------- chrome trace export ---------- *)

let trace_round_trip () =
  with_sink Obs.Memory @@ fun () ->
  Obs.clear_events ();
  let sheet = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation in
  let sheet =
    match
      Engine.apply sheet
        (Op.Select
           (Expr.Cmp (Expr.Lt, Expr.Col "Price", Expr.Const (Value.Int 20000))))
    with
    | Ok s -> s
    | Error _ -> Alcotest.fail "select refused"
  in
  ignore (Materialize.full sheet);
  ignore (Plan.execute_instrumented (Plan.of_sheet sheet));
  let text = Obs.chrome_trace_string () in
  match J.parse text with
  | Error msg -> Alcotest.fail ("trace does not parse: " ^ msg)
  | Ok v -> (
      (match J.member "traceEvents" v with
      | Some (J.List (_ :: _)) -> ()
      | _ -> Alcotest.fail "no traceEvents");
      match J.parse (J.to_string v) with
      | Ok v' ->
          Alcotest.(check bool) "round-trips" true (J.equal v v')
      | Error msg -> Alcotest.fail ("re-parse failed: " ^ msg))

let ring_clears () =
  with_sink Obs.Memory @@ fun () ->
  Obs.clear_events ();
  ignore
    (Materialize.full
       (Spreadsheet.of_relation ~name:"cars" Sample_cars.relation));
  Alcotest.(check bool) "recorded" true (Obs.events () <> []);
  Obs.clear_events ();
  Alcotest.(check int) "empty" 0 (List.length (Obs.events ()))

(* ---------- latency histograms ---------- *)

module H = Obs.Histogram

let samples_arbitrary =
  QCheck.make
    ~print:QCheck.Print.(list int)
    QCheck.Gen.(
      list_size (int_range 1 150)
        (* spread across the whole bucket range, 0 ns .. ~30 s *)
        (oneof
           [ int_range 0 1_000;
             int_range 1_000 1_000_000;
             int_range 1_000_000 1_000_000_000;
             int_range 1_000_000_000 30_000_000_000 ]))

let fill xs =
  let h = H.make "t" in
  List.iter (H.record h) xs;
  h

let boundaries_well_formed () =
  let b = H.boundaries in
  Alcotest.(check int) "33 edges" 33 (Array.length b);
  Alcotest.(check int) "100 ns first" 100 b.(0);
  Alcotest.(check int) "10 s last" 10_000_000_000 b.(32);
  for i = 1 to Array.length b - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "edge %d increases" i)
      true
      (b.(i) > b.(i - 1))
  done

(* the test's own bucket lookup, independent of the binary search *)
let bucket_of v =
  let n = Array.length H.boundaries in
  let rec go i = if i >= n || v <= H.boundaries.(i) then i else go (i + 1) in
  go 0

let hist_exactness =
  QCheck.Test.make ~count:500 ~name:"count/sum/max are exact"
    samples_arbitrary
    (fun xs ->
      let h = fill xs in
      H.count h = List.length xs
      && H.sum_ns h = List.fold_left ( + ) 0 xs
      && H.max_ns h = List.fold_left max 0 xs)

let hist_merge_commutative =
  QCheck.Test.make ~count:300 ~name:"merge is commutative"
    (QCheck.pair samples_arbitrary samples_arbitrary)
    (fun (xs, ys) ->
      let a = fill xs and b = fill ys in
      H.equal (H.merge a b) (H.merge b a))

let hist_merge_associative =
  QCheck.Test.make ~count:300 ~name:"merge is associative"
    (QCheck.triple samples_arbitrary samples_arbitrary samples_arbitrary)
    (fun (xs, ys, zs) ->
      let a = fill xs and b = fill ys and c = fill zs in
      H.equal (H.merge (H.merge a b) c) (H.merge a (H.merge b c)))

let hist_merge_is_concat =
  QCheck.Test.make ~count:300 ~name:"merge a b = histogram of xs @ ys"
    (QCheck.pair samples_arbitrary samples_arbitrary)
    (fun (xs, ys) ->
      H.equal (H.merge (fill xs) (fill ys)) (fill (xs @ ys)))

let hist_percentile_bounds =
  QCheck.Test.make ~count:500
    ~name:"p50 <= p90 <= p99 <= max, each inside its sample's bucket"
    samples_arbitrary
    (fun xs ->
      let h = fill xs in
      let sorted = Array.of_list (List.sort compare xs) in
      let n = Array.length sorted in
      let in_bucket phi =
        let p = H.percentile h phi in
        let rank =
          max 1 (min n (int_of_float (ceil (phi *. float_of_int n))))
        in
        let b = bucket_of sorted.(rank - 1) in
        let lo = if b = 0 then 0 else H.boundaries.(b - 1) in
        let hi =
          if b < Array.length H.boundaries then H.boundaries.(b) else max_int
        in
        p >= float_of_int lo && p <= float_of_int (min hi (H.max_ns h))
      in
      let p50 = H.percentile h 0.50 in
      let p90 = H.percentile h 0.90 in
      let p99 = H.percentile h 0.99 in
      in_bucket 0.50 && in_bucket 0.90 && in_bucket 0.99
      && p50 <= p90 && p90 <= p99
      && p99 <= float_of_int (H.max_ns h))

let hist_clamps_negative () =
  let h = H.make "t" in
  H.record h (-5);
  Alcotest.(check int) "counted" 1 (H.count h);
  Alcotest.(check int) "sum clamped" 0 (H.sum_ns h);
  Alcotest.(check int) "max clamped" 0 (H.max_ns h);
  Alcotest.(check (float 0.)) "percentile zero" 0. (H.percentile h 1.0)

let hist_empty_percentile () =
  Alcotest.(check (float 0.)) "empty is 0" 0. (H.percentile (H.make "t") 0.5)

(* Histograms always record (like counters); the whole point is that
   a sample costs about as much as an int increment, so recording can
   stay on with the sink off. Generous bounds keep this robust on a
   noisy machine: O(1) per record and within 50x of a bare counter. *)
let record_cost_comparable () =
  with_sink Obs.Off @@ fun () ->
  let h = H.make "cost" in
  let c = Obs.Metrics.counter "test.cost_counter" in
  let n = 200_000 in
  let t0 = Obs.now_ns () in
  for _ = 1 to n do
    Obs.Metrics.incr c
  done;
  let t_counter = Obs.now_ns () - t0 in
  let t0 = Obs.now_ns () in
  for i = 1 to n do
    H.record h i
  done;
  let t_record = Obs.now_ns () - t0 in
  Alcotest.(check bool) "record cost comparable to a counter incr" true
    (t_record <= max 1 t_counter * 50 || t_record / n < 1_000)

let hist_snapshot_and_json () =
  H.reset ();
  let h = H.histogram Obs.h_engine_apply in
  List.iter (H.record h) [ 150; 1_500; 150_000; 15_000_000 ];
  let s = H.snapshot_of h in
  Alcotest.(check int) "count" 4 s.H.s_count;
  Alcotest.(check int) "max" 15_000_000 s.H.s_max_ns;
  Alcotest.(check bool) "nonzero buckets only" true
    (List.for_all (fun (_, n) -> n > 0) s.H.s_buckets);
  Alcotest.(check int) "bucket counts total" 4
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.H.s_buckets);
  (match J.parse (J.to_string (H.to_json ())) with
  | Ok j ->
      Alcotest.(check bool) "engine.apply present" true
        (J.member Obs.h_engine_apply j <> None)
  | Error msg -> Alcotest.fail msg);
  H.reset ();
  Alcotest.(check int) "reset zeroes" 0 (H.count h)

(* ---------- the monotone clock ---------- *)

let clock_never_negative () =
  (* pin a test clock 10 s in the future, then step it backwards: the
     clamp must freeze time rather than let a duration go negative *)
  let t = ref (Obs.now_ns () + 10_000_000_000) in
  Obs.set_raw_clock_for_tests (Some (fun () -> !t));
  Fun.protect ~finally:(fun () -> Obs.set_raw_clock_for_tests None)
  @@ fun () ->
  with_sink Obs.Memory @@ fun () ->
  Obs.clear_events ();
  let a = Obs.now_ns () in
  t := !t - 5_000_000_000;
  let b = Obs.now_ns () in
  Alcotest.(check bool) "now_ns never decreases" true (b >= a);
  let sp = Obs.span "backwards" in
  t := !t - 3_000_000_000;
  Obs.finish sp;
  (match Obs.events () with
  | [ ev ] ->
      Alcotest.(check bool) "dur_ns >= 0" true (ev.Obs.dur_ns >= 0);
      (* the clamp freezes time, so the duration is not absurd either *)
      Alcotest.(check bool) "dur_ns not absurd" true
        (ev.Obs.dur_ns <= 1_000_000_000)
  | evs ->
      Alcotest.fail
        (Printf.sprintf "expected 1 event, got %d" (List.length evs)));
  (* histogram samples taken across the step are clamped too *)
  let h = H.make "t" in
  let t0 = Obs.now_ns () in
  t := !t - 1_000_000_000;
  H.record h (Obs.now_ns () - t0);
  Alcotest.(check bool) "sample >= 0" true (H.max_ns h >= 0)

(* ---------- the flight recorder ---------- *)

let flightrec_ring () =
  Obs.Flightrec.clear ();
  Obs.Flightrec.set_capacity 4;
  Fun.protect
    ~finally:(fun () ->
      Obs.Flightrec.set_capacity 512;
      Obs.Flightrec.clear ())
  @@ fun () ->
  for i = 1 to 6 do
    Obs.Flightrec.record ~kind:"op" (Printf.sprintf "e%d" i)
  done;
  let evs = Obs.Flightrec.events () in
  Alcotest.(check int) "bounded at capacity" 4 (List.length evs);
  Alcotest.(check int) "two dropped" 2 (Obs.Flightrec.dropped ());
  Alcotest.(check string) "oldest evicted first" "e3"
    (List.hd evs).Obs.Flightrec.f_label;
  Alcotest.(check string) "newest kept" "e6"
    (List.nth evs 3).Obs.Flightrec.f_label;
  Obs.Flightrec.clear ();
  Alcotest.(check int) "clear empties" 0
    (List.length (Obs.Flightrec.events ()));
  Alcotest.(check int) "clear resets dropped" 0 (Obs.Flightrec.dropped ())

let flightrec_json_round_trip () =
  Obs.Flightrec.clear ();
  Obs.Flightrec.record ~uid:7 ~dur_ns:123_456 ~kind:"op" "Select Price < 2";
  Obs.Flightrec.record ~kind:"undo" "Group Model";
  Obs.Flightrec.record ~uid:9 ~kind:"cache-hit" "materialize";
  let j = Obs.Flightrec.to_json () in
  (match J.member "schema" j with
  | Some (J.String "sheetscope-flightrec/v1") -> ()
  | _ -> Alcotest.fail "missing schema tag");
  (match J.member "events" j with
  | Some (J.List l) -> Alcotest.(check int) "3 events" 3 (List.length l)
  | _ -> Alcotest.fail "missing events");
  (match J.parse (J.to_string j) with
  | Ok j' -> Alcotest.(check bool) "round-trips" true (J.equal j j')
  | Error msg -> Alcotest.fail msg);
  Obs.Flightrec.clear ()

let flightrec_threshold () =
  let old_ns = Obs.Flightrec.slow_threshold_ns () in
  Fun.protect
    ~finally:(fun () ->
      Obs.Flightrec.set_slow_threshold_ms (float_of_int old_ns /. 1e6))
  @@ fun () ->
  Obs.Flightrec.set_slow_threshold_ms 5.;
  Alcotest.(check int) "5 ms in ns" 5_000_000
    (Obs.Flightrec.slow_threshold_ns ());
  Obs.Flightrec.set_slow_threshold_ms (-1.);
  Alcotest.(check int) "negative clamps to 0" 0
    (Obs.Flightrec.slow_threshold_ns ())

let flightrec_render_limit () =
  Obs.Flightrec.clear ();
  for i = 1 to 5 do
    Obs.Flightrec.record ~kind:"op" (Printf.sprintf "r%d" i)
  done;
  let text = Obs.Flightrec.render ~limit:2 () in
  Alcotest.(check bool) "newest shown" true
    (String.length text > 0
    && List.length (String.split_on_char '\n' text) = 2);
  Obs.Flightrec.clear ()

(* drain is an atomic read-and-clear: with recorder threads running
   (Sheetserve handlers taking their per-connection black boxes),
   every event lands in exactly one drained batch or the final ring —
   never lost, never duplicated — and each recorder's events stay in
   order across the concatenated batches *)
let flightrec_drain_isolation () =
  Obs.Flightrec.clear ();
  Obs.Flightrec.set_capacity 100_000;
  Fun.protect
    ~finally:(fun () ->
      Obs.Flightrec.set_capacity 512;
      Obs.Flightrec.clear ())
  @@ fun () ->
  let n_recorders = 4 and per_recorder = 2000 in
  let drained = ref [] in
  let stop = ref false in
  let drainer =
    Thread.create
      (fun () ->
        while not !stop do
          drained := !drained @ Obs.Flightrec.drain ();
          Thread.yield ()
        done)
      ()
  in
  let recorders =
    List.init n_recorders (fun i ->
        Thread.create
          (fun () ->
            for j = 1 to per_recorder do
              Obs.Flightrec.record ~kind:"op"
                (Printf.sprintf "t%d-%d" i j)
            done)
          ())
  in
  List.iter Thread.join recorders;
  stop := true;
  Thread.join drainer;
  let all = !drained @ Obs.Flightrec.drain () in
  Alcotest.(check int) "no event lost or duplicated"
    (n_recorders * per_recorder)
    (List.length all);
  Alcotest.(check int) "no capacity drops" 0 (Obs.Flightrec.dropped ());
  let labels = List.map (fun e -> e.Obs.Flightrec.f_label) all in
  let uniq = List.sort_uniq String.compare labels in
  Alcotest.(check int) "every label exactly once"
    (n_recorders * per_recorder)
    (List.length uniq);
  (* per-recorder order survives batching *)
  for i = 0 to n_recorders - 1 do
    let prefix = Printf.sprintf "t%d-" i in
    let mine =
      List.filter
        (fun l ->
          String.length l > String.length prefix
          && String.sub l 0 (String.length prefix) = prefix)
        labels
    in
    let expected =
      List.init per_recorder (fun j -> Printf.sprintf "t%d-%d" i (j + 1))
    in
    Alcotest.(check (list string))
      (Printf.sprintf "recorder %d order preserved" i)
      expected mine
  done;
  Alcotest.(check int) "ring left empty" 0 (Obs.Flightrec.length ())

(* ---------- report surfaces ---------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let trace_other_data_health () =
  with_sink Obs.Memory @@ fun () ->
  Obs.clear_events ();
  ignore
    (Materialize.full
       (Spreadsheet.of_relation ~name:"cars" Sample_cars.relation));
  match J.parse (Obs.chrome_trace_string ()) with
  | Error msg -> Alcotest.fail msg
  | Ok j -> (
      match J.member "otherData" j with
      | None -> Alcotest.fail "no otherData"
      | Some od ->
          List.iter
            (fun k ->
              Alcotest.(check bool) (k ^ " present") true
                (J.member k od <> None))
            [ "dropped_events"; "open_spans"; "nesting_ok"; "metrics";
              "histograms" ];
          (match J.member "nesting_ok" od with
          | Some (J.Bool true) -> ()
          | _ -> Alcotest.fail "nesting_ok should be Bool true"))

let metrics_report_surfaces () =
  (* run real work so the well-known histograms hold samples *)
  let sheet = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation in
  (match Engine.apply sheet Op.Dedup with
  | Ok s -> ignore (Plan.execute (Plan.of_sheet s))
  | Error _ -> Alcotest.fail "dedup refused");
  let report = Obs.metrics_report () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in report") true
        (contains report needle))
    [ "engine.apply"; "plan.node.scan"; "p50"; "p99";
      "trace.dropped_events"; "trace.nesting_ok"; "flightrec.events" ]

(* ---------- Obs_json ---------- *)

let json_round_trip_values () =
  let cases =
    [ J.Null; J.Bool true; J.Bool false; J.Int 0; J.Int (-42);
      J.Int max_int; J.Float 0.1; J.Float (-1e300); J.Float 1.5;
      J.String ""; J.String "a\"b\\c\nd\te";
      J.String "caf\xc3\xa9";  (* UTF-8 passes through *)
      J.List []; J.Obj [];
      J.Obj
        [ ("k", J.List [ J.Int 1; J.Float 2.5; J.String "x"; J.Null ]);
          ("nested", J.Obj [ ("deep", J.List [ J.Obj [] ]) ]) ] ]
  in
  List.iter
    (fun v ->
      match J.parse (J.to_string v) with
      | Ok v' ->
          Alcotest.(check bool)
            (J.to_string v ^ " round-trips")
            true (J.equal v v')
      | Error msg -> Alcotest.fail (J.to_string v ^ ": " ^ msg))
    cases;
  (* floats keep their type: 2.0 must not come back as Int 2 *)
  match J.parse (J.to_string (J.Float 2.0)) with
  | Ok (J.Float _) -> ()
  | Ok _ -> Alcotest.fail "float decayed to another constructor"
  | Error msg -> Alcotest.fail msg

let json_parse_errors () =
  List.iter
    (fun s ->
      match J.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s))
    [ ""; "{"; "["; "tru"; "nul"; "{\"a\":}"; "[1,]"; "\"unterminated";
      "{\"a\" 1}"; "01x"; "- 1"; "\xff" ];
  (* escapes and unicode *)
  (match J.parse {|"Aé😀"|} with
  | Ok (J.String s) ->
      Alcotest.(check string) "unicode escapes" "A\xc3\xa9\xf0\x9f\x98\x80" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape parse");
  (* depth guard: deeply nested input must fail, not overflow *)
  let deep = String.concat "" (List.init 2000 (fun _ -> "[")) in
  match J.parse deep with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbounded depth accepted"

(* ---------- the v3 merge algebra and sharded cells ---------- *)

let hist_merge_zero_identity =
  QCheck.Test.make ~count:300 ~name:"merge with empty is identity"
    samples_arbitrary
    (fun xs ->
      let a = fill xs and z = H.make "zero" in
      H.equal (H.merge a z) a && H.equal (H.merge z a) a)

(* Four domains hammer one registered counter and one registered
   histogram concurrently; the merged totals must equal the
   single-writer arithmetic exactly — no lost increments, whatever
   the interleaving. Run under both sinks: Off (the common case) and
   Memory (workers additionally emit span events through the
   mutex-protected ring). *)
let sharded_hammer sink () =
  with_sink sink @@ fun () ->
  Obs.clear_events ();
  let c = Obs.Metrics.counter "test.hammer" in
  let h = H.histogram "test.hammer" in
  Obs.Metrics.reset ();
  H.reset ();
  let n = 50_000 in
  let emits = 1_000 in
  let work () =
    for i = 1 to n do
      Obs.Metrics.incr c;
      H.record h (i land 1023)
    done;
    for _ = 1 to emits do
      let t = Obs.now_ns () in
      Obs.emit ~kind:"hammer" ~depth:1 ~start_ns:t ~dur_ns:10 "test.emit"
    done
  in
  let workers = Array.init 3 (fun _ -> Domain.spawn work) in
  work ();
  Array.iter Domain.join workers;
  let expected_sum =
    let s = ref 0 in
    for i = 1 to n do
      s := !s + (i land 1023)
    done;
    4 * !s
  in
  Alcotest.(check int) "counter total exact" (4 * n) (Obs.Metrics.get c);
  Alcotest.(check int) "histogram count exact" (4 * n) (H.count h);
  Alcotest.(check int) "histogram sum exact" expected_sum (H.sum_ns h);
  Alcotest.(check int) "histogram max exact" 1023 (H.max_ns h);
  (match sink with
  | Obs.Memory ->
      Alcotest.(check int) "all emitted events kept" (4 * emits)
        (List.length (Obs.events ()));
      Alcotest.(check int) "nothing dropped" 0 (Obs.dropped ())
  | _ -> Alcotest.(check int) "off sink keeps no events" 0
           (List.length (Obs.events ())));
  Obs.clear_events ();
  Obs.Metrics.reset ();
  H.reset ()

(* ---------- labels ---------- *)

let labels_normalize () =
  let l =
    Obs.Labels.v [ ("task", "a"); ("session", "x{y},z=w"); ("task", "b") ]
  in
  Alcotest.(check string) "sorted, deduped, sanitized"
    "{session=x_y__z_w,task=b}"
    (Obs.Labels.to_string l);
  Alcotest.(check bool) "empty renders empty" true
    (Obs.Labels.to_string Obs.Labels.empty = "");
  Alcotest.(check string) "base of labeled series" "engine.apply"
    (Obs.series_base ("engine.apply" ^ Obs.Labels.to_string l));
  Alcotest.(check string) "base of plain series" "engine.apply"
    (Obs.series_base "engine.apply")

let label_cardinality_bounded () =
  let old_cap = Obs.label_cap () in
  Fun.protect ~finally:(fun () -> Obs.set_label_cap old_cap) @@ fun () ->
  Obs.set_label_cap 4;
  let base = "test.labelcap" in
  for i = 1 to 20 do
    let h =
      H.histogram_labeled base
        (Obs.Labels.v [ ("session", Printf.sprintf "s%02d" i) ])
    in
    H.record h 100
  done;
  let series = H.series_of_base base in
  Alcotest.(check bool)
    (Printf.sprintf "at most cap+1 series, got %d" (List.length series))
    true
    (List.length series <= 5);
  let overflow =
    List.find_opt
      (fun h -> H.name h = base ^ Obs.overflow_suffix)
      series
  in
  (match overflow with
  | None -> Alcotest.fail "no overflow series created"
  | Some h ->
      (* 4 admitted series got 1 sample each; the other 16 share one *)
      Alcotest.(check int) "overflow absorbed the rest" 16 (H.count h));
  (* total samples conserved across the family *)
  Alcotest.(check int) "family total" 20
    (List.fold_left (fun acc h -> acc + H.count h) 0 series);
  (* counters share the admission logic *)
  for i = 1 to 20 do
    Obs.Metrics.incr
      (Obs.Metrics.counter_labeled "test.labelcap.c"
         (Obs.Labels.v [ ("session", Printf.sprintf "s%02d" i) ]))
  done;
  Alcotest.(check int) "counter overflow series absorbs" 16
    (Obs.Metrics.value_of ("test.labelcap.c" ^ Obs.overflow_suffix))

let ambient_labels_flow_to_engine () =
  H.reset ();
  Obs.set_ambient_labels (Obs.Labels.v [ ("session", "amb-test") ]);
  Fun.protect ~finally:(fun () -> Obs.set_ambient_labels Obs.Labels.empty)
  @@ fun () ->
  let sheet = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation in
  (match Engine.apply sheet Op.Dedup with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "dedup refused");
  Alcotest.(check int) "one labeled sample" 1
    (H.count
       (H.histogram_labeled Obs.h_engine_apply
          (Obs.Labels.v [ ("session", "amb-test") ])));
  H.reset ()

(* ---------- SLOs ---------- *)

let slo_latency_and_rate () =
  Obs.Slo.reset_declarations ();
  Fun.protect ~finally:(fun () -> Obs.Slo.reset_declarations ())
  @@ fun () ->
  H.reset ();
  Obs.Metrics.reset ();
  Obs.Slo.declare
    (Obs.Slo.Latency
       { slo_name = "test-lat"; hist = "test.slo"; phi = 0.99;
         under_ms = 1. });
  Obs.Slo.declare
    (Obs.Slo.Error_rate
       { slo_name = "test-rate"; errors = "test.slo.err";
         total = "test.slo.tot"; under = 0.01 });
  (* empty series: vacuous pass, reported as no data *)
  let vacuous =
    List.find
      (fun v -> v.Obs.Slo.v_slo = "test-lat")
      (Obs.Slo.evaluate ())
  in
  Alcotest.(check bool) "no data passes" true vacuous.Obs.Slo.v_ok;
  Alcotest.(check int) "no data count" 0 vacuous.Obs.Slo.v_count;
  (* violate the latency target: 5 ms against a 1 ms budget *)
  H.record (H.histogram "test.slo") 5_000_000;
  (* violate the rate target: 5 % against 1 % *)
  let err = Obs.Metrics.counter "test.slo.err" in
  let tot = Obs.Metrics.counter "test.slo.tot" in
  Obs.Metrics.incr ~by:5 err;
  Obs.Metrics.incr ~by:100 tot;
  let verdicts = Obs.Slo.evaluate () in
  let find name = List.find (fun v -> v.Obs.Slo.v_slo = name) verdicts in
  Alcotest.(check bool) "latency target fails" false (find "test-lat").Obs.Slo.v_ok;
  Alcotest.(check bool) "rate target fails" false (find "test-rate").Obs.Slo.v_ok;
  Alcotest.(check bool) "overall not ok" false (Obs.Slo.ok ());
  Alcotest.(check bool) "summary says FAILING" true
    (contains (Obs.Slo.summary ()) "FAILING");
  Alcotest.(check bool) "render flags FAIL" true
    (contains (Obs.Slo.render ()) "FAIL");
  (* JSON schema + round-trip *)
  let j = Obs.Slo.to_json () in
  (match J.member "schema" j with
  | Some (J.String "sheetscope-slo/v1") -> ()
  | _ -> Alcotest.fail "missing slo schema tag");
  (match J.parse (J.to_string j) with
  | Ok j' -> Alcotest.(check bool) "slo json round-trips" true (J.equal j j')
  | Error msg -> Alcotest.fail msg);
  H.reset ();
  Obs.Metrics.reset ()

let slo_covers_labeled_series () =
  Obs.Slo.reset_declarations ();
  H.reset ();
  (* a fast base series but a slow labeled one: the labeled series
     must be evaluated on its own and fail the 50 ms default *)
  H.record (H.histogram Obs.h_engine_apply) 1_000;
  H.record
    (H.histogram_labeled Obs.h_engine_apply
       (Obs.Labels.v [ ("session", "slow-tenant") ]))
    90_000_000;
  let verdicts = Obs.Slo.evaluate () in
  let labeled =
    List.find_opt
      (fun v -> contains v.Obs.Slo.v_series "session=slow-tenant")
      verdicts
  in
  (match labeled with
  | None -> Alcotest.fail "labeled series not evaluated"
  | Some v ->
      Alcotest.(check bool) "slow tenant flagged" false v.Obs.Slo.v_ok);
  let base =
    List.find
      (fun v -> v.Obs.Slo.v_series = Obs.h_engine_apply)
      verdicts
  in
  Alcotest.(check bool) "fast base still ok" true base.Obs.Slo.v_ok;
  H.reset ()

let slo_defaults_present () =
  Obs.Slo.reset_declarations ();
  let names = List.map Obs.Slo.def_name (Obs.Slo.definitions ()) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " declared") true (List.mem n names))
    [ "engine-apply-p99"; "materialize-full-p99"; "sql-run-p99";
      "engine-error-rate" ]

(* ---------- env warnings ---------- *)

let env_warn_once_slow_ms () =
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "SHEETSCOPE_SLOW_MS" "100";
      Obs.Env.reset_warnings_for_tests ();
      Obs.reload_env_config ();
      Obs.Flightrec.clear ())
  @@ fun () ->
  Unix.putenv "SHEETSCOPE_SLOW_MS" "not-a-number";
  Obs.Env.reset_warnings_for_tests ();
  Obs.Flightrec.clear ();
  Obs.reload_env_config ();
  Alcotest.(check int) "fell back to the 100 ms default" 100_000_000
    (Obs.Flightrec.slow_threshold_ns ());
  let warnings () =
    List.filter
      (fun e -> e.Obs.Flightrec.f_kind = "env-warning")
      (Obs.Flightrec.events ())
  in
  (match warnings () with
  | [ w ] ->
      Alcotest.(check bool) "names the variable" true
        (contains w.Obs.Flightrec.f_label "SHEETSCOPE_SLOW_MS");
      Alcotest.(check bool) "names the rejected value" true
        (contains w.Obs.Flightrec.f_label "not-a-number");
      Alcotest.(check bool) "names the fallback" true
        (contains w.Obs.Flightrec.f_label "default")
  | ws ->
      Alcotest.fail
        (Printf.sprintf "expected exactly 1 warning, got %d"
           (List.length ws)));
  (* warn-once: reloading again must not repeat the event *)
  Obs.reload_env_config ();
  Alcotest.(check int) "still one warning" 1 (List.length (warnings ()));
  (* a valid value takes effect without warning *)
  Unix.putenv "SHEETSCOPE_SLOW_MS" "5";
  Obs.Env.reset_warnings_for_tests ();
  Obs.Flightrec.clear ();
  Obs.reload_env_config ();
  Alcotest.(check int) "valid value applied" 5_000_000
    (Obs.Flightrec.slow_threshold_ns ());
  Alcotest.(check int) "no warning for a valid value" 0
    (List.length (warnings ()))

let env_warn_once_domains () =
  let module Par = Sheet_rel.Par in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "SHEETMUSIQ_DOMAINS" "1";
      Par.set_domain_count 1;
      Obs.Env.reset_warnings_for_tests ();
      Obs.Flightrec.clear ())
  @@ fun () ->
  Unix.putenv "SHEETMUSIQ_DOMAINS" "0";
  Obs.Env.reset_warnings_for_tests ();
  Obs.Flightrec.clear ();
  Par.reset_domain_count_for_tests ();
  let resolved = Par.domain_count () in
  Alcotest.(check int) "fell back to recommended_domain_count"
    (max 1 (Domain.recommended_domain_count ()))
    resolved;
  let warnings =
    List.filter
      (fun e -> e.Obs.Flightrec.f_kind = "env-warning")
      (Obs.Flightrec.events ())
  in
  (match warnings with
  | [ w ] ->
      Alcotest.(check bool) "names the variable" true
        (contains w.Obs.Flightrec.f_label "SHEETMUSIQ_DOMAINS")
  | ws ->
      Alcotest.fail
        (Printf.sprintf "expected exactly 1 warning, got %d"
           (List.length ws)));
  (* a valid value resolves without warning *)
  Unix.putenv "SHEETMUSIQ_DOMAINS" "3";
  Obs.Env.reset_warnings_for_tests ();
  Obs.Flightrec.clear ();
  Par.reset_domain_count_for_tests ();
  Alcotest.(check int) "valid value applied" 3 (Par.domain_count ());
  Alcotest.(check int) "no warning" 0
    (List.length
       (List.filter
          (fun e -> e.Obs.Flightrec.f_kind = "env-warning")
          (Obs.Flightrec.events ())))

(* ---------- deterministic series ordering ---------- *)

let series_ordering_pinned () =
  Obs.Metrics.reset ();
  Obs.Histogram.reset ();
  let lab t = Obs.Labels.v [ ("t", t) ] in
  (* admission order deliberately scrambled: labeled before base,
     second family first *)
  Obs.Metrics.incr (Obs.Metrics.counter_labeled "zz.order.ops" (lab "b"));
  Obs.Metrics.incr (Obs.Metrics.counter "zz.order.ops");
  Obs.Metrics.incr (Obs.Metrics.counter_labeled "zz.order.ops" (lab "a"));
  Obs.Metrics.incr (Obs.Metrics.counter_labeled "zz.order.aaa" (lab "z"));
  Obs.Metrics.incr (Obs.Metrics.counter "zz.order.aaa");
  let mine =
    List.filter
      (fun n -> Obs.series_base n = "zz.order.ops"
                || Obs.series_base n = "zz.order.aaa")
      (List.map fst (Obs.Metrics.snapshot ()))
  in
  Alcotest.(check (list string))
    "counters: families sorted, base before its labels"
    [ "zz.order.aaa"; "zz.order.aaa{t=z}"; "zz.order.ops";
      "zz.order.ops{t=a}"; "zz.order.ops{t=b}" ]
    mine;
  Obs.Histogram.record
    (Obs.Histogram.histogram_labeled "zz.order.lat" (lab "b")) 10;
  Obs.Histogram.record (Obs.Histogram.histogram "zz.order.lat") 10;
  Obs.Histogram.record
    (Obs.Histogram.histogram_labeled "zz.order.lat" (lab "a")) 10;
  let mine =
    List.filter
      (fun n -> Obs.series_base n = "zz.order.lat")
      (List.map fst (Obs.Histogram.counts_snapshot ()))
  in
  Alcotest.(check (list string))
    "histograms: base before its labels"
    [ "zz.order.lat"; "zz.order.lat{t=a}"; "zz.order.lat{t=b}" ]
    mine;
  Obs.Metrics.reset ();
  Obs.Histogram.reset ()

(* ---------- execution profiles (Sheetdoctor) ---------- *)

module P = Obs.Profile

let profile_region_basic () =
  P.clear ();
  P.reset_stack_for_tests ();
  Obs.set_ambient_labels (Obs.Labels.v [ ("session", "ptest") ]);
  Fun.protect
    ~finally:(fun () -> Obs.set_ambient_labels Obs.Labels.empty)
  @@ fun () ->
  P.enter ~kind:"materialize" ~uid:42;
  P.note_cache "miss";
  (* a same-uid re-entry (full under a full_cached miss) nests *)
  P.enter ~kind:"materialize" ~uid:42;
  P.note_strategy "full-replay";
  P.note_compiled "Price > 3";
  P.note_fallback ~pred:"f(Price)" ~reason:"non-total subtree f(Price)";
  P.note_node ~rows_in:10 ~rows_out:5 ~kind:"stratum" ~label:"stratum 0"
    ~time_ns:1_000 ~alloc_bytes:64. ();
  P.commit ~rows_out:5;
  Alcotest.(check int) "nested commit records nothing" 0 (P.length ());
  Alcotest.(check int) "outer region still open" 1 (P.open_regions ());
  P.commit ~rows_out:5;
  Alcotest.(check int) "balanced" 0 (P.open_regions ());
  match P.records () with
  | [ r ] ->
      Alcotest.(check int) "uid" 42 r.P.p_uid;
      Alcotest.(check string) "kind" "materialize" r.P.p_kind;
      Alcotest.(check int) "rows" 5 r.P.p_rows_out;
      Alcotest.(check string) "cache" "miss" r.P.p_cache;
      Alcotest.(check string) "strategy (from the nested enter)"
        "full-replay" r.P.p_strategy;
      Alcotest.(check string) "session stamp" "{session=ptest}" r.P.p_session;
      Alcotest.(check (list string)) "compiled" [ "Price > 3" ] r.P.p_compiled;
      Alcotest.(check (list (pair string string)))
        "fallbacks"
        [ ("f(Price)", "non-total subtree f(Price)") ]
        r.P.p_fallbacks;
      (match r.P.p_nodes with
      | [ n ] ->
          Alcotest.(check string) "node label" "stratum 0" n.P.n_label;
          Alcotest.(check int) "node rows out" 5 n.P.n_rows_out
      | ns ->
          Alcotest.failf "expected 1 node, got %d" (List.length ns))
  | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs)

let profile_ring_bounded () =
  P.clear ();
  P.reset_stack_for_tests ();
  P.set_capacity 4;
  Fun.protect
    ~finally:(fun () ->
      P.set_capacity P.default_cap;
      P.clear ())
  @@ fun () ->
  for i = 1 to 10 do
    P.enter ~kind:"plan" ~uid:i;
    P.commit ~rows_out:i
  done;
  Alcotest.(check int) "length capped" 4 (P.length ());
  Alcotest.(check int) "dropped counted" 6 (P.dropped ());
  Alcotest.(check (list int)) "newest survive, oldest first"
    [ 7; 8; 9; 10 ]
    (List.map (fun r -> r.P.p_uid) (P.records ()));
  (match P.last () with
  | Some r -> Alcotest.(check int) "last is newest" 10 r.P.p_uid
  | None -> Alcotest.fail "no last record");
  Alcotest.(check bool) "find hits a survivor" true (P.find ~uid:9 <> None);
  Alcotest.(check bool) "find misses an evictee" true (P.find ~uid:3 = None);
  P.clear ();
  Alcotest.(check int) "clear resets length" 0 (P.length ());
  Alcotest.(check int) "clear resets dropped" 0 (P.dropped ())

let profile_disabled_inert () =
  P.clear ();
  P.reset_stack_for_tests ();
  P.set_enabled false;
  Fun.protect ~finally:(fun () -> P.set_enabled true) @@ fun () ->
  P.enter ~kind:"plan" ~uid:7;
  P.note_cache "exact";
  P.note_node ~kind:"x" ~label:"y" ~time_ns:1 ~alloc_bytes:0. ();
  P.commit ~rows_out:1;
  Alcotest.(check int) "no record" 0 (P.length ());
  Alcotest.(check int) "balanced" 0 (P.open_regions ())

let profile_json_round_trip () =
  P.clear ();
  P.reset_stack_for_tests ();
  P.enter ~kind:"materialize" ~uid:1;
  P.note_cache "subsumed";
  P.note_node ~rows_in:100 ~rows_out:7 ~path:"columnar" ~kind:"filter"
    ~label:"Price < 9000" ~time_ns:123 ~alloc_bytes:1024.5 ();
  P.commit ~rows_out:7;
  P.enter ~kind:"plan" ~uid:2;
  P.note_fallback ~pred:"a / b = 1" ~reason:"non-total subtree a / b";
  P.commit ~rows_out:(-1);
  (* export parses back through the bundled parser, exactly *)
  (match J.parse (J.to_string (P.to_json ())) with
  | Error msg -> Alcotest.fail ("export does not parse: " ^ msg)
  | Ok parsed -> (
      match P.of_json parsed with
      | Error msg -> Alcotest.fail msg
      | Ok rs ->
          Alcotest.(check bool) "records round-trip" true
            (rs = P.records ())));
  (* malformed input answers Error, never an exception *)
  List.iter
    (fun j ->
      match P.of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "malformed input accepted")
    [ J.Null; J.Obj []; J.Obj [ ("schema", J.String "nope") ];
      J.Obj
        [ ("schema", J.String "sheetscope-profile/v1");
          ("profiles", J.String "not-a-list") ] ];
  P.clear ()

let profile_in_chrome_trace () =
  with_sink Obs.Memory @@ fun () ->
  P.clear ();
  P.enter ~kind:"plan" ~uid:3;
  P.commit ~rows_out:0;
  (match J.parse (Obs.chrome_trace_string ()) with
  | Error msg -> Alcotest.fail msg
  | Ok j -> (
      match J.member "otherData" j with
      | None -> Alcotest.fail "no otherData"
      | Some od -> (
          match J.member "profiles" od with
          | Some block ->
              Alcotest.(check bool) "schema tagged" true
                (J.member "schema" block
                = Some (J.String "sheetscope-profile/v1"))
          | None -> Alcotest.fail "no profile block in otherData")));
  P.clear ();
  Obs.clear_events ()

let env_warn_once_profile_cap () =
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "SHEETSCOPE_PROFILE_CAP" (string_of_int P.default_cap);
      Obs.Env.reset_warnings_for_tests ();
      Obs.reload_env_config ();
      Obs.Flightrec.clear ();
      P.clear ())
  @@ fun () ->
  Unix.putenv "SHEETSCOPE_PROFILE_CAP" "lots";
  Obs.Env.reset_warnings_for_tests ();
  Obs.Flightrec.clear ();
  Obs.reload_env_config ();
  (* the invalid value kept the 64-record default *)
  P.clear ();
  P.reset_stack_for_tests ();
  for i = 1 to P.default_cap + 5 do
    P.enter ~kind:"plan" ~uid:i;
    P.commit ~rows_out:0
  done;
  Alcotest.(check int) "fell back to the default capacity" P.default_cap
    (P.length ());
  let warnings () =
    List.filter
      (fun e -> e.Obs.Flightrec.f_kind = "env-warning")
      (Obs.Flightrec.events ())
  in
  (match warnings () with
  | [ w ] ->
      Alcotest.(check bool) "names the variable" true
        (contains w.Obs.Flightrec.f_label "SHEETSCOPE_PROFILE_CAP");
      Alcotest.(check bool) "names the rejected value" true
        (contains w.Obs.Flightrec.f_label "lots");
      Alcotest.(check bool) "names the fallback" true
        (contains w.Obs.Flightrec.f_label "default")
  | ws ->
      Alcotest.fail
        (Printf.sprintf "expected exactly 1 warning, got %d"
           (List.length ws)));
  (* warn-once: reloading again must not repeat the event *)
  Obs.reload_env_config ();
  Alcotest.(check int) "still one warning" 1 (List.length (warnings ()));
  (* a valid value takes effect without warning *)
  Unix.putenv "SHEETSCOPE_PROFILE_CAP" "8";
  Obs.Env.reset_warnings_for_tests ();
  Obs.Flightrec.clear ();
  Obs.reload_env_config ();
  P.clear ();
  for i = 1 to 12 do
    P.enter ~kind:"plan" ~uid:i;
    P.commit ~rows_out:0
  done;
  Alcotest.(check int) "valid value applied" 8 (P.length ());
  Alcotest.(check int) "no warning for a valid value" 0
    (List.length (warnings ()))

(* ---------- GC gauges ---------- *)

let gc_gauges_sampled () =
  with_sink Obs.Memory @@ fun () ->
  Obs.clear_events ();
  Obs.with_span "gc-probe" (fun () ->
      ignore (Sys.opaque_identity (List.init 10_000 string_of_int)));
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " sampled") true (Obs.Metrics.value_of k > 0))
    [ Obs.k_gc_minor; Obs.k_gc_heap ];
  (* the report and the trace carry them *)
  Alcotest.(check bool) "gauge in metrics_report" true
    (contains (Obs.metrics_report ()) Obs.k_gc_heap);
  (match J.parse (Obs.chrome_trace_string ()) with
  | Ok j -> (
      match J.member "otherData" j with
      | Some od -> (
          match J.member "metrics" od with
          | Some m ->
              Alcotest.(check bool) "gauge in trace export" true
                (J.member Obs.k_gc_heap m <> None)
          | None -> Alcotest.fail "no metrics in otherData")
      | None -> Alcotest.fail "no otherData")
  | Error msg -> Alcotest.fail msg);
  Obs.clear_events ()

(* ---------- emit depth ---------- *)

let emit_depth_explicit () =
  with_sink Obs.Memory @@ fun () ->
  Obs.clear_events ();
  let t = Obs.now_ns () in
  Obs.emit ~depth:3 ~start_ns:t ~dur_ns:5 "explicit";
  Obs.emit ~start_ns:t ~dur_ns:5 "implicit";
  (match Obs.events () with
  | [ a; b ] ->
      Alcotest.(check int) "explicit depth honored" 3 a.Obs.depth;
      Alcotest.(check int) "implicit depth is current nesting" 0 b.Obs.depth
  | evs ->
      Alcotest.fail
        (Printf.sprintf "expected 2 events, got %d" (List.length evs)));
  Alcotest.(check int) "current_depth at top level" 0 (Obs.current_depth ());
  Obs.clear_events ()

let () =
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "sheet_obs"
    [ ("equivalence",
       [ prop instrumented_equals_plain_off;
         prop instrumented_equals_plain_memory;
         prop profile_chain_rows ]);
      ("metrics",
       [ prop counters_monotone;
         Alcotest.test_case "snapshot carries well-known names" `Quick
           counters_snapshot ]);
      ("cache",
       [ Alcotest.test_case "stats deterministic around reset" `Quick
           cache_stats_deterministic;
         Alcotest.test_case "seeding counts and serves hits" `Quick
           seed_counts_in_stats ]);
      ("histograms",
       [ Alcotest.test_case "bucket boundaries well formed" `Quick
           boundaries_well_formed;
         prop hist_exactness;
         prop hist_merge_commutative;
         prop hist_merge_associative;
         prop hist_merge_is_concat;
         prop hist_merge_zero_identity;
         prop hist_percentile_bounds;
         Alcotest.test_case "negative samples clamp to 0" `Quick
           hist_clamps_negative;
         Alcotest.test_case "empty percentile is 0" `Quick
           hist_empty_percentile;
         Alcotest.test_case "sinks-off record cost" `Quick
           record_cost_comparable;
         Alcotest.test_case "snapshot + JSON export" `Quick
           hist_snapshot_and_json ]);
      ("clock",
       [ Alcotest.test_case "backwards wall clock cannot go negative"
           `Quick clock_never_negative ]);
      ("flightrec",
       [ Alcotest.test_case "bounded ring evicts oldest" `Quick
           flightrec_ring;
         Alcotest.test_case "JSON round-trips" `Quick
           flightrec_json_round_trip;
         Alcotest.test_case "slow threshold knob" `Quick
           flightrec_threshold;
         Alcotest.test_case "render limit keeps newest" `Quick
           flightrec_render_limit;
         Alcotest.test_case "drain isolates concurrent readers" `Quick
           flightrec_drain_isolation ]);
      ("trace",
       [ Alcotest.test_case "chrome export round-trips" `Quick
           trace_round_trip;
         Alcotest.test_case "clear_events empties the ring" `Quick
           ring_clears;
         Alcotest.test_case "otherData carries ring health" `Quick
           trace_other_data_health;
         Alcotest.test_case "metrics_report surfaces everything" `Quick
           metrics_report_surfaces ]);
      ("sharding",
       [ Alcotest.test_case "4-domain hammer exact, sink off" `Quick
           (sharded_hammer Obs.Off);
         Alcotest.test_case "4-domain hammer exact, sink memory" `Quick
           (sharded_hammer Obs.Memory);
         Alcotest.test_case "emit depth explicit vs ambient" `Quick
           emit_depth_explicit ]);
      ("labels",
       [ Alcotest.test_case "normalization and series names" `Quick
           labels_normalize;
         Alcotest.test_case "cardinality bounded by the cap" `Quick
           label_cardinality_bounded;
         Alcotest.test_case "ambient labels reach engine.apply" `Quick
           ambient_labels_flow_to_engine ]);
      ("slo",
       [ Alcotest.test_case "latency and rate verdicts" `Quick
           slo_latency_and_rate;
         Alcotest.test_case "labeled series evaluated per tenant" `Quick
           slo_covers_labeled_series;
         Alcotest.test_case "shipped defaults declared" `Quick
           slo_defaults_present ]);
      ("env",
       [ Alcotest.test_case "SHEETSCOPE_SLOW_MS warns once" `Quick
           env_warn_once_slow_ms;
         Alcotest.test_case "SHEETMUSIQ_DOMAINS warns once" `Quick
           env_warn_once_domains;
         Alcotest.test_case "SHEETSCOPE_PROFILE_CAP warns once" `Quick
           env_warn_once_profile_cap ]);
      ("ordering",
       [ Alcotest.test_case "series sorted by (base, labels)" `Quick
           series_ordering_pinned ]);
      ("profile",
       [ Alcotest.test_case "region lifecycle and notes" `Quick
           profile_region_basic;
         Alcotest.test_case "bounded ring with drop counter" `Quick
           profile_ring_bounded;
         Alcotest.test_case "disabled collection is inert" `Quick
           profile_disabled_inert;
         Alcotest.test_case "JSON round-trips, parser total" `Quick
           profile_json_round_trip;
         Alcotest.test_case "chrome trace carries the block" `Quick
           profile_in_chrome_trace ]);
      ("gc",
       [ Alcotest.test_case "gauges sampled at span boundaries" `Quick
           gc_gauges_sampled ]);
      ("json",
       [ Alcotest.test_case "value round-trips" `Quick
           json_round_trip_values;
         Alcotest.test_case "totality and escapes" `Quick
           json_parse_errors ]) ]
