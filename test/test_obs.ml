(* Sheetscope: the instrumentation must never change what a query
   returns, and what it records must be well formed.

   - with the sink off (the default), [Plan.execute_instrumented]
     equals [Plan.execute] equals [Materialize.full] on random query
     states (the generator style of test_props.ml);
   - the same with the Memory sink on, plus: spans balanced, properly
     nested, and interval-consistent;
   - counters are monotone across work; gauges are not counters;
   - the Chrome trace export parses back through Obs_json and
     round-trips;
   - the materialization cache's stats are deterministic around
     [reset_cache];
   - Obs_json itself: totality and exact round-trips on awkward
     values. *)

open Sheet_rel
open Sheet_core
module Obs = Sheet_obs.Obs
module J = Sheet_obs.Obs_json

let ( let* ) = QCheck.Gen.( let* ) [@@warning "-32"]

(* ---------- random query states over the cars schema ---------- *)

let models = [ "Jetta"; "Civic"; "Accord" ]
let conditions = [ "Excellent"; "Good"; "Fair" ]

let gen_base_relation : Relation.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 0 30 in
  let* rows =
    list_repeat n
      (let* id = int_range 1 999 in
       let* model = oneofl models in
       let* price = int_range 8000 30000 in
       let* year = int_range 2000 2008 in
       let* mileage = int_range 0 150000 in
       let* condition = oneofl conditions in
       return
         (Row.of_list
            [ Value.Int id; Value.String model; Value.Int price;
              Value.Int year; Value.Int mileage; Value.String condition ]))
  in
  return (Relation.make Sample_cars.schema rows)

let numeric_cols = [ "Price"; "Year"; "Mileage" ]
let string_cols = [ "Model"; "Condition" ]

let gen_pred : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [ (let* col = oneofl numeric_cols in
       let* op = oneofl [ Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge; Expr.Eq ] in
       let* v = int_range 1990 120000 in
       return (Expr.Cmp (op, Expr.Col col, Expr.Const (Value.Int v))));
      (let* col = oneofl string_cols in
       let* v = oneofl (models @ conditions) in
       return (Expr.Cmp (Expr.Eq, Expr.Col col, Expr.Const (Value.String v))))
    ]

let gen_unary_op ~tag : Op.t QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [ (let* p = gen_pred in
       return (Op.Select p));
      (let* col = oneofl (numeric_cols @ string_cols) in
       return (Op.Project col));
      (let* fn = oneofl [ Expr.Sum; Expr.Avg; Expr.Min; Expr.Max ] in
       let* col = oneofl numeric_cols in
       return
         (Op.Aggregate
            { fn; col = Some col; level = 1;
              as_name = Some (Printf.sprintf "agg_%s" tag) }));
      (let* a = oneofl numeric_cols in
       let* b = oneofl numeric_cols in
       return
         (Op.Formula
            { name = Some (Printf.sprintf "fc_%s" tag);
              expr = Expr.Arith (Expr.Add, Expr.Col a, Expr.Col b) }));
      return Op.Dedup;
      (let* col = oneofl (string_cols @ [ "Year" ]) in
       let* dir = oneofl [ Grouping.Asc; Grouping.Desc ] in
       return (Op.Group { basis = [ col ]; dir }));
      (let* col = oneofl (numeric_cols @ string_cols) in
       let* dir = oneofl [ Grouping.Asc; Grouping.Desc ] in
       return (Op.Order { attr = col; dir; level = 1 })) ]

(* a random sheet: ops that fail a guard are simply skipped, so every
   generated value yields a usable query state *)
let gen_sheet : Spreadsheet.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* rel = gen_base_relation in
  let* ops =
    list_size (int_range 0 6)
      (let* i = int_range 0 999 in
       gen_unary_op ~tag:(string_of_int i))
  in
  return
    (List.fold_left
       (fun sheet op ->
         match Engine.apply sheet op with
         | Ok sheet -> sheet
         | Error _ -> sheet)
       (Spreadsheet.of_relation ~name:"t" rel)
       ops)

let sheet_arbitrary =
  QCheck.make
    ~print:(fun sheet -> Render.status_line sheet)
    gen_sheet

(* ---------- instrumented = plain = materializer ---------- *)

let with_sink sink f =
  let old = Obs.sink () in
  Obs.set_sink sink;
  Fun.protect ~finally:(fun () -> Obs.set_sink old) f

let instrumented_equals_plain_off =
  QCheck.Test.make ~count:1000
    ~name:"sink off: execute_instrumented = execute = Materialize.full"
    sheet_arbitrary
    (fun sheet ->
      with_sink Obs.Off @@ fun () ->
      let plan = Plan.of_sheet sheet in
      let plain = Plan.execute plan in
      let rel, profile = Plan.execute_instrumented plan in
      Relation.equal rel plain
      && Relation.equal rel (Materialize.full sheet)
      && profile.Plan.p_rows_out = Relation.cardinality rel)

let instrumented_equals_plain_memory =
  QCheck.Test.make ~count:300
    ~name:"memory sink: same results, spans balanced and nested"
    sheet_arbitrary
    (fun sheet ->
      with_sink Obs.Memory @@ fun () ->
      Obs.clear_events ();
      let plan = Plan.of_sheet sheet in
      let rel, _profile = Plan.execute_instrumented plan in
      let ok_result = Relation.equal rel (Materialize.full sheet) in
      ok_result
      && Obs.open_spans () = 0
      && Obs.nesting_ok ()
      && Obs.events_well_formed (Obs.events ()))

let profile_chain_rows =
  QCheck.Test.make ~count:200
    ~name:"profile chain: every node reports non-negative rows and time"
    sheet_arbitrary
    (fun sheet ->
      let _rel, profile =
        Plan.execute_instrumented (Plan.of_sheet sheet)
      in
      let rec ok (p : Plan.profile) =
        p.Plan.p_rows_out >= 0
        && p.Plan.p_time_ns >= 0
        && p.Plan.p_label <> ""
        && (match p.Plan.p_child with Some c -> ok c | None -> true)
      in
      ok profile && Plan.profile_total_ns profile >= 0)

(* ---------- counters ---------- *)

let counter_names =
  [ Obs.k_engine_ops; Obs.k_engine_errors; Obs.k_cache_hits;
    Obs.k_cache_misses; Obs.k_cache_evictions; Obs.k_cache_seeds;
    Obs.k_full_replays; Obs.k_incremental_derivations;
    Obs.k_incremental_fallbacks; Obs.k_plan_nodes; Obs.k_plan_rows_in;
    Obs.k_plan_rows_out; Obs.k_sql_translations;
    Obs.k_sql_inverse_translations; Obs.k_sql_executions ]

let counters_monotone =
  QCheck.Test.make ~count:200
    ~name:"counters only grow across engine + plan work"
    sheet_arbitrary
    (fun sheet ->
      let before =
        List.map (fun n -> (n, Obs.Metrics.value_of n)) counter_names
      in
      ignore (Plan.execute_instrumented (Plan.of_sheet sheet));
      ignore (Engine.apply sheet Op.Dedup);
      List.for_all
        (fun (n, v0) -> Obs.Metrics.value_of n >= v0)
        before)

let counters_snapshot () =
  let snap = Obs.Metrics.snapshot () in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (n ^ " present") true
        (List.mem_assoc n snap))
    counter_names;
  (* the typed record agrees with the registry *)
  let stats = Obs.core_stats () in
  Alcotest.(check int) "engine_ops" (Obs.Metrics.value_of Obs.k_engine_ops)
    stats.Obs.engine_ops;
  Alcotest.(check int) "plan_nodes" (Obs.Metrics.value_of Obs.k_plan_nodes)
    stats.Obs.plan_nodes

(* ---------- cache stats ---------- *)

let cache_stats_deterministic () =
  Materialize.reset_cache ();
  let s0 = Materialize.cache_stats () in
  Alcotest.(check int) "hits zero" 0 s0.Materialize.hits;
  Alcotest.(check int) "misses zero" 0 s0.Materialize.misses;
  Alcotest.(check int) "entries zero" 0 s0.Materialize.entries;
  let sheet = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation in
  let r1 = Materialize.full_cached sheet in
  let r2 = Materialize.full_cached sheet in
  Alcotest.(check bool) "same relation" true (Relation.equal r1 r2);
  let s = Materialize.cache_stats () in
  Alcotest.(check int) "one miss" 1 s.Materialize.misses;
  Alcotest.(check int) "one hit" 1 s.Materialize.hits;
  Alcotest.(check int) "one entry" 1 s.Materialize.entries;
  Alcotest.(check int) "no eviction" 0 s.Materialize.evictions;
  Materialize.reset_cache ();
  let s = Materialize.cache_stats () in
  Alcotest.(check int) "reset misses" 0 s.Materialize.misses;
  Alcotest.(check int) "reset entries" 0 s.Materialize.entries

let seed_counts_in_stats () =
  Materialize.reset_cache ();
  let sheet = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation in
  Materialize.seed_cache sheet (Materialize.full sheet);
  let s = Materialize.cache_stats () in
  Alcotest.(check int) "one seed" 1 s.Materialize.seeds;
  Alcotest.(check int) "one entry" 1 s.Materialize.entries;
  (* the seeded value is served back without a miss *)
  ignore (Materialize.full_cached sheet);
  let s = Materialize.cache_stats () in
  Alcotest.(check int) "hit on seeded" 1 s.Materialize.hits;
  Alcotest.(check int) "no miss" 0 s.Materialize.misses

(* ---------- chrome trace export ---------- *)

let trace_round_trip () =
  with_sink Obs.Memory @@ fun () ->
  Obs.clear_events ();
  let sheet = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation in
  let sheet =
    match
      Engine.apply sheet
        (Op.Select
           (Expr.Cmp (Expr.Lt, Expr.Col "Price", Expr.Const (Value.Int 20000))))
    with
    | Ok s -> s
    | Error _ -> Alcotest.fail "select refused"
  in
  ignore (Materialize.full sheet);
  ignore (Plan.execute_instrumented (Plan.of_sheet sheet));
  let text = Obs.chrome_trace_string () in
  match J.parse text with
  | Error msg -> Alcotest.fail ("trace does not parse: " ^ msg)
  | Ok v -> (
      (match J.member "traceEvents" v with
      | Some (J.List (_ :: _)) -> ()
      | _ -> Alcotest.fail "no traceEvents");
      match J.parse (J.to_string v) with
      | Ok v' ->
          Alcotest.(check bool) "round-trips" true (J.equal v v')
      | Error msg -> Alcotest.fail ("re-parse failed: " ^ msg))

let ring_clears () =
  with_sink Obs.Memory @@ fun () ->
  Obs.clear_events ();
  ignore
    (Materialize.full
       (Spreadsheet.of_relation ~name:"cars" Sample_cars.relation));
  Alcotest.(check bool) "recorded" true (Obs.events () <> []);
  Obs.clear_events ();
  Alcotest.(check int) "empty" 0 (List.length (Obs.events ()))

(* ---------- Obs_json ---------- *)

let json_round_trip_values () =
  let cases =
    [ J.Null; J.Bool true; J.Bool false; J.Int 0; J.Int (-42);
      J.Int max_int; J.Float 0.1; J.Float (-1e300); J.Float 1.5;
      J.String ""; J.String "a\"b\\c\nd\te";
      J.String "caf\xc3\xa9";  (* UTF-8 passes through *)
      J.List []; J.Obj [];
      J.Obj
        [ ("k", J.List [ J.Int 1; J.Float 2.5; J.String "x"; J.Null ]);
          ("nested", J.Obj [ ("deep", J.List [ J.Obj [] ]) ]) ] ]
  in
  List.iter
    (fun v ->
      match J.parse (J.to_string v) with
      | Ok v' ->
          Alcotest.(check bool)
            (J.to_string v ^ " round-trips")
            true (J.equal v v')
      | Error msg -> Alcotest.fail (J.to_string v ^ ": " ^ msg))
    cases;
  (* floats keep their type: 2.0 must not come back as Int 2 *)
  match J.parse (J.to_string (J.Float 2.0)) with
  | Ok (J.Float _) -> ()
  | Ok _ -> Alcotest.fail "float decayed to another constructor"
  | Error msg -> Alcotest.fail msg

let json_parse_errors () =
  List.iter
    (fun s ->
      match J.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s))
    [ ""; "{"; "["; "tru"; "nul"; "{\"a\":}"; "[1,]"; "\"unterminated";
      "{\"a\" 1}"; "01x"; "- 1"; "\xff" ];
  (* escapes and unicode *)
  (match J.parse {|"Aé😀"|} with
  | Ok (J.String s) ->
      Alcotest.(check string) "unicode escapes" "A\xc3\xa9\xf0\x9f\x98\x80" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape parse");
  (* depth guard: deeply nested input must fail, not overflow *)
  let deep = String.concat "" (List.init 2000 (fun _ -> "[")) in
  match J.parse deep with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbounded depth accepted"

let () =
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "sheet_obs"
    [ ("equivalence",
       [ prop instrumented_equals_plain_off;
         prop instrumented_equals_plain_memory;
         prop profile_chain_rows ]);
      ("metrics",
       [ prop counters_monotone;
         Alcotest.test_case "snapshot carries well-known names" `Quick
           counters_snapshot ]);
      ("cache",
       [ Alcotest.test_case "stats deterministic around reset" `Quick
           cache_stats_deterministic;
         Alcotest.test_case "seeding counts and serves hits" `Quick
           seed_counts_in_stats ]);
      ("trace",
       [ Alcotest.test_case "chrome export round-trips" `Quick
           trace_round_trip;
         Alcotest.test_case "clear_events empties the ring" `Quick
           ring_clears ]);
      ("json",
       [ Alcotest.test_case "value round-trips" `Quick
           json_round_trip_values;
         Alcotest.test_case "totality and escapes" `Quick
           json_parse_errors ]) ]
