(* Sheetserve tests: wire-protocol totality and round-trips, server
   liveness on garbage input, admission control, per-session rate
   caps, concurrent-vs-serial determinism (rows, order, final uids),
   and the shared semantic cache hammered from many threads. *)

open Sheet_rel
open Sheet_core
open Sheet_serve
module Model = Sheet_study.Sheetmusiq_model

(* ---------- generators ---------- *)

let gen_value =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) int;
        map (fun f -> Value.Float f) (float_range (-1e12) 1e12);
        map (fun s -> Value.String s) (string_size (int_bound 12));
        map (fun d -> Value.Date d) (int_range (-100000) 100000);
      ])

let gen_vtype =
  QCheck.Gen.oneofl
    [ Value.TBool; Value.TInt; Value.TFloat; Value.TString; Value.TDate ]

(* strings with control characters, quotes, backslashes, high bytes —
   everything the line framing must survive *)
let gen_nasty_string =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 30))

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> Protocol.Hello s) gen_nasty_string;
        map (fun s -> Protocol.Open s) gen_nasty_string;
        map (fun s -> Protocol.Line s) gen_nasty_string;
        return Protocol.Rows;
        return Protocol.Status;
        return Protocol.Ping;
        return Protocol.Quit;
      ])

let gen_response =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun s a -> Protocol.Welcome { session = s; arena = a })
          gen_nasty_string nat;
        map3
          (fun b u r -> Protocol.Opened { base = b; uid = u; rows = r })
          gen_nasty_string nat nat;
        map2
          (fun u o -> Protocol.Applied { uid = u; output = o })
          nat
          (option gen_nasty_string);
        map3
          (fun u cols rows -> Protocol.Table { uid = u; columns = cols; rows })
          nat
          (small_list (pair gen_nasty_string gen_vtype))
          (small_list (small_list gen_value));
        map3
          (fun s o b ->
            Protocol.Stats { sessions = s; ops = o; busy_rejections = b })
          nat nat nat;
        return Protocol.Pong;
        return Protocol.Bye;
        map2
          (fun b r -> Protocol.Refused { busy = b; reason = r })
          bool gen_nasty_string;
      ])

(* ---------- protocol round-trips and totality ---------- *)

let request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"decode_request (encode_request r) = Ok r"
    (QCheck.make gen_request)
    (fun r ->
      let line = Protocol.encode_request r in
      (not (String.contains line '\n'))
      && Protocol.decode_request line = Ok r)

let response_roundtrip =
  QCheck.Test.make ~count:500
    ~name:"decode_response (encode_response r) = Ok r"
    (QCheck.make gen_response)
    (fun r ->
      let line = Protocol.encode_response r in
      (not (String.contains line '\n'))
      && Protocol.decode_response line = Ok r)

let decode_total =
  QCheck.Test.make ~count:2000 ~name:"decoders are total on arbitrary bytes"
    (QCheck.make QCheck.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 80)))
    (fun s ->
      (match Protocol.decode_request s with Ok _ | Error _ -> true)
      && match Protocol.decode_response s with Ok _ | Error _ -> true)

(* ---------- an in-process server over the cars relation ---------- *)

let cars_lookup name =
  if name = "cars" then Some Sample_cars.relation else None

let expect_welcome = function
  | Protocol.Welcome _ -> ()
  | r -> Alcotest.failf "expected welcome, got %s" (Protocol.encode_response r)

let expect_applied = function
  | Protocol.Applied _ -> ()
  | r -> Alcotest.failf "expected applied, got %s" (Protocol.encode_response r)

(* a connection keeps answering after arbitrary garbage: handle is
   total, so a parse error is a Refused line, never a dead handler *)
let test_garbage_then_ping () =
  let server = Server.create (Server.config cars_lookup) in
  let conn = Server.connect server in
  List.iter
    (fun garbage ->
      match Protocol.decode_response (Server.handle server conn garbage) with
      | Ok (Protocol.Refused { busy = false; _ }) -> ()
      | Ok r ->
          Alcotest.failf "garbage %S answered %s" garbage
            (Protocol.encode_response r)
      | Error e -> Alcotest.failf "undecodable response to garbage: %s" e)
    [ ""; "{"; "not json"; "{\"op\":42}"; "{\"op\":\"warp\"}"; "\xff\xfe" ];
  match
    Protocol.decode_response
      (Server.handle server conn (Protocol.encode_request Protocol.Ping))
  with
  | Ok Protocol.Pong -> ()
  | Ok r ->
      Alcotest.failf "ping after garbage answered %s"
        (Protocol.encode_response r)
  | Error e -> Alcotest.failf "undecodable pong: %s" e

(* the same liveness property over a real socket *)
let test_garbage_over_socket () =
  let server = Server.create (Server.config cars_lookup) in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sheetserve-test-%d.sock" (Unix.getpid ()))
  in
  let listener = Net.listen server ~path in
  Fun.protect ~finally:(fun () -> Net.shutdown listener) @@ fun () ->
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  Unix.connect fd (ADDR_UNIX path);
  let inch = Unix.in_channel_of_descr fd in
  let send line =
    let b = Bytes.of_string (line ^ "\n") in
    ignore (Unix.write fd b 0 (Bytes.length b))
  in
  send "this is not a request";
  (match In_channel.input_line inch with
  | Some line -> (
      match Protocol.decode_response line with
      | Ok (Protocol.Refused { busy = false; _ }) -> ()
      | _ -> Alcotest.failf "garbage answered %S" line)
  | None -> Alcotest.fail "connection dropped on garbage");
  send (Protocol.encode_request Protocol.Ping);
  match In_channel.input_line inch with
  | Some line ->
      Alcotest.(check bool)
        "pong after garbage" true
        (Protocol.decode_response line = Ok Protocol.Pong)
  | None -> Alcotest.fail "connection wedged after garbage"

(* ---------- admission control ---------- *)

let test_admission () =
  let server =
    Server.create (Server.config ~max_sessions:2 cars_lookup)
  in
  let c0 = Server.connect server
  and c1 = Server.connect server
  and c2 = Server.connect server in
  expect_welcome (Server.handle_request server c0 (Protocol.Hello "u0"));
  expect_welcome (Server.handle_request server c1 (Protocol.Hello "u1"));
  (match Server.handle_request server c2 (Protocol.Hello "u2") with
  | Protocol.Refused { busy = true; _ } -> ()
  | r ->
      Alcotest.failf "third session admitted: %s"
        (Protocol.encode_response r));
  (* re-hello of a live session is not a new admission *)
  expect_welcome (Server.handle_request server c0 (Protocol.Hello "u0"));
  Alcotest.(check int) "two live sessions" 2 (Server.session_count server);
  (* quitting frees the slot *)
  (match Server.handle_request server c0 Protocol.Quit with
  | Protocol.Bye -> ()
  | r -> Alcotest.failf "quit answered %s" (Protocol.encode_response r));
  expect_welcome (Server.handle_request server c2 (Protocol.Hello "u2"));
  Alcotest.(check (list string))
    "live clients" [ "u1"; "u2" ]
    (Server.live_clients server)

(* ---------- per-session rate cap ---------- *)

let test_rate_cap () =
  let clock = ref 1000.0 in
  let server =
    Server.create
      (Server.config ~max_ops_per_s:3 ~now:(fun () -> !clock) cars_lookup)
  in
  let conn = Server.connect server in
  expect_welcome (Server.handle_request server conn (Protocol.Hello "u0"));
  (match Server.handle_request server conn (Protocol.Open "cars") with
  | Protocol.Opened _ -> ()
  | r -> Alcotest.failf "open answered %s" (Protocol.encode_response r));
  for _ = 1 to 3 do
    expect_applied
      (Server.handle_request server conn (Protocol.Line "select Price > 0"))
  done;
  (match
     Server.handle_request server conn (Protocol.Line "select Price > 0")
   with
  | Protocol.Refused { busy = true; _ } -> ()
  | r ->
      Alcotest.failf "fourth op in the window admitted: %s"
        (Protocol.encode_response r));
  (* a new window restores the budget *)
  clock := !clock +. 1.5;
  expect_applied
    (Server.handle_request server conn (Protocol.Line "select Price > 0"))

(* ---------- concurrent vs serial determinism ---------- *)

let tpch_catalog =
  lazy
    (Sheet_tpch.Tpch_views.install
       (Sheet_tpch.Tpch_gen.generate { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 }))

type replay = {
  r_arena : int;
  r_uid : int;
  r_columns : (string * Value.vtype) list;
  r_rows : Value.t list list;
}

let test_concurrent_determinism () =
  let catalog = Lazy.force tpch_catalog in
  let server =
    Server.create (Server.config ~max_sessions:16 (Sheet_sql.Catalog.find catalog))
  in
  let tasks = Array.of_list Sheet_tpch.Tpch_tasks.all in
  let n = 8 in
  let task i = tasks.(i mod Array.length tasks) in
  let steps i = Model.op_stream ~seed:7 ~subject:(i + 1) (task i) in
  Materialize.reset_cache ();
  let results : replay option array = Array.make n None in
  let failures = Array.make n None in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            try
              let conn = Server.connect server in
              let arena =
                match
                  Server.handle_request server conn
                    (Protocol.Hello (Printf.sprintf "u%d" i))
                with
                | Protocol.Welcome { arena; _ } -> arena
                | r ->
                    failwith
                      ("hello: " ^ Protocol.encode_response r)
              in
              (match
                 Server.handle_request server conn
                   (Protocol.Open (task i).Sheet_tpch.Tpch_tasks.base)
               with
              | Protocol.Opened _ -> ()
              | r -> failwith ("open: " ^ Protocol.encode_response r));
              List.iter
                (fun (s : Model.step) ->
                  match
                    Server.handle_request server conn (Protocol.Line s.line)
                  with
                  | Protocol.Applied _ -> ()
                  | r ->
                      failwith
                        (s.line ^ ": " ^ Protocol.encode_response r))
                (steps i);
              match Server.handle_request server conn Protocol.Rows with
              | Protocol.Table { uid; columns; rows } ->
                  results.(i) <-
                    Some
                      {
                        r_arena = arena;
                        r_uid = uid;
                        r_columns = columns;
                        r_rows = rows;
                      }
              | r -> failwith ("rows: " ^ Protocol.encode_response r)
            with e -> failures.(i) <- Some (Printexc.to_string e))
          ())
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun i f ->
      match f with
      | Some msg -> Alcotest.failf "client u%d: %s" i msg
      | None -> ())
    failures;
  (* serial ground truth, one session at a time on a cold cache *)
  Materialize.reset_cache ();
  Array.iteri
    (fun i r ->
      let r = Option.get r in
      Spreadsheet.reset_uid_arena r.r_arena;
      Spreadsheet.in_uid_arena r.r_arena @@ fun () ->
      let base =
        Sheet_sql.Catalog.find_exn catalog (task i).Sheet_tpch.Tpch_tasks.base
      in
      let session =
        List.fold_left
          (fun session (s : Model.step) ->
            match Script.run_line session s.line with
            | Ok o -> o.Script.session
            | Error msg -> Alcotest.failf "u%d serial %s: %s" i s.line msg)
          (Session.create ~name:(task i).Sheet_tpch.Tpch_tasks.base base)
          (steps i)
      in
      let rel = Session.materialized session in
      Alcotest.(check int)
        (Printf.sprintf "u%d final uid" i)
        (Session.current session).Spreadsheet.uid r.r_uid;
      Alcotest.(check bool)
        (Printf.sprintf "u%d schema" i)
        true
        (r.r_columns
        = List.map
            (fun c -> (c.Schema.name, c.Schema.ty))
            (Schema.columns (Relation.schema rel)));
      Alcotest.(check bool)
        (Printf.sprintf "u%d rows and order" i)
        true
        (r.r_rows = List.map Row.to_list (Relation.rows rel)))
    results

(* ---------- the shared semantic cache under concurrency ---------- *)

let apply_exn sheet op =
  match Engine.apply sheet op with
  | Ok s -> s
  | Error e -> Alcotest.failf "engine: %s" (Errors.to_string e)

let pred = Expr_parse.parse_string_exn

(* a pool of overlapping query states over the cars relation: chains
   of progressively stronger selections, some grouped/ordered, so
   exact hits, subsumed hits and misses all occur *)
let sheet_pool () =
  let base = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation in
  let chains =
    [
      [ "Price < 25000"; "Price < 20000"; "Price < 17000" ];
      [ "Year >= 2003"; "Year >= 2005" ];
      [ "Mileage <= 90000"; "Mileage <= 50000" ];
      [ "Price < 25000 and Year >= 2003"; "Price < 20000 and Year >= 2005" ];
    ]
  in
  let selection_sheets =
    List.concat_map
      (fun chain ->
        let rec go sheet = function
          | [] -> []
          | p :: rest ->
              let s = apply_exn sheet (Op.Select (pred p)) in
              s :: go s rest
        in
        go base chain)
      chains
  in
  let grouped =
    List.map
      (fun s ->
        apply_exn s (Op.Group { basis = [ "Model" ]; dir = Grouping.Asc }))
      selection_sheets
  in
  base :: (selection_sheets @ grouped)

let test_cache_hammer () =
  let pool = Array.of_list (sheet_pool ()) in
  Materialize.reset_cache ();
  (* ground truth via the cache-free path *)
  let expected = Array.map Materialize.full pool in
  let n_threads = 8 and per_thread = 60 in
  let wrong = Array.make n_threads 0 in
  let threads =
    List.init n_threads (fun t ->
        Thread.create
          (fun () ->
            let rng = Sheet_stats.Rng.create (0x5EED + t) in
            for _ = 1 to per_thread do
              let i = Sheet_stats.Rng.int rng (Array.length pool) in
              let served = Materialize.full_cached pool.(i) in
              if not (Relation.equal served expected.(i)) then
                wrong.(t) <- wrong.(t) + 1
            done)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int)
    "every concurrent lookup equals the cache-free materialization" 0
    (Array.fold_left ( + ) 0 wrong);
  let s = Materialize.cache_stats () in
  Alcotest.(check int) "requests = one per lookup" (n_threads * per_thread)
    s.Materialize.requests;
  Alcotest.(check int) "requests = exact + subsumed + miss"
    s.Materialize.requests
    (s.Materialize.hits + s.Materialize.subsumed_hits + s.Materialize.misses);
  Alcotest.(check bool) "subsumption did occur" true
    (s.Materialize.subsumed_hits > 0);
  Materialize.reset_cache ()

(* qcheck: arbitrary select chains — cached answers (exact or
   subsumed) always equal the cache-free materialization, rows and
   order, and the hit-kind identity stays exact *)
let cache_overlap_prop =
  let gen_chain =
    QCheck.Gen.(
      small_list
        (oneofl
           [
             "Price < 25000"; "Price < 20000"; "Price < 17000";
             "Year >= 2003"; "Year >= 2005"; "Mileage <= 90000";
             "Mileage <= 50000"; "Condition = 'Good'";
           ]))
  in
  QCheck.Test.make ~count:60
    ~name:"full_cached = full on overlapping select chains"
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 6) gen_chain))
    (fun chains ->
      Materialize.reset_cache ();
      let base = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation in
      let sheets =
        List.concat_map
          (fun chain ->
            let rec go sheet = function
              | [] -> []
              | p :: rest ->
                  let s = apply_exn sheet (Op.Select (pred p)) in
                  s :: go s rest
            in
            go base chain)
          chains
      in
      let ok =
        List.for_all
          (fun s -> Relation.equal (Materialize.full_cached s) (Materialize.full s))
          (sheets @ List.rev sheets)
      in
      let st = Materialize.cache_stats () in
      Materialize.reset_cache ();
      ok
      && st.Materialize.requests
         = st.Materialize.hits + st.Materialize.subsumed_hits
           + st.Materialize.misses)

let () =
  let q = QCheck_alcotest.to_alcotest ~long:true in
  Alcotest.run "sheet_serve"
    [
      ( "protocol",
        [ q request_roundtrip; q response_roundtrip; q decode_total ] );
      ( "liveness",
        [
          Alcotest.test_case "garbage then ping (in-process)" `Quick
            test_garbage_then_ping;
          Alcotest.test_case "garbage then ping (socket)" `Quick
            test_garbage_over_socket;
        ] );
      ( "admission",
        [
          Alcotest.test_case "session cap" `Quick test_admission;
          Alcotest.test_case "rate cap" `Quick test_rate_cap;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "8 concurrent = serial replay" `Slow
            test_concurrent_determinism;
        ] );
      ( "cache",
        [
          Alcotest.test_case "concurrent hammer" `Quick test_cache_hammer;
          q cache_overlap_prop;
        ] );
    ]
