(* Exit-code and --json contract of tools/bench_diff.exe.

   The gate's whole value is its exit code — CI branches on it — so
   each verdict class gets an end-to-end run of the real executable
   over synthetic baselines: clean (0), guarded regression (1),
   unguarded slowdown (0), added / removed entries (0, but listed in
   the JSON report), unreadable input (2). The JSON report must parse
   with the bundled parser and carry the guarded-prefix list. *)

module J = Sheet_obs.Obs_json

let exe = Filename.concat (Filename.concat ".." "tools") "bench_diff.exe"

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let tmp name contents =
  let path = Filename.temp_file ("bench_diff_" ^ name) ".json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc contents);
  path

let baseline_of entries =
  J.to_string
    (J.Obj
       [ ("schema", J.String "sheetmusiq-bench/v1");
         ( "results",
           J.Obj
             (List.map
                (fun (name, ns) ->
                  (name, J.Obj [ ("ns_per_run", J.Float ns) ]))
                entries) ) ])

let run ?(json = false) a b =
  let out = Filename.temp_file "bench_diff_out" ".txt" in
  let cmd =
    Printf.sprintf "%s %s %s %s > %s 2>&1" exe
      (if json then "--json" else "")
      (Filename.quote a) (Filename.quote b) (Filename.quote out)
  in
  let code = Sys.command cmd in
  let text = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (code, text)

let flat = [ ("op/select", 100.); ("misc/x", 100.); ("obs/record", 50.) ]

let clean () =
  let a = tmp "clean" (baseline_of flat) in
  let code, text = run a a in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "reports ok" true (contains ~affix:"ok:" text)

let regression () =
  let a = tmp "base" (baseline_of flat) in
  let b =
    tmp "worse"
      (baseline_of
         [ ("op/select", 200.); ("misc/x", 100.); ("obs/record", 50.) ])
  in
  let code, text = run a b in
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check bool) "names the offender" true
    (contains ~affix:"op/select" text)

let unguarded_slowdown () =
  let a = tmp "base" (baseline_of flat) in
  let b =
    tmp "slower"
      (baseline_of
         [ ("op/select", 100.); ("misc/x", 300.); ("obs/record", 50.) ])
  in
  let code, _text = run a b in
  Alcotest.(check int) "exit 0 — misc/* is unguarded" 0 code

let added_removed () =
  let a = tmp "base" (baseline_of flat) in
  let b =
    tmp "moved"
      (baseline_of
         [ ("op/select", 100.); ("misc/x", 100.); ("obs/profile", 80.) ])
  in
  let code, text = run ~json:true a b in
  Alcotest.(check int) "exit 0 — added/removed are not failures" 0 code;
  match J.parse text with
  | Error msg -> Alcotest.failf "report does not parse: %s" msg
  | Ok report ->
      let names field =
        match J.member field report with
        | Some (J.List l) ->
            List.filter_map (function J.String s -> Some s | _ -> None) l
        | _ -> []
      in
      Alcotest.(check (list string))
        "added" [ "obs/profile" ] (names "added");
      Alcotest.(check (list string))
        "removed" [ "obs/record" ] (names "removed");
      Alcotest.(check (list string))
        "guarded prefixes"
        [ "op/"; "table"; "cache/"; "col/"; "obs/"; "serve/" ]
        (names "guarded_prefixes");
      Alcotest.(check bool) "ok flag" true
        (J.member "ok" report = Some (J.Bool true))

let json_regression_flag () =
  let a = tmp "base" (baseline_of [ ("cache/hit", 100.) ]) in
  let b = tmp "worse" (baseline_of [ ("cache/hit", 1000.) ]) in
  let code, text = run ~json:true a b in
  Alcotest.(check int) "exit 1 in json mode too" 1 code;
  match J.parse text with
  | Error msg -> Alcotest.failf "report does not parse: %s" msg
  | Ok report ->
      Alcotest.(check bool) "ok flag false" true
        (J.member "ok" report = Some (J.Bool false))

let unreadable () =
  let a = tmp "garbage" "this is not json" in
  let code, _ = run a a in
  Alcotest.(check int) "exit 2" 2 code;
  let code, _ =
    run a (Filename.concat (Filename.get_temp_dir_name ()) "missing.json")
  in
  Alcotest.(check int) "missing file also exit 2" 2 code

let () =
  Alcotest.run "bench_diff"
    [ ( "exit codes",
        [ Alcotest.test_case "clean" `Quick clean;
          Alcotest.test_case "guarded regression" `Quick regression;
          Alcotest.test_case "unguarded slowdown" `Quick unguarded_slowdown;
          Alcotest.test_case "added and removed" `Quick added_removed;
          Alcotest.test_case "json regression flag" `Quick
            json_regression_flag;
          Alcotest.test_case "unreadable input" `Quick unreadable ] ) ]
