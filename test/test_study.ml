(* Tests for the user-study simulator: protocol invariants and the
   reproduction of the paper's reported outcomes. *)

open Sheet_study

let obs = lazy (Simulator.run ())
let report = lazy (Report.of_observations (Lazy.force obs))

let test_protocol_shape () =
  let obs = Lazy.force obs in
  Alcotest.(check int) "10 subjects x 10 tasks x 2 tools" 200
    (List.length obs);
  (* every (subject, task, tool) cell appears exactly once *)
  List.iter
    (fun tool ->
      for task = 1 to 10 do
        Alcotest.(check int) "one observation per subject" 10
          (List.length (Simulator.observations obs ~task ~tool))
      done)
    [ Simulator.SheetMusiq; Simulator.Navicat ]

let test_determinism () =
  let a = Simulator.run () and b = Simulator.run () in
  Alcotest.(check bool) "same seed, same observations" true (a = b)

let test_timeout_rule () =
  List.iter
    (fun o ->
      Alcotest.(check bool) "time capped at 900" true
        (o.Simulator.time_s <= 900.0 +. 1e-9);
      if o.Simulator.timed_out then
        Alcotest.(check bool) "timeout counts as wrong" false
          o.Simulator.correct)
    (Lazy.force obs)

let test_fig3_shape () =
  let r = Lazy.force report in
  List.iter
    (fun p ->
      let open Report in
      if List.mem p.task [ 5; 7; 10 ] then
        Alcotest.(check bool)
          (Printf.sprintf "task %d comparable" p.task)
          true
          (p.navicat_mean /. p.sheet_mean < 1.6)
      else
        Alcotest.(check bool)
          (Printf.sprintf "task %d SheetMusiq at least 2x faster" p.task)
          true
          (p.navicat_mean /. p.sheet_mean >= 2.0))
    r.Report.per_task

let test_fig4_shape () =
  let r = Lazy.force report in
  (* "the standard deviation for SheetMusiq is much smaller on most
     queries" *)
  let smaller =
    List.length
      (List.filter
         (fun p -> p.Report.sheet_stddev < p.Report.navicat_stddev)
         r.Report.per_task)
  in
  Alcotest.(check bool) "smaller stddev on most queries" true (smaller >= 8)

let test_fig5_totals () =
  let r = Lazy.force report in
  let t = r.Report.totals in
  Alcotest.(check int) "SheetMusiq 95/100 as in the paper" 95
    t.Report.sheet_correct_total;
  Alcotest.(check int) "Navicat 81/100 as in the paper" 81
    t.Report.navicat_correct_total;
  Alcotest.(check bool) "Fisher p < 0.004 as in the paper" true
    (t.Report.fisher_p < 0.004)

let test_significance_pattern () =
  let r = Lazy.force report in
  Alcotest.(check (list int))
    "significant (p<0.002) on exactly the paper's queries"
    [ 1; 2; 3; 4; 6; 8; 9 ]
    (Report.significant_tasks r)

let test_table6 () =
  let r = Lazy.force report in
  let s = r.Report.subjective in
  Alcotest.(check int) "all prefer SheetMusiq" 10 s.Report.prefer_sheet;
  Alcotest.(check int) "seeing data helps" 10 s.Report.seeing_data_helps_yes;
  Alcotest.(check int) "progressive refinement 8/10" 8
    s.Report.progressive_refinement_yes;
  Alcotest.(check int) "concepts easier 10/10" 10
    s.Report.concepts_easier_yes

let test_klm () =
  Alcotest.(check (float 1e-9)) "click" 1.2 (Klm.total Klm.click);
  Alcotest.(check (float 1e-9)) "menu pick" 2.4 (Klm.total Klm.menu_pick);
  Alcotest.(check (float 1e-9)) "typing 5 chars" (0.4 +. (5.0 *. 0.28))
    (Klm.total (Klm.type_text 5));
  Alcotest.(check (float 1e-9)) "slow typing" (0.4 +. (4.0 *. 0.5))
    (Klm.total (Klm.type_text ~slow:true 4))

let test_tool_models_monotone () =
  (* a task with more steps must cost more in both models *)
  let simple = Sheet_tpch.Tpch_tasks.find 5 in
  let complex = Sheet_tpch.Tpch_tasks.find 1 in
  List.iter
    (fun m ->
      let t_simple =
        Tool_model.base_time (m.Tool_model.plan_of_task simple)
      in
      let t_complex =
        Tool_model.base_time (m.Tool_model.plan_of_task complex)
      in
      Alcotest.(check bool)
        (m.Tool_model.name ^ ": complex costs more")
        true (t_complex > t_simple))
    [ Sheetmusiq_model.model; Navicat_model.model ]

let test_navicat_sql_cliff () =
  (* the builder's cost explodes exactly when SQL typing is needed *)
  let simple = Sheet_tpch.Tpch_tasks.find 7 in
  let having = Sheet_tpch.Tpch_tasks.find 9 in
  let nav t = Tool_model.base_time (Navicat_model.model.Tool_model.plan_of_task t) in
  let sheet t =
    Tool_model.base_time (Sheetmusiq_model.model.Tool_model.plan_of_task t)
  in
  Alcotest.(check bool) "builder fine on simple tasks" true
    (nav simple /. sheet simple < 1.5);
  Alcotest.(check bool) "builder falls off the SQL cliff" true
    (nav having /. sheet having > 2.5)

let test_robustness_across_seeds () =
  (* the qualitative shape must not depend on the calibration seed *)
  List.iter
    (fun seed ->
      let config = { Simulator.default_config with Simulator.seed } in
      let r = Report.of_observations (Simulator.run ~config ()) in
      let t = r.Report.totals in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: sheet more correct" seed)
        true
        (t.Report.sheet_correct_total > t.Report.navicat_correct_total);
      List.iter
        (fun p ->
          if not (List.mem p.Report.task [ 5; 7; 10 ]) then
            Alcotest.(check bool)
              (Printf.sprintf "seed %d task %d: sheet faster" seed
                 p.Report.task)
              true
              (p.Report.sheet_mean < p.Report.navicat_mean))
        r.Report.per_task)
    [ 1; 7; 99; 12345 ]

let test_confidence_intervals () =
  let r = Lazy.force report in
  List.iter
    (fun p ->
      let lo_s, hi_s = p.Report.sheet_ci in
      Alcotest.(check bool) "ci brackets the mean" true
        (lo_s <= p.Report.sheet_mean && p.Report.sheet_mean <= hi_s);
      if not (List.mem p.Report.task [ 5; 7; 10 ]) then
        (* the intervals are disjoint on the complex tasks *)
        let lo_n, _ = p.Report.navicat_ci in
        Alcotest.(check bool)
          (Printf.sprintf "task %d: disjoint CIs" p.Report.task)
          true (hi_s < lo_n))
    r.Report.per_task

let test_observations_csv () =
  let csv = Report.observations_csv (Lazy.force obs) in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check int) "header + 200 rows + trailing" 202
    (List.length lines);
  Alcotest.(check string) "header"
    "subject,task,tool,time_s,correct,timed_out,errors" (List.hd lines)

let test_error_sources () =
  let having = Sheet_tpch.Tpch_tasks.find 9 in
  let plan = Navicat_model.model.Tool_model.plan_of_task having in
  Alcotest.(check bool) "having risks the subquery concept" true
    (List.exists
       (fun e -> e.Tool_model.concept = "subquery-having")
       plan.Tool_model.errors);
  let plan_sheet = Sheetmusiq_model.model.Tool_model.plan_of_task having in
  Alcotest.(check bool) "no syntax errors in SheetMusiq" true
    (List.for_all
       (fun e -> e.Tool_model.concept <> "sql-syntax")
       plan_sheet.Tool_model.errors)

(* ---------- per-user op streams (Sheetserve load replay) ---------- *)

let stream_catalog =
  lazy
    (Sheet_tpch.Tpch_views.install
       (Sheet_tpch.Tpch_gen.generate
          { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 }))

let test_op_stream_determinism () =
  let task = Sheet_tpch.Tpch_tasks.find 1 in
  let a = Sheetmusiq_model.op_stream ~seed:2115 ~subject:3 task in
  let b = Sheetmusiq_model.op_stream ~seed:2115 ~subject:3 task in
  Alcotest.(check bool) "same (seed, subject, task), same stream" true (a = b);
  (* detours only ever add (step, undo, step) triples around the
     canonical script *)
  let script = Sheetmusiq_model.script_lines task in
  Alcotest.(check bool) "stream at least as long as the script" true
    (List.length a >= List.length script);
  let undos =
    List.length
      (List.filter
         (fun (s : Sheetmusiq_model.step) -> s.line = "undo")
         a)
  in
  Alcotest.(check int) "every detour is one step plus one undo"
    (List.length a - List.length script)
    (2 * undos)

let test_op_stream_converges () =
  let catalog = Lazy.force stream_catalog in
  List.iter
    (fun (task : Sheet_tpch.Tpch_tasks.t) ->
      let base = Sheet_sql.Catalog.find_exn catalog task.base in
      let replay lines =
        List.fold_left
          (fun session line ->
            match Sheet_core.Script.run_line session line with
            | Ok o -> o.Sheet_core.Script.session
            | Error msg ->
                Alcotest.failf "task %d, %S: %s" task.id line msg)
          (Sheet_core.Session.create ~name:task.base base)
          lines
      in
      let canonical =
        Sheet_core.Session.materialized
          (replay (Sheetmusiq_model.script_lines task))
      in
      (* a handful of simulated users, all converging to the same
         final materialization despite their mistake/undo detours *)
      List.iter
        (fun subject ->
          let stream =
            Sheetmusiq_model.op_stream ~seed:2115 ~subject task
          in
          let final =
            Sheet_core.Session.materialized
              (replay
                 (List.map
                    (fun (s : Sheetmusiq_model.step) -> s.line)
                    stream))
          in
          Alcotest.(check bool)
            (Printf.sprintf "task %d subject %d converges" task.id subject)
            true
            (Sheet_rel.Relation.equal final canonical))
        [ 1; 2; 3; 4; 5 ])
    Sheet_tpch.Tpch_tasks.all

let test_op_stream_mistakes_occur () =
  (* across the whole simulated population, at least one stream takes
     a detour — the load replay exercises undo traffic, not just the
     happy path *)
  let detoured =
    List.exists
      (fun (task : Sheet_tpch.Tpch_tasks.t) ->
        List.exists
          (fun subject ->
            List.exists
              (fun (s : Sheetmusiq_model.step) -> s.line = "undo")
              (Sheetmusiq_model.op_stream ~seed:2115 ~subject task))
          (List.init 10 (fun i -> i + 1)))
      Sheet_tpch.Tpch_tasks.all
  in
  Alcotest.(check bool) "some subject somewhere errs" true detoured

let () =
  Alcotest.run "sheet_study"
    [ ( "protocol",
        [ Alcotest.test_case "shape" `Quick test_protocol_shape;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "timeout rule" `Quick test_timeout_rule ] );
      ( "paper-reproduction",
        [ Alcotest.test_case "fig3 speed shape" `Quick test_fig3_shape;
          Alcotest.test_case "fig4 stddev shape" `Quick test_fig4_shape;
          Alcotest.test_case "fig5 totals exact" `Quick test_fig5_totals;
          Alcotest.test_case "significance pattern" `Quick
            test_significance_pattern;
          Alcotest.test_case "table6 subjective" `Quick test_table6 ] );
      ( "models",
        [ Alcotest.test_case "klm operator times" `Quick test_klm;
          Alcotest.test_case "monotone in task size" `Quick
            test_tool_models_monotone;
          Alcotest.test_case "navicat SQL cliff" `Quick
            test_navicat_sql_cliff;
          Alcotest.test_case "error sources" `Quick test_error_sources;
          Alcotest.test_case "observations csv" `Quick
            test_observations_csv;
          Alcotest.test_case "robustness across seeds" `Quick
            test_robustness_across_seeds;
          Alcotest.test_case "confidence intervals" `Quick
            test_confidence_intervals ] );
      ( "op-streams",
        [ Alcotest.test_case "deterministic in (seed, subject, task)"
            `Quick test_op_stream_determinism;
          Alcotest.test_case "streams converge to the script's state"
            `Slow test_op_stream_converges;
          Alcotest.test_case "mistakes occur in the population" `Quick
            test_op_stream_mistakes_occur ] ) ]
