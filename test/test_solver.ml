(* Sheetsolve soundness battery.

   The solver's contract is that every definite answer is a theorem
   about Expr_eval.eval_pred's two-valued semantics. The qcheck oracle
   here generates random predicates over a cars-like schema together
   with random rows (including NULLs and values straddling the
   predicate constants) and checks each definite verdict pointwise:

   - implies p q        => no row satisfies p but not q
   - subsumes p q       => same, and the proof renders (explain total)
   - check p = Unsat    => no row satisfies p
   - tautology p        => every row satisfies p
   - equivalent p q     => p and q agree on every row

   Each property runs both typed (with a schema-derived type_of) and
   typeless. Unit tests pin the adversarial NULL cases documented in
   expr_domain.mli / sheetsolve.mli, the proof shapes, cross-state
   subsumption on real sessions, and the semantic materialization
   cache (hit kinds, serving equality, oldest-half eviction). *)

open Sheet_rel
open Sheet_core

let ( let* ) = QCheck.Gen.( let* ) [@@warning "-32"]

(* ---------- random rows ---------- *)

(* Small pools overlapping the predicate constants so implications are
   exercised on satisfying rows, not vacuously. *)
let columns = [ "P"; "Y"; "M" ]

let type_of = function
  | "P" | "Y" -> Some Value.TInt
  | "M" -> Some Value.TString
  | _ -> None

let gen_value col =
  let open QCheck.Gen in
  let* null = int_range 0 4 in
  if null = 0 then return Value.Null
  else
    match col with
    | "P" -> QCheck.Gen.map (fun i -> Value.Int i) (int_range (-5) 15)
    | "Y" -> QCheck.Gen.map (fun i -> Value.Int i) (int_range 0 5)
    | _ -> QCheck.Gen.map (fun s -> Value.String s) (oneofl [ "a"; "ab"; "b"; "c" ])

let gen_row : (string * Value.t) list QCheck.Gen.t =
  let open QCheck.Gen in
  flatten_l (List.map (fun c -> map (fun v -> (c, v)) (gen_value c)) columns)

(* ---------- random predicates ---------- *)

let gen_atom : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let int_const = map (fun i -> Expr.Const (Value.Int i)) (int_range (-4) 12) in
  let str_const = map (fun s -> Expr.Const (Value.String s)) (oneofl [ "a"; "ab"; "b"; "c" ]) in
  let cmp_op = oneofl [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ] in
  let num_col = map (fun c -> Expr.Col c) (oneofl [ "P"; "Y" ]) in
  oneof
    [
      (let* op = cmp_op in
       let* col = num_col in
       let* c = int_const in
       (* constant on either side *)
       let* flip = bool in
       return (if flip then Expr.Cmp (op, c, col) else Expr.Cmp (op, col, c)));
      (let* op = cmp_op in
       let* c = str_const in
       return (Expr.Cmp (op, Expr.Col "M", c)));
      (let* vs = list_size (int_range 1 4) (int_range (-4) 12) in
       let* with_null = bool in
       let vs = List.map (fun i -> Value.Int i) vs in
       let vs = if with_null then Value.Null :: vs else vs in
       return (Expr.In_list (Expr.Col "P", vs)));
      (let* vs = list_size (int_range 1 3) (oneofl [ "a"; "ab"; "b"; "c" ]) in
       return (Expr.In_list (Expr.Col "M", List.map (fun s -> Value.String s) vs)));
      (let* col = oneofl columns in
       return (Expr.Is_null (Expr.Col col)));
      (let* lo = int_range (-4) 6 in
       let* hi = int_range 0 12 in
       return
         (Expr.Between
            (Expr.Col "P", Expr.Const (Value.Int lo), Expr.Const (Value.Int hi))));
      (let* pat = oneofl [ "a%"; "%b"; "a_"; "c" ] in
       return (Expr.Like (Expr.Col "M", pat)));
    ]

let rec gen_pred depth : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  if depth = 0 then gen_atom
  else
    frequency
      [
        (3, gen_atom);
        ( 2,
          let* a = gen_pred (depth - 1) in
          let* b = gen_pred (depth - 1) in
          return (Expr.And (a, b)) );
        ( 2,
          let* a = gen_pred (depth - 1) in
          let* b = gen_pred (depth - 1) in
          return (Expr.Or (a, b)) );
        ( 1,
          let* a = gen_pred (depth - 1) in
          return (Expr.Not a) );
      ]

(* [None] when evaluation fails (the oracle then skips the row — the
   solver reasons about rows the evaluator accepts). *)
let eval row pred =
  let lookup name =
    match List.assoc_opt name row with Some v -> v | None -> raise Not_found
  in
  match Expr_eval.eval_pred ~lookup pred with
  | b -> Some b
  | exception Expr_eval.Eval_error _ -> None

(* ---------- qcheck oracle ---------- *)

let gen_case =
  let open QCheck.Gen in
  let* p = gen_pred 3 in
  let* q = gen_pred 3 in
  let* rows = list_size (int_range 40 120) gen_row in
  return (p, q, rows)

let print_case (p, q, rows) =
  Printf.sprintf "p = %s\nq = %s\n(%d rows)" (Expr.to_string p)
    (Expr.to_string q) (List.length rows)

let arb_case = QCheck.make ~print:print_case gen_case

let for_both_typings f =
  (* the typeless run must be sound too — it just proves less *)
  f None && f (Some type_of)

let implies_sound =
  QCheck.Test.make ~name:"implies p q => pointwise" ~count:800 arb_case
    (fun (p, q, rows) ->
      for_both_typings (fun ty ->
          if not (Sheetsolve.implies ?type_of:ty p q) then true
          else
            List.for_all
              (fun row ->
                match (eval row p, eval row q) with
                | Some true, Some false -> false
                | _ -> true)
              rows))

let subsumes_sound =
  QCheck.Test.make ~name:"subsumes p q => pointwise, explain total"
    ~count:800 arb_case (fun (p, q, rows) ->
      for_both_typings (fun ty ->
          match Sheetsolve.subsumes ?type_of:ty p q with
          | None -> true
          | Some proof ->
              String.length (Sheetsolve.explain proof) >= 0
              && List.for_all
                   (fun row ->
                     match (eval row p, eval row q) with
                     | Some true, Some false -> false
                     | _ -> true)
                   rows))

let unsat_sound =
  QCheck.Test.make ~name:"check = Unsat => no satisfying row" ~count:800
    arb_case (fun (p, _q, rows) ->
      for_both_typings (fun ty ->
          match Sheetsolve.check ?type_of:ty p with
          | `Maybe -> true
          | `Unsat _ ->
              List.for_all (fun row -> eval row p <> Some true) rows))

let tautology_sound =
  QCheck.Test.make ~name:"tautology => every row satisfies" ~count:800
    arb_case (fun (p, q, rows) ->
      (* tautologies are rare from the raw generator; OR in the
         complement shape to hit the interesting branch *)
      let p = Expr.Or (p, Expr.Not q) in
      for_both_typings (fun ty ->
          if not (Sheetsolve.tautology ?type_of:ty p) then true
          else List.for_all (fun row -> eval row p <> Some false) rows))

let equivalent_sound =
  QCheck.Test.make ~name:"equivalent => pointwise equal" ~count:800 arb_case
    (fun (p, q, rows) ->
      for_both_typings (fun ty ->
          if not (Sheetsolve.equivalent ?type_of:ty p q) then true
          else
            List.for_all
              (fun row ->
                match (eval row p, eval row q) with
                | Some a, Some b -> a = b
                | _ -> true)
              rows))

(* ---------- NULL-discipline unit cases (from the .mli docs) ---------- *)

let p = Expr_parse.parse_string_exn
let ty = Some Value.TInt
let int_ty _ = ty

let check_null_discipline () =
  (* NOT (x < 10) accepts NULL, so the "excluded middle" conjunction
     is satisfiable — by the all-null row *)
  Alcotest.(check bool)
    "NOT (x < 10) AND NOT (x >= 10) satisfiable (NULL)" true
    (Sheetsolve.satisfiable ~type_of:int_ty
       (p "NOT (x < 10) AND NOT (x >= 10)"));
  (* ... and the corresponding disjunction is not a tautology *)
  Alcotest.(check bool)
    "x < 10 OR x >= 10 not a tautology" false
    (Sheetsolve.tautology ~type_of:int_ty (p "x < 10 OR x >= 10"));
  Alcotest.(check bool)
    "x < 10 OR x >= 10 OR x IS NULL is a tautology" true
    (Sheetsolve.tautology ~type_of:int_ty
       (p "x < 10 OR x >= 10 OR x IS NULL"));
  (* negation of a positive comparison does not entail its flip *)
  Alcotest.(check bool)
    "NOT (x < 10) does not imply x >= 10" false
    (Sheetsolve.implies ~type_of:int_ty (p "NOT (x < 10)") (p "x >= 10"));
  Alcotest.(check bool)
    "NOT (x < 10) AND x IS NOT NULL implies x >= 10" true
    (Sheetsolve.implies ~type_of:int_ty
       (p "NOT (x < 10) AND NOT (x IS NULL)")
       (p "x >= 10"))

let check_equality_atoms () =
  (* needs no type information: the point sits in the excluded set *)
  (match Sheetsolve.check (p "x = 3 AND x <> 3") with
  | `Unsat cols ->
      Alcotest.(check (list string)) "witness column" [ "x" ] cols
  | `Maybe -> Alcotest.fail "x = 3 AND x <> 3 should be Unsat (typeless)");
  Alcotest.(check bool)
    "x = 3 implies x <> 4 (typed)" true
    (Sheetsolve.implies ~type_of:int_ty (p "x = 3") (p "x <> 4"));
  (* ... but not typeless: NOT (x <> 4) also holds on values from
     other comparability bands, so the negation must stay Top *)
  Alcotest.(check bool)
    "x = 3 vs x <> 4 unprovable typeless" false
    (Sheetsolve.implies (p "x = 3") (p "x <> 4"));
  Alcotest.(check bool)
    "x = 1 implies NOT (x IN (2, 3)) (typeless)" true
    (Sheetsolve.implies (p "x = 1") (p "NOT (x IN (2, 3))"));
  Alcotest.(check bool)
    "x IN (1, 2) implies x BETWEEN 1 AND 2" true
    (Sheetsolve.implies ~type_of:int_ty (p "x IN (1, 2)") (p "x BETWEEN 1 AND 2"));
  (match Sheetsolve.contradiction (p "x = 3") (p "x <> 3") with
  | Some cols -> Alcotest.(check (list string)) "pivot column" [ "x" ] cols
  | None -> Alcotest.fail "x = 3 / x <> 3 should be a contradiction")

let check_integer_tightening () =
  Alcotest.(check bool)
    "x < 10 implies x <= 9 over ints" true
    (Sheetsolve.implies ~type_of:int_ty (p "x < 10") (p "x <= 9"));
  Alcotest.(check bool)
    "x < 10 equivalent to x <= 9 over ints" true
    (Sheetsolve.equivalent ~type_of:int_ty (p "x < 10") (p "x <= 9"));
  Alcotest.(check bool)
    "... but not without the type" false
    (Sheetsolve.equivalent (p "x < 10") (p "x <= 9"));
  Alcotest.(check bool)
    "x > 5 AND x < 6 unsat over ints" false
    (Sheetsolve.satisfiable ~type_of:int_ty (p "x > 5 AND x < 6"))

let check_proof_shape () =
  match
    Sheetsolve.subsumes ~type_of:int_ty
      (p "(x >= 0 AND x < 10) OR x > 20")
      (p "x >= 0")
  with
  | Some (Sheetsolve.By_cases steps) ->
      Alcotest.(check int) "one step per disjunct" 2 (List.length steps);
      List.iter
        (function
          | Sheetsolve.Disjunct_absorbed { witnesses; _ } ->
              Alcotest.(check bool) "has a witness" true (witnesses <> [])
          | Sheetsolve.Disjunct_unsat _ ->
              Alcotest.fail "both disjuncts are satisfiable")
        steps
  | Some (Sheetsolve.By_refutation _) ->
      Alcotest.fail "expected a disjunct-wise By_cases proof"
  | None -> Alcotest.fail "range pair should be proven"

(* ---------- cross-state subsumption on real sessions ---------- *)

let apply_exn sheet op =
  match Engine.apply sheet op with
  | Ok s -> s
  | Error e -> Alcotest.failf "engine: %s" (Errors.to_string e)

let cars () = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation

let state_check candidate cached =
  let type_of = Schema.type_of (Spreadsheet.full_schema candidate) in
  State_subsume.check ~type_of ~candidate:candidate.Spreadsheet.state
    ~cached:cached.Spreadsheet.state

let check_state_subsume () =
  let base = cars () in
  let b = apply_exn base (Op.Select (p "Price < 25000")) in
  let a = apply_exn b (Op.Select (p "Year >= 2003")) in
  (match state_check a b with
  | State_subsume.Subsumed _ -> ()
  | o -> Alcotest.failf "extra selection should subsume: %s" (State_subsume.describe o));
  (* same selections, different arrangement: Equal *)
  let g = apply_exn b (Op.Group { basis = [ "Model" ]; dir = Grouping.Asc }) in
  (match state_check g b with
  | State_subsume.Equal -> ()
  | o -> Alcotest.failf "grouping-only diff should be Equal: %s" (State_subsume.describe o));
  (* an aggregate whose input rows differ blocks the claim *)
  let agg sheet =
    apply_exn
      (apply_exn sheet (Op.Group { basis = [ "Model" ]; dir = Grouping.Asc }))
      (Op.Aggregate { fn = Expr.Avg; col = Some "Price"; level = 1; as_name = None })
  in
  let a2 = agg (apply_exn base (Op.Select (p "Year >= 2003"))) in
  let b2 = agg base in
  (match state_check a2 b2 with
  | State_subsume.Incomparable _ -> ()
  | o ->
      Alcotest.failf "aggregate over different rows must not be claimed: %s"
        (State_subsume.describe o))

(* ---------- the semantic materialization cache ---------- *)

let check_cache_hit_kinds () =
  let base = cars () in
  let b = apply_exn base (Op.Select (p "Price < 25000")) in
  let a = apply_exn b (Op.Select (p "Year >= 2003")) in
  Materialize.reset_cache ();
  ignore (Materialize.full_cached b);
  let served = Materialize.full_cached a in
  Alcotest.(check bool)
    "subsumption-served equals full replay" true
    (Relation.equal served (Materialize.full a));
  let s = Materialize.cache_stats () in
  Alcotest.(check int) "one subsumed hit" 1 s.Materialize.subsumed_hits;
  ignore (Materialize.full_cached a);
  let s = Materialize.cache_stats () in
  Alcotest.(check int) "second lookup is exact" 1 s.Materialize.hits;
  Alcotest.(check int) "requests = hits + subsumed + misses"
    s.Materialize.requests
    (s.Materialize.hits + s.Materialize.subsumed_hits + s.Materialize.misses);
  Materialize.reset_cache ()

let check_cache_eviction () =
  Materialize.reset_cache ();
  let rel = Sample_cars.relation in
  let sheets =
    (* distinct uids over the same physical base *)
    Array.init 514 (fun _ -> Spreadsheet.of_relation ~name:"cars" rel)
  in
  Array.iter (fun s -> Materialize.seed_cache s rel) sheets;
  let s = Materialize.cache_stats () in
  (* the 514th seed found 513 > 512 entries and dropped the oldest 256,
     leaving 257 before its own insert *)
  Alcotest.(check int) "one eviction event" 1 s.Materialize.evictions;
  Alcotest.(check int) "oldest half dropped" 258 s.Materialize.entries;
  (* evicted states are still served semantically: the empty state of
     the first sheet is Equal to any survivor over the same base *)
  let served = Materialize.full_cached sheets.(0) in
  Alcotest.(check bool)
    "evicted state re-served from an equal survivor" true
    (Relation.equal served rel);
  let s = Materialize.cache_stats () in
  Alcotest.(check int) "served as a subsumed hit" 1 s.Materialize.subsumed_hits;
  Materialize.reset_cache ()

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:true) tests)
  in
  Alcotest.run "sheet_solver"
    [
      qsuite "oracle"
        [
          implies_sound; subsumes_sound; unsat_sound; tautology_sound;
          equivalent_sound;
        ];
      ( "nulls",
        [
          Alcotest.test_case "null discipline" `Quick check_null_discipline;
          Alcotest.test_case "equality atoms" `Quick check_equality_atoms;
          Alcotest.test_case "integer tightening" `Quick check_integer_tightening;
          Alcotest.test_case "proof shape" `Quick check_proof_shape;
        ] );
      ( "states",
        [ Alcotest.test_case "state subsumption" `Quick check_state_subsume ] );
      ( "cache",
        [
          Alcotest.test_case "hit kinds" `Quick check_cache_hit_kinds;
          Alcotest.test_case "oldest-half eviction" `Quick check_cache_eviction;
        ] );
    ]
