(* Tests of the session layer: history bookkeeping, undo/redo stack
   discipline, the store, and interactions between them. *)

open Sheet_rel
open Sheet_core

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let session () = Session.create ~name:"cars" Sample_cars.relation

let run s script =
  match Script.run_silent s script with
  | Ok s -> s
  | Error msg -> Alcotest.failf "script failed: %s" msg

let test_history_labels () =
  let s =
    run (session ())
      "select Year = 2005\ngroup Model asc\nagg avg Price level 2\nhide ID"
  in
  let labels = List.map (fun e -> e.Session.label) (Session.history s) in
  Alcotest.(check (list string)) "numbered meaningful names"
    [ "Load cars"; "Select Year = 2005"; "Group by {Model} ASC";
      "Aggregate avg(Price) at level 2"; "Hide column ID" ]
    labels;
  let indices = List.map (fun e -> e.Session.index) (Session.history s) in
  Alcotest.(check (list int)) "1-based indices" [ 1; 2; 3; 4; 5 ] indices

let test_redo_cleared_on_new_op () =
  let s = run (session ()) "select Year = 2005" in
  let s = Option.get (Session.undo s) in
  Alcotest.(check bool) "redo available" true (Session.can_redo s);
  let s = run s "select Year = 2006" in
  Alcotest.(check bool) "redo cleared by a new operation" false
    (Session.can_redo s)

let test_undo_bottom () =
  let s = session () in
  Alcotest.(check bool) "cannot undo the initial load" false
    (Session.can_undo s);
  Alcotest.(check bool) "undo returns None at the bottom" true
    (Option.is_none (Session.undo s));
  let s = Session.undo_many (run s "select Year = 2005") 99 in
  Alcotest.(check int) "undo_many stops at the bottom" 9
    (Relation.cardinality (Session.materialized s))

let test_save_is_a_snapshot () =
  let s = run (session ()) "select Model = 'Jetta'" in
  let s = Session.save_as s "jettas" in
  (* keep working on the current sheet *)
  let s = run s "select Year = 2006" in
  Alcotest.(check int) "current narrowed" 3
    (Relation.cardinality (Session.materialized s));
  (* the snapshot is unaffected *)
  match Session.open_sheet s "jettas" with
  | Error e -> Alcotest.fail (Errors.to_string e)
  | Ok s2 ->
      Alcotest.(check int) "snapshot unchanged" 6
        (Relation.cardinality (Session.materialized s2));
      (* and its selection is still modifiable after reopening *)
      let sels = Session.selections_on s2 "Model" in
      Alcotest.(check int) "state travels with the sheet" 1
        (List.length sels)

let test_open_is_undoable () =
  let s = Session.save_as (session ()) "orig" in
  let s = run s "select Year = 2005" in
  match Session.open_sheet s "orig" with
  | Error e -> Alcotest.fail (Errors.to_string e)
  | Ok s2 ->
      Alcotest.(check int) "opened sheet current" 9
        (Relation.cardinality (Session.materialized s2));
      let s3 = Option.get (Session.undo s2) in
      Alcotest.(check int) "undo returns to the filtered sheet" 4
        (Relation.cardinality (Session.materialized s3))

let test_store_listing () =
  let s = session () in
  Alcotest.(check (list string)) "empty" []
    (Store.names (Session.store s));
  let s = Session.save_as s "bbb" in
  let s = Session.save_as s "aaa" in
  Alcotest.(check (list string)) "sorted" [ "aaa"; "bbb" ]
    (Store.names (Session.store s));
  Alcotest.(check bool) "close existing" true
    (Store.close (Session.store s) "aaa");
  Alcotest.(check bool) "close missing" false
    (Store.close (Session.store s) "aaa")

let test_load_relation_switch () =
  let s = run (session ()) "select Year = 2005" in
  let small =
    Relation.make
      (Schema.of_list [ ("x", Value.TInt) ])
      [ Row.of_list [ Value.Int 1 ] ]
  in
  let s = Session.load_relation s ~name:"tiny" small in
  Alcotest.(check int) "switched" 1
    (Relation.cardinality (Session.materialized s));
  Alcotest.(check bool) "history notes the load" true
    (List.exists
       (fun e -> contains e.Session.label "Load tiny")
       (Session.history s));
  (* undo returns to the cars sheet *)
  let s = Option.get (Session.undo s) in
  Alcotest.(check int) "back to cars" 4
    (Relation.cardinality (Session.materialized s))

let test_goto () =
  let s =
    run (session ())
      "select Year = 2005\nselect Model = 'Jetta'\nhide Mileage"
  in
  (* timeline: 1 Load, 2 select, 3 select, 4 hide *)
  let s2 = Option.get (Session.goto s 2) in
  Alcotest.(check int) "at entry 2: one selection" 4
    (Relation.cardinality (Session.materialized s2));
  Alcotest.(check bool) "redo available from there" true
    (Session.can_redo s2);
  let s4 = Option.get (Session.goto s2 4) in
  Alcotest.(check bool) "back at the tip: Mileage hidden" false
    (Schema.mem (Relation.schema (Session.materialized s4)) "Mileage");
  Alcotest.(check bool) "same place is identity" true
    (Option.is_some (Session.goto s4 4));
  Alcotest.(check bool) "index 0 rejected" true
    (Option.is_none (Session.goto s 0));
  Alcotest.(check bool) "index past the end rejected" true
    (Option.is_none (Session.goto s 99))

let test_modification_is_a_history_entry () =
  let s = run (session ()) "select Year = 2005" in
  let id = (List.hd (Session.selections_on s "Year")).Query_state.id in
  match Session.replace_selection s ~id
          (Expr_parse.parse_string_exn "Year = 2006") with
  | Error e -> Alcotest.fail (Errors.to_string e)
  | Ok s ->
      Alcotest.(check bool) "history entry recorded" true
        (List.exists
           (fun e -> contains e.Session.label "Modify selection")
           (Session.history s));
      (* modification is itself undoable *)
      let s = Option.get (Session.undo s) in
      let years =
        Relation.column_values (Session.materialized s) "Year"
      in
      Alcotest.(check bool) "undo restores 2005" true
        (List.for_all (Value.equal (Value.Int 2005)) years)

(* ---------- the flight recorder sees what the session did ---------- *)

module Obs = Sheet_obs.Obs

let flight_kinds () =
  List.map (fun e -> e.Obs.Flightrec.f_kind) (Obs.Flightrec.events ())

let test_flightrec_records_ops () =
  Obs.Flightrec.clear ();
  let s = run (session ()) "select Year = 2005\ngroup Model asc" in
  Alcotest.(check bool) "op events recorded" true
    (List.length
       (List.filter (fun k -> k = "op") (flight_kinds ()))
    >= 2);
  let s = Option.get (Session.undo s) in
  let s = Option.get (Session.redo s) in
  ignore s;
  Alcotest.(check bool) "undo recorded" true
    (List.mem "undo" (flight_kinds ()));
  Alcotest.(check bool) "redo recorded" true
    (List.mem "redo" (flight_kinds ()));
  (* op events carry the sheet uid and a duration *)
  let op =
    List.find (fun e -> e.Obs.Flightrec.f_kind = "op")
      (Obs.Flightrec.events ())
  in
  Alcotest.(check bool) "uid attached" true (op.Obs.Flightrec.f_uid > 0);
  Alcotest.(check bool) "duration attached" true
    (op.Obs.Flightrec.f_dur_ns >= 0);
  Obs.Flightrec.clear ()

let test_flightrec_records_rejections () =
  Obs.Flightrec.clear ();
  let s = session () in
  (match Session.apply s (Op.Project "NoSuchColumn") with
  | Ok _ -> Alcotest.fail "projecting a missing column should fail"
  | Error _ -> ());
  Alcotest.(check bool) "rejection recorded" true
    (List.mem "op-rejected" (flight_kinds ()));
  Obs.Flightrec.clear ()

let test_flightrec_slow_op_marker () =
  Obs.Flightrec.clear ();
  let old_ns = Obs.Flightrec.slow_threshold_ns () in
  Fun.protect
    ~finally:(fun () ->
      Obs.Flightrec.set_slow_threshold_ms (float_of_int old_ns /. 1e6);
      Obs.Flightrec.clear ())
  @@ fun () ->
  (* threshold 0: every applied op is "slow" *)
  Obs.Flightrec.set_slow_threshold_ms 0.;
  ignore (run (session ()) "select Year = 2005");
  Alcotest.(check bool) "slow-op marker emitted" true
    (List.mem "slow-op" (flight_kinds ()))

let () =
  Alcotest.run "sheet_session"
    [ ( "history",
        [ Alcotest.test_case "labels" `Quick test_history_labels;
          Alcotest.test_case "redo cleared" `Quick
            test_redo_cleared_on_new_op;
          Alcotest.test_case "undo bottom" `Quick test_undo_bottom;
          Alcotest.test_case "modification entry" `Quick
            test_modification_is_a_history_entry;
          Alcotest.test_case "goto" `Quick test_goto ] );
      ( "store",
        [ Alcotest.test_case "save snapshots" `Quick test_save_is_a_snapshot;
          Alcotest.test_case "open is undoable" `Quick test_open_is_undoable;
          Alcotest.test_case "listing/close" `Quick test_store_listing;
          Alcotest.test_case "load relation" `Quick
            test_load_relation_switch ] );
      ( "flightrec",
        [ Alcotest.test_case "ops, undo, redo recorded" `Quick
            test_flightrec_records_ops;
          Alcotest.test_case "rejections recorded" `Quick
            test_flightrec_records_rejections;
          Alcotest.test_case "slow-op marker" `Quick
            test_flightrec_slow_op_marker ] ) ]
