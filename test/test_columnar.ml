(* Sheetcol: the columnar substrate.

   The codec tests use *structural* equality strict enough to notice a
   constructor swap (Int 1 vs Float 1.) and a NaN payload change —
   Value.equal would accept both, which is exactly the laxity the
   round-trip law must not inherit.

   The differential tests pin the compiled selection-vector path to
   the row interpreter on random predicates, and the parallel tests
   pin multi-domain morsel scans to single-domain runs row-for-row. *)

open Sheet_rel


(* bit-exact value equality: same constructor, NaN = NaN by bits *)
let value_exact a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> a = b

let row_exact a b =
  Row.width a = Row.width b
  && List.for_all2 value_exact (Row.to_list a) (Row.to_list b)

let rows_exact a b =
  Array.length a = Array.length b
  && Array.for_all2 row_exact a b

(* ---------- generators ---------- *)

let gen_value : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [ (3, return Value.Null);
      (3, map (fun b -> Value.Bool b) bool);
      (4, map (fun i -> Value.Int i) (int_range (-1000) 1000));
      ( 4,
        map
          (fun f -> Value.Float f)
          (oneof
             [ float; return Float.nan; return (0. /. 0.); return (-0.0);
               return Float.infinity ]) );
      (4, map (fun s -> Value.String s) (string_size (int_range 0 6)));
      (2, map (fun d -> Value.Date d) (int_range (-10000) 10000)) ]

(* one column's worth of cells, biased toward the uniform cases the
   specializer targets *)
let gen_column_cells n : Value.t array QCheck.Gen.t =
  let open QCheck.Gen in
  let with_nulls g =
    let* nullp = float_range 0. 0.9 in
    array_repeat n
      (let* p = float_range 0. 1. in
       if p < nullp then return Value.Null else g)
  in
  oneof
    [ with_nulls (map (fun i -> Value.Int i) (int_range (-1000) 1000));
      with_nulls
        (map
           (fun f -> Value.Float f)
           (oneof [ float; return Float.nan; return (-0.0) ]));
      with_nulls
        (map (fun s -> Value.String s) (string_size (int_range 0 4)));
      with_nulls (map (fun b -> Value.Bool b) bool);
      with_nulls (map (fun d -> Value.Date d) (int_range 0 20000));
      array_repeat n gen_value (* mixed: must fall back to Boxed *) ]

let gen_uniform_rows : Row.t array QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 0 60 in
  let* w = int_range 0 5 in
  let* cols = list_repeat w (gen_column_cells n) in
  let cols = Array.of_list cols in
  return
    (Array.init n (fun i ->
         Row.of_list (List.init w (fun j -> cols.(j).(i)))))

let gen_ragged_rows : Row.t array QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 0 40 in
  array_repeat n
    (let* w = int_range 0 6 in
     let* cells = list_repeat w gen_value in
     return (Row.of_list cells))

(* ---------- codec round-trip ---------- *)

let roundtrip_uniform =
  QCheck.Test.make ~count:300 ~name:"of_rows |> to_rows = id (uniform)"
    (QCheck.make gen_uniform_rows) (fun rows ->
      let img = Columnar.of_rows rows in
      Columnar.uniform img && rows_exact (Columnar.to_rows img) rows)

let roundtrip_ragged =
  QCheck.Test.make ~count:300 ~name:"of_rows |> to_rows = id (ragged)"
    (QCheck.make gen_ragged_rows) (fun rows ->
      let img = Columnar.of_rows rows in
      rows_exact (Columnar.to_rows img) rows)

let roundtrip_with_width =
  QCheck.Test.make ~count:200 ~name:"of_rows ~width widens, still exact"
    (QCheck.make gen_ragged_rows) (fun rows ->
      let img = Columnar.of_rows ~width:4 rows in
      Columnar.width img >= 4 && rows_exact (Columnar.to_rows img) rows)

(* ---------- specialization ---------- *)

let test_specialization () =
  let col vs = Column.of_values (Array.of_list vs) in
  Alcotest.(check string)
    "ints" "int"
    (Column.kind_name (col [ Value.Int 1; Value.Null; Value.Int 3 ]));
  Alcotest.(check string)
    "floats" "float"
    (Column.kind_name (col [ Value.Float 1.5; Value.Float Float.nan ]));
  Alcotest.(check string)
    "strings" "string"
    (Column.kind_name (col [ Value.String "a"; Value.String "a" ]));
  (* Int next to Float must stay boxed: specializing would lose the
     constructor distinction the codec promises to keep. *)
  Alcotest.(check string)
    "mixed int/float stays boxed" "boxed"
    (Column.kind_name (col [ Value.Int 1; Value.Float 1. ]));
  Alcotest.(check string)
    "all-null stays boxed" "boxed"
    (Column.kind_name (col [ Value.Null; Value.Null ]));
  Alcotest.(check string)
    "empty stays boxed" "boxed" (Column.kind_name (col []));
  let c = col [ Value.String "x"; Value.String "y"; Value.String "x" ] in
  Alcotest.(check int) "dict size" 2 (Column.dict_size c)

(* A relation holding a mixed-constructor column: the engine must fall
   back to the row path and produce identical select results. *)
let test_mixed_column_fallback () =
  let schema =
    Schema.of_list [ ("K", Value.TInt); ("V", Value.TFloat) ]
  in
  let rows =
    Array.init 200 (fun i ->
        Row.of_list
          [ Value.Int i;
            (if i mod 3 = 0 then Value.Int i else Value.Float (float i)) ])
  in
  let r = Relation.of_array schema rows in
  (match Relation.columnar_view r with
  | Some img ->
      Alcotest.(check string)
        "V column boxed" "boxed"
        (Column.kind_name (Columnar.column img 1))
  | None -> Alcotest.fail "uniform relation must have a columnar view");
  let pred = Expr.(Cmp (Lt, Col "V", Const (Value.Int 100))) in
  Alcotest.(check bool)
    "columnar_filter declines boxed comparisons" true
    (Rel_algebra.columnar_filter r [ pred ] = None);
  let out = Rel_algebra.select pred r in
  let index = Schema.compile_index schema in
  let expected =
    Array.to_list rows
    |> List.filter (fun row ->
           Expr_eval.eval_pred
             ~lookup:(fun name -> Row.get row (index name))
             pred)
  in
  Alcotest.(check bool)
    "row-path result identical" true
    (List.equal Row.equal expected (Relation.rows out))

let test_ragged_relation_has_no_view () =
  let schema =
    Schema.of_list [ ("A", Value.TInt); ("B", Value.TInt) ]
  in
  let r =
    Relation.unsafe_make schema
      [ Row.of_list [ Value.Int 1; Value.Int 2 ];
        Row.of_list [ Value.Int 3 ] ]
  in
  Alcotest.(check bool)
    "ragged => no columnar view" true
    (Relation.columnar_view r = None)

(* ---------- compiled predicates vs the row interpreter ---------- *)

let cars_schema = Sample_cars.schema

let gen_cars_pred : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_leaf =
    let num_col = oneofl [ "Price"; "Year"; "Mileage"; "ID" ] in
    let cmp = oneofl Expr.[ Eq; Ne; Lt; Le; Gt; Ge ] in
    oneof
      [ (let* c = num_col in
         let* op = cmp in
         let* v =
           oneof
             [ map (fun i -> Value.Int i) (int_range 0 40000);
               map (fun f -> Value.Float f) (float_range 0. 40000.);
               return Value.Null ]
         in
         return (Expr.Cmp (op, Expr.Col c, Expr.Const v)));
        (let* op = cmp in
         return (Expr.Cmp (op, Expr.Col "Price", Expr.Col "Mileage")));
        (let* op = cmp in
         let* s = oneofl [ "Jetta"; "Civic"; "nope" ] in
         return
           (Expr.Cmp (op, Expr.Col "Model", Expr.Const (Value.String s))));
        (let* lo = int_range 8000 20000 in
         let* hi = int_range 15000 30000 in
         return
           (Expr.Between
              ( Expr.Col "Price",
                Expr.Const (Value.Int lo),
                Expr.Const (Value.Int hi) )));
        (let* vs =
           list_size (int_range 0 3)
             (map (fun i -> Value.Int (2000 + i)) (int_range 0 9))
         in
         return (Expr.In_list (Expr.Col "Year", vs)));
        map (fun c -> Expr.Is_null (Expr.Col c))
          (oneofl [ "Price"; "Model" ]);
        (let* p = oneofl [ "J%"; "%vic"; "%c%"; "_etta"; "zzz" ] in
         return (Expr.Like (Expr.Col "Model", p))) ]
  in
  let rec gen_pred depth =
    if depth = 0 then gen_leaf
    else
      oneof
        [ gen_leaf;
          (let* a = gen_pred (depth - 1) in
           let* b = gen_pred (depth - 1) in
           oneofl [ Expr.And (a, b); Expr.Or (a, b) ]);
          map (fun a -> Expr.Not a) (gen_pred (depth - 1)) ]
  in
  gen_pred 2

let gen_cars_rows n : Row.t array QCheck.Gen.t =
  let open QCheck.Gen in
  array_repeat n
    (let* id = int_range 1 999 in
     let* model =
       oneof
         [ map (fun s -> Value.String s)
             (oneofl [ "Jetta"; "Civic"; "Accord" ]);
           return Value.Null ]
     in
     let* price =
       oneof [ map (fun i -> Value.Int i) (int_range 8000 30000);
               return Value.Null ]
     in
     let* year = int_range 2000 2008 in
     let* mileage = int_range 0 150000 in
     let* cond = oneofl [ "Excellent"; "Good"; "Fair" ] in
     return
       (Row.of_list
          [ Value.Int id; model; price; Value.Int year;
            Value.Int mileage; Value.String cond ]))

let compiled_vs_row =
  QCheck.Test.make ~count:500
    ~name:"compiled selection vector = row interpreter"
    (QCheck.make
       QCheck.Gen.(
         let* n = int_range 0 80 in
         let* rows = gen_cars_rows n in
         let* pred = gen_cars_pred in
         return (rows, pred)))
    (fun (rows, pred) ->
      let r = Relation.of_array cars_schema rows in
      ignore (Relation.columnar_view r);
      let index = Schema.compile_index cars_schema in
      let expected =
        Array.to_list rows
        |> List.filter (fun row ->
               Expr_eval.eval_pred
                 ~lookup:(fun name -> Row.get row (index name))
                 pred)
      in
      match Rel_algebra.columnar_filter r [ pred ] with
      | None -> QCheck.assume_fail () (* did not compile: nothing to pin *)
      | Some got -> List.equal Row.equal expected (Array.to_list got))

(* ---------- parallel determinism ---------- *)

let with_par_config ~domains ~threshold ~morsel f =
  Par.set_domain_count domains;
  Par.set_parallel_threshold threshold;
  Par.set_morsel_rows morsel;
  Fun.protect
    ~finally:(fun () ->
      Par.set_domain_count 1;
      Par.set_parallel_threshold Par.default_parallel_threshold;
      Par.set_morsel_rows Par.default_morsel_rows)
    f

let test_parallel_determinism () =
  let r = Sample_cars.scaled ~rows:20_000 ~seed:3 in
  ignore (Relation.columnar_view r);
  let pred =
    Expr.(
      And
        ( Cmp (Lt, Col "Price", Const (Value.Int 25000)),
          Cmp (Ge, Col "Year", Const (Value.Int 2002)) ))
  in
  let seq =
    with_par_config ~domains:1 ~threshold:1_000_000 ~morsel:8192 (fun () ->
        Rel_algebra.select pred r)
  in
  let par =
    with_par_config ~domains:4 ~threshold:64 ~morsel:512 (fun () ->
        Rel_algebra.select pred r)
  in
  Alcotest.(check bool)
    "identical row order under 4 domains" true
    (List.equal Row.equal (Relation.rows seq) (Relation.rows par));
  (* extend: same computed column, same order, errors aside *)
  let ext r =
    Rel_algebra.extend "PriceK" Value.TFloat
      (fun row ->
        match Row.get row 2 with
        | Value.Int p -> Value.Float (float_of_int p /. 1000.)
        | _ -> Value.Null)
      r
  in
  let e_seq =
    with_par_config ~domains:1 ~threshold:1_000_000 ~morsel:8192 (fun () ->
        ext r)
  in
  let e_par =
    with_par_config ~domains:4 ~threshold:64 ~morsel:512 (fun () -> ext r)
  in
  Alcotest.(check bool)
    "extend identical under 4 domains" true
    (List.equal Row.equal (Relation.rows e_seq) (Relation.rows e_par))

let test_parallel_error_is_sequential_first () =
  (* the first failing row in sequential order must be the one
     reported even when later morsels also fail *)
  let n = 10_000 in
  let exception Boom of int in
  let run () =
    Par.run ~n (fun lo hi ->
        for i = lo to hi - 1 do
          if i >= 5_000 then raise (Boom i)
        done;
        hi - lo)
  in
  with_par_config ~domains:4 ~threshold:64 ~morsel:256 (fun () ->
      match run () with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          Alcotest.(check int) "lowest failing morsel wins" 5_000 i)

let test_par_concat () =
  Alcotest.(check (array int)) "empty" [||] (Par.concat [||]);
  let one = [| 1; 2 |] in
  Alcotest.(check bool)
    "single chunk zero-copy" true
    (Par.concat [| one |] == one);
  Alcotest.(check (array int))
    "merge order" [| 1; 2; 3; 4 |]
    (Par.concat [| [| 1 |]; [||]; [| 2; 3 |]; [| 4 |] |])

(* ---------- observability ---------- *)

module Obs = Sheet_obs.Obs

let test_columnar_metrics () =
  let before = Obs.Metrics.value_of Obs.k_col_columns in
  let r = Sample_cars.scaled ~rows:1_000 ~seed:5 in
  ignore (Relation.columnar_view r);
  let after = Obs.Metrics.value_of Obs.k_col_columns in
  Alcotest.(check int) "6 columns materialized" 6 (after - before);
  Alcotest.(check bool)
    "dict entries counted" true
    (Obs.Metrics.value_of Obs.k_col_dict_entries > 0);
  let in0 = Obs.Metrics.value_of Obs.k_col_sel_rows_in in
  let out0 = Obs.Metrics.value_of Obs.k_col_sel_rows_out in
  let pred = Expr.(Cmp (Lt, Col "Price", Const (Value.Int 15000))) in
  let sel = Rel_algebra.select pred r in
  let in1 = Obs.Metrics.value_of Obs.k_col_sel_rows_in in
  let out1 = Obs.Metrics.value_of Obs.k_col_sel_rows_out in
  Alcotest.(check int) "sel rows in" 1_000 (in1 - in0);
  Alcotest.(check int)
    "sel rows out" (Relation.cardinality sel) (out1 - out0)

let test_par_metrics () =
  let m0 = Obs.Metrics.value_of Obs.k_par_morsels in
  let s0 = Obs.Metrics.value_of Obs.k_par_scans in
  with_par_config ~domains:4 ~threshold:64 ~morsel:512 (fun () ->
      ignore (Par.run ~n:4_096 (fun lo hi -> hi - lo)));
  let m1 = Obs.Metrics.value_of Obs.k_par_morsels in
  let s1 = Obs.Metrics.value_of Obs.k_par_scans in
  Alcotest.(check int) "8 morsels" 8 (m1 - m0);
  Alcotest.(check int) "1 parallel scan" 1 (s1 - s0);
  Alcotest.(check int)
    "domain gauge" 4
    (Obs.Metrics.value_of Obs.k_par_domains)

(* morselization depends only on (n, threshold, morsel_rows), never on
   the domain count — the invariant the @par identity gate rests on *)
let test_morselization_domain_independent () =
  let count ~domains =
    let m0 = Obs.Metrics.value_of Obs.k_par_morsels in
    with_par_config ~domains ~threshold:64 ~morsel:512 (fun () ->
        ignore (Par.run ~n:4_096 (fun lo hi -> hi - lo)));
    Obs.Metrics.value_of Obs.k_par_morsels - m0
  in
  Alcotest.(check int) "8 morsels on 1 domain" 8 (count ~domains:1);
  Alcotest.(check int) "8 morsels on 4 domains" 8 (count ~domains:4)

(* since v3 workers record their own morsel spans live through the
   mutex-protected ring — one completed event per morsel, and the
   coordinator's span bookkeeping stays balanced *)
let test_workers_record_spans_live () =
  let old_sink = Obs.sink () in
  Obs.set_sink Obs.Memory;
  Fun.protect
    ~finally:(fun () ->
      Obs.clear_events ();
      Obs.set_sink old_sink)
  @@ fun () ->
  Obs.clear_events ();
  let m0 = Obs.Metrics.value_of Obs.k_par_morsels in
  with_par_config ~domains:4 ~threshold:64 ~morsel:512 (fun () ->
      Obs.with_span "scan-host" (fun () ->
          ignore (Par.run ~n:4_096 (fun lo hi -> hi - lo))));
  let morsels = Obs.Metrics.value_of Obs.k_par_morsels - m0 in
  let events = Obs.events () in
  let morsel_events =
    List.filter (fun (e : Obs.event) -> e.Obs.kind = "morsel") events
  in
  Alcotest.(check int)
    "one live event per morsel" morsels
    (List.length morsel_events);
  List.iter
    (fun (e : Obs.event) ->
      Alcotest.(check string) "morsel span name" "par.morsel" e.Obs.name;
      Alcotest.(check int) "nests under the host span" 1 e.Obs.depth;
      Alcotest.(check bool) "covers real rows" true (e.Obs.rows_in > 0))
    morsel_events;
  Alcotest.(check int)
    "rows covered exactly once" 4_096
    (List.fold_left
       (fun acc (e : Obs.event) -> acc + e.Obs.rows_in)
       0 morsel_events);
  Alcotest.(check int) "spans balanced" 0 (Obs.open_spans ());
  Alcotest.(check bool) "nesting clean" true (Obs.nesting_ok ())

(* ---------- memoization ---------- *)

(* one-shot relations must not pay for view construction: the first
   scan request declines, the second builds *)
let test_hot_heuristic () =
  let r = Sample_cars.scaled ~rows:500 ~seed:9 in
  let pred = Expr.(Cmp (Lt, Col "Price", Const (Value.Int 15000))) in
  Alcotest.(check bool)
    "first scan stays on the row path" true
    (Rel_algebra.columnar_filter r [ pred ] = None);
  Alcotest.(check bool)
    "no view built yet" true
    (Relation.columnar_if_built r = None);
  Alcotest.(check bool)
    "second scan builds and compiles" true
    (Rel_algebra.columnar_filter r [ pred ] <> None);
  Alcotest.(check bool)
    "view memoized" true
    (Relation.columnar_if_built r <> None)

let test_hot_min_rows () =
  (* below the 256-row floor the hot path never opts in, no matter
     how often it is scanned — but an explicitly built view is
     honoured *)
  let r = Sample_cars.scaled ~rows:50 ~seed:9 in
  let pred = Expr.(Cmp (Lt, Col "Price", Const (Value.Int 15000))) in
  for _ = 1 to 3 do
    Alcotest.(check bool)
      "tiny relation stays on the row path" true
      (Rel_algebra.columnar_filter r [ pred ] = None)
  done;
  Alcotest.(check bool)
    "no view built" true
    (Relation.columnar_if_built r = None);
  ignore (Relation.columnar_view r);
  Alcotest.(check bool)
    "explicitly built view is served" true
    (Rel_algebra.columnar_filter r [ pred ] <> None)

let test_rows_memoized () =
  let r = Sample_cars.scaled ~rows:100 ~seed:1 in
  Alcotest.(check bool)
    "rows physically equal across calls" true
    (Relation.rows r == Relation.rows r);
  let v1 = Relation.columnar_view r in
  let v2 = Relation.columnar_view r in
  Alcotest.(check bool)
    "columnar view built once" true
    (match (v1, v2) with Some a, Some b -> a == b | _ -> false)

let () =
  let q = QCheck_alcotest.to_alcotest ~long:false in
  Alcotest.run "sheet_columnar"
    [ ( "codec",
        [ q roundtrip_uniform; q roundtrip_ragged; q roundtrip_with_width ]
      );
      ( "columns",
        [ Alcotest.test_case "specialization" `Quick test_specialization;
          Alcotest.test_case "mixed column fallback" `Quick
            test_mixed_column_fallback;
          Alcotest.test_case "ragged relation" `Quick
            test_ragged_relation_has_no_view ] );
      ("predicates", [ q compiled_vs_row ]);
      ( "parallel",
        [ Alcotest.test_case "determinism" `Quick test_parallel_determinism;
          Alcotest.test_case "first error wins" `Quick
            test_parallel_error_is_sequential_first;
          Alcotest.test_case "concat" `Quick test_par_concat ] );
      ( "observability",
        [ Alcotest.test_case "columnar metrics" `Quick test_columnar_metrics;
          Alcotest.test_case "par metrics" `Quick test_par_metrics;
          Alcotest.test_case "morselization ignores domain count" `Quick
            test_morselization_domain_independent;
          Alcotest.test_case "workers record morsel spans live" `Quick
            test_workers_record_spans_live ] );
      ( "memoization",
        [ Alcotest.test_case "hot heuristic" `Quick test_hot_heuristic;
          Alcotest.test_case "hot min rows" `Quick test_hot_min_rows;
          Alcotest.test_case "rows memoized" `Quick test_rows_memoized ] ) ]
