(* Tests of the Sheetlint static analyzer: the interval/domain
   reasoning of Expr_domain, the per-layer lint passes, the
   analysis-driven plan pruning, and lint-cleanliness of every bundled
   TPC-H task. *)

open Sheet_rel
open Sheet_core
open Sheet_analysis

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let pred = Expr_parse.parse_string_exn
let cars_types = Schema.type_of Sample_cars.schema
let sat s = Expr_domain.satisfiable ~type_of:cars_types (pred s)
let taut s = Expr_domain.tautology ~type_of:cars_types (pred s)
let implies p q =
  Expr_domain.implies ~type_of:cars_types (pred p) (pred q)

let check_sat name expected s =
  Alcotest.(check bool) name expected (sat s)

(* ---------- Expr_domain ---------- *)

let test_unsat_conjunctions () =
  check_sat "disjoint ranges" false "Price < 10000 AND Price > 20000";
  check_sat "touching open ranges" false "Price < 10000 AND Price > 10000";
  check_sat "two equalities" false "Model = 'Jetta' AND Model = 'Civic'";
  check_sat "empty BETWEEN" false "Price BETWEEN 20000 AND 10000";
  check_sat "integer gap" false "Price > 5 AND Price < 6";
  check_sat "IN hull vs range" false
    "Price IN (1, 2, 3) AND Price > 5";
  check_sat "null comparison" false "Price = NULL";
  check_sat "IS NULL vs comparison" false "Price IS NULL AND Price > 5";
  check_sat "unsat disjunct pair" false
    "(Price < 10 AND Price > 20) OR (Year < 2000 AND Year > 2010)"

let test_type_clash () =
  check_sat "string column vs int" false "Model < 10";
  check_sat "int column vs string" false "Price = 'Jetta'";
  (* without type information the same predicate must stay Maybe *)
  Alcotest.(check bool) "untyped stays maybe" true
    (Expr_domain.satisfiable (pred "Model < 10"))

let test_satisfiable_stays_maybe () =
  check_sat "plain range" true "Price < 10000";
  check_sat "overlapping ranges" true "Price > 10000 AND Price < 20000";
  check_sat "disjunction rescues" true "Price < 10000 OR Price > 20000";
  check_sat "Ne is not a range" true "Price <> 5 AND Price = 5 OR Price = 6";
  (* the null trap: NOT (x < 10) admits null x, so this conjunction is
     satisfiable even though the intervals are disjoint *)
  check_sat "negated atoms admit null" true
    "NOT (Price < 10000) AND NOT (Price >= 10000)"

let test_tautology () =
  Alcotest.(check bool) "excluded middle is not total" false
    (taut "Price < 10000 OR Price >= 10000");
  Alcotest.(check bool) "with IS NULL it is" true
    (taut "Price < 10000 OR Price >= 10000 OR Price IS NULL");
  Alcotest.(check bool) "constant true" true (taut "1 = 1");
  Alcotest.(check bool) "plain range is not" false (taut "Price < 10000")

let test_implication () =
  Alcotest.(check bool) "between implies lower bound" true
    (implies "Price BETWEEN 10000 AND 20000" "Price >= 10000");
  Alcotest.(check bool) "equality implies between" true
    (implies "Price = 15000" "Price BETWEEN 10000 AND 20000");
  Alcotest.(check bool) "tighter range implies looser" true
    (implies "Price < 10000" "Price < 20000");
  Alcotest.(check bool) "looser does not imply tighter" false
    (implies "Price < 20000" "Price < 10000");
  Alcotest.(check bool) "no implication across columns" false
    (implies "Price < 10000" "Year < 2006")

(* ---------- Expr_lint ---------- *)

let codes ds = List.map (fun (d : Diagnostic.t) -> d.code) ds

let severity_of code ds =
  List.find_map
    (fun (d : Diagnostic.t) ->
      if d.code = code then Some d.severity else None)
    ds

let lint_pred s =
  Expr_lint.lint_pred ~type_of:cars_types ~loc:Diagnostic.Query (pred s)

let test_expr_lint () =
  Alcotest.(check (list string)) "clean predicate" []
    (codes (lint_pred "Price < 10000"));
  Alcotest.(check (list string)) "unsat reported once" [ "unsat-predicate" ]
    (codes (lint_pred "Price < 10000 AND Price > 20000"));
  Alcotest.(check bool) "unsat is an error" true
    (severity_of "unsat-predicate"
       (lint_pred "Price < 10000 AND Price > 20000")
    = Some Diagnostic.Error);
  Alcotest.(check (list string)) "tautology is a warning" [ "tautology" ]
    (codes (lint_pred "Price < 1 OR Price >= 1 OR Price IS NULL"));
  Alcotest.(check (list string)) "duplicate conjunct" [ "duplicate-conjunct" ]
    (codes (lint_pred "Price < 10000 AND Price < 10000"));
  Alcotest.(check (list string)) "implied conjunct" [ "redundant-conjunct" ]
    (codes (lint_pred "Price < 10000 AND Price < 20000"));
  Alcotest.(check (list string)) "unknown column" [ "unknown-column" ]
    (codes
       (Expr_lint.lint_pred ~type_of:cars_types
          ~known:(Schema.names Sample_cars.schema) ~loc:Diagnostic.Query
          (pred "Cost < 10")))

(* ---------- State_lint over scripted sessions ---------- *)

let session_of script =
  let s = Session.create ~name:"cars" Sample_cars.relation in
  match Script.run_silent s script with
  | Ok s -> s
  | Error msg -> Alcotest.failf "fixture script failed: %s" msg

let lint_script script = Sheetlint.session (session_of script)

let has_code code ds = List.mem code (codes ds)

let test_state_conflicts () =
  let ds = lint_script "select Price < 10000\nselect Price > 20000" in
  Alcotest.(check bool) "conflicting selections" true
    (has_code "conflicting-selections" ds);
  Alcotest.(check bool) "reported as error" true (Diagnostic.has_errors ds);
  let ds = lint_script "select Price < 10000\nselect Price < 20000" in
  Alcotest.(check bool) "subsumed selection" true
    (has_code "subsumed-selection" ds);
  let ds = lint_script "select Price < 10000\nselect Price < 10000" in
  Alcotest.(check bool) "duplicate selection" true
    (has_code "duplicate-selection" ds)

let test_state_columns () =
  let ds = lint_script "formula Double = Price * 2\nhide Double" in
  Alcotest.(check bool) "dead computed column" true
    (has_code "dead-computed-column" ds);
  let ds = lint_script "formula Double = Price * 2\nhide Price" in
  Alcotest.(check bool) "hidden but referenced" true
    (has_code "hidden-referenced" ds);
  Alcotest.(check bool) "hint only, not a warning" false
    (Diagnostic.has_warnings ds || Diagnostic.has_errors ds)

let test_state_grouping () =
  let ds = lint_script "agg avg Price\ngroup Model" in
  Alcotest.(check bool) "whole-sheet aggregate on grouped sheet" true
    (has_code "whole-sheet-aggregate" ds);
  let ds =
    lint_script "group Model\nagg avg Price as AvgP\nselect AvgP > 15000"
  in
  Alcotest.(check bool) "HAVING-style selection noted" true
    (has_code "aggregate-selection" ds);
  Alcotest.(check bool) "as a hint" false
    (Diagnostic.has_warnings ds || Diagnostic.has_errors ds)

let test_state_clean () =
  Alcotest.(check (list string)) "fresh sheet" []
    (codes (lint_script "print"));
  Alcotest.(check (list string)) "honest query" []
    (codes
       (lint_script
          "select Price < 17000\ngroup Model\nagg avg Mileage as AvgM\n\
           order Year desc"))

(* ---------- plan pruning ---------- *)

let optimized_of script =
  let sheet = Session.current (session_of script) in
  (sheet, Plan.optimize (Plan.of_sheet sheet))

let test_plan_unsat_pruned () =
  let sheet, plan =
    optimized_of "select Price < 10000\nselect Price > 20000"
  in
  (* the whole pipeline collapses onto an empty scan: no Filter left *)
  let explained = Plan.explain plan in
  Alcotest.(check bool) "no filter survives" false
    (contains explained "Filter");
  Alcotest.(check bool) "empty scan" true
    (contains explained "Scan (0 rows");
  Alcotest.(check int) "executes to empty" 0
    (Relation.cardinality (Plan.execute plan));
  Alcotest.(check bool) "still equals the interpreter" true
    (Relation.equal (Plan.execute plan) (Materialize.full sheet))

let test_plan_conjunct_pruned () =
  let sheet, plan =
    optimized_of "select Price < 17000\nselect Price < 20000"
  in
  let explained = Plan.explain plan in
  Alcotest.(check bool) "implied conjunct dropped" false
    (contains explained "20000");
  Alcotest.(check bool) "tight conjunct kept" true
    (contains explained "Price < 17000");
  Alcotest.(check bool) "results preserved" true
    (Relation.equal (Plan.execute plan) (Materialize.full sheet));
  (* a tautological conjunct vanishes too *)
  let sheet, plan =
    optimized_of
      "select Price < 17000\nselect Price < 1 OR Price >= 1 OR Price IS NULL"
  in
  let explained = Plan.explain plan in
  Alcotest.(check bool) "tautological conjunct dropped" false
    (contains explained "IS NULL");
  Alcotest.(check bool) "results preserved after drop" true
    (Relation.equal (Plan.execute plan) (Materialize.full sheet))

let test_plan_schema () =
  let sheet, plan = optimized_of "select Price > 50000" in
  (* empty scan keeps the schema the consumer expects *)
  Alcotest.(check (list string)) "schema names preserved"
    (Schema.names (Relation.schema (Materialize.full sheet)))
    (Schema.names (Plan.output_schema plan))

(* ---------- SQL lints ---------- *)

let sql_catalog =
  lazy
    (Sheet_sql.Catalog.of_list [ ("cars", Sample_cars.relation) ])

let sql_lint text = Sheetlint.sql_string (Lazy.force sql_catalog) text

let test_sql_lint () =
  Alcotest.(check bool) "unsat WHERE" true
    (has_code "unsat-predicate"
       (sql_lint "SELECT Model FROM cars WHERE Price < 10 AND Price > 20"));
  Alcotest.(check bool) "parse error is a diagnostic" true
    (has_code "parse-error" (sql_lint "SELEKT boom"));
  Alcotest.(check bool) "semantic error is a diagnostic" true
    (has_code "invalid-query" (sql_lint "SELECT Nope FROM cars"));
  Alcotest.(check bool) "duplicate group by" true
    (has_code "duplicate-group-by"
       (sql_lint
          "SELECT Model, count(*) FROM cars GROUP BY Model, Model"));
  Alcotest.(check bool) "clean query" false
    (let ds =
       sql_lint
         "SELECT Model, avg(Price) FROM cars WHERE Year >= 2005 GROUP BY \
          Model"
     in
     Diagnostic.has_errors ds || Diagnostic.has_warnings ds)

(* ---------- every bundled TPC-H task lints clean ---------- *)

let tpch_catalog =
  lazy
    (Sheet_tpch.Tpch_views.install
       (Sheet_tpch.Tpch_gen.generate { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 }))

let test_tpch_tasks_lint_clean () =
  let catalog = Lazy.force tpch_catalog in
  List.iter
    (fun (task : Sheet_tpch.Tpch_tasks.t) ->
      let base = Sheet_sql.Catalog.find_exn catalog task.base in
      let session = Session.create ~name:task.base base in
      match Sheetlint.script session task.script with
      | Error msg -> Alcotest.failf "task %d script failed: %s" task.id msg
      | Ok ds ->
          let noisy =
            List.filter
              (fun (d : Diagnostic.t) -> d.severity <> Diagnostic.Hint)
              ds
          in
          Alcotest.(check (list string))
            (Printf.sprintf "task %d script clean" task.id)
            [] (List.map Diagnostic.to_string noisy))
    Sheet_tpch.Tpch_tasks.all

let test_tpch_sql_lint_clean () =
  let catalog = Lazy.force tpch_catalog in
  List.iter
    (fun (task : Sheet_tpch.Tpch_tasks.t) ->
      let ds = Sheetlint.sql_string catalog task.sql in
      let noisy =
        List.filter
          (fun (d : Diagnostic.t) -> d.severity <> Diagnostic.Hint)
          ds
      in
      Alcotest.(check (list string))
        (Printf.sprintf "task %d sql clean" task.id)
        [] (List.map Diagnostic.to_string noisy))
    Sheet_tpch.Tpch_tasks.all

(* ---------- rendering ---------- *)

let test_render () =
  let ds = lint_script "select Price < 10000\nselect Price > 20000" in
  let text = Sheetlint.render ds in
  Alcotest.(check bool) "mentions the code" true
    (contains text "conflicting-selections");
  Alcotest.(check string) "empty render" "no diagnostics"
    (Sheetlint.render []);
  List.iter
    (fun (d : Diagnostic.t) ->
      Alcotest.(check int) "machine form has 4 fields" 4
        (List.length (String.split_on_char '\t' (Diagnostic.to_machine d))))
    ds

let () =
  Alcotest.run "analysis"
    [ ( "domain",
        [ Alcotest.test_case "unsat conjunctions" `Quick
            test_unsat_conjunctions;
          Alcotest.test_case "type clashes" `Quick test_type_clash;
          Alcotest.test_case "satisfiable cases" `Quick
            test_satisfiable_stays_maybe;
          Alcotest.test_case "tautologies" `Quick test_tautology;
          Alcotest.test_case "implication" `Quick test_implication ] );
      ( "expr-lint",
        [ Alcotest.test_case "predicate lints" `Quick test_expr_lint ] );
      ( "state-lint",
        [ Alcotest.test_case "conflicts" `Quick test_state_conflicts;
          Alcotest.test_case "columns" `Quick test_state_columns;
          Alcotest.test_case "grouping" `Quick test_state_grouping;
          Alcotest.test_case "clean states" `Quick test_state_clean ] );
      ( "plan-pruning",
        [ Alcotest.test_case "unsat filter" `Quick test_plan_unsat_pruned;
          Alcotest.test_case "redundant conjuncts" `Quick
            test_plan_conjunct_pruned;
          Alcotest.test_case "schema preserved" `Quick test_plan_schema ] );
      ( "sql-lint",
        [ Alcotest.test_case "clause lints" `Quick test_sql_lint ] );
      ( "tpch",
        [ Alcotest.test_case "task scripts lint clean" `Quick
            test_tpch_tasks_lint_clean;
          Alcotest.test_case "task sql lints clean" `Quick
            test_tpch_sql_lint_clean ] );
      ( "render",
        [ Alcotest.test_case "pretty and machine" `Quick test_render ] ) ]
