(* Tests of the direct-manipulation browser view-model: every key
   binding, cursor/scroll clamping, menu and command modes. *)

open Sheet_rel
open Sheet_core
open Sheet_ui

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let start () =
  Browser.init (Session.create ~name:"cars" Sample_cars.relation)

let feed ?page state events =
  List.fold_left (fun s e -> Browser.handle ?page s e) state events

let test_cursor_movement () =
  let s = start () in
  let s = feed s [ Browser.Down; Browser.Down; Browser.Right ] in
  Alcotest.(check int) "row" 2 s.Browser.row;
  Alcotest.(check int) "col" 1 s.Browser.col;
  (match Browser.cursor_cell s with
  | Some ("Model", v) ->
      Alcotest.(check bool) "cell value" true
        (Value.equal v (Value.String "Jetta"))
  | _ -> Alcotest.fail "cursor cell");
  (* clamping at the edges *)
  let s = feed s (List.init 50 (fun _ -> Browser.Up)) in
  Alcotest.(check int) "clamped top" 0 s.Browser.row;
  let s = feed s (List.init 50 (fun _ -> Browser.Down)) in
  Alcotest.(check int) "clamped bottom" 8 s.Browser.row;
  let s = feed s (List.init 50 (fun _ -> Browser.Right)) in
  Alcotest.(check int) "clamped right" 5 s.Browser.col

let test_scrolling () =
  let s = start () in
  let s = feed ~page:3 s (List.init 8 (fun _ -> Browser.Down)) in
  Alcotest.(check int) "row at bottom" 8 s.Browser.row;
  Alcotest.(check bool) "scrolled" true (s.Browser.top > 0);
  let s = feed ~page:3 s [ Browser.Page_up ] in
  Alcotest.(check int) "page up" 5 s.Browser.row

let test_filter_key () =
  let s = start () in
  (* cursor on ID of the first row (304): 'f' filters to that value *)
  let s = feed s [ Browser.Key 'f' ] in
  Alcotest.(check int) "one row left" 1
    (Relation.cardinality (Browser.visible s));
  (* undo brings everything back *)
  let s = feed s [ Browser.Key 'u' ] in
  Alcotest.(check int) "undone" 9 (Relation.cardinality (Browser.visible s))

let test_filter_string_cell () =
  let s = feed (start ()) [ Browser.Right; Browser.Key 'f' ] in
  (* Model = 'Jetta' *)
  Alcotest.(check int) "six Jettas" 6
    (Relation.cardinality (Browser.visible s))

let test_sort_key_flips () =
  let s = start () in
  (* move to Price column and sort twice *)
  let s = feed s [ Browser.Right; Browser.Right; Browser.Key 's' ] in
  let first_price rel =
    match Relation.rows rel with
    | r :: _ -> Row.get r 2
    | [] -> Value.Null
  in
  Alcotest.(check bool) "ascending first" true
    (Value.equal (first_price (Browser.visible s)) (Value.Int 13500));
  let s = feed s [ Browser.Key 's' ] in
  Alcotest.(check bool) "flips to descending" true
    (Value.equal (first_price (Browser.visible s)) (Value.Int 18000))

let test_group_and_agg_keys () =
  let s = start () in
  let s = feed s [ Browser.Right; Browser.Key 'g' ] in
  Alcotest.(check int) "grouped by Model" 2
    (Grouping.num_levels (Spreadsheet.grouping (Session.current s.Browser.session)));
  let s = feed s [ Browser.Right; Browser.Key 'a' ] in
  Alcotest.(check bool) "avg column appears" true
    (Schema.mem (Relation.schema (Browser.visible s)) "Avg_Price");
  let s = feed s [ Browser.Key 'c' ] in
  Alcotest.(check bool) "count column appears" true
    (Schema.mem (Relation.schema (Browser.visible s)) "Count")

let test_hide_key () =
  let s = feed (start ()) [ Browser.Key 'h' ] in
  Alcotest.(check bool) "ID hidden" false
    (Schema.mem (Relation.schema (Browser.visible s)) "ID")

let test_menu_mode () =
  let s = feed (start ()) [ Browser.Key 'm' ] in
  (match s.Browser.mode with
  | Browser.Menu { items; selected = 0 } ->
      Alcotest.(check bool) "menu has entries" true (List.length items > 3)
  | _ -> Alcotest.fail "menu mode expected");
  let s = feed s [ Browser.Down; Browser.Down; Browser.Enter ] in
  (match s.Browser.mode with
  | Browser.Grid ->
      Alcotest.(check bool) "hint in message" true
        (String.length s.Browser.message > 0)
  | _ -> Alcotest.fail "back to grid");
  (* escape also leaves the menu *)
  let s = feed s [ Browser.Key 'm'; Browser.Escape ] in
  Alcotest.(check bool) "escape closes" true (s.Browser.mode = Browser.Grid)

let test_command_mode () =
  let s = feed (start ()) [ Browser.Key ':' ] in
  let typed = "select Year = 2005" in
  let s =
    feed s (List.init (String.length typed) (fun i -> Browser.Key typed.[i]))
  in
  (match s.Browser.mode with
  | Browser.Command text -> Alcotest.(check string) "typed" typed text
  | _ -> Alcotest.fail "command mode");
  let s = feed s [ Browser.Enter ] in
  Alcotest.(check int) "command applied" 4
    (Relation.cardinality (Browser.visible s));
  (* backspace editing and escape *)
  let s = feed s [ Browser.Key ':'; Browser.Key 'x'; Browser.Backspace ] in
  (match s.Browser.mode with
  | Browser.Command "" -> ()
  | _ -> Alcotest.fail "backspace");
  let s = feed s [ Browser.Escape ] in
  Alcotest.(check bool) "escape cancels" true (s.Browser.mode = Browser.Grid)

let test_command_errors_reported () =
  let s = feed (start ())
      [ Browser.Key ':'; Browser.Key 'b'; Browser.Key 'a'; Browser.Key 'd';
        Browser.Enter ]
  in
  Alcotest.(check bool) "error surfaced" true
    (contains s.Browser.message "error")

let test_quit () =
  let s = feed (start ()) [ Browser.Key 'q' ] in
  Alcotest.(check bool) "quit flag" true s.Browser.quit;
  (* further events are ignored *)
  let s2 = feed s [ Browser.Down ] in
  Alcotest.(check int) "frozen" s.Browser.row s2.Browser.row

let test_render_text () =
  let s = feed (start ()) [ Browser.Down; Browser.Right ] in
  let text = Browser.render_text ~width:120 ~height:20 s in
  Alcotest.(check bool) "cursor column bracketed in header" true
    (contains text "[Model]");
  Alcotest.(check bool) "cursor cell bracketed" true
    (contains text "[Jetta]");
  Alcotest.(check bool) "status present" true (contains text "cars");
  let s = feed s [ Browser.Key ':' ] in
  let text = Browser.render_text s in
  Alcotest.(check bool) "command prompt" true (contains text ":")

let test_flightrec_pane () =
  Sheet_obs.Obs.Flightrec.clear ();
  (* a keystroke op so the pane has something to show *)
  let s = feed (start ()) [ Browser.Key 's' ] in
  let s = feed s [ Browser.Key 'F' ] in
  Alcotest.(check bool) "F opens the pane" true
    (s.Browser.mode = Browser.Flightrec);
  let text = Browser.render_text ~width:120 ~height:20 s in
  Alcotest.(check bool) "pane shows the recorded op" true
    (contains text "op");
  (* movement keys do not disturb the pane *)
  let s = feed s [ Browser.Down; Browser.Up ] in
  Alcotest.(check bool) "pane stays open" true
    (s.Browser.mode = Browser.Flightrec);
  let s = feed s [ Browser.Escape ] in
  Alcotest.(check bool) "escape closes" true
    (s.Browser.mode = Browser.Grid);
  Sheet_obs.Obs.Flightrec.clear ()

let () =
  Alcotest.run "sheet_browser"
    [ ( "grid",
        [ Alcotest.test_case "cursor movement" `Quick test_cursor_movement;
          Alcotest.test_case "scrolling" `Quick test_scrolling;
          Alcotest.test_case "filter key" `Quick test_filter_key;
          Alcotest.test_case "filter string cell" `Quick
            test_filter_string_cell;
          Alcotest.test_case "sort key flips" `Quick test_sort_key_flips;
          Alcotest.test_case "group/agg keys" `Quick test_group_and_agg_keys;
          Alcotest.test_case "hide key" `Quick test_hide_key;
          Alcotest.test_case "quit" `Quick test_quit ] );
      ( "modes",
        [ Alcotest.test_case "menu" `Quick test_menu_mode;
          Alcotest.test_case "command line" `Quick test_command_mode;
          Alcotest.test_case "command errors" `Quick
            test_command_errors_reported;
          Alcotest.test_case "render" `Quick test_render_text;
          Alcotest.test_case "flight-recorder pane" `Quick
            test_flightrec_pane ] ) ]
