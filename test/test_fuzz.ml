(* Robustness fuzzing: no public parsing or command entry point may
   escape with an exception — malformed input must come back as a
   clean [Error] (or a documented exception type for Persist). *)

open Sheet_rel
open Sheet_core

let gen_garbage : string QCheck.Gen.t =
  let open QCheck.Gen in
  let printable = map Char.chr (int_range 32 126) in
  oneof
    [ string_size ~gen:printable (int_range 0 60);
      (* token soup: valid lexemes in random order *)
      (let* words =
         list_size (int_range 0 12)
           (oneofl
              [ "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "ORDER";
                "HAVING"; "AND"; "OR"; "NOT"; "BETWEEN"; "CASE"; "WHEN";
                "END"; "("; ")"; ","; "*"; "+"; "-"; "/"; "="; "<"; ">=";
                "'x'"; "42"; "4.5"; "col"; "t"; "avg"; "count"; "DATE";
                "'2009-03-29'"; "||"; "." ])
       in
       return (String.concat " " words));
      (* near-miss SQL *)
      (let* tail =
         oneofl
           [ ""; ";"; " FROM"; " WHERE"; " GROUP BY"; " 'open"; " (";
             " IN ("; " BETWEEN 1"; " CASE WHEN" ]
       in
       return ("SELECT a FROM t" ^ tail)) ]

let no_exception f =
  match f () with
  | _ -> true
  | exception (Lexer.Lex_error _ | Lexer.Cursor.Parse_error _) ->
      (* parsers must catch their own lexer/cursor errors at the
         public entry points *)
      false
  | exception _ -> false

let expr_parser_total =
  QCheck.Test.make ~count:1000 ~name:"Expr_parse.parse_string never raises"
    (QCheck.make ~print:(fun s -> s) gen_garbage)
    (fun s -> no_exception (fun () -> Expr_parse.parse_string s))

let sql_parser_total =
  QCheck.Test.make ~count:1000 ~name:"Sql_parser.parse never raises"
    (QCheck.make ~print:(fun s -> s) gen_garbage)
    (fun s -> no_exception (fun () -> Sheet_sql.Sql_parser.parse s))

let script_total =
  QCheck.Test.make ~count:1000 ~name:"Script.run_line never raises"
    (QCheck.make ~print:(fun s -> s) gen_garbage)
    (fun s ->
      let session = Session.create ~name:"cars" Sample_cars.relation in
      (* 'export'/'html'/'trace export' write files and 'trace'
         mutates the global sink; keep fuzzing away from both by
         skipping those commands *)
      QCheck.assume
        (not
           (List.exists
              (fun prefix ->
                String.length s >= String.length prefix
                && String.lowercase_ascii
                     (String.sub s 0 (String.length prefix))
                   = prefix)
              [ "export"; "html"; "import"; "trace" ]));
      no_exception (fun () -> Script.run_line session s))

let sql_executor_total =
  QCheck.Test.make ~count:500
    ~name:"Sql_executor.run_string never raises"
    (QCheck.make ~print:(fun s -> s) gen_garbage)
    (fun s ->
      let catalog =
        Sheet_sql.Catalog.of_list [ ("t", Sample_cars.relation) ]
      in
      no_exception (fun () -> Sheet_sql.Sql_executor.run_string catalog s))

let persist_total =
  QCheck.Test.make ~count:500
    ~name:"Persist.of_string raises only Persist_error"
    (QCheck.make ~print:(fun s -> s)
       QCheck.Gen.(
         let* garbage = gen_garbage in
         oneofl
           [ garbage;
             "musiq-sheet v1\n" ^ garbage;
             "musiq-sheet v1\nname x\ndata\n" ^ garbage;
             "musiq-sheet v1\nselection notanint x = 1\ndata\na:int\n1\n" ]))
    (fun s ->
      match Persist.of_string s with
      | _ -> true
      | exception Persist.Persist_error _ -> true
      | exception _ -> false)

let csv_total =
  QCheck.Test.make ~count:500
    ~name:"Csv.parse_string / load_relation raise only Csv_error"
    (QCheck.make ~print:(fun s -> s) gen_garbage)
    (fun s ->
      match Csv.load_relation s with
      | _ -> true
      | exception Csv.Csv_error _ -> true
      | exception (Schema.Schema_error _ | Relation.Relation_error _) ->
          (* duplicate headers surface as schema errors: acceptable,
             but they must not be anything wilder *)
          true
      | exception _ -> false)

(* structurally plausible but ragged CSV: rows of independent widths
   (including zero-width and blank lines), half-quoted cells,
   duplicate or empty headers, mixed separators — the loader must
   reject cleanly, never escape with a match failure or index error *)
let gen_ragged_csv : string QCheck.Gen.t =
  let open QCheck.Gen in
  let cell =
    oneofl [ ""; "1"; "4.5"; "x"; "\"q\""; "\"un"; " "; "NULL"; "-0" ]
  in
  let row = map (String.concat ",") (list_size (int_range 0 6) cell) in
  let header =
    oneofl
      [ "ID,Model,Price,Year,Mileage,Condition"; "a,b"; "a,a"; ",";
        "a,b,c,d,e,f,g"; "" ]
  in
  let* h = header in
  let* rows = list_size (int_range 0 8) row in
  let* sep = oneofl [ "\n"; "\r\n"; "\n\n" ] in
  return (String.concat sep (h :: rows))

let csv_ragged_total =
  QCheck.Test.make ~count:500
    ~name:"Csv.load_relation on ragged rows raises only Csv_error"
    (QCheck.make ~print:(fun s -> s) gen_ragged_csv)
    (fun s ->
      let tolerated = function
        | Csv.Csv_error _ | Schema.Schema_error _ | Relation.Relation_error _
          ->
            true
        | _ -> false
      in
      let total load =
        match load s with _ -> true | exception e -> tolerated e
      in
      total Csv.load_relation
      && total (Csv.load_relation ~schema:Sample_cars.schema))

let browser_total =
  QCheck.Test.make ~count:300
    ~name:"Browser.handle never raises and keeps the cursor in range"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 0 40)
           (oneof
              [ oneofl
                  [ Sheet_ui.Browser.Up; Sheet_ui.Browser.Down;
                    Sheet_ui.Browser.Left; Sheet_ui.Browser.Right;
                    Sheet_ui.Browser.Page_up; Sheet_ui.Browser.Page_down;
                    Sheet_ui.Browser.Enter; Sheet_ui.Browser.Escape;
                    Sheet_ui.Browser.Backspace ];
                map
                  (fun c -> Sheet_ui.Browser.Key c)
                  (map Char.chr (int_range 32 126)) ])))
    (fun events ->
      let state =
        Sheet_ui.Browser.init
          (Session.create ~name:"cars" Sample_cars.relation)
      in
      match
        List.fold_left
          (fun s e -> Sheet_ui.Browser.handle ~page:5 s e)
          state events
      with
      | final ->
          let rel = Sheet_ui.Browser.visible final in
          let rows = Relation.cardinality rel in
          let cols = Schema.arity (Relation.schema rel) in
          final.Sheet_ui.Browser.quit
          || (final.Sheet_ui.Browser.row >= 0
             && (rows = 0 || final.Sheet_ui.Browser.row < rows)
             && final.Sheet_ui.Browser.col >= 0
             && final.Sheet_ui.Browser.col < max 1 cols
             && String.length (Sheet_ui.Browser.render_text final) > 0)
      | exception _ -> false)

(* adversarial expression trees: deep, ill-typed, null-ridden, with
   ghost columns and nested aggregates — the static analyzer must
   return a verdict (or a diagnostic), never escape with an
   exception *)
let gen_adversarial_expr : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let const =
    oneofl
      [ Value.Null; Value.Int 42; Value.Int max_int; Value.Float 4.5;
        Value.Float nan; Value.String ""; Value.String "x";
        Value.Bool false; Value.Date 733000 ]
  in
  let leaf =
    oneof
      [ map (fun v -> Expr.Const v) const;
        map (fun c -> Expr.Col c) (oneofl [ "Price"; "Model"; "ghost"; "" ])
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           let sub = self (n / 2) in
           oneof
             [ leaf;
               (let* op =
                  oneofl
                    [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ]
                in
                let* a = sub in
                let* b = sub in
                return (Expr.Cmp (op, a, b)));
               (let* a = sub in
                let* b = sub in
                oneofl [ Expr.And (a, b); Expr.Or (a, b) ]);
               map (fun a -> Expr.Not a) sub;
               map (fun a -> Expr.Is_null a) sub;
               (let* a = sub in
                let* lo = sub in
                let* hi = sub in
                return (Expr.Between (a, lo, hi)));
               (let* a = sub in
                return
                  (Expr.In_list (a, [ Value.Null; Value.Int 1; Value.String "y" ])));
               (let* a = sub in
                return (Expr.Like (a, "%x_")));
               (let* op = oneofl [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Div ] in
                let* a = sub in
                let* b = sub in
                return (Expr.Arith (op, a, b)));
               (let* a = sub in
                return (Expr.Agg (Expr.Sum, Some a))) ])

let print_expr e = Expr.to_string e

let expr_domain_total =
  QCheck.Test.make ~count:1000
    ~name:"Expr_domain.check/tautology never raise"
    (QCheck.make ~print:print_expr gen_adversarial_expr)
    (fun e ->
      let type_of = Schema.type_of Sample_cars.schema in
      match
        ( Expr_domain.check ~type_of e,
          Expr_domain.tautology ~type_of e,
          Expr_domain.check e )
      with
      | _ -> true
      | exception _ -> false)

let sheetlint_expr_total =
  QCheck.Test.make ~count:1000
    ~name:"Sheetlint.expr never raises nor reports an analyzer failure"
    (QCheck.make ~print:print_expr gen_adversarial_expr)
    (fun e ->
      match
        Sheet_analysis.Sheetlint.expr
          ~type_of:(Schema.type_of Sample_cars.schema) e
      with
      | diags ->
          not
            (List.exists
               (fun (d : Sheet_analysis.Diagnostic.t) ->
                 d.code = "analyzer-failure")
               diags)
      | exception _ -> false)

(* ---------- Sheetscope's JSON codec ---------- *)

module J = Sheet_obs.Obs_json

let json_parser_total =
  QCheck.Test.make ~count:1000 ~name:"Obs_json.parse never raises"
    (QCheck.make ~print:(fun s -> s)
       QCheck.Gen.(
         oneof
           [ gen_garbage;
             (* JSON-flavored soup *)
             (let* words =
                list_size (int_range 0 20)
                  (oneofl
                     [ "{"; "}"; "["; "]"; ":"; ","; "null"; "true";
                       "false"; "42"; "-0.5"; "1e9"; "1e999"; "\"x\"";
                       "\"\\u0041\""; "\"\\ud83d\\ude00\""; "\"\\q\"";
                       "\"" ])
              in
              return (String.concat "" words)) ]))
    (fun s -> no_exception (fun () -> J.parse s))

let gen_json : J.t QCheck.Gen.t =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) (int_range (-1000000) 1000000);
        (* finite floats only: non-finite ones serialize as null by
           design, which is a lossy (documented) conversion *)
        map (fun f -> J.Float f) (float_range (-1e15) 1e15);
        map (fun s -> J.String s)
          (string_size ~gen:(map Char.chr (int_range 32 126))
             (int_range 0 12)) ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           oneof
             [ scalar;
               map (fun xs -> J.List xs)
                 (list_size (int_range 0 4) (self (n / 3)));
               map (fun kvs -> J.Obj kvs)
                 (list_size (int_range 0 4)
                    (pair
                       (string_size
                          ~gen:(map Char.chr (int_range 97 122))
                          (int_range 1 6))
                       (self (n / 3)))) ])

let json_round_trip =
  QCheck.Test.make ~count:1000
    ~name:"Obs_json: to_string |> parse is the identity"
    (QCheck.make ~print:J.to_string gen_json)
    (fun v ->
      match J.parse (J.to_string v) with
      | Ok v' -> J.equal v v'
      | Error _ -> false)

(* Profile.of_json must be a total parser: arbitrary JSON — including
   values that merely look like a sheetscope-profile/v1 document —
   yields Ok or Error, never an exception. *)
let profile_of_json_total =
  QCheck.Test.make ~count:1000 ~name:"Obs.Profile.of_json never raises"
    (QCheck.make ~print:J.to_string gen_json)
    (fun v -> no_exception (fun () -> Sheet_obs.Obs.Profile.of_json v))

(* The same, but biased towards near-miss documents: a valid envelope
   whose "profiles" payload is fuzzed. *)
let profile_of_json_envelope_total =
  QCheck.Test.make ~count:500
    ~name:"Obs.Profile.of_json never raises on fuzzed envelopes"
    (QCheck.make ~print:J.to_string gen_json)
    (fun payload ->
      let doc =
        J.Obj
          [ ("schema", J.String "sheetscope-profile/v1");
            ("profiles", payload) ]
      in
      no_exception (fun () -> Sheet_obs.Obs.Profile.of_json doc))

let sheetlint_sql_total =
  QCheck.Test.make ~count:500
    ~name:"Sheetlint.sql_string never raises nor reports an analyzer failure"
    (QCheck.make ~print:(fun s -> s) gen_garbage)
    (fun s ->
      let catalog =
        Sheet_sql.Catalog.of_list [ ("t", Sample_cars.relation) ]
      in
      match Sheet_analysis.Sheetlint.sql_string catalog s with
      | diags ->
          not
            (List.exists
               (fun (d : Sheet_analysis.Diagnostic.t) ->
                 d.code = "analyzer-failure")
               diags)
      | exception _ -> false)

let () =
  let suite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "sheet_fuzz"
    [ suite "parsers" [ expr_parser_total; sql_parser_total ];
      suite "entry-points"
        [ script_total; sql_executor_total; persist_total; csv_total;
          csv_ragged_total ];
      suite "analysis"
        [ expr_domain_total; sheetlint_expr_total; sheetlint_sql_total ];
      suite "json"
        [ json_parser_total; json_round_trip; profile_of_json_total;
          profile_of_json_envelope_total ];
      suite "tui" [ browser_total ] ]
