(* Property-based tests (qcheck):

   - Theorem 2: unary data manipulation operators commute with one
     another and with grouping/ordering, whenever both application
     orders satisfy the precedence relations.
   - Theorem 3 / query modification: replacing a selection in the
     query state is the same as having issued the new predicate from
     the start.
   - Theorem 1: a random core single-block SQL query evaluates to the
     same multiset through the SQL executor and through the translated
     spreadsheet-operator sequence.
   - assorted engine invariants (undo/redo, DE idempotence, selection
     conjunction splitting, expression parser roundtrip, CSV
     roundtrip). *)

open Sheet_rel
open Sheet_core
module Sql_ast = Sheet_sql.Sql_ast

let ( let* ) = QCheck.Gen.( let* ) [@@warning "-32"]

(* ---------- generators over the cars schema ---------- *)

let models = [ "Jetta"; "Civic"; "Accord" ]
let conditions = [ "Excellent"; "Good"; "Fair" ]

let gen_base_relation : Relation.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 0 40 in
  let* rows =
    list_repeat n
      (let* id = int_range 1 999 in
       let* model = oneofl models in
       let* price = int_range 8000 30000 in
       let* year = int_range 2000 2008 in
       let* mileage = int_range 0 150000 in
       let* condition = oneofl conditions in
       return
         (Row.of_list
            [ Value.Int id; Value.String model; Value.Int price;
              Value.Int year; Value.Int mileage; Value.String condition ]))
  in
  return (Relation.make Sample_cars.schema rows)

(* numeric columns of the base schema *)
let numeric_cols = [ "Price"; "Year"; "Mileage" ]
let string_cols = [ "Model"; "Condition" ]

let gen_pred : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let atom =
    oneof
      [ (let* col = oneofl numeric_cols in
         let* op = oneofl [ Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge; Expr.Eq ] in
         let* v = int_range 1990 120000 in
         return (Expr.Cmp (op, Expr.Col col, Expr.Const (Value.Int v))));
        (let* col = oneofl string_cols in
         let* v = oneofl (models @ conditions) in
         return
           (Expr.Cmp (Expr.Eq, Expr.Col col, Expr.Const (Value.String v))));
        (let* col = oneofl string_cols in
         let* vs = oneofl [ models; conditions ] in
         return
           (Expr.In_list
              (Expr.Col col, List.map (fun s -> Value.String s) vs)));
        (let* col = oneofl numeric_cols in
         let* lo = int_range 0 20000 in
         let* width = int_range 1 50000 in
         return
           (Expr.Between
              ( Expr.Col col,
                Expr.Const (Value.Int lo),
                Expr.Const (Value.Int (lo + width)) ))) ]
  in
  oneof
    [ atom;
      (let* a = atom in
       let* b = atom in
       oneofl [ Expr.And (a, b); Expr.Or (a, b) ]);
      (let* a = atom in
       return (Expr.Not a)) ]

let gen_formula_expr : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* a = oneofl numeric_cols in
  let* b = oneofl numeric_cols in
  let* op = oneofl [ Expr.Add; Expr.Sub; Expr.Mul ] in
  let* k = int_range 1 4 in
  oneofl
    [ Expr.Arith (op, Expr.Col a, Expr.Col b);
      Expr.Arith (op, Expr.Col a, Expr.Const (Value.Int k)) ]

(* A random unary operator with deterministic explicit names so that
   application order cannot leak into auto-generated column names. *)
let gen_unary_op ~tag : Op.t QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [ (let* p = gen_pred in
       return (Op.Select p));
      (let* col = oneofl (numeric_cols @ string_cols) in
       return (Op.Project col));
      (let* fn = oneofl [ Expr.Sum; Expr.Avg; Expr.Min; Expr.Max ] in
       let* col = oneofl numeric_cols in
       return
         (Op.Aggregate
            { fn; col = Some col; level = 1;
              as_name = Some (Printf.sprintf "agg_%s" tag) }));
      (let* expr = gen_formula_expr in
       return
         (Op.Formula
            { name = Some (Printf.sprintf "fc_%s" tag); expr }));
      return Op.Dedup;
      (let* col = oneofl (string_cols @ [ "Year" ]) in
       let* dir = oneofl [ Grouping.Asc; Grouping.Desc ] in
       return (Op.Group { basis = [ col ]; dir }));
      (let* col = oneofl (numeric_cols @ string_cols) in
       let* dir = oneofl [ Grouping.Asc; Grouping.Desc ] in
       return (Op.Order { attr = col; dir; level = 1 })) ]

let is_group_or_order = function
  | Op.Group _ | Op.Regroup _ | Op.Ungroup | Op.Order _ -> true
  | _ -> false

(* Canonical comparison: sort columns by name, then rows. *)
let canonical sheet =
  let rel = Materialize.full sheet in
  let names = List.sort String.compare (Schema.names (Relation.schema rel)) in
  Relation.normalize (Rel_algebra.project names rel)

let apply_ops sheet ops =
  List.fold_left
    (fun acc op ->
      match acc with
      | Error _ as e -> e
      | Ok sheet -> Engine.apply sheet op)
    (Ok sheet) ops

(* ---------- Theorem 2 ---------- *)

let commutativity =
  QCheck.Test.make ~count:500 ~name:"theorem2: unary operators commute"
    QCheck.(
      make ~print:(fun (_, a, b) ->
          Printf.sprintf "%s THEN %s" (Op.describe a) (Op.describe b))
        Gen.(
          let* rel = gen_base_relation in
          let* a = gen_unary_op ~tag:"a" in
          let* b = gen_unary_op ~tag:"b" in
          return (rel, a, b)))
    (fun (rel, a, b) ->
      (* grouping and ordering need not commute with each other *)
      QCheck.assume (not (is_group_or_order a && is_group_or_order b));
      let sheet = Spreadsheet.of_relation ~name:"t" rel in
      match (apply_ops sheet [ a; b ], apply_ops sheet [ b; a ]) with
      | Ok s1, Ok s2 -> Relation.equal (canonical s1) (canonical s2)
      | _ ->
          (* a precedence relation was violated in at least one order;
             Theorem 2 does not apply *)
          QCheck.assume_fail ())

(* A deeper version: a whole pipeline of operators applied in two
   different interleavings (the grouping/ordering subsequence kept in
   relative order) gives the same sheet. *)
let pipeline_permutation =
  QCheck.Test.make ~count:200
    ~name:"theorem2: data-manipulation ops permute around group/order"
    QCheck.(
      make ~print:(fun (_, ops, k) ->
          Printf.sprintf "insert op %d of [%s]" k
            (String.concat "; " (List.map Op.describe ops)))
        Gen.(
          let* rel = gen_base_relation in
          let* ops =
            list_size (int_range 2 5)
              (let* i = int_range 0 999 in
               gen_unary_op ~tag:(string_of_int i))
          in
          let* k = int_range 0 (List.length ops - 1) in
          return (rel, ops, k)))
    (fun (rel, ops, k) ->
      (* move the k-th op to the front unless the move crosses another
         grouping/ordering op *)
      let target = List.nth ops k in
      let before = List.filteri (fun i _ -> i < k) ops in
      QCheck.assume
        (not
           (is_group_or_order target
           && List.exists is_group_or_order before));
      let moved = (target :: before)
                  @ List.filteri (fun i _ -> i > k) ops in
      let sheet = Spreadsheet.of_relation ~name:"t" rel in
      match (apply_ops sheet ops, apply_ops sheet moved) with
      | Ok s1, Ok s2 -> Relation.equal (canonical s1) (canonical s2)
      | _ -> QCheck.assume_fail ())

let order_groups_commutes =
  QCheck.Test.make ~count:300
    ~name:"theorem2 extension: Order_groups commutes with DM operators"
    QCheck.(
      make ~print:(fun (_, op) -> Op.describe op)
        Gen.(
          let* rel = gen_base_relation in
          let* op =
            oneof
              [ (let* p = gen_pred in
                 return (Op.Select p));
                (let* col = oneofl (numeric_cols @ string_cols) in
                 return (Op.Project col));
                (let* expr = gen_formula_expr in
                 return (Op.Formula { name = Some "fc_x"; expr }));
                return Op.Dedup ]
          in
          return (rel, op)))
    (fun (rel, op) ->
      let base =
        apply_ops
          (Spreadsheet.of_relation ~name:"t" rel)
          [ Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
            Op.Aggregate
              { fn = Expr.Avg; col = Some "Price"; level = 2;
                as_name = Some "ap" } ]
      in
      match base with
      | Error _ -> QCheck.assume_fail ()
      | Ok base -> (
          let og = Op.Order_groups { attr = "ap"; dir = Grouping.Desc } in
          match
            (apply_ops base [ og; op ], apply_ops base [ op; og ])
          with
          | Ok s1, Ok s2 ->
              Relation.equal (canonical s1) (canonical s2)
          | _ -> QCheck.assume_fail ()))

(* ---------- Theorem 3: query modification ---------- *)

let modification_equals_rewrite =
  QCheck.Test.make ~count:300
    ~name:"theorem3: replacing a selection == issuing it originally"
    QCheck.(
      make ~print:(fun (_, p1, p2, ops) ->
          Printf.sprintf "sel %s -> %s among [%s]" (Expr.to_string p1)
            (Expr.to_string p2)
            (String.concat "; " (List.map Op.describe ops)))
        Gen.(
          let* rel = gen_base_relation in
          let* p1 = gen_pred in
          let* p2 = gen_pred in
          let* ops =
            list_size (int_range 0 4)
              (let* i = int_range 0 999 in
               gen_unary_op ~tag:(string_of_int i))
          in
          return (rel, p1, p2, ops)))
    (fun (rel, p1, p2, ops) ->
      let sheet = Spreadsheet.of_relation ~name:"t" rel in
      match apply_ops sheet (Op.Select p1 :: ops) with
      | Error _ -> QCheck.assume_fail ()
      | Ok with_p1 -> (
          let sel_id =
            match
              with_p1.Spreadsheet.state.Query_state.selections
            with
            | s :: _ -> s.Query_state.id
            | [] -> -1
          in
          match
            ( Engine.replace_selection with_p1 sel_id p2,
              apply_ops sheet (Op.Select p2 :: ops) )
          with
          | Ok modified, Ok fresh ->
              Relation.equal (canonical modified) (canonical fresh)
          | _ -> QCheck.assume_fail ()))

let removal_equals_never_issued =
  QCheck.Test.make ~count:300
    ~name:"theorem3: removing a selection == never having issued it"
    QCheck.(
      make ~print:(fun (_, p1, ops) ->
          Printf.sprintf "drop %s among [%s]" (Expr.to_string p1)
            (String.concat "; " (List.map Op.describe ops)))
        Gen.(
          let* rel = gen_base_relation in
          let* p1 = gen_pred in
          let* ops =
            list_size (int_range 0 4)
              (let* i = int_range 0 999 in
               gen_unary_op ~tag:(string_of_int i))
          in
          return (rel, p1, ops)))
    (fun (rel, p1, ops) ->
      let sheet = Spreadsheet.of_relation ~name:"t" rel in
      match (apply_ops sheet (Op.Select p1 :: ops), apply_ops sheet ops) with
      | Ok with_p1, Ok without -> (
          let sel_id =
            match with_p1.Spreadsheet.state.Query_state.selections with
            | s :: _ -> s.Query_state.id
            | [] -> -1
          in
          match Engine.remove_selection with_p1 sel_id with
          | Ok removed ->
              Relation.equal (canonical removed) (canonical without)
          | Error _ -> QCheck.assume_fail ())
      | _ -> QCheck.assume_fail ())

(* ---------- engine invariants ---------- *)

let dedup_idempotent =
  QCheck.Test.make ~count:200 ~name:"duplicate elimination is idempotent"
    (QCheck.make gen_base_relation)
    (fun rel ->
      let sheet = Spreadsheet.of_relation ~name:"t" rel in
      match apply_ops sheet [ Op.Dedup; Op.Dedup ] with
      | Ok twice -> (
          match apply_ops sheet [ Op.Dedup ] with
          | Ok once -> Relation.equal (canonical once) (canonical twice)
          | Error _ -> false)
      | Error _ -> false)

let selection_conjunction_splits =
  QCheck.Test.make ~count:300
    ~name:"select (a AND b) == select a; select b"
    QCheck.(
      make
        Gen.(
          let* rel = gen_base_relation in
          let* a = gen_pred in
          let* b = gen_pred in
          return (rel, a, b)))
    (fun (rel, a, b) ->
      let sheet = Spreadsheet.of_relation ~name:"t" rel in
      match
        ( apply_ops sheet [ Op.Select (Expr.And (a, b)) ],
          apply_ops sheet [ Op.Select a; Op.Select b ] )
      with
      | Ok s1, Ok s2 -> Relation.equal (canonical s1) (canonical s2)
      | _ -> false)

let project_unproject_roundtrip =
  QCheck.Test.make ~count:200 ~name:"hide then show restores the sheet"
    QCheck.(
      make
        Gen.(
          let* rel = gen_base_relation in
          let* col = oneofl (numeric_cols @ string_cols) in
          return (rel, col)))
    (fun (rel, col) ->
      let sheet = Spreadsheet.of_relation ~name:"t" rel in
      match apply_ops sheet [ Op.Project col; Op.Unproject col ] with
      | Ok restored ->
          Relation.equal (canonical sheet) (canonical restored)
      | Error _ -> false)

let undo_redo_roundtrip =
  QCheck.Test.make ~count:150 ~name:"undo^k; redo^k is the identity"
    QCheck.(
      make
        Gen.(
          let* rel = gen_base_relation in
          let* ops =
            list_size (int_range 1 5)
              (let* i = int_range 0 999 in
               gen_unary_op ~tag:(string_of_int i))
          in
          let* k = int_range 1 5 in
          return (rel, ops, k)))
    (fun (rel, ops, k) ->
      let session = Session.create ~name:"t" rel in
      let session =
        List.fold_left
          (fun s op ->
            match Session.apply s op with Ok s -> s | Error _ -> s)
          session ops
      in
      let before = canonical (Session.current session) in
      let undone = Session.undo_many session k in
      let redone =
        let rec go s n =
          if n = 0 then s
          else match Session.redo s with Some s -> go s (n - 1) | None -> s
        in
        go undone k
      in
      Relation.equal before (canonical (Session.current redone)))

let group_retains_content =
  QCheck.Test.make ~count:200
    ~name:"grouping and ordering never change the multiset of rows"
    QCheck.(
      make
        Gen.(
          let* rel = gen_base_relation in
          let* col = oneofl (string_cols @ [ "Year" ]) in
          let* ocol = oneofl numeric_cols in
          return (rel, col, ocol)))
    (fun (rel, col, ocol) ->
      let sheet = Spreadsheet.of_relation ~name:"t" rel in
      match
        apply_ops sheet
          [ Op.Group { basis = [ col ]; dir = Grouping.Asc };
            Op.Order { attr = ocol; dir = Grouping.Desc; level = 2 } ]
      with
      | Ok organized ->
          Relation.equal (canonical sheet) (canonical organized)
      | Error _ -> QCheck.assume_fail ())

(* ---------- expression parser / printer ---------- *)

let expr_roundtrip =
  QCheck.Test.make ~count:500 ~name:"expression pp/parse roundtrip"
    (QCheck.make ~print:Expr.to_string gen_pred)
    (fun e ->
      match Expr_parse.parse_string (Expr.to_string e) with
      | Ok e2 -> Expr.equal e e2
      | Error _ -> false)

(* ---------- CSV ---------- *)

let csv_roundtrip =
  QCheck.Test.make ~count:200 ~name:"CSV write/read roundtrip"
    (QCheck.make gen_base_relation)
    (fun rel ->
      let again =
        Csv.load_relation ~schema:Sample_cars.schema (Csv.of_relation rel)
      in
      Relation.equal rel again)

(* ---------- persistence ---------- *)

let gen_sheet_with_state : Spreadsheet.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* rel = gen_base_relation in
  let* ops =
    list_size (int_range 0 6)
      (let* i = int_range 0 999 in
       gen_unary_op ~tag:(string_of_int i))
  in
  let sheet =
    List.fold_left
      (fun sheet op ->
        match Engine.apply sheet op with Ok s -> s | Error _ -> sheet)
      (Spreadsheet.of_relation ~name:"t" rel)
      ops
  in
  return sheet

let persist_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"persist: save/load preserves the materialization and state"
    (QCheck.make gen_sheet_with_state)
    (fun sheet ->
      let sheet2 = Persist.of_string (Persist.to_string sheet) in
      Relation.equal (Materialize.full sheet) (Materialize.full sheet2)
      && Spreadsheet.hidden_columns sheet = Spreadsheet.hidden_columns sheet2
      && Grouping.equal (Spreadsheet.grouping sheet)
           (Spreadsheet.grouping sheet2)
      && List.length sheet.Spreadsheet.state.Query_state.selections
         = List.length sheet2.Spreadsheet.state.Query_state.selections)

(* ---------- group tree ---------- *)

let group_tree_flatten =
  QCheck.Test.make ~count:200
    ~name:"group tree: flattening inverts building"
    (QCheck.make gen_sheet_with_state)
    (fun sheet ->
      let tree = Group_tree.build sheet in
      List.equal Row.equal
        (Relation.rows (Materialize.full sheet))
        (Group_tree.rows tree)
      && ((* an empty grouped sheet has no structural depth *)
          Relation.cardinality (Materialize.full sheet) = 0
         || Group_tree.depth tree
            = Grouping.num_levels (Spreadsheet.grouping sheet)))

let group_tree_counts =
  QCheck.Test.make ~count:200
    ~name:"group tree: node counts agree with Materialize.group_count"
    (QCheck.make gen_sheet_with_state)
    (fun sheet ->
      let tree = Group_tree.build sheet in
      let n = Grouping.num_levels (Spreadsheet.grouping sheet) in
      QCheck.assume (Relation.cardinality (Materialize.full sheet) > 0);
      List.for_all
        (fun level ->
          Group_tree.group_count tree ~level
          = Materialize.group_count sheet ~level)
        (List.init n (fun i -> i + 1)))

(* ---------- relational substrate ---------- *)

let equijoin_equals_join =
  QCheck.Test.make ~count:200
    ~name:"equijoin == product-then-select join"
    QCheck.(
      make
        Gen.(
          let* left = gen_base_relation in
          let* right = gen_base_relation in
          return (left, right)))
    (fun (left, right) ->
      let renamed =
        Relation.unsafe_make
          (List.fold_left
             (fun s n -> Schema.rename s n ("r_" ^ n))
             (Relation.schema right)
             (Schema.names (Relation.schema right)))
          (Relation.rows right)
      in
      let a = Rel_algebra.equijoin ~on:("Year", "r_Year") left renamed in
      let b =
        Rel_algebra.join
          (Expr.Cmp (Expr.Eq, Expr.Col "Year", Expr.Col "r_Year"))
          left renamed
      in
      Relation.equal (Relation.normalize a) (Relation.normalize b))

let value_compare_total_order =
  QCheck.Test.make ~count:500 ~name:"Value.compare is a total order"
    QCheck.(
      make
        Gen.(
          let value =
            oneof
              [ return Value.Null;
                (let* b = bool in
                 return (Value.Bool b));
                (let* i = int_range (-100) 100 in
                 return (Value.Int i));
                (let* f = float_bound_inclusive 100.0 in
                 return (Value.Float f));
                (let* s = oneofl [ "a"; "b"; "zz"; "" ] in
                 return (Value.String s));
                (let* d = int_range (-1000) 20000 in
                 return (Value.Date d)) ]
          in
          let* a = value in
          let* b = value in
          let* c = value in
          return (a, b, c)))
    (fun (a, b, c) ->
      let sgn x = compare x 0 in
      sgn (Value.compare a b) = -sgn (Value.compare b a)
      && ((not (Value.compare a b <= 0 && Value.compare b c <= 0))
          || Value.compare a c <= 0)
      && Value.equal a b = (Value.compare a b = 0))

let date_roundtrip =
  QCheck.Test.make ~count:500 ~name:"civil date conversion roundtrips"
    QCheck.(make Gen.(int_range (-200_000) 200_000))
    (fun days ->
      let y, m, d = Value.ymd_of_days days in
      Value.equal (Value.of_ymd y m d) (Value.Date days)
      && m >= 1 && m <= 12 && d >= 1 && d <= 31)

(* ---------- expression simplifier ---------- *)

let simplify_preserves_eval =
  QCheck.Test.make ~count:500
    ~name:"Expr_simplify preserves evaluation"
    QCheck.(
      make ~print:(fun (_, e) -> Expr.to_string e)
        Gen.(
          let* rel = gen_base_relation in
          let* p1 = gen_pred in
          let* p2 = gen_pred in
          let* wrap = int_range 0 3 in
          let e =
            match wrap with
            | 0 -> Expr.And (Expr.Const (Value.Bool true), p1)
            | 1 -> Expr.Or (p1, Expr.Const (Value.Bool false))
            | 2 -> Expr.Not (Expr.Not p1)
            | _ -> Expr.And (p1, p2)
          in
          return (rel, e)))
    (fun (rel, e) ->
      QCheck.assume (Relation.cardinality rel > 0);
      let simplified = Expr_simplify.simplify e in
      List.for_all
        (fun row ->
          let lookup name =
            Row.get row (Schema.index_exn (Relation.schema rel) name)
          in
          Value.equal
            (Expr_eval.eval ~lookup e)
            (Expr_eval.eval ~lookup simplified))
        (Relation.rows rel))

(* ---------- plan compiler ---------- *)

let plan_equals_interpreter =
  QCheck.Test.make ~count:300
    ~name:"plan: compile/execute equals the interpreter"
    (QCheck.make gen_sheet_with_state)
    (fun sheet ->
      Relation.equal
        (Plan.execute (Plan.of_sheet sheet))
        (Materialize.full sheet))

(* States seeded with selections the analyzer can prove degenerate:
   contradictory pairs, subsumed pairs, tautologies, empty ranges. The
   optimizer must prune them without changing a single row. *)
let gen_conflicting_ops : Op.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let cmp op col v = Expr.Cmp (op, Expr.Col col, Expr.Const (Value.Int v)) in
  let* col = oneofl numeric_cols in
  let* x = int_range 1990 120000 in
  let* gap = int_range 0 1000 in
  oneofl
    [ (* contradictory pair *)
      [ Op.Select (cmp Expr.Lt col x); Op.Select (cmp Expr.Gt col (x + gap)) ];
      (* contradictory pair on a string column *)
      [ Op.Select
          (Expr.Cmp
             (Expr.Eq, Expr.Col "Model", Expr.Const (Value.String "Jetta")));
        Op.Select
          (Expr.Cmp
             (Expr.Eq, Expr.Col "Model", Expr.Const (Value.String "Civic")))
      ];
      (* subsumed pair *)
      [ Op.Select (cmp Expr.Lt col x); Op.Select (cmp Expr.Le col (x + gap)) ];
      (* tautology *)
      [ Op.Select
          (Expr.Or
             ( cmp Expr.Lt col x,
               Expr.Or (cmp Expr.Ge col x, Expr.Is_null (Expr.Col col)) ))
      ];
      (* empty BETWEEN *)
      [ Op.Select
          (Expr.Between
             ( Expr.Col col,
               Expr.Const (Value.Int x),
               Expr.Const (Value.Int (x - 1)) ))
      ];
      (* integer gap: no int strictly between x and x+1 *)
      [ Op.Select (cmp Expr.Gt col x); Op.Select (cmp Expr.Lt col (x + 1)) ]
    ]

let gen_sheet_with_conflicts : Spreadsheet.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* sheet = gen_sheet_with_state in
  let* extra = gen_conflicting_ops in
  return
    (List.fold_left
       (fun sheet op ->
         match Engine.apply sheet op with Ok s -> s | Error _ -> sheet)
       sheet extra)

let plan_pruning_preserves =
  QCheck.Test.make ~count:1000
    ~name:"plan: analysis-driven pruning preserves semantics"
    (QCheck.make gen_sheet_with_conflicts)
    (fun sheet ->
      Relation.equal
        (Plan.execute (Plan.optimize (Plan.of_sheet sheet)))
        (Materialize.full sheet))

let domain_unsat_sound =
  QCheck.Test.make ~count:1000
    ~name:"expr_domain: an Unsat verdict means no row satisfies"
    QCheck.(
      make ~print:(fun (_, p) -> Expr.to_string p)
        Gen.(
          let* rel = gen_base_relation in
          let* p = gen_pred in
          return (rel, p)))
    (fun (rel, p) ->
      match
        Expr_domain.check ~type_of:(Schema.type_of Sample_cars.schema) p
      with
      | `Maybe -> true
      | `Unsat _ -> Relation.cardinality (Rel_algebra.select p rel) = 0)

let plan_optimize_preserves =
  QCheck.Test.make ~count:300
    ~name:"plan: optimization preserves semantics"
    (QCheck.make gen_sheet_with_state)
    (fun sheet ->
      let plan = Plan.of_sheet sheet in
      let keep = Spreadsheet.visible_columns sheet in
      let optimized = Plan.optimize ~keep plan in
      Relation.equal
        (Rel_algebra.project keep (Plan.execute optimized))
        (Materialize.visible sheet))

(* ---------- incremental materialization ---------- *)

let incremental_consistency =
  QCheck.Test.make ~count:200
    ~name:"incremental: session cache always equals a fresh replay"
    QCheck.(
      make ~print:(fun (_, ops) ->
          String.concat "; " (List.map Op.describe ops))
        Gen.(
          let* rel = gen_base_relation in
          let* ops =
            list_size (int_range 1 8)
              (let* i = int_range 0 999 in
               gen_unary_op ~tag:(string_of_int i))
          in
          return (rel, ops)))
    (fun (rel, ops) ->
      let session = Session.create ~name:"t" rel in
      let session =
        List.fold_left
          (fun session op ->
            match Session.apply session op with
            | Ok session -> session
            | Error _ -> session)
          session ops
      in
      let cached = Session.materialized session in
      let fresh =
        Rel_algebra.project
          (Spreadsheet.visible_columns (Session.current session))
          (Materialize.full (Session.current session))
      in
      Relation.equal cached fresh)

(* ---------- Theorem 1 on random SQL ---------- *)

let table_prefixes = [ "t1"; "t2" ]

let gen_catalog : Sheet_sql.Catalog.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* rels =
    QCheck.Gen.flatten_l
      (List.map
         (fun prefix ->
           let schema =
             Schema.of_list
               [ (prefix ^ "_k", Value.TInt);
                 (prefix ^ "_cat", Value.TString);
                 (prefix ^ "_num", Value.TInt);
                 (prefix ^ "_f", Value.TFloat) ]
           in
           let* n = int_range 1 25 in
           let* rows =
             list_repeat n
               (let* k = int_range 1 8 in
                let* cat = oneofl [ "a"; "b"; "c" ] in
                let* num = int_range 0 100 in
                let* f = float_bound_inclusive 50.0 in
                return
                  (Row.of_list
                     [ Value.Int k; Value.String cat; Value.Int num;
                       Value.Float f ]))
           in
           return (prefix, Relation.make schema rows))
         table_prefixes)
  in
  return (Sheet_sql.Catalog.of_list rels)

let gen_sql_query : Sql_ast.query QCheck.Gen.t =
  let open QCheck.Gen in
  let* two_tables = bool in
  let from =
    if two_tables then
      [ { Sql_ast.rel = "t1"; alias = None };
        { Sql_ast.rel = "t2"; alias = None } ]
    else [ { Sql_ast.rel = "t1"; alias = None } ]
  in
  let prefix_cols =
    if two_tables then [ "t1"; "t2" ] else [ "t1" ]
  in
  let any_num =
    oneofl (List.map (fun p -> p ^ "_num") prefix_cols)
  in
  let any_cat =
    oneofl (List.map (fun p -> p ^ "_cat") prefix_cols)
  in
  let* where =
    let join_cond =
      if two_tables then
        [ Expr.Cmp (Expr.Eq, Expr.Col "t1_k", Expr.Col "t2_k") ]
      else []
    in
    let* extra =
      option
        (let* col = any_num in
         let* v = int_range 0 100 in
         let* op = oneofl [ Expr.Lt; Expr.Ge ] in
         return (Expr.Cmp (op, Expr.Col col, Expr.Const (Value.Int v))))
    in
    let conjuncts = join_cond @ Option.to_list extra in
    return
      (match conjuncts with
      | [] -> None
      | c :: rest ->
          Some (List.fold_left (fun acc x -> Expr.And (acc, x)) c rest))
  in
  let* grouped = bool in
  if grouped then
    let* gcol = any_cat in
    let* agg_fn = oneofl [ Expr.Sum; Expr.Avg; Expr.Min; Expr.Count ] in
    let* acol = any_num in
    let* with_having = bool in
    let* having =
      if with_having then
        let* threshold = int_range 1 4 in
        return
          (Some
             (Expr.Cmp
                ( Expr.Ge,
                  Expr.Agg (Expr.Count_star, None),
                  Expr.Const (Value.Int threshold) )))
      else return None
    in
    let* second_agg = bool in
    let* order_mode = int_range 0 2 in
    let select =
      [ { Sql_ast.expr = Expr.Col gcol; alias = None };
        { Sql_ast.expr = Expr.Agg (agg_fn, Some (Expr.Col acol));
          alias = Some "the_agg" } ]
      @
      if second_agg then
        [ { Sql_ast.expr = Expr.Agg (Expr.Count_star, None);
            alias = Some "the_count" } ]
      else []
    in
    return
      { Sql_ast.distinct = false;
        select;
        from;
        where;
        group_by = [ gcol ];
        having;
        order_by =
          (match order_mode with
          | 1 -> [ { Sql_ast.expr = Expr.Col gcol; dir = `Asc } ]
          | 2 ->
              (* ordering by the aggregate alias: content equivalence *)
              [ { Sql_ast.expr = Expr.Col "the_agg"; dir = `Desc } ]
          | _ -> []) }
  else
    let* c1 = any_cat in
    let* c2 = any_num in
    let* distinct = bool in
    let* ordered = bool in
    return
      { Sql_ast.distinct;
        select =
          [ { Sql_ast.expr = Expr.Col c1; alias = None };
            { Sql_ast.expr = Expr.Col c2; alias = None } ];
        from;
        where;
        group_by = [];
        having = None;
        order_by =
          (if ordered then [ { Sql_ast.expr = Expr.Col c2; dir = `Desc } ]
           else []) }

let theorem1_random_sql =
  QCheck.Test.make ~count:300
    ~name:"theorem1: random SQL == translated spreadsheet script"
    QCheck.(
      make ~print:(fun (_, q) -> Sql_ast.to_string q)
        Gen.(
          let* catalog = gen_catalog in
          let* q = gen_sql_query in
          return (catalog, q)))
    (fun (catalog, q) ->
      match
        ( Sheet_sql.Sql_executor.run catalog q,
          Sheet_sql.Sql_to_sheet.execute catalog q )
      with
      | Ok expected, Ok actual ->
          Relation.equal_unordered_data
            (Relation.normalize expected)
            (Relation.normalize actual)
      | Error _, _ | _, Error _ -> QCheck.assume_fail ())

let () =
  let suite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "sheet_props"
    [ suite "theorem2"
        [ commutativity; pipeline_permutation; order_groups_commutes ];
      suite "theorem3"
        [ modification_equals_rewrite; removal_equals_never_issued ];
      suite "invariants"
        [ dedup_idempotent; selection_conjunction_splits;
          project_unproject_roundtrip; undo_redo_roundtrip;
          group_retains_content ];
      suite "parser" [ expr_roundtrip ];
      suite "io" [ csv_roundtrip; persist_roundtrip ];
      suite "structure"
        [ group_tree_flatten; group_tree_counts; equijoin_equals_join;
          value_compare_total_order; date_roundtrip ];
      suite "incremental" [ incremental_consistency ];
      suite "plan"
        [ plan_equals_interpreter; plan_optimize_preserves;
          plan_pruning_preserves; simplify_preserves_eval ];
      suite "analysis" [ domain_unsat_sound ];
      suite "theorem1" [ theorem1_random_sql ] ]
