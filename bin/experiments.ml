(* Regenerate every table and figure of the paper's evaluation.

   Usage: experiments [table1|table2|table3|table4_5|fig3|fig4|fig5|
                       table6|stats|theorem1|all] [--trace out.json]
   (default: all)

   --trace records every engine/materializer/plan span of the run and
   writes a Chrome trace_event JSON (load in about://tracing or
   Perfetto).

   The experiment ids match the index in DESIGN.md §6. *)

open Sheet_rel
open Sheet_core

let section title =
  Printf.printf "\n=== %s ===\n\n" title

let run_script_exn session script =
  match Script.run_silent session script with
  | Ok s -> s
  | Error msg -> failwith ("script failed: " ^ msg)

let cars_session () = Session.create ~name:"cars" Sample_cars.relation

(* ---- Tables I-V: the running example ---- *)

let table1 () =
  section "Table I -- Sample Used Car Database";
  Render.print (Session.current (cars_session ()))

let grouping_setup = {|
group Model desc
group Year asc
order Price asc
|}

let table2 () =
  section "Table II -- Car Database After Grouping by Condition";
  let s = run_script_exn (cars_session ()) grouping_setup in
  let s = run_script_exn s "group Year, Model, Condition asc" in
  Render.print (Session.current s)

let table3 () =
  section "Table III -- Database After Computing Average Price";
  let s = run_script_exn (cars_session ()) grouping_setup in
  let s = run_script_exn s "agg avg Price level 3" in
  let s = run_script_exn s "hide Condition" in
  Render.print (Session.current s)

let table4_5 () =
  section "Table IV -- Results Before Query Modification";
  let s =
    run_script_exn (cars_session ())
      {|select Year = 2005
select Model = 'Jetta'
select Mileage < 80000
group Condition asc
order Price asc|}
  in
  Render.print (Session.current s);
  section "Table V -- Results After Query Modification (Year -> 2006)";
  let year_sel =
    match Session.selections_on s "Year" with
    | sel :: _ -> sel.Query_state.id
    | [] -> failwith "no selection on Year"
  in
  let s =
    match
      Session.replace_selection s ~id:year_sel
        (Sheet_rel.Expr_parse.parse_string_exn "Year = 2006")
    with
    | Ok s -> s
    | Error e -> failwith (Errors.to_string e)
  in
  Render.print (Session.current s)

(* ---- the user study ---- *)

let report = lazy (Sheet_study.Report.of_observations
                     (Sheet_study.Simulator.run ()))

let fig3 () =
  section "Figure 3 -- Speed Result";
  let r = Lazy.force report in
  Printf.printf "%-6s %12s %12s %8s\n" "query" "Navicat" "SheetMusiq" "ratio";
  List.iter
    (fun (task, nav, sheet) ->
      Printf.printf "%-6d %12.1f %12.1f %7.2fx\n" task nav sheet
        (nav /. Float.max 0.01 sheet))
    (Sheet_study.Report.fig3_rows r)

let fig4 () =
  section "Figure 4 -- Standard Deviation of Speeds";
  let r = Lazy.force report in
  Printf.printf "%-6s %12s %12s\n" "query" "Navicat" "SheetMusiq";
  List.iter
    (fun (task, nav, sheet) ->
      Printf.printf "%-6d %12.1f %12.1f\n" task nav sheet)
    (Sheet_study.Report.fig4_rows r)

let fig5 () =
  section "Figure 5 -- Correctness Result";
  let r = Lazy.force report in
  Printf.printf "%-6s %12s %12s\n" "query" "Navicat" "SheetMusiq";
  List.iter
    (fun (task, nav, sheet) -> Printf.printf "%-6d %12d %12d\n" task nav sheet)
    (Sheet_study.Report.fig5_rows r);
  let t = r.Sheet_study.Report.totals in
  Printf.printf
    "totals: SheetMusiq %d/%d, Navicat %d/%d (paper: 95/100 vs 81/100)\n"
    t.Sheet_study.Report.sheet_correct_total
    t.Sheet_study.Report.trials_per_tool
    t.Sheet_study.Report.navicat_correct_total
    t.Sheet_study.Report.trials_per_tool

let table6 () =
  section "Table VI -- Subjective Results";
  let r = Lazy.force report in
  let s = r.Sheet_study.Report.subjective in
  Printf.printf "Prefer SheetMusiq / Navicat:       %d / %d\n"
    s.Sheet_study.Report.prefer_sheet s.Sheet_study.Report.prefer_navicat;
  Printf.printf "Seeing data helps (yes):           %d\n"
    s.Sheet_study.Report.seeing_data_helps_yes;
  Printf.printf "Progressive refinement better:     %d\n"
    s.Sheet_study.Report.progressive_refinement_yes;
  Printf.printf "Concepts easier in SheetMusiq:     %d\n"
    s.Sheet_study.Report.concepts_easier_yes

let stats () =
  section "Significance analysis (Sec. VII-A.2/3)";
  let r = Lazy.force report in
  List.iter
    (fun p ->
      Printf.printf "query %2d: Mann-Whitney p = %.5f%s\n"
        p.Sheet_study.Report.task p.Sheet_study.Report.mw_p
        (if p.Sheet_study.Report.mw_p < 0.002 then "  (significant)" else ""))
    r.Sheet_study.Report.per_task;
  Printf.printf "significant at 0.002: queries %s (paper: all but 5, 7, 10)\n"
    (String.concat ", "
       (List.map string_of_int (Sheet_study.Report.significant_tasks r)));
  Printf.printf "Fisher's exact on totals: p = %.5f (paper: < 0.004)\n"
    r.Sheet_study.Report.totals.Sheet_study.Report.fisher_p

let sensitivity () =
  section "Sensitivity of the study conclusions to simulator parameters";
  let run_with config = Sheet_study.Report.of_observations
      (Sheet_study.Simulator.run ~config ()) in
  let describe label config =
    let r = run_with config in
    let t = r.Sheet_study.Report.totals in
    let sig_tasks = Sheet_study.Report.significant_tasks r in
    let mean_ratio =
      let rows = Sheet_study.Report.fig3_rows r in
      List.fold_left (fun acc (_, nav, sheet) -> acc +. (nav /. sheet)) 0.0 rows
      /. float_of_int (List.length rows)
    in
    Printf.printf
      "%-34s correct %3d vs %3d | fisher %.4f | mean speed ratio %.2fx | \
       significant: %s\n"
      label t.Sheet_study.Report.sheet_correct_total
      t.Sheet_study.Report.navicat_correct_total
      t.Sheet_study.Report.fisher_p mean_ratio
      (String.concat "," (List.map string_of_int sig_tasks))
  in
  let base = Sheet_study.Simulator.default_config in
  describe "baseline (paper protocol)" base;
  describe "no second-tool advantage"
    { base with Sheet_study.Simulator.second_tool_discount = 1.0 };
  describe "20 subjects"
    { base with Sheet_study.Simulator.n_subjects = 20 };
  describe "strict 300 s timeout"
    { base with Sheet_study.Simulator.timeout_s = 300.0 };
  List.iter
    (fun seed ->
      describe
        (Printf.sprintf "different population (seed %d)" seed)
        { base with Sheet_study.Simulator.seed })
    [ 1; 7; 99 ];
  print_endline
    "\nThe qualitative conclusions (SheetMusiq faster on complex tasks, \
     comparable on 5/7/10,\nmore correct overall) hold across all \
     parameter variations; exact counts move with the seed.";
  ()

let analysis () =
  section "Sec. VII-A.4 analysis, quantified: why SheetMusiq wins";
  Printf.printf
    "%-4s %-34s %9s %9s %7s  %s\n" "task" "title" "sheet(s)" "nav(s)"
    "ratio" "concepts forcing the SQL window";
  List.iter
    (fun (task : Sheet_tpch.Tpch_tasks.t) ->
      let base m =
        Sheet_study.Tool_model.base_time
          (m.Sheet_study.Tool_model.plan_of_task task)
      in
      let sheet = base Sheet_study.Sheetmusiq_model.model in
      let nav = base Sheet_study.Navicat_model.model in
      let concepts =
        match Sheet_ui.Query_builder.classify task with
        | `Graphical -> "(fully graphical)"
        | `Requires_sql cs -> String.concat ", " cs
      in
      Printf.printf "%-4d %-34s %9.1f %9.1f %6.2fx  %s\n"
        task.Sheet_tpch.Tpch_tasks.id task.Sheet_tpch.Tpch_tasks.title
        sheet nav (nav /. sheet) concepts)
    Sheet_tpch.Tpch_tasks.all;
  print_endline
    "\nKLM base times (before per-subject variation and error loops).\n\
     The builder is competitive exactly on the fully graphical tasks\n\
     (5, 7, 10) and falls off the SQL cliff elsewhere — the paper's\n\
     explanation of Figs. 3-5, reproduced from the interaction\n\
     structure alone.";
  print_endline
    "\nSilent-wrong-result hazards per tool (probability x miss rate):";
  List.iter
    (fun (task : Sheet_tpch.Tpch_tasks.t) ->
      let silent m =
        let plan = m.Sheet_study.Tool_model.plan_of_task task in
        List.fold_left
          (fun acc (e : Sheet_study.Tool_model.error_source) ->
            acc
            +. (e.Sheet_study.Tool_model.prob
               *. (1.0 -. e.Sheet_study.Tool_model.detect_prob)))
          0.0 plan.Sheet_study.Tool_model.errors
      in
      Printf.printf
        "  task %2d: SheetMusiq %.3f vs Navicat %.3f\n"
        task.Sheet_tpch.Tpch_tasks.id
        (silent Sheet_study.Sheetmusiq_model.model)
        (silent Sheet_study.Navicat_model.model))
    Sheet_tpch.Tpch_tasks.all

let learning () =
  section "Learning effect (Sec. VII-A.4: 'picked up SheetMusiq much            faster')";
  Printf.printf "%-6s %22s %22s\n" "task" "Navicat time/KLM"
    "SheetMusiq time/KLM";
  List.iter
    (fun (task, nav, sheet) ->
      Printf.printf "%-6d %22.2f %22.2f\n" task nav sheet)
    (Sheet_study.Report.learning_rows (Sheet_study.Simulator.run ()));
  print_endline
    "\nTasks are performed in order; the normalized overhead decays      toward the\nsteady-state multiplier as familiarity grows — and      decays faster for\nSheetMusiq, as the paper observed on the first      two queries.";
  ()

let csv () =
  print_string
    (Sheet_study.Report.observations_csv (Sheet_study.Simulator.run ()))

(* ---- Theorem 1 spot-check ---- *)

let theorem1 () =
  section "Theorem 1 -- SQL emulation spot-check on the TPC-H tasks";
  let catalog =
    Sheet_tpch.Tpch_views.install
      (Sheet_tpch.Tpch_gen.generate
         { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 })
  in
  List.iter
    (fun (task : Sheet_tpch.Tpch_tasks.t) ->
      let ok =
        match Sheet_tpch.Tpch_tasks.verify catalog task with
        | Ok () -> "ok"
        | Error msg -> "MISMATCH: " ^ msg
      in
      Printf.printf "task %2d (%s): %s\n" task.Sheet_tpch.Tpch_tasks.id
        task.Sheet_tpch.Tpch_tasks.title ok)
    Sheet_tpch.Tpch_tasks.all

let all () =
  table1 (); table2 (); table3 (); table4_5 ();
  fig3 (); fig4 (); fig5 (); table6 (); stats (); theorem1 ();
  analysis ();
  sensitivity ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec split_trace acc = function
    | "--trace" :: path :: rest -> (Some path, List.rev_append acc rest)
    | x :: rest -> split_trace (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let trace_path, args = split_trace [] args in
  Option.iter
    (fun _ -> Sheet_obs.Obs.set_sink Sheet_obs.Obs.Memory)
    trace_path;
  let cmd = match args with c :: _ -> c | [] -> "all" in
  let finish () =
    Option.iter
      (fun path ->
        Sheet_obs.Obs.save_chrome_trace ~path;
        Printf.printf "\ntrace written to %s (%d events)\n" path
          (List.length (Sheet_obs.Obs.events ())))
      trace_path
  in
  (fun run -> run (); finish ())
  @@ fun () ->
  match cmd with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "table3" -> table3 ()
  | "table4_5" -> table4_5 ()
  | "fig3" -> fig3 ()
  | "fig4" -> fig4 ()
  | "fig5" -> fig5 ()
  | "table6" -> table6 ()
  | "stats" -> stats ()
  | "theorem1" -> theorem1 ()
  | "sensitivity" -> sensitivity ()
  | "analysis" -> analysis ()
  | "csv" -> csv ()
  | "learning" -> learning ()
  | "all" -> all ()
  | other ->
      Printf.eprintf
        "unknown experiment %S; expected table1..table6, fig3..fig5, \
         stats, theorem1, analysis, sensitivity or all\n"
        other;
      exit 2
