(* sheetserved: the Sheetserve daemon. Serves the TPC-H catalog (base
   tables + the paper's pre-joined views) over a Unix domain socket,
   one spreadsheet session per client id. See DESIGN.md §10 for the
   protocol; drive it interactively with e.g.

     echo '{"op":"ping"}' | socat - UNIX-CONNECT:/tmp/sheetserve.sock *)

let () =
  let socket = ref "/tmp/sheetserve.sock" in
  let max_sessions = ref 256 in
  let rate = ref 0 in
  let sf = ref 0.01 in
  let seed = ref 42 in
  Arg.parse
    [
      ("--socket", Arg.Set_string socket, "PATH Unix socket path");
      ("--max-sessions", Arg.Set_int max_sessions, "N admission cap");
      ( "--rate",
        Arg.Set_int rate,
        "N per-session ops/second cap (0 = unlimited)" );
      ("--sf", Arg.Set_float sf, "F TPC-H scale factor");
      ("--seed", Arg.Set_int seed, "N TPC-H generator seed");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "sheetserved [--socket PATH] [--max-sessions N] [--rate N] [--sf F]";
  let catalog =
    Sheet_tpch.Tpch_views.install
      (Sheet_tpch.Tpch_gen.generate
         { Sheet_tpch.Tpch_gen.sf = !sf; seed = !seed })
  in
  let server =
    Sheet_serve.Server.create
      (Sheet_serve.Server.config ~max_sessions:!max_sessions
         ~max_ops_per_s:!rate
         (Sheet_sql.Catalog.find catalog))
  in
  let listener = Sheet_serve.Net.listen server ~path:!socket in
  Printf.printf
    "sheetserved: listening on %s (bases: %s; max %d sessions%s)\n%!"
    !socket
    (String.concat ", " (Sheet_sql.Catalog.names catalog))
    !max_sessions
    (if !rate > 0 then Printf.sprintf ", %d ops/s per session" !rate
     else "");
  let stop = ref false in
  let quit _ = stop := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
  while not !stop do
    Unix.sleepf 0.2
  done;
  Sheet_serve.Net.shutdown listener;
  Printf.printf "sheetserved: shut down\n%!"
