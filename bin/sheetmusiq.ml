(* SheetMusiq — an interactive direct-manipulation query session in
   the terminal.

   The prototype of Sec. VI drove a spreadsheet with mouse clicks; this
   REPL drives the same engine with the Script command language (each
   line is one manipulation) and re-renders the sheet after every
   step, honoring the direct-manipulation principles: continuous
   presentation, small reversible steps, immediate feedback.

   Usage:
     sheetmusiq                      start on the used-car example
     sheetmusiq <file.csv>           start on a CSV file
     sheetmusiq --tpch [<table>]     start on a TPC-H table/view

   Extra REPL commands on top of the Script language:
     menu [<column>]   show the contextual menu (right-click model)
     sheets            list stored spreadsheets
     help              command summary
     quit              exit *)

open Sheet_rel
open Sheet_core

let help_text =
  {|Data manipulation (one step per line):
  select <predicate>              e.g. select Price < 16000 AND Year = 2005
  group <col>[, <col>...] [desc]  add a grouping level
  regroup <cols> / ungroup        replace / remove grouping
  order <col> [asc|desc] [level <n>]
  agg <fn> [<col>] [level <n>] [as <name>]   fn: count sum avg min max
  formula <name> = <expr>         e.g. formula revenue = price * quantity
  hide <col> / show <col>         projection and its inverse
  dedup                           duplicate elimination
  rename <old> <new>
Stored sheets and binary operators:
  save <name> / open <name> / close <name> / sheets
  product <name> | union <name> | except <name> | join <name> on <cond>
Query modification (Sec. V):
  selections <col>                list predicates applied to a column
  replace <id> <predicate>        rewrite history for one selection
  drop-select <id> / drop-column <name>
History:
  history | undo [n] | redo
Durable sheets:
  export <path> | import <path>
Display:
  print [n] | status | tree [n] | describe | menu [<col>] | help | quit
  sql                             show the single-block SQL equivalent
  lint                            static analysis of the current query state
Observability (Sheetscope):
  explain                         show the compiled + optimized plan
  explain analyze | profile       run the plan, per-node rows and timings
  profile last|<uid>|json         Sheetdoctor execution profiles (path
                                  attribution, cache/strategy, allocations)
  doctor                          anomaly detection over recorded profiles
  metrics                         counters, gauges, latency percentiles
  slo [json]                      evaluate latency/error-rate SLOs
                                  (per-session series included)
  flightrec [json|clear]          session flight recorder (last 512 events)
  trace [status|mem|logs|off|clear]   span tracing sink control
  trace export <path>             write Chrome trace_event JSON|}

let load_initial () =
  let argv = Sys.argv in
  if Array.length argv > 1 && argv.(1) = "--tpch" then begin
    let name = if Array.length argv > 2 then argv.(2) else "lineitem" in
    let catalog =
      Sheet_tpch.Tpch_views.install
        (Sheet_tpch.Tpch_gen.generate
           { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 })
    in
    match Sheet_sql.Catalog.find catalog name with
    | Some rel ->
        let session = Session.create ~name rel in
        (* make the other tables available for binary operators *)
        List.iter
          (fun n ->
            Store.save (Session.store session) ~name:n
              (Spreadsheet.of_relation ~name:n
                 (Sheet_sql.Catalog.find_exn catalog n)))
          (Sheet_sql.Catalog.names catalog);
        session
    | None ->
        Printf.eprintf "unknown TPC-H table %S\n" name;
        exit 2
  end
  else if Array.length argv > 1 then begin
    let path = argv.(1) in
    match Csv.load_relation (Csv.read_file path) with
    | rel -> Session.create ~name:(Filename.basename path) rel
    | exception (Csv.Csv_error msg | Sys_error msg) ->
        Printf.eprintf "cannot load %s: %s\n" path msg;
        exit 2
  end
  else Session.create ~name:"cars" Sample_cars.relation

let show session = Render.print ~max_rows:25 (Session.current session)

let handle_extra session line =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [ "menu" ] ->
      print_endline
        (Sheet_ui.Context_menu.describe
           (Sheet_ui.Context_menu.menu
              ~stored:(Store.names (Session.store session))
              (Session.current session) Sheet_ui.Context_menu.Sheet));
      true
  | [ "menu"; col ] ->
      print_endline
        (Sheet_ui.Context_menu.describe
           (Sheet_ui.Context_menu.menu
              ~stored:(Store.names (Session.store session))
              (Session.current session)
              (Sheet_ui.Context_menu.Header col)));
      true
  | [ "sql" ] ->
      (match
         Sheet_sql.Sql_of_sheet.to_string
           ~table:(Session.current session).Spreadsheet.base_name
           (Session.current session)
       with
      | Ok sql -> print_endline sql
      | Error reason -> Printf.printf "not a single-block query: %s\n" reason);
      true
  | [ "lint" ] ->
      print_endline
        (Sheet_analysis.Sheetlint.render
           (Sheet_analysis.Sheetlint.session session));
      true
  | [ "doctor" ] ->
      print_endline (Sheet_analysis.Doctor.render ());
      true
  | [ "sheets" ] ->
      (match Store.names (Session.store session) with
      | [] -> print_endline "(no stored spreadsheets)"
      | names -> print_endline (String.concat "\n" names));
      true
  | [ "help" ] ->
      print_endline help_text;
      true
  | _ -> false

let () =
  let session = ref (load_initial ()) in
  (* per-session labeled series: engine.apply{session=...} etc. feed
     the `slo` report *)
  Sheet_obs.Obs.set_ambient_labels
    (Sheet_obs.Obs.Labels.v
       [ ("session", (Session.current !session).Spreadsheet.base_name) ]);
  Printf.printf "SheetMusiq -- direct data manipulation. 'help' for \
                 commands, 'quit' to exit.\n\n";
  show !session;
  (try
     while true do
       Printf.printf "\nmusiq> %!";
       let line = input_line stdin in
       let trimmed = String.trim line in
       if trimmed = "quit" || trimmed = "exit" then raise Exit
       else if trimmed = "" then ()
       else if handle_extra !session line then ()
       else
         match Script.run_line !session line with
         | Ok { Script.session = s; output } ->
             session := s;
             (match output with
             | Some text -> print_endline text
             | None -> show !session)
         | Error msg -> Printf.printf "error: %s\n" msg
     done
   with Exit | End_of_file -> ());
  print_endline "bye."
