(* sheetmusiq-tui — full-screen direct manipulation in the terminal.

   Usage:
     sheetmusiq_tui                     the used-car example
     sheetmusiq_tui <file.csv>          any CSV file
     sheetmusiq_tui --tpch [<table>]    a generated TPC-H table/view

   All interaction logic lives in the pure, tested
   [Sheet_ui.Browser]; this file only translates Notty terminal
   events and repaints. Keys: arrows move, f filter-to-cell, s sort,
   g group, a avg, c count, h hide, u/r undo/redo, m menu, : command,
   F flight-recorder pane, q quit. *)

open Sheet_rel
open Sheet_core
open Sheet_ui

let load_initial () =
  let argv = Sys.argv in
  if Array.length argv > 1 && argv.(1) = "--tpch" then begin
    let name = if Array.length argv > 2 then argv.(2) else "lineitem" in
    let catalog =
      Sheet_tpch.Tpch_views.install
        (Sheet_tpch.Tpch_gen.generate
           { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 })
    in
    match Sheet_sql.Catalog.find catalog name with
    | Some rel -> Session.create ~name rel
    | None ->
        Printf.eprintf "unknown TPC-H table %S\n" name;
        exit 2
  end
  else if Array.length argv > 1 then
    match Csv.load_relation (Csv.read_file argv.(1)) with
    | rel -> Session.create ~name:(Filename.basename argv.(1)) rel
    | exception (Csv.Csv_error msg | Sys_error msg) ->
        Printf.eprintf "cannot load %s: %s\n" argv.(1) msg;
        exit 2
  else Session.create ~name:"cars" Sample_cars.relation

let image_of_text text =
  let open Notty in
  String.split_on_char '\n' text
  |> List.map (fun line -> I.string A.empty line)
  |> I.vcat

let event_of_notty = function
  | `Key (`Arrow `Up, _) -> Some Browser.Up
  | `Key (`Arrow `Down, _) -> Some Browser.Down
  | `Key (`Arrow `Left, _) -> Some Browser.Left
  | `Key (`Arrow `Right, _) -> Some Browser.Right
  | `Key (`Page `Up, _) -> Some Browser.Page_up
  | `Key (`Page `Down, _) -> Some Browser.Page_down
  | `Key (`Enter, _) -> Some Browser.Enter
  | `Key (`Escape, _) -> Some Browser.Escape
  | `Key (`Backspace, _) -> Some Browser.Backspace
  | `Key (`ASCII c, _) -> Some (Browser.Key c)
  | _ -> None

let () =
  let session = load_initial () in
  (* per-session labeled series feeding the slo status segment *)
  Sheet_obs.Obs.set_ambient_labels
    (Sheet_obs.Obs.Labels.v
       [ ("session", (Session.current session).Spreadsheet.base_name) ]);
  let term = Notty_unix.Term.create () in
  let state = ref (Browser.init session) in
  let rec loop () =
    let w, h = Notty_unix.Term.size term in
    Notty_unix.Term.image term
      (image_of_text (Browser.render_text ~width:w ~height:h !state));
    if not !state.Browser.quit then begin
      (match Notty_unix.Term.event term with
      | `End -> state := { !state with Browser.quit = true }
      | ev -> (
          match event_of_notty ev with
          | Some event ->
              state := Browser.handle ~page:(max 1 (h - 4)) !state event
          | None -> ()));
      loop ()
    end
  in
  loop ();
  Notty_unix.Term.release term
