(* sheetsql — a small SQL shell over the engine, with Theorem-1
   translation on demand.

   Usage:
     sheetsql                      cars example database
     sheetsql --tpch [sf]          generated TPC-H catalog (+ views)
     sheetsql a.csv b.csv ...      one table per CSV file

   Commands:
     <any core single-block SQL statement>;   run it
     \t <SQL>      show the spreadsheet-algebra translation, then run
                   it both ways and compare
     \profile <SQL>  translate, run through the plan interpreter, and
                   print per-node rows and timings (EXPLAIN ANALYZE)
     \doctor       Sheetdoctor anomaly detection over the profiles
                   recorded so far this session
     \timing       toggle per-statement wall-time reporting
     \flightrec [json|clear]   dump / export / reset the session
                   flight recorder (Sheetscope)
     \slo [json]   evaluate the declared latency/error-rate SLOs
                   (per-session labeled series included)
     \d            list tables
     \d <table>    describe a table
     \q            quit

   This is the "Navicat side" of the repository made tangible: the
   same queries the direct-manipulation REPL (bin/sheetmusiq.exe)
   builds step by step can be typed here as SQL — and \t shows the
   paper's Theorem-1 procedure turning them back into manipulation
   sequences. *)

open Sheet_rel
open Sheet_sql

let build_catalog () =
  let argv = Sys.argv in
  if Array.length argv > 1 && argv.(1) = "--tpch" then begin
    let sf =
      if Array.length argv > 2 then
        Option.value (float_of_string_opt argv.(2)) ~default:0.002
      else 0.002
    in
    Sheet_tpch.Tpch_views.install
      (Sheet_tpch.Tpch_gen.generate { Sheet_tpch.Tpch_gen.sf; seed = 42 })
  end
  else if Array.length argv > 1 then begin
    let catalog = Catalog.create () in
    Array.iteri
      (fun i path ->
        if i > 0 then
          let name =
            Filename.remove_extension (Filename.basename path)
          in
          match Csv.load_relation (Csv.read_file path) with
          | rel -> Catalog.add catalog ~name rel
          | exception (Csv.Csv_error msg | Sys_error msg) ->
              Printf.eprintf "skipping %s: %s\n" path msg)
      argv;
    catalog
  end
  else Catalog.of_list [ ("cars", Sample_cars.relation) ]

let list_tables catalog =
  List.iter
    (fun name ->
      let rel = Catalog.find_exn catalog name in
      Printf.printf "  %-24s %6d rows, %d columns\n" name
        (Relation.cardinality rel)
        (Schema.arity (Relation.schema rel)))
    (Catalog.names catalog)

let describe catalog name =
  match Catalog.find catalog name with
  | None -> Printf.printf "no table %S\n" name
  | Some rel ->
      List.iter
        (fun c ->
          Printf.printf "  %-24s %s\n" c.Schema.name
            (Value.type_name c.Schema.ty))
        (Schema.columns (Relation.schema rel))

let timing = ref false

let run_sql catalog sql =
  let result, ms =
    Sheet_obs.Obs.time (fun () -> Sql_executor.run_string catalog sql)
  in
  (match result with
  | Ok rel ->
      Table_print.print rel;
      Printf.printf "(%d rows)\n" (Relation.cardinality rel)
  | Error msg -> Printf.printf "error: %s\n" msg);
  if !timing then Printf.printf "Time: %.3f ms\n" ms

(* \profile: Theorem-1 translation, then the plan interpreter with
   per-node instrumentation — the SQL shell's EXPLAIN ANALYZE. *)
let profile_sql catalog sql =
  match Sql_parser.parse sql with
  | Error msg -> Printf.printf "parse error: %s\n" msg
  | Ok query -> (
      match Sql_to_sheet.translate catalog query with
      | Error msg -> Printf.printf "cannot translate: %s\n" msg
      | Ok plan -> (
          match Sql_to_sheet.session_of_plan catalog plan with
          | Error msg -> Printf.printf "error: %s\n" msg
          | Ok session ->
              let sheet = Sheet_core.Session.current session in
              let _rel, _profile, text =
                Sheet_core.Plan.explain_analyze
                  ~uid:sheet.Sheet_core.Spreadsheet.uid
                  (Sheet_core.Plan.of_sheet sheet)
              in
              print_string text))

let translate_and_run catalog sql =
  match Sql_parser.parse sql with
  | Error msg -> Printf.printf "parse error: %s\n" msg
  | Ok query -> (
      match Sql_to_sheet.translate catalog query with
      | Error msg -> Printf.printf "cannot translate: %s\n" msg
      | Ok plan ->
          Printf.printf "-- start on spreadsheet %S, then:\n"
            plan.Sql_to_sheet.first_relation;
          List.iteri
            (fun i op ->
              Printf.printf "  %2d. %s\n" (i + 1)
                (Sheet_core.Op.describe op))
            plan.Sql_to_sheet.ops;
          (match
             ( Sql_executor.run catalog query,
               Sql_to_sheet.execute catalog query )
           with
          | Ok expected, Ok actual ->
              Table_print.print actual;
              if
                Relation.equal_unordered_data
                  (Relation.normalize expected)
                  (Relation.normalize actual)
              then print_endline "-- spreadsheet result matches SQL"
              else print_endline "-- MISMATCH against the SQL executor!"
          | Error msg, _ | _, Error msg ->
              Printf.printf "error: %s\n" msg))

let () =
  let catalog = build_catalog () in
  (* per-session labeled series: sql.run{session=sheetsql} feeds \slo *)
  Sheet_obs.Obs.set_ambient_labels
    (Sheet_obs.Obs.Labels.v [ ("session", "sheetsql") ]);
  Printf.printf
    "sheetsql -- core single-block SQL over the spreadsheet engine.\n\
     Tables:\n";
  list_tables catalog;
  Printf.printf
    "\\d to list tables, \\t <sql> to translate, \\lint <sql> to analyze, \
     \\profile <sql> to time, \\doctor for anomaly detection, \\timing to \
     toggle, \\flightrec [json|clear] for the flight recorder, \\slo \
     [json] for the SLO report, \\q to quit.\n";
  let buffer = Buffer.create 256 in
  (try
     while true do
       Printf.printf (if Buffer.length buffer = 0 then "sql> %!" else "...> %!");
       let line = input_line stdin in
       let trimmed = String.trim line in
       if trimmed = "\\q" then raise Exit
       else if trimmed = "\\d" then list_tables catalog
       else if String.length trimmed > 3 && String.sub trimmed 0 3 = "\\d " then
         describe catalog (String.trim (String.sub trimmed 3 (String.length trimmed - 3)))
       else if String.length trimmed >= 3 && String.sub trimmed 0 3 = "\\t " then
         translate_and_run catalog
           (String.sub trimmed 3 (String.length trimmed - 3))
       else if trimmed = "\\timing" then begin
         timing := not !timing;
         Printf.printf "Timing is %s.\n" (if !timing then "on" else "off")
       end
       else if trimmed = "\\flightrec" then
         print_endline (Sheet_obs.Obs.Flightrec.render ())
       else if trimmed = "\\flightrec json" then
         print_endline
           (Sheet_obs.Obs_json.to_string (Sheet_obs.Obs.Flightrec.to_json ()))
       else if trimmed = "\\flightrec clear" then begin
         Sheet_obs.Obs.Flightrec.clear ();
         print_endline "flight recorder cleared"
       end
       else if trimmed = "\\doctor" then
         print_endline (Sheet_analysis.Doctor.render ())
       else if trimmed = "\\slo" then
         print_endline (Sheet_obs.Obs.Slo.render ())
       else if trimmed = "\\slo json" then
         print_endline
           (Sheet_obs.Obs_json.to_string (Sheet_obs.Obs.Slo.to_json ()))
       else if
         String.length trimmed >= 9 && String.sub trimmed 0 9 = "\\profile "
       then
         profile_sql catalog
           (String.sub trimmed 9 (String.length trimmed - 9))
       else if
         String.length trimmed >= 6 && String.sub trimmed 0 6 = "\\lint "
       then
         print_endline
           (Sheet_analysis.Sheetlint.render
              (Sheet_analysis.Sheetlint.sql_string catalog
                 (String.sub trimmed 6 (String.length trimmed - 6))))
       else begin
         Buffer.add_string buffer line;
         Buffer.add_char buffer ' ';
         if String.length trimmed > 0
            && trimmed.[String.length trimmed - 1] = ';' then begin
           let sql = Buffer.contents buffer in
           Buffer.clear buffer;
           run_sql catalog sql
         end
       end
     done
   with Exit | End_of_file -> ());
  print_endline "bye."
