(* Benchmark harness: regenerates every table and figure of the paper
   (printing the same rows/series the paper reports) and times each
   regeneration plus the core-operator scaling and the ablations
   called out in DESIGN.md, with Bechamel.

   Run with:  dune exec bench/main.exe            (everything)
              dune exec bench/main.exe -- quick   (skip microbenchmarks)
              dune exec bench/main.exe -- --json BENCH_sheetmusiq.json
              dune exec bench/main.exe -- --trace trace.json

   Microbenchmark runs also write a machine-readable baseline
   (benchmark name -> ns/run mean, exact p50/p90/p99/max sample
   percentiles, and rows/s where the workload has a known input
   cardinality — schema sheetmusiq-bench/v2) so future PRs have a
   perf trajectory to compare against with tools/bench_diff.exe;
   --trace records a Chrome trace_event file of the artifact
   regenerations through Sheetscope (lib/obs). *)

open Sheet_rel
open Sheet_core
open Bechamel
open Bechamel.Toolkit

(* ------------------------------------------------------------------ *)
(* Paper-artifact regenerations (the workloads under test)            *)
(* ------------------------------------------------------------------ *)

let run_script_exn session script =
  match Script.run_silent session script with
  | Ok s -> s
  | Error msg -> failwith ("script failed: " ^ msg)

let cars_session () = Session.create ~name:"cars" Sample_cars.relation

let table1_workload () =
  Render.to_string (Session.current (cars_session ()))

let table2_workload () =
  let s =
    run_script_exn (cars_session ())
      "group Model desc\ngroup Year asc\norder Price asc\ngroup Year, \
       Model, Condition asc"
  in
  Render.to_string (Session.current s)

let table3_workload () =
  let s =
    run_script_exn (cars_session ())
      "group Model desc\ngroup Year asc\norder Price asc\nagg avg Price \
       level 3\nhide Condition"
  in
  Render.to_string (Session.current s)

let table45_workload () =
  let s =
    run_script_exn (cars_session ())
      "select Year = 2005\nselect Model = 'Jetta'\nselect Mileage < \
       80000\ngroup Condition asc\norder Price asc"
  in
  let id =
    (List.hd (Session.selections_on s "Year")).Query_state.id
  in
  let s = run_script_exn s (Printf.sprintf "replace %d Year = 2006" id) in
  Render.to_string (Session.current s)

let study_report () =
  Sheet_study.Report.of_observations (Sheet_study.Simulator.run ())

let tpch_catalog =
  lazy
    (Sheet_tpch.Tpch_views.install
       (Sheet_tpch.Tpch_gen.generate
          { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 }))

let theorem1_workload () =
  let catalog = Lazy.force tpch_catalog in
  List.iter
    (fun task ->
      match Sheet_tpch.Tpch_tasks.verify catalog task with
      | Ok () -> ()
      | Error msg -> failwith msg)
    Sheet_tpch.Tpch_tasks.all

(* ------------------------------------------------------------------ *)
(* Printing the paper's rows/series                                   *)
(* ------------------------------------------------------------------ *)

let print_artifacts () =
  print_endline "============================================================";
  print_endline " Paper artifacts (same rows/series as the paper reports)";
  print_endline "============================================================";
  Printf.printf "\n--- Table I ---\n%s" (table1_workload ());
  Printf.printf "\n--- Table II ---\n%s" (table2_workload ());
  Printf.printf "\n--- Table III ---\n%s" (table3_workload ());
  Printf.printf "\n--- Tables IV/V (after modification) ---\n%s"
    (table45_workload ());
  let report = study_report () in
  Printf.printf "\n--- Figures 3-5, Table VI, significance ---\n\n%s"
    (Sheet_study.Report.render report);
  Printf.printf "\n--- Theorem 1 (all 10 TPC-H tasks, sheet == SQL) ---\n";
  (try
     theorem1_workload ();
     print_endline "all 10 tasks verified"
   with Failure msg -> print_endline ("FAILED: " ^ msg))

(* ------------------------------------------------------------------ *)
(* Operator-scaling and ablation workloads                            *)
(* ------------------------------------------------------------------ *)

let scaled_sheet n =
  Spreadsheet.of_relation ~name:"cars_n"
    (Sample_cars.scaled ~rows:n ~seed:7)

let apply_exn sheet op =
  match Engine.apply sheet op with
  | Ok s -> s
  | Error e -> failwith (Errors.to_string e)

let pred = Expr_parse.parse_string_exn "Price < 20000 AND Year >= 2003"

let selection_workload sheet () =
  let s = apply_exn sheet (Op.Select pred) in
  ignore (Materialize.full s)

let grouping_workload sheet () =
  let s =
    apply_exn sheet (Op.Group { basis = [ "Model" ]; dir = Grouping.Asc })
  in
  let s =
    apply_exn s (Op.Group { basis = [ "Year" ]; dir = Grouping.Asc })
  in
  ignore (Materialize.full s)

let aggregation_workload sheet () =
  let s =
    apply_exn sheet (Op.Group { basis = [ "Model" ]; dir = Grouping.Asc })
  in
  let s =
    apply_exn s
      (Op.Aggregate
         { fn = Expr.Avg; col = Some "Price"; level = 2; as_name = None })
  in
  ignore (Materialize.full s)

let dedup_workload sheet () =
  let s = apply_exn sheet (Op.Project "ID") in
  let s = apply_exn s Op.Dedup in
  ignore (Materialize.full s)

(* Ablation 1: precedence-stratified replay with k separate selections
   versus one merged conjunction (the cost of modifiability). *)
let replay_ablation sheet ~k ~merged () =
  let preds =
    List.init k (fun i ->
        Expr_parse.parse_string_exn
          (Printf.sprintf "Mileage < %d" (150000 - (i * 1000))))
  in
  let s =
    if merged then
      apply_exn sheet
        (Op.Select
           (List.fold_left
              (fun acc p -> Expr.And (acc, p))
              (List.hd preds) (List.tl preds)))
    else List.fold_left (fun s p -> apply_exn s (Op.Select p)) sheet preds
  in
  ignore (Materialize.full s)

(* Ablation 2: computed-column recomputation cost as columns pile up. *)
let computed_ablation sheet ~k () =
  let s =
    apply_exn sheet (Op.Group { basis = [ "Model" ]; dir = Grouping.Asc })
  in
  let s =
    List.fold_left
      (fun s i ->
        apply_exn s
          (Op.Aggregate
             { fn = Expr.Avg; col = Some "Price"; level = 2;
               as_name = Some (Printf.sprintf "avg_%d" i) }))
      s
      (List.init k Fun.id)
  in
  ignore (Materialize.full s)

(* Ablation 3: incremental materialization (Session seeds the cache
   from the parent sheet) vs full stratified replay at every step. *)
let pipeline_ops =
  [ Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
    Op.Select (Expr_parse.parse_string_exn "Year >= 2003");
    Op.Aggregate
      { fn = Expr.Avg; col = Some "Price"; level = 2; as_name = Some "ap" };
    Op.Select (Expr_parse.parse_string_exn "Price <= ap");
    Op.Formula
      { name = Some "d";
        expr = Expr_parse.parse_string_exn "ap - Price" };
    Op.Order { attr = "d"; dir = Grouping.Desc; level = 2 };
    Op.Project "Condition" ]

let incremental_pipeline rel () =
  let session = Session.create ~name:"cars_n" rel in
  ignore
    (List.fold_left
       (fun session op ->
         match Session.apply session op with
         | Ok session ->
             (* redisplay after each step, as the interface would *)
             ignore (Session.materialized session);
             session
         | Error e -> failwith (Errors.to_string e))
       session pipeline_ops)

let full_replay_pipeline rel () =
  ignore
    (List.fold_left
       (fun sheet op ->
         match Engine.apply sheet op with
         | Ok sheet ->
             ignore (Materialize.full sheet);
             sheet
         | Error e -> failwith (Errors.to_string e))
       (Spreadsheet.of_relation ~name:"cars_n" rel)
       pipeline_ops)

(* Ablation 5: raw compiled plan vs optimized plan (filter fusion +
   pushdown + projection pruning) on a selective pipeline. *)
let plan_sheet =
  lazy
    (let rel = Sample_cars.scaled ~rows:4000 ~seed:7 in
     List.fold_left apply_exn
       (Spreadsheet.of_relation ~name:"cars_n" rel)
       [ Op.Formula
           { name = Some "f1";
             expr = Expr_parse.parse_string_exn "Price * 2" };
         Op.Formula
           { name = Some "f2";
             expr = Expr_parse.parse_string_exn "Mileage / 1000" };
         Op.Select (Expr_parse.parse_string_exn "Year >= 2006");
         Op.Select (Expr_parse.parse_string_exn "Price < 18000");
         Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
         Op.Project "Condition" ])

let plan_workload ~mode () =
  let sheet = Lazy.force plan_sheet in
  let plan = Plan.of_sheet sheet in
  let plan =
    match mode with
    | `Raw -> plan
    | `Rewrites ->
        (* fusion + pushdown only: keep every produced column *)
        Plan.optimize plan
    | `Pruned ->
        Plan.optimize ~keep:(Spreadsheet.visible_columns sheet) plan
  in
  ignore (Plan.execute plan)

(* ------------------------------------------------------------------ *)
(* Relation-core scaling benchmarks (table/<op>-<n>)                  *)
(* ------------------------------------------------------------------ *)

(* Raw Rel_algebra operators at 1k/10k/100k rows, timed directly on
   prebuilt relations so only the operator is measured. Named under
   the "table" prefix so tools/bench_diff.exe guards them (alongside
   the paper-table regenerations) against >25% regressions. *)

let scaling_sizes = [ 1_000; 10_000; 100_000 ]

let scaling_rels =
  List.map (fun n -> (n, Sample_cars.scaled ~rows:n ~seed:11)) scaling_sizes

let scaling_rel n = List.assoc n scaling_rels

let scaling_pred = Expr_parse.parse_string_exn "Price < 20000 AND Year >= 2003"

(* A one-row-per-model dimension table keeps the equijoin output at
   exactly n rows whatever the input size. *)
let model_dim =
  Relation.make
    (Schema.of_list [ ("M", Value.TString); ("Origin", Value.TString) ])
    (List.map
       (fun m -> Row.of_list [ Value.String m; Value.String "de" ])
       [ "Jetta"; "Civic"; "Accord"; "Camry"; "Focus"; "Mazda3" ])

let scaling_workloads =
  List.concat_map
    (fun n ->
      let rel = scaling_rel n in
      let label op = Printf.sprintf "table/%s-%dk" op (n / 1000) in
      [ (label "select", Some n,
         fun () -> ignore (Rel_algebra.select scaling_pred rel));
        (label "project", Some n,
         fun () ->
           ignore (Rel_algebra.project [ "Model"; "Price"; "Year" ] rel));
        (label "sort", Some n,
         fun () ->
           ignore
             (Rel_algebra.sort [ ("Price", `Asc); ("Mileage", `Desc) ] rel));
        (label "equijoin", Some n,
         fun () ->
           ignore (Rel_algebra.equijoin ~on:("Model", "M") rel model_dim));
        (label "distinct", Some n,
         fun () ->
           ignore
             (Rel_algebra.distinct
                (Rel_algebra.project [ "Model"; "Year"; "Condition" ] rel)))
      ])
    scaling_sizes

(* Sheetcol: the columnar substrate itself (col/) and the 1M-row
   scans (table/*-1m). The 1M relation is lazy so the paper-artifact
   runs never pay for it; "quick" mode skips these with the other
   microbenchmarks. col/build times the row→column codec from
   scratch; col/select times the compiled selection-vector path on a
   warm (memoized) columnar view, which is what the engine's steady
   state looks like. *)

let rel_1m = lazy (Sample_cars.scaled ~rows:1_000_000 ~seed:11)

let columnar_workloads =
  [ ("table/select-1m", Some 1_000_000,
     fun () ->
       ignore (Rel_algebra.select scaling_pred (Lazy.force rel_1m)));
    ("table/project-1m", Some 1_000_000,
     fun () ->
       ignore
         (Rel_algebra.project [ "Model"; "Price"; "Year" ]
            (Lazy.force rel_1m)));
    ("col/build-100k", Some 100_000,
     fun () ->
       ignore (Columnar.of_rows (Relation.to_array (scaling_rel 100_000))));
    ("col/select-100k", Some 100_000,
     fun () ->
       ignore
         (Rel_algebra.columnar_filter (scaling_rel 100_000)
            [ scaling_pred ]));
    ("col/select-1m", Some 1_000_000,
     fun () ->
       ignore
         (Rel_algebra.columnar_filter (Lazy.force rel_1m) [ scaling_pred ]))
  ]

(* Sharded Sheetscope record path under contention: four domains
   (three spawned plus the coordinator) hammer one histogram and one
   counter concurrently, sinks off — the hot-path cost the v3
   sharding must keep invisible. Guarded under the "obs/" prefix so
   tools/bench_diff.exe fails the build if a record ever grows a lock
   or a false-sharing stall. 100k records + 100k increments per
   run. *)

let obs_contended_workload =
  let h = Sheet_obs.Obs.Histogram.histogram "bench.obs_contended" in
  let c = Sheet_obs.Obs.Metrics.counter "bench.obs_contended" in
  fun () ->
    let per_domain = 25_000 in
    let work () =
      for i = 1 to per_domain do
        Sheet_obs.Obs.Metrics.incr c;
        Sheet_obs.Obs.Histogram.record h (i land 1023)
      done
    in
    let workers = Array.init 3 (fun _ -> Domain.spawn work) in
    work ();
    Array.iter Domain.join workers

(* Sheetdoctor profile collection on the materialization hot path:
   one full replay of a 4-selection + computed-column sheet with the
   per-query profile ring recording (its default state). The gate
   (tools/doctor_gate.exe) bounds collection overhead relative to a
   disabled run; this entry guards the absolute cost under the "obs/"
   prefix so a profile hook that starts allocating per row fails
   bench_diff. *)

let profile_sheet_4k =
  lazy
    (let s = scaled_sheet 4000 in
     let s = apply_exn s (Op.Select (Expr_parse.parse_string_exn "Price < 15000")) in
     let s =
       apply_exn s
         (Op.Formula
            { name = Some "Markup";
              expr = Expr_parse.parse_string_exn "Price * 0.1" })
     in
     let s = apply_exn s (Op.Select (Expr_parse.parse_string_exn "Year >= 2001")) in
     apply_exn s (Op.Order { attr = "Price"; dir = Grouping.Desc; level = 1 }))

let profile_overhead_workload () =
  ignore (Materialize.full (Lazy.force profile_sheet_4k));
  Sheet_obs.Obs.Profile.clear ()

(* Semantic materialization cache: answering a tightened selection
   from a warm subsuming state (re-filter + proof) vs replaying the
   100k base cold. Named under the "cache/" prefix so
   tools/bench_diff.exe guards the win. Each iteration resets the
   cache so neither thunk accumulates entries across runs. *)

let cache_parent_100k =
  lazy
    (apply_exn
       (Spreadsheet.of_relation ~name:"cars-cache" (scaling_rel 100_000))
       (Op.Select (Expr_parse.parse_string_exn "Price < 12000")))

let cache_parent_rel = lazy (Materialize.full (Lazy.force cache_parent_100k))

let cache_child =
  lazy
    (apply_exn
       (Lazy.force cache_parent_100k)
       (Op.Select (Expr_parse.parse_string_exn "Year >= 2003")))

let cache_subsumed_workload () =
  Materialize.reset_cache ();
  Materialize.seed_cache
    (Lazy.force cache_parent_100k)
    (Lazy.force cache_parent_rel);
  ignore (Materialize.full_cached (Lazy.force cache_child))

let cache_cold_workload () =
  Materialize.reset_cache ();
  ignore (Materialize.full_cached (Lazy.force cache_child))

(* Ablation 4: group-tree presentation vs flat-sort emulation
   (Sec. II-A: recursive grouping can be emulated by one ordering). *)
let grouping_vs_sort sheet ~tree () =
  if tree then begin
    let s =
      apply_exn sheet
        (Op.Group { basis = [ "Model"; "Year" ]; dir = Grouping.Asc })
    in
    let rel = Materialize.full s in
    ignore (Materialize.finest_group_boundaries s rel)
  end
  else
    ignore
      (Rel_algebra.sort
         [ ("Model", `Asc); ("Year", `Asc) ]
         (Sample_cars.scaled ~rows:2000 ~seed:7))

(* ------------------------------------------------------------------ *)
(* Bechamel driver                                                    *)
(* ------------------------------------------------------------------ *)

(* Each entry: benchmark name, input cardinality when the workload has
   one (for rows/s in the JSON baseline), thunk. *)
let workloads =
  let sheet_1k = scaled_sheet 1000 in
  let sheet_4k = scaled_sheet 4000 in
  let sheet_10k = scaled_sheet 10000 in
  [ (* one bench per paper table/figure *)
    ("table1/base-spreadsheet", None, fun () -> ignore (table1_workload ()));
    ("table2/grouping", None, fun () -> ignore (table2_workload ()));
    ("table3/aggregation", None, fun () -> ignore (table3_workload ()));
    ("table45/query-modification", None,
     fun () -> ignore (table45_workload ()));
    ("fig3-5+table6/study-simulation", None,
     fun () -> ignore (study_report ()));
    ("theorem1/tpch-task-equivalence", None, theorem1_workload);
    (* operator scaling *)
    ("op/selection-1k", Some 1000, selection_workload sheet_1k);
    ("op/selection-4k", Some 4000, selection_workload sheet_4k);
    ("op/selection-10k", Some 10000, selection_workload sheet_10k);
    ("op/grouping-1k", Some 1000, grouping_workload sheet_1k);
    ("op/grouping-4k", Some 4000, grouping_workload sheet_4k);
    ("op/aggregation-1k", Some 1000, aggregation_workload sheet_1k);
    ("op/aggregation-4k", Some 4000, aggregation_workload sheet_4k);
    ("op/aggregation-10k", Some 10000, aggregation_workload sheet_10k);
    ("op/dedup-1k", Some 1000, dedup_workload sheet_1k);
    ("op/dedup-10k", Some 10000, dedup_workload sheet_10k);
    (* relation-core scaling (guarded under the "table" prefix) *)
  ]
  @ scaling_workloads
  @ columnar_workloads
  @ [ (* semantic cache (guarded under the "cache/" prefix) *)
    ("cache/cold-100k", Some 100_000, cache_cold_workload);
    ("cache/subsumed-hit-100k", Some 100_000, cache_subsumed_workload);
    ("obs/record-contended", Some 100_000, obs_contended_workload);
    ("obs/profile-overhead", Some 4000, profile_overhead_workload)
  ]
  @ [ (* ablations *)
    ("ablation/replay-8-selections", Some 1000,
     replay_ablation sheet_1k ~k:8 ~merged:false);
    ("ablation/replay-merged-conjunction", Some 1000,
     replay_ablation sheet_1k ~k:8 ~merged:true);
    ("ablation/computed-1-column", Some 1000,
     computed_ablation sheet_1k ~k:1);
    ("ablation/computed-8-columns", Some 1000,
     computed_ablation sheet_1k ~k:8);
    ("ablation/incremental-pipeline", Some 1000,
     incremental_pipeline (Sample_cars.scaled ~rows:1000 ~seed:7));
    ("ablation/full-replay-pipeline", Some 1000,
     full_replay_pipeline (Sample_cars.scaled ~rows:1000 ~seed:7));
    ("ablation/plan-raw", Some 4000, plan_workload ~mode:`Raw);
    ("ablation/plan-fusion-pushdown", Some 4000,
     plan_workload ~mode:`Rewrites);
    ("ablation/plan-pruned", Some 4000, plan_workload ~mode:`Pruned);
    ("ablation/group-tree", Some 1000, grouping_vs_sort sheet_1k ~tree:true);
    ("ablation/flat-sort-emulation", Some 2000,
     grouping_vs_sort sheet_1k ~tree:false)
  ]

(* Tail-latency sampling: a direct timing loop alongside Bechamel's
   OLS mean, because interactive latency is a percentile problem
   (ISSUE 4 / DESIGN.md §8). Exact sample percentiles — rank
   ceil(phi*n) of the sorted run times — not histogram estimates. *)
let sample_percentiles f =
  ignore (f ());
  (* warmup *)
  let budget_ns = 250_000_000 in
  let t_start = Sheet_obs.Obs.now_ns () in
  let samples = ref [] in
  let n = ref 0 in
  while
    !n < 5
    || (!n < 40 && Sheet_obs.Obs.now_ns () - t_start < budget_ns)
  do
    let t0 = Sheet_obs.Obs.now_ns () in
    ignore (f ());
    samples := (Sheet_obs.Obs.now_ns () - t0) :: !samples;
    incr n
  done;
  let arr = Array.of_list !samples in
  Array.sort compare arr;
  let len = Array.length arr in
  let pct phi =
    let rank = max 1 (int_of_float (ceil (phi *. float_of_int len))) in
    arr.(min (len - 1) (rank - 1))
  in
  (pct 0.5, pct 0.9, pct 0.99, arr.(len - 1), len)

let json_of_results results =
  let open Sheet_obs in
  Obs_json.Obj
    [ ("schema", Obs_json.String "sheetmusiq-bench/v2");
      ("unit", Obs_json.String "ns/run");
      ("results",
       Obs_json.Obj
         (List.map
            (fun (name, rows, ns, (p50, p90, p99, mx, samples)) ->
              ( name,
                Obs_json.Obj
                  (("ns_per_run", Obs_json.Float ns)
                   :: ("p50_ns", Obs_json.Int p50)
                   :: ("p90_ns", Obs_json.Int p90)
                   :: ("p99_ns", Obs_json.Int p99)
                   :: ("max_ns", Obs_json.Int mx)
                   :: ("samples", Obs_json.Int samples)
                  ::
                  (match rows with
                  | Some r when ns > 0. ->
                      [ ("rows",  Obs_json.Int r);
                        ("rows_per_s",
                         Obs_json.Float (float_of_int r /. (ns /. 1e9))) ]
                  | _ -> []))))
            results)) ]

let write_json ~path results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Sheet_obs.Obs_json.to_string ~pretty:true (json_of_results results));
      output_char oc '\n');
  Printf.printf "\nbaseline written to %s\n" path

let run_benchmarks ~json_path =
  print_endline "\n============================================================";
  print_endline " Microbenchmarks (Bechamel, monotonic clock)";
  print_endline "============================================================\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
  in
  Printf.printf "%-40s %14s %14s %12s %12s\n" "benchmark" "time/run"
    "rows/s" "p50" "p99";
  let pretty_ns ns =
    if Float.is_nan ns then "n/a"
    else if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
    else Printf.sprintf "%8.0f ns" ns
  in
  let measure (name, _rows, f) =
    let test = Test.make ~name (Staged.stage f) in
    let raw = Benchmark.all cfg instances test in
    let analyzed = Analyze.all ols Instance.monotonic_clock raw in
    let estimate = ref nan in
    Hashtbl.iter
      (fun _ ols_result ->
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> estimate := x
        | _ -> ())
      analyzed;
    (!estimate, sample_percentiles f)
  in
  (* Best of three separated passes: on a shared single-core box a
     scheduler burst can outlast one entry's whole measurement
     window, inflating whichever statistic it touches; it would have
     to hit the same entry in all three passes — minutes apart — to
     survive the min. A real regression moves every pass. *)
  let passes = 3 in
  let best : (string, float * (int * int * int * int * int)) Hashtbl.t =
    Hashtbl.create 64
  in
  for pass = 1 to passes do
    Printf.printf "-- pass %d/%d --\n%!" pass passes;
    List.iter
      (fun ((name, _, _) as w) ->
        let ((est, _) as m) = measure w in
        (match Hashtbl.find_opt best name with
        | Some (e0, _) when (not (Float.is_nan e0)) && (Float.is_nan est || e0 <= est)
          ->
            ()
        | _ -> Hashtbl.replace best name m);
        Printf.printf "%-40s %14s\n%!" name (pretty_ns est))
      workloads
  done;
  print_newline ();
  let results =
    List.map
      (fun (name, rows, _f) ->
        let estimate, ((p50, _, p99, _, _) as pcts) =
          Hashtbl.find best name
        in
        let throughput =
          match rows with
          | Some r when (not (Float.is_nan estimate)) && estimate > 0. ->
              Printf.sprintf "%12.3e" (float_of_int r /. (estimate /. 1e9))
          | _ -> "-"
        in
        Printf.printf "%-40s %14s %14s %12s %12s\n%!" name
          (pretty_ns estimate) throughput
          (pretty_ns (float_of_int p50))
          (pretty_ns (float_of_int p99));
        (name, rows, estimate, pcts))
      workloads
  in
  write_json ~path:json_path
    (List.filter (fun (_, _, ns, _) -> not (Float.is_nan ns)) results)

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "quick" argv in
  let arg_value flag =
    let rec go = function
      | f :: v :: _ when f = flag -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go argv
  in
  let trace_path = arg_value "--trace" in
  let json_path =
    Option.value (arg_value "--json") ~default:"BENCH_sheetmusiq.json"
  in
  if Option.is_some trace_path then Sheet_obs.Obs.set_sink Sheet_obs.Obs.Memory;
  print_artifacts ();
  (match trace_path with
  | Some path ->
      Sheet_obs.Obs.save_chrome_trace ~path;
      Printf.printf "\ntrace written to %s (%d events)\n" path
        (List.length (Sheet_obs.Obs.events ()))
  | None -> ());
  if not quick then run_benchmarks ~json_path
