exception Eval_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* Classic two-pointer wildcard matching with backtracking on '%'. *)
  let rec go pi si star_pi star_si =
    if si >= ns then
      let rec only_percents i =
        i >= np || (pattern.[i] = '%' && only_percents (i + 1))
      in
      only_percents pi
    else if pi < np && pattern.[pi] = '%' then go (pi + 1) si (pi + 1) si
    else if pi < np && (pattern.[pi] = '_' || pattern.[pi] = s.[si]) then
      go (pi + 1) (si + 1) star_pi star_si
    else if star_pi >= 0 then go star_pi (star_si + 1) star_pi (star_si + 1)
    else false
  in
  go 0 0 (-1) (-1)

let arith_op op (a : Value.t) (b : Value.t) : Value.t =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  (* calendar arithmetic: date ± days, and date - date = days *)
  | Value.Date d, Value.Int i -> (
      match op with
      | Expr.Add -> Value.Date (d + i)
      | Expr.Sub -> Value.Date (d - i)
      | _ ->
          err "only + and - apply between a date and a number of days")
  | Value.Int i, Value.Date d -> (
      match op with
      | Expr.Add -> Value.Date (d + i)
      | _ -> err "only days + date is defined")
  | Value.Date x, Value.Date y -> (
      match op with
      | Expr.Sub -> Value.Int (x - y)
      | _ -> err "dates support only subtraction between each other")
  | Value.Int x, Value.Int y -> (
      match op with
      | Expr.Add -> Value.Int (x + y)
      | Expr.Sub -> Value.Int (x - y)
      | Expr.Mul -> Value.Int (x * y)
      | Expr.Div -> if y = 0 then Value.Null else Value.Int (x / y)
      | Expr.Mod -> if y = 0 then Value.Null else Value.Int (x mod y))
  | _ -> (
      match (Value.to_float a, Value.to_float b) with
      | Some x, Some y -> (
          match op with
          | Expr.Add -> Value.Float (x +. y)
          | Expr.Sub -> Value.Float (x -. y)
          | Expr.Mul -> Value.Float (x *. y)
          | Expr.Div -> if y = 0. then Value.Null else Value.Float (x /. y)
          | Expr.Mod ->
              if y = 0. then Value.Null else Value.Float (Float.rem x y))
      | _ ->
          err "arithmetic on non-numeric values %s and %s"
            (Value.to_string a) (Value.to_string b))

let cmp_result op c =
  match op with
  | Expr.Eq -> c = 0
  | Expr.Ne -> c <> 0
  | Expr.Lt -> c < 0
  | Expr.Le -> c <= 0
  | Expr.Gt -> c > 0
  | Expr.Ge -> c >= 0

let truthy = function
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> err "expected boolean, got %s" (Value.to_string v)

let rec eval ~lookup ?agg (e : Expr.t) : Value.t =
  let ev x = eval ~lookup ?agg x in
  match e with
  | Expr.Const v -> v
  | Expr.Col c -> (
      try lookup c with Not_found -> err "unknown column %S" c)
  | Expr.Neg a -> (
      match ev a with
      | Value.Null -> Value.Null
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | v -> err "cannot negate %s" (Value.to_string v))
  | Expr.Arith (op, a, b) -> arith_op op (ev a) (ev b)
  | Expr.Concat (a, b) -> (
      match (ev a, ev b) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | x, y -> Value.String (Value.to_string x ^ Value.to_string y))
  | Expr.Cmp (op, a, b) -> (
      match Value.sql_compare (ev a) (ev b) with
      | None -> Value.Bool false
      | Some c -> Value.Bool (cmp_result op c))
  | Expr.And (a, b) -> Value.Bool (truthy (ev a) && truthy (ev b))
  | Expr.Or (a, b) -> Value.Bool (truthy (ev a) || truthy (ev b))
  | Expr.Not a -> Value.Bool (not (truthy (ev a)))
  | Expr.Is_null a -> Value.Bool (Value.is_null (ev a))
  | Expr.Like (a, pattern) -> (
      match ev a with
      | Value.Null -> Value.Bool false
      | Value.String s -> Value.Bool (like_match ~pattern s)
      | v -> err "LIKE on non-string %s" (Value.to_string v))
  | Expr.In_list (a, vs) -> (
      match ev a with
      | Value.Null -> Value.Bool false
      | v -> Value.Bool (List.exists (fun x -> Value.equal v x) vs))
  | Expr.Between (a, lo, hi) -> (
      let v = ev a in
      match (Value.sql_compare v (ev lo), Value.sql_compare v (ev hi)) with
      | Some c1, Some c2 -> Value.Bool (c1 >= 0 && c2 <= 0)
      | _ -> Value.Bool false)
  | Expr.Fn (g, a) -> (
      match (g, ev a) with
      | _, Value.Null -> Value.Null
      | Expr.Year_of, Value.Date d ->
          let y, _, _ = Value.ymd_of_days d in
          Value.Int y
      | Expr.Month_of, Value.Date d ->
          let _, m, _ = Value.ymd_of_days d in
          Value.Int m
      | Expr.Day_of, Value.Date d ->
          let _, _, dd = Value.ymd_of_days d in
          Value.Int dd
      | Expr.Abs, Value.Int i -> Value.Int (abs i)
      | Expr.Abs, Value.Float f -> Value.Float (Float.abs f)
      | Expr.Round, Value.Int i -> Value.Int i
      | Expr.Round, Value.Float f ->
          Value.Int (int_of_float (Float.round f))
      | Expr.Lower, Value.String s -> Value.String (String.lowercase_ascii s)
      | Expr.Upper, Value.String s -> Value.String (String.uppercase_ascii s)
      | Expr.Length, Value.String s -> Value.Int (String.length s)
      | g, v ->
          err "%s applied to %s" (Expr.scalar_fun_name g)
            (Value.to_string v))
  | Expr.Case (branches, default) -> (
      let rec first = function
        | [] -> ( match default with Some d -> ev d | None -> Value.Null)
        | (cond, expr) :: rest -> if truthy (ev cond) then ev expr else first rest
      in
      first branches)
  | Expr.Agg (g, arg) -> (
      match agg with
      | Some handler -> handler g arg
      | None -> err "aggregate %s used outside a grouping context"
                  (Expr.agg_fun_name g))

let eval_pred ~lookup ?agg e = truthy (eval ~lookup ?agg e)

let eval_row ~schema ~row e =
  let lookup name = Row.get row (Schema.index_exn schema name) in
  eval ~lookup e

let apply_agg (g : Expr.agg_fun) (values : Value.t list) : Value.t =
  let non_null = List.filter (fun v -> not (Value.is_null v)) values in
  match g with
  | Expr.Count_star -> Value.Int (List.length values)
  | Expr.Count -> Value.Int (List.length non_null)
  | Expr.Count_distinct ->
      let distinct =
        List.fold_left
          (fun acc v ->
            if List.exists (fun x -> Value.equal x v) acc then acc
            else v :: acc)
          [] non_null
      in
      Value.Int (List.length distinct)
  | Expr.Sum ->
      if non_null = [] then Value.Null
      else
        let all_int =
          List.for_all (function Value.Int _ -> true | _ -> false) non_null
        in
        if all_int then
          Value.Int
            (List.fold_left
               (fun acc v ->
                 match v with Value.Int i -> acc + i | _ -> acc)
               0 non_null)
        else
          let total =
            List.fold_left
              (fun acc v ->
                match Value.to_float v with
                | Some f -> acc +. f
                | None ->
                    err "sum over non-numeric value %s" (Value.to_string v))
              0. non_null
          in
          Value.Float total
  | Expr.Avg ->
      if non_null = [] then Value.Null
      else
        let total =
          List.fold_left
            (fun acc v ->
              match Value.to_float v with
              | Some f -> acc +. f
              | None ->
                  err "avg over non-numeric value %s" (Value.to_string v))
            0. non_null
        in
        Value.Float (total /. float_of_int (List.length non_null))
  | Expr.Min ->
      List.fold_left
        (fun acc v ->
          match acc with
          | Value.Null -> v
          | _ -> if Value.compare v acc < 0 then v else acc)
        Value.Null non_null
  | Expr.Max ->
      List.fold_left
        (fun acc v ->
          match acc with
          | Value.Null -> v
          | _ -> if Value.compare v acc > 0 then v else acc)
        Value.Null non_null
