(** Tokenizer shared by the expression parser and the SQL parser.

    Identifiers keep their original spelling; keyword recognition is
    the parser's job (SQL keywords are case-insensitive, so parsers
    compare uppercased spellings). *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string  (** contents of a ['...'] literal, unescaped *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | CONCAT_BARS  (** [||] *)
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string * int  (** message, byte offset *)

val tokenize : string -> token array
(** Tokenize a whole input; the result always ends with [EOF].
    @raise Lex_error on an unexpected character or unterminated
    string. *)

val token_to_string : token -> string

(** Mutable cursor over a token array, used by recursive-descent
    parsers. *)
module Cursor : sig
  type t

  exception Parse_error of string

  val make : token array -> t
  val peek : t -> token
  val peek2 : t -> token
  val advance : t -> unit
  val next : t -> token
  (** [next c] returns the current token and advances. *)

  val error : t -> string -> 'a
  (** @raise Parse_error with context about the current token. *)

  val eat : t -> token -> unit
  (** Consume exactly the given token or fail. *)

  val ident : t -> string
  (** Consume an [IDENT] and return its spelling. *)

  val keyword : t -> string -> bool
  (** [keyword c kw] consumes the current token if it is an [IDENT]
      whose uppercase spelling equals [kw] (already uppercase). *)

  val expect_keyword : t -> string -> unit
  val at_keyword : t -> string -> bool
  (** Non-consuming test. *)

  val at_end : t -> bool
end
