(** Evaluation of expressions against a row environment.

    NULL semantics (documented in DESIGN.md): arithmetic, negation and
    concatenation propagate [Null]; comparisons, [LIKE], [IN] and
    [BETWEEN] involving [Null] are false; [AND]/[OR]/[NOT] treat a
    [Null] operand as false (two-valued simplification of SQL's
    three-valued logic — adequate for a direct-manipulation interface
    where every predicate's effect is immediately visible). Division
    by zero yields [Null]. *)

exception Eval_error of string

val eval :
  lookup:(string -> Value.t) ->
  ?agg:(Expr.agg_fun -> Expr.t option -> Value.t) ->
  Expr.t ->
  Value.t
(** [eval ~lookup e] evaluates [e], resolving column references with
    [lookup]. [Agg] nodes are delegated to [agg] when provided.
    @raise Eval_error on unknown columns (when [lookup] raises
    [Not_found]), type-mismatched operands, or an [Agg] node without
    an [agg] handler. *)

val eval_pred :
  lookup:(string -> Value.t) ->
  ?agg:(Expr.agg_fun -> Expr.t option -> Value.t) ->
  Expr.t ->
  bool
(** Evaluate as a predicate: [Bool true] is true; [Bool false] and
    [Null] are false.
    @raise Eval_error when the expression yields a non-boolean. *)

val eval_row : schema:Schema.t -> row:Row.t -> Expr.t -> Value.t
(** Convenience wrapper resolving columns positionally via a schema. *)

val apply_agg : Expr.agg_fun -> Value.t list -> Value.t
(** Fold an aggregate function over the column values of one group
    (one element per row; for [Count_star] the values are ignored).
    SQL semantics: [Count]/[Count_star] never null; [Sum]/[Avg]/
    [Min]/[Max] skip nulls and yield [Null] on an empty (or all-null)
    input; [Avg] and [Sum] over any float are floats, [Avg] is always
    a float. *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE: [%] matches any sequence, [_] any single character. *)
