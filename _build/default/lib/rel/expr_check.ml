type ty = Value.vtype option

let ( let* ) = Result.bind

let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

let unify_tys (a : ty) (b : ty) : ty option =
  match (a, b) with
  | None, t | t, None -> Some t
  | Some x, Some y -> (
      match Value.unify x y with Some t -> Some (Some t) | None -> None)

let comparable (a : ty) (b : ty) = Option.is_some (unify_tys a b)

let require_numeric what (t : ty) =
  match t with
  | None -> Ok ()
  | Some ty when Value.numeric ty -> Ok ()
  | Some ty -> errf "%s requires a numeric operand, got %s" what
                 (Value.type_name ty)

let require_bool what (t : ty) =
  match t with
  | None | Some Value.TBool -> Ok ()
  | Some ty -> errf "%s requires a boolean operand, got %s" what
                 (Value.type_name ty)

let rec check ?(allow_agg = false) schema (e : Expr.t) : (ty, string) result =
  let chk x = check ~allow_agg schema x in
  match e with
  | Expr.Const v -> Ok (Value.type_of v)
  | Expr.Col c -> (
      match Schema.type_of schema c with
      | Some ty -> Ok (Some ty)
      | None -> errf "unknown column %S" c)
  | Expr.Neg a ->
      let* t = chk a in
      let* () = require_numeric "negation" t in
      Ok t
  | Expr.Arith (op, a, b) -> (
      let name = "arithmetic" in
      let* ta = chk a in
      let* tb = chk b in
      (* calendar arithmetic: date ± int -> date, date - date -> int *)
      match (op, ta, tb) with
      | (Expr.Add | Expr.Sub), Some Value.TDate, (Some Value.TInt | None) ->
          Ok (Some Value.TDate)
      | Expr.Add, (Some Value.TInt | None), Some Value.TDate ->
          Ok (Some Value.TDate)
      | Expr.Sub, Some Value.TDate, Some Value.TDate ->
          Ok (Some Value.TInt)
      | (Expr.Mul | Expr.Div | Expr.Mod), Some Value.TDate, _
      | (Expr.Mul | Expr.Div | Expr.Mod), _, Some Value.TDate
      | Expr.Sub, _, Some Value.TDate ->
          errf "dates support only date ± days and date - date"
      | _ -> (
          let* () = require_numeric name ta in
          let* () = require_numeric name tb in
          match unify_tys ta tb with
          | Some t ->
              (* Division of two ints stays int (truncating), matching
                 the evaluator; other ops follow unification. *)
              Ok t
          | None -> errf "incompatible arithmetic operand types"))
  | Expr.Concat (a, b) ->
      let* _ = chk a in
      let* _ = chk b in
      Ok (Some Value.TString)
  | Expr.Cmp (op, a, b) ->
      let* ta = chk a in
      let* tb = chk b in
      if comparable ta tb then Ok (Some Value.TBool)
      else
        errf "cannot compare %s with %s using %s"
          (match ta with Some t -> Value.type_name t | None -> "null")
          (match tb with Some t -> Value.type_name t | None -> "null")
          (Expr.cmp_name op)
  | Expr.And (a, b) | Expr.Or (a, b) ->
      let* ta = chk a in
      let* tb = chk b in
      let* () = require_bool "AND/OR" ta in
      let* () = require_bool "AND/OR" tb in
      Ok (Some Value.TBool)
  | Expr.Not a ->
      let* t = chk a in
      let* () = require_bool "NOT" t in
      Ok (Some Value.TBool)
  | Expr.Is_null a ->
      let* _ = chk a in
      Ok (Some Value.TBool)
  | Expr.Like (a, _) -> (
      let* t = chk a in
      match t with
      | None | Some Value.TString -> Ok (Some Value.TBool)
      | Some ty ->
          errf "LIKE requires a string operand, got %s" (Value.type_name ty))
  | Expr.In_list (a, vs) ->
      let* ta = chk a in
      let bad =
        List.find_opt
          (fun v -> not (comparable ta (Value.type_of v)))
          vs
      in
      (match bad with
      | Some v -> errf "IN list value %s has incompatible type"
                    (Value.to_string v)
      | None -> Ok (Some Value.TBool))
  | Expr.Between (a, lo, hi) ->
      let* ta = chk a in
      let* tlo = chk lo in
      let* thi = chk hi in
      if comparable ta tlo && comparable ta thi then Ok (Some Value.TBool)
      else errf "BETWEEN bounds have incompatible types"
  | Expr.Fn (g, a) -> (
      let* t = chk a in
      let need what ok result =
        match t with
        | None -> Ok result
        | Some ty when ok ty -> Ok result
        | Some ty ->
            errf "%s requires a %s operand, got %s"
              (Expr.scalar_fun_name g) what (Value.type_name ty)
      in
      match g with
      | Expr.Year_of | Expr.Month_of | Expr.Day_of ->
          need "date" (fun ty -> ty = Value.TDate) (Some Value.TInt)
      | Expr.Abs -> (
          match t with
          | None -> Ok None
          | Some ty when Value.numeric ty -> Ok (Some ty)
          | Some ty ->
              errf "abs requires a numeric operand, got %s"
                (Value.type_name ty))
      | Expr.Round -> need "numeric" Value.numeric (Some Value.TInt)
      | Expr.Lower | Expr.Upper ->
          need "string" (fun ty -> ty = Value.TString) (Some Value.TString)
      | Expr.Length ->
          need "string" (fun ty -> ty = Value.TString) (Some Value.TInt))
  | Expr.Case (branches, default) ->
      if branches = [] then errf "CASE needs at least one WHEN branch"
      else
        let* () =
          List.fold_left
            (fun acc (cond, _) ->
              let* () = acc in
              let* t = chk cond in
              require_bool "CASE WHEN" t)
            (Ok ()) branches
        in
        let* tys =
          List.fold_left
            (fun acc (_, expr) ->
              let* acc = acc in
              let* t = chk expr in
              Ok (t :: acc))
            (Ok []) branches
        in
        let* tys =
          match default with
          | None -> Ok tys
          | Some d ->
              let* t = chk d in
              Ok (t :: tys)
        in
        let rec unify_all = function
          | [] -> Ok None
          | [ t ] -> Ok t
          | a :: b :: rest -> (
              match unify_tys a b with
              | Some t -> unify_all (t :: rest)
              | None -> errf "CASE branches have incompatible types")
        in
        unify_all tys
  | Expr.Agg (g, arg) ->
      if not allow_agg then
        errf "aggregate %s is not allowed here" (Expr.agg_fun_name g)
      else (
        match (g, arg) with
        | Expr.Count_star, _ -> Ok (Some Value.TInt)
        | _, None -> errf "aggregate %s needs an argument"
                       (Expr.agg_fun_name g)
        | _, Some a ->
            if Expr.has_agg a then errf "nested aggregates are not allowed"
            else
              let* t = check ~allow_agg:false schema a in
              (match g with
              | Expr.Count | Expr.Count_distinct -> Ok (Some Value.TInt)
              | Expr.Sum ->
                  let* () = require_numeric "sum" t in
                  Ok t
              | Expr.Avg ->
                  let* () = require_numeric "avg" t in
                  Ok (Some Value.TFloat)
              | Expr.Min | Expr.Max -> Ok t
              | Expr.Count_star -> assert false))

let check_pred ?allow_agg schema e =
  let* t = check ?allow_agg schema e in
  match t with
  | None | Some Value.TBool -> Ok ()
  | Some ty ->
      errf "expected a boolean condition, got %s" (Value.type_name ty)
