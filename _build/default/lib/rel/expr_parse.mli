(** Recursive-descent parser for the expression language.

    Grammar (lowest precedence first):
    {v
      expr      ::= or
      or        ::= and (OR and)*
      and       ::= not (AND not)*
      not       ::= NOT not | predicate
      predicate ::= additive [ cmp additive
                             | IS [NOT] NULL
                             | [NOT] LIKE string
                             | [NOT] IN '(' literal, ... ')'
                             | [NOT] BETWEEN additive AND additive ]
      additive  ::= multiplic (( + | - | '||' ) multiplic)*
      multiplic ::= unary (( '*' | / | '%' ) unary)*
      unary     ::= - unary | primary
      primary   ::= literal | ident | aggfun '(' [expr | *] ')'
                  | DATE string | '(' expr ')'
    v}

    SQL keywords are recognized case-insensitively. *)

val parse_expr : Lexer.Cursor.t -> Expr.t
(** Parse one expression starting at the cursor; leaves the cursor on
    the first token after the expression.
    @raise Lexer.Cursor.Parse_error on malformed input. *)

val parse_string : string -> (Expr.t, string) result
(** Parse a complete string as a single expression (must consume all
    input). *)

val parse_string_exn : string -> Expr.t
(** @raise Invalid_argument on malformed input. *)
