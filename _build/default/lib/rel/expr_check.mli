(** Static type checking of expressions against a schema.

    Run before an expression is accepted into the query state, so that
    direct-manipulation operations fail fast with a user-readable
    message instead of failing at evaluation time. *)

type ty = Value.vtype option
(** [None] is the type of the [NULL] literal (compatible with every
    type). *)

val check :
  ?allow_agg:bool -> Schema.t -> Expr.t -> (ty, string) result
(** Infer the expression's type. [allow_agg] (default [false])
    permits [Agg] nodes (whose argument must itself be aggregate-free
    and well-typed). Errors mention the offending column or operator. *)

val check_pred :
  ?allow_agg:bool -> Schema.t -> Expr.t -> (unit, string) result
(** Like {!check} but additionally requires a boolean result. *)
