(** ASCII table rendering for relations and arbitrary cell grids.

    The spreadsheet renderer in [Sheet_core.Render] builds on
    {!render_cells} to add group separators and header decorations. *)

val render_cells :
  ?align_right:bool list ->
  header:string list ->
  ?separators_after:int list ->
  string list list ->
  string
(** Render a grid with a header, column-width padding, and horizontal
    rules. [align_right] flags right-aligned columns (default: all
    left). [separators_after] lists 0-based data-row indices after
    which an extra horizontal rule is drawn (used for group
    boundaries). *)

val render : Relation.t -> string
(** Render a relation; numeric columns are right-aligned. *)

val print : Relation.t -> unit
