type t = { schema : Schema.t; rows : Row.t list }

exception Relation_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Relation_error s)) fmt

let validate_row schema row =
  let arity = Schema.arity schema in
  if Row.width row <> arity then
    err "row width %d does not match schema arity %d" (Row.width row) arity;
  for i = 0 to arity - 1 do
    let c = Schema.column_at schema i in
    match Value.type_of (Row.get row i) with
    | None -> ()
    | Some ty ->
        if not (Value.subtype ty c.Schema.ty) then
          err "value %s is not of column %s's type %s"
            (Value.to_string (Row.get row i))
            c.Schema.name
            (Value.type_name c.Schema.ty)
  done

let make schema rows =
  List.iter (validate_row schema) rows;
  { schema; rows }

let unsafe_make schema rows = { schema; rows }

let empty schema = { schema; rows = [] }
let cardinality t = List.length t.rows
let schema t = t.schema
let rows t = t.rows

let column_values t name =
  let i = Schema.index_exn t.schema name in
  List.map (fun r -> Row.get r i) t.rows

let normalize t = { t with rows = List.sort Row.compare t.rows }

let equal a b =
  Schema.equal a.schema b.schema
  && List.equal Row.equal (normalize a).rows (normalize b).rows

let equal_unordered_data a b =
  Schema.names a.schema = Schema.names b.schema
  && List.equal Row.equal (normalize a).rows (normalize b).rows

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@ %a@]" Schema.pp t.schema
    (Format.pp_print_list Row.pp)
    t.rows
