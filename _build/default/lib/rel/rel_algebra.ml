exception Algebra_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Algebra_error s)) fmt

let lookup_in schema row name = Row.get row (Schema.index_exn schema name)

let eval_on (r : Relation.t) row e =
  Expr_eval.eval ~lookup:(fun name -> lookup_in r.Relation.schema row name) e

let select pred (r : Relation.t) =
  (match Expr_check.check_pred r.Relation.schema pred with
  | Ok () -> ()
  | Error msg -> err "selection: %s" msg);
  let keep row =
    Expr_eval.eval_pred
      ~lookup:(fun name -> lookup_in r.Relation.schema row name)
      pred
  in
  Relation.unsafe_make r.Relation.schema (List.filter keep r.Relation.rows)

let project names (r : Relation.t) =
  let schema = Schema.restrict r.Relation.schema names in
  let positions = List.map (Schema.index_exn r.Relation.schema) names in
  Relation.unsafe_make schema
    (List.map (fun row -> Row.project row positions) r.Relation.rows)

let product (a : Relation.t) (b : Relation.t) =
  let schema = Schema.concat a.Relation.schema b.Relation.schema in
  let rows =
    List.concat_map
      (fun ra -> List.map (fun rb -> Row.append ra rb) b.Relation.rows)
      a.Relation.rows
  in
  Relation.unsafe_make schema rows

let union (a : Relation.t) (b : Relation.t) =
  if not (Schema.union_compatible a.Relation.schema b.Relation.schema) then
    err "union: schemas are not union-compatible";
  Relation.unsafe_make a.Relation.schema (a.Relation.rows @ b.Relation.rows)

let diff (a : Relation.t) (b : Relation.t) =
  if not (Schema.union_compatible a.Relation.schema b.Relation.schema) then
    err "difference: schemas are not union-compatible";
  (* Bag difference: each row of [b] cancels one occurrence in [a]. *)
  let budget = Hashtbl.create 64 in
  List.iter
    (fun row ->
      let h = Row.hash row in
      let existing = Hashtbl.find_opt budget h |> Option.value ~default:[] in
      Hashtbl.replace budget h (row :: existing))
    b.Relation.rows;
  let rows =
    List.filter
      (fun row ->
        let h = Row.hash row in
        let bucket = Hashtbl.find_opt budget h |> Option.value ~default:[] in
        match
          List.partition (fun r -> Row.equal r row) bucket
        with
        | [], _ -> true
        | _ :: rest_same, others ->
            Hashtbl.replace budget h (rest_same @ others);
            false)
      a.Relation.rows
  in
  Relation.unsafe_make a.Relation.schema rows

let join cond (a : Relation.t) (b : Relation.t) =
  let prod = product a b in
  (match Expr_check.check_pred prod.Relation.schema cond with
  | Ok () -> ()
  | Error msg -> err "join condition: %s" msg);
  select cond prod

let equijoin ~on:(left_col, right_col) (a : Relation.t) (b : Relation.t) =
  let schema = Schema.concat a.Relation.schema b.Relation.schema in
  let li = Schema.index_exn a.Relation.schema left_col in
  let ri = Schema.index_exn b.Relation.schema right_col in
  let index = Hashtbl.create 256 in
  List.iter
    (fun rb ->
      let key = Row.get rb ri in
      let h = Value.hash key in
      let bucket = Hashtbl.find_opt index h |> Option.value ~default:[] in
      Hashtbl.replace index h ((key, rb) :: bucket))
    b.Relation.rows;
  let rows =
    List.concat_map
      (fun ra ->
        let key = Row.get ra li in
        if Value.is_null key then []
        else
          Hashtbl.find_opt index (Value.hash key)
          |> Option.value ~default:[]
          |> List.filter_map (fun (k, rb) ->
                 if Value.equal k key then Some (Row.append ra rb) else None)
          |> List.rev)
      a.Relation.rows
  in
  Relation.unsafe_make schema rows

let distinct (r : Relation.t) =
  let seen = Hashtbl.create 64 in
  let rows =
    List.filter
      (fun row ->
        let h = Row.hash row in
        let bucket = Hashtbl.find_opt seen h |> Option.value ~default:[] in
        if List.exists (fun x -> Row.equal x row) bucket then false
        else begin
          Hashtbl.replace seen h (row :: bucket);
          true
        end)
      r.Relation.rows
  in
  Relation.unsafe_make r.Relation.schema rows

let sort keys (r : Relation.t) =
  let positions =
    List.map
      (fun (name, dir) -> (Schema.index_exn r.Relation.schema name, dir))
      keys
  in
  let compare_rows ra rb =
    let rec go = function
      | [] -> 0
      | (i, dir) :: rest ->
          let c = Value.compare (Row.get ra i) (Row.get rb i) in
          let c = match dir with `Asc -> c | `Desc -> -c in
          if c <> 0 then c else go rest
    in
    go positions
  in
  Relation.unsafe_make r.Relation.schema
    (List.stable_sort compare_rows r.Relation.rows)

let extend name ty f (r : Relation.t) =
  let schema = Schema.append r.Relation.schema { Schema.name; ty } in
  Relation.unsafe_make schema
    (List.map (fun row -> Row.append1 row (f row)) r.Relation.rows)

let group_rows cols (r : Relation.t) =
  let positions = List.map (Schema.index_exn r.Relation.schema) cols in
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
      let key = Row.project row positions in
      let h = Row.hash key in
      let bucket = Hashtbl.find_opt tbl h |> Option.value ~default:[] in
      match List.find_opt (fun (k, _) -> Row.equal k key) bucket with
      | Some (_, cell) -> cell := row :: !cell
      | None ->
          let cell = ref [ row ] in
          Hashtbl.replace tbl h ((key, cell) :: bucket);
          order := (key, cell) :: !order)
    r.Relation.rows;
  List.rev_map (fun (key, cell) -> (key, List.rev !cell)) !order

let aggregate_value (r : Relation.t) group_rows g arg =
  let values =
    match (g, arg) with
    | Expr.Count_star, _ -> List.map (fun _ -> Value.Null) group_rows
    | _, Some e -> List.map (fun row -> eval_on r row e) group_rows
    | _, None -> err "aggregate %s needs an argument" (Expr.agg_fun_name g)
  in
  Expr_eval.apply_agg g values
