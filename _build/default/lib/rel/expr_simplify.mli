(** Expression simplification: constant folding and boolean identity
    elimination.

    Used by {!Sheet_core.Plan.optimize} before evaluating fused filter
    conjunctions, and handy whenever an expression is shown to a user
    (a rewritten predicate should not read [TRUE AND Price < 10]).
    Semantics-preserving with respect to {!Expr_eval.eval}: folding
    uses the evaluator itself on constant subtrees, so NULL
    propagation and division-by-zero behave identically. *)

val simplify : Expr.t -> Expr.t
(** Bottom-up:
    - any aggregate-free subtree without column references is folded
      to its constant value;
    - [TRUE AND e] → [e], [FALSE AND e] → [FALSE], [TRUE OR e] →
      [TRUE], [FALSE OR e] → [e] (and symmetrically);
    - [NOT NOT e] → [e];
    - double negation of numeric literals is folded by the constant
      rule. *)
