(** Scalar expression language over rows.

    This is the language of the paper's selection conditions (Def. 5:
    atomic predicates [A OP B] with optional arithmetic or string
    operators, composed with AND/OR/NOT), of formula computation
    (Def. 12), of join conditions (Def. 10), and — extended with
    aggregate calls — of SQL select lists. *)

type arith = Add | Sub | Mul | Div | Mod
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type agg_fun = Count_star | Count | Count_distinct | Sum | Avg | Min | Max

(** Built-in scalar functions (an extension beyond the paper's atomic
    predicates, needed for realistic formula computation): date parts,
    numeric rounding, string casing/length. *)
type scalar_fun =
  | Year_of
  | Month_of
  | Day_of
  | Abs
  | Round  (** to the nearest integer *)
  | Lower
  | Upper
  | Length

type t =
  | Const of Value.t
  | Col of string
  | Neg of t
  | Arith of arith * t * t
  | Concat of t * t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Like of t * string  (** SQL LIKE with [%] and [_] wildcards *)
  | In_list of t * Value.t list
  | Between of t * t * t
  | Fn of scalar_fun * t  (** scalar function application *)
  | Case of (t * t) list * t option
      (** searched CASE: WHEN cond THEN expr pairs, optional ELSE.
          An extension beyond the paper's prototype, which "does not
          support ... queries with keyword 'exist' and 'case'"
          (Sec. VII-A.1). *)
  | Agg of agg_fun * t option
      (** aggregate call; only meaningful where a grouping context
          exists (SQL select/having lists, spreadsheet aggregation) *)

val columns : t -> string list
(** Free column names, each listed once, in first-occurrence order. *)

val has_agg : t -> bool
(** Does the expression contain an [Agg] node? *)

val map_columns : (string -> string) -> t -> t
(** Rename every column reference. *)

val conjuncts : t -> t list
(** Flatten top-level [And] nesting into a list of conjuncts. *)

val agg_fun_name : agg_fun -> string
val scalar_fun_name : scalar_fun -> string
val scalar_fun_of_name : string -> scalar_fun option
val cmp_name : cmp -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** SQL-ish rendering, suitable for showing to a user. *)

val to_string : t -> string
