type column_profile = {
  name : string;
  ty : Value.vtype;
  non_null : int;
  nulls : int;
  distinct : int;
  min_value : Value.t;
  max_value : Value.t;
  mean : float option;
}

let column (rel : Relation.t) name =
  let idx = Schema.index_exn (Relation.schema rel) name in
  let col = Schema.column_at (Relation.schema rel) idx in
  let values = List.map (fun row -> Row.get row idx) (Relation.rows rel) in
  let non_null_values = List.filter (fun v -> not (Value.is_null v)) values in
  let distinct =
    let seen = Hashtbl.create 64 in
    List.iter
      (fun v ->
        let h = Value.hash v in
        let bucket = Hashtbl.find_opt seen h |> Option.value ~default:[] in
        if not (List.exists (Value.equal v) bucket) then
          Hashtbl.replace seen h (v :: bucket))
      non_null_values;
    Hashtbl.fold (fun _ bucket acc -> acc + List.length bucket) seen 0
  in
  let min_value =
    List.fold_left
      (fun acc v ->
        if Value.is_null acc || Value.compare v acc < 0 then v else acc)
      Value.Null non_null_values
  in
  let max_value =
    List.fold_left
      (fun acc v ->
        if Value.is_null acc || Value.compare v acc > 0 then v else acc)
      Value.Null non_null_values
  in
  let numeric_values = List.filter_map Value.to_float non_null_values in
  let mean =
    if Value.numeric col.Schema.ty && numeric_values <> [] then
      Some
        (List.fold_left ( +. ) 0.0 numeric_values
        /. float_of_int (List.length numeric_values))
    else None
  in
  { name;
    ty = col.Schema.ty;
    non_null = List.length non_null_values;
    nulls = List.length values - List.length non_null_values;
    distinct;
    min_value;
    max_value;
    mean }

let relation rel =
  List.map (column rel) (Schema.names (Relation.schema rel))

let render rel =
  let header =
    [ "column"; "type"; "non-null"; "nulls"; "distinct"; "min"; "max";
      "mean" ]
  in
  let rows =
    List.map
      (fun p ->
        [ p.name;
          Value.type_name p.ty;
          string_of_int p.non_null;
          string_of_int p.nulls;
          string_of_int p.distinct;
          Value.to_string p.min_value;
          Value.to_string p.max_value;
          (match p.mean with
          | Some m -> Printf.sprintf "%.2f" m
          | None -> "-") ])
      (relation rel)
  in
  Table_print.render_cells ~header rows
