lib/rel/value.mli: Format
