lib/rel/row.ml: Array Format Int List Value
