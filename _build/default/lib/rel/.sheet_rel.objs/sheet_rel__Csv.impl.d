lib/rel/csv.ml: Buffer Fun List Option Printf Relation Row Schema String Value
