lib/rel/expr_parse.mli: Expr Lexer
