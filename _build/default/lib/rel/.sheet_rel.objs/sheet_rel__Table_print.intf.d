lib/rel/table_print.mli: Relation
