lib/rel/expr_eval.ml: Expr Float List Printf Row Schema String Value
