lib/rel/schema.ml: Array Format Hashtbl List Option Printf Seq Value
