lib/rel/schema.mli: Format Value
