lib/rel/rel_algebra.ml: Expr Expr_check Expr_eval Hashtbl List Option Printf Relation Row Schema Value
