lib/rel/rel_algebra.mli: Expr Relation Row Value
