lib/rel/expr.mli: Format Value
