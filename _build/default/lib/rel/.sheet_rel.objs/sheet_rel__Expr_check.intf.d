lib/rel/expr_check.mli: Expr Schema Value
