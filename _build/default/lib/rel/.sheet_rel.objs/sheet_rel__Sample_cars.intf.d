lib/rel/sample_cars.mli: Relation Schema
