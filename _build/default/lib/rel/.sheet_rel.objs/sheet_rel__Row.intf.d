lib/rel/row.mli: Format Value
