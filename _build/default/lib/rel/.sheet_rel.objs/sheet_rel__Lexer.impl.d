lib/rel/lexer.ml: Array Buffer List Printf String
