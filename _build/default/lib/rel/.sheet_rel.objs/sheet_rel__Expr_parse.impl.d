lib/rel/expr_parse.ml: Cursor Expr Lexer List Printf String Value
