lib/rel/sample_cars.ml: Array Int64 List Relation Row Schema Value
