lib/rel/expr_check.ml: Expr List Option Printf Result Schema Value
