lib/rel/lexer.mli:
