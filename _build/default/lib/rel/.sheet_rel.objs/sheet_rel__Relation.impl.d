lib/rel/relation.ml: Format List Printf Row Schema Value
