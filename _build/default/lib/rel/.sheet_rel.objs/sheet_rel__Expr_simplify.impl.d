lib/rel/expr_simplify.ml: Expr Expr_eval List Option Value
