lib/rel/relation.mli: Format Row Schema Value
