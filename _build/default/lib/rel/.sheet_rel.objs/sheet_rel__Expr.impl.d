lib/rel/expr.ml: Buffer Format Hashtbl List Option Printf String Value
