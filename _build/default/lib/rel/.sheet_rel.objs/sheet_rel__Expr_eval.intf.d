lib/rel/expr_eval.mli: Expr Row Schema Value
