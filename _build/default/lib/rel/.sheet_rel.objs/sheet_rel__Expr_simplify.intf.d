lib/rel/expr_simplify.mli: Expr
