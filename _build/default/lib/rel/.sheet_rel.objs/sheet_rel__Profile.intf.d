lib/rel/profile.mli: Relation Value
