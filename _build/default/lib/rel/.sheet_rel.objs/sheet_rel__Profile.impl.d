lib/rel/profile.ml: Hashtbl List Option Printf Relation Row Schema Table_print Value
