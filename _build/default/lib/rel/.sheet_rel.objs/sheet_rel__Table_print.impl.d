lib/rel/table_print.ml: Array Buffer List Relation Row Schema String Value
