lib/rel/value.ml: Bool Float Format Hashtbl Int Option Printf String
