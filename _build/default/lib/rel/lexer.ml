type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | CONCAT_BARS
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string * int

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  let peek_at k = if !i + k < n then Some input.[!i + k] else None in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && peek_at 1 = Some '-' then begin
      (* SQL line comment *)
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      emit (IDENT (String.sub input start (!i - start)))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      let is_float = ref false in
      if !i < n && input.[!i] = '.' && !i + 1 < n && is_digit input.[!i + 1]
      then begin
        is_float := true;
        incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done
      end;
      if !i < n && (input.[!i] = 'e' || input.[!i] = 'E') then begin
        let save = !i in
        incr i;
        if !i < n && (input.[!i] = '+' || input.[!i] = '-') then incr i;
        if !i < n && is_digit input.[!i] then begin
          is_float := true;
          while !i < n && is_digit input.[!i] do
            incr i
          done
        end
        else i := save
      end;
      let text = String.sub input start (!i - start) in
      if !is_float then emit (FLOAT (float_of_string text))
      else
        match int_of_string_opt text with
        | Some v -> emit (INT v)
        | None -> emit (FLOAT (float_of_string text))
    end
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      let start = !i in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '\'' then
          if peek_at 1 = Some '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if not !closed then raise (Lex_error ("unterminated string", start));
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two t =
        emit t;
        i := !i + 2
      in
      let one t =
        emit t;
        incr i
      in
      match (c, peek_at 1) with
      | '|', Some '|' -> two CONCAT_BARS
      | '<', Some '=' -> two LE
      | '<', Some '>' -> two NE
      | '>', Some '=' -> two GE
      | '!', Some '=' -> two NE
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '=', _ -> one EQ
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | ',', _ -> one COMMA
      | '.', _ -> one DOT
      | ';', _ -> one SEMI
      | '*', _ -> one STAR
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | _ ->
          raise
            (Lex_error (Printf.sprintf "unexpected character %C" c, !i))
    end
  done;
  emit EOF;
  Array.of_list (List.rev !toks)

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "'%s'" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | SEMI -> ";"
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | PERCENT -> "%"
  | CONCAT_BARS -> "||"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"

module Cursor = struct
  type t = { toks : token array; mutable pos : int }

  exception Parse_error of string

  let make toks =
    assert (Array.length toks > 0);
    { toks; pos = 0 }

  let peek c = c.toks.(c.pos)

  let peek2 c =
    if c.pos + 1 < Array.length c.toks then c.toks.(c.pos + 1) else EOF

  let advance c = if c.pos < Array.length c.toks - 1 then c.pos <- c.pos + 1

  let next c =
    let t = peek c in
    advance c;
    t

  let error c msg =
    raise
      (Parse_error
         (Printf.sprintf "%s (at %s, token %d)" msg
            (token_to_string (peek c))
            c.pos))

  let eat c tok =
    if peek c = tok then advance c
    else error c (Printf.sprintf "expected %s" (token_to_string tok))

  let ident c =
    match peek c with
    | IDENT s ->
        advance c;
        s
    | _ -> error c "expected identifier"

  let at_keyword c kw =
    match peek c with
    | IDENT s -> String.uppercase_ascii s = kw
    | _ -> false

  let keyword c kw =
    if at_keyword c kw then begin
      advance c;
      true
    end
    else false

  let expect_keyword c kw =
    if not (keyword c kw) then error c (Printf.sprintf "expected %s" kw)

  let at_end c = peek c = EOF
end
