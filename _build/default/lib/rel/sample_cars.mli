(** The used-car relation of the paper's Table I, used by the running
    example, the examples directory, tests and benchmarks. *)

val schema : Schema.t
(** ID:int, Model:string, Price:int, Year:int, Mileage:int,
    Condition:string. *)

val relation : Relation.t
(** The nine rows of Table I, in the paper's order. *)

val scaled : rows:int -> seed:int -> Relation.t
(** A synthetic enlargement with the same schema and value
    distributions, for benchmarking operator scaling. Deterministic in
    [seed]. *)
