(** Multiset relations: a schema plus a bag of rows.

    The paper defines every spreadsheet operator against a relational
    counterpart with multiset semantics (Sec. III-B); this module is
    that substrate. Rows are kept in a list whose order is incidental
    — use {!normalize} or {!equal} for order-insensitive reasoning. *)

type t = { schema : Schema.t; rows : Row.t list }

exception Relation_error of string

val make : Schema.t -> Row.t list -> t
(** @raise Relation_error when a row's width or value types disagree
    with the schema ([Null] fits every column). *)

val unsafe_make : Schema.t -> Row.t list -> t
(** No validation; for operators whose output is correct by
    construction. *)

val empty : Schema.t -> t
val cardinality : t -> int
val schema : t -> Schema.t
val rows : t -> Row.t list

val column_values : t -> string -> Value.t list
(** All values of a column, in row order. *)

val normalize : t -> t
(** Rows sorted under {!Row.compare}; canonical form of the multiset. *)

val equal : t -> t -> bool
(** Multiset equality: same schema (names and types) and same rows
    regardless of order. *)

val equal_unordered_data : t -> t -> bool
(** Multiset equality of the data only — column names must match but
    types may differ where values still compare equal (used to compare
    SQL results with spreadsheet results, where e.g. an AVG column may
    be [TFloat] on both sides but an int-typed constant column can
    surface as [TInt] vs [TFloat]). *)

val pp : Format.formatter -> t -> unit
