(** Per-column data profiles: the at-a-glance summary a spreadsheet
    user reads off a column before deciding how to filter or group it
    (value range, distinct count, missing cells). Used by the REPL's
    [describe] command and handy for choosing selection thresholds. *)

type column_profile = {
  name : string;
  ty : Value.vtype;
  non_null : int;
  nulls : int;
  distinct : int;
  min_value : Value.t;  (** [Null] when the column has no values *)
  max_value : Value.t;
  mean : float option;  (** numeric columns only *)
}

val column : Relation.t -> string -> column_profile
(** @raise Schema.Schema_error on an unknown column. *)

val relation : Relation.t -> column_profile list
(** Profile of every column, in schema order. *)

val render : Relation.t -> string
(** Text table: one row per column. *)
