open Lexer

module C = Cursor

let agg_of_name s =
  match String.lowercase_ascii s with
  | "count" -> Some Expr.Count
  | "sum" -> Some Expr.Sum
  | "avg" -> Some Expr.Avg
  | "min" -> Some Expr.Min
  | "max" -> Some Expr.Max
  | _ -> None

let parse_literal c =
  match C.next c with
  | INT i -> Value.Int i
  | FLOAT f -> Value.Float f
  | STRING s -> Value.String s
  | MINUS -> (
      match C.next c with
      | INT i -> Value.Int (-i)
      | FLOAT f -> Value.Float (-.f)
      | _ -> C.error c "expected number after '-'")
  | IDENT s -> (
      match String.uppercase_ascii s with
      | "TRUE" -> Value.Bool true
      | "FALSE" -> Value.Bool false
      | "NULL" -> Value.Null
      | "DATE" -> (
          match C.next c with
          | STRING d -> (
              match Value.parse_typed Value.TDate d with
              | Some v -> v
              | None -> C.error c "malformed date literal")
          | _ -> C.error c "expected string after DATE")
      | _ -> C.error c "expected literal")
  | _ -> C.error c "expected literal"

let rec parse_expr c = parse_or c

and parse_or c =
  let left = parse_and c in
  if C.keyword c "OR" then Expr.Or (left, parse_or c) else left

and parse_and c =
  let left = parse_not c in
  if C.keyword c "AND" then Expr.And (left, parse_and c) else left

and parse_not c =
  if C.at_keyword c "NOT" then begin
    C.advance c;
    Expr.Not (parse_not c)
  end
  else parse_predicate c

and parse_predicate c =
  let left = parse_additive c in
  match C.peek c with
  | EQ ->
      C.advance c;
      Expr.Cmp (Expr.Eq, left, parse_additive c)
  | NE ->
      C.advance c;
      Expr.Cmp (Expr.Ne, left, parse_additive c)
  | LT ->
      C.advance c;
      Expr.Cmp (Expr.Lt, left, parse_additive c)
  | LE ->
      C.advance c;
      Expr.Cmp (Expr.Le, left, parse_additive c)
  | GT ->
      C.advance c;
      Expr.Cmp (Expr.Gt, left, parse_additive c)
  | GE ->
      C.advance c;
      Expr.Cmp (Expr.Ge, left, parse_additive c)
  | IDENT s -> (
      match String.uppercase_ascii s with
      | "IS" ->
          C.advance c;
          let negated = C.keyword c "NOT" in
          C.expect_keyword c "NULL";
          if negated then Expr.Not (Expr.Is_null left)
          else Expr.Is_null left
      | "LIKE" ->
          C.advance c;
          parse_like c left false
      | "IN" ->
          C.advance c;
          parse_in c left false
      | "BETWEEN" ->
          C.advance c;
          parse_between c left false
      | "NOT" -> (
          C.advance c;
          match String.uppercase_ascii (C.ident c) with
          | "LIKE" -> parse_like c left true
          | "IN" -> parse_in c left true
          | "BETWEEN" -> parse_between c left true
          | _ -> C.error c "expected LIKE, IN or BETWEEN after NOT")
      | _ -> left)
  | _ -> left

and parse_like c left negated =
  match C.next c with
  | STRING pat ->
      let e = Expr.Like (left, pat) in
      if negated then Expr.Not e else e
  | _ -> C.error c "expected pattern string after LIKE"

and parse_in c left negated =
  C.eat c LPAREN;
  let rec items acc =
    let v = parse_literal c in
    if C.peek c = COMMA then begin
      C.advance c;
      items (v :: acc)
    end
    else List.rev (v :: acc)
  in
  let vs = items [] in
  C.eat c RPAREN;
  let e = Expr.In_list (left, vs) in
  if negated then Expr.Not e else e

and parse_between c left negated =
  let lo = parse_additive c in
  C.expect_keyword c "AND";
  let hi = parse_additive c in
  let e = Expr.Between (left, lo, hi) in
  if negated then Expr.Not e else e

and parse_additive c =
  let rec go left =
    match C.peek c with
    | PLUS ->
        C.advance c;
        go (Expr.Arith (Expr.Add, left, parse_multiplicative c))
    | MINUS ->
        C.advance c;
        go (Expr.Arith (Expr.Sub, left, parse_multiplicative c))
    | CONCAT_BARS ->
        C.advance c;
        go (Expr.Concat (left, parse_multiplicative c))
    | _ -> left
  in
  go (parse_multiplicative c)

and parse_multiplicative c =
  let rec go left =
    match C.peek c with
    | STAR ->
        C.advance c;
        go (Expr.Arith (Expr.Mul, left, parse_unary c))
    | SLASH ->
        C.advance c;
        go (Expr.Arith (Expr.Div, left, parse_unary c))
    | PERCENT ->
        C.advance c;
        go (Expr.Arith (Expr.Mod, left, parse_unary c))
    | _ -> left
  in
  go (parse_unary c)

and parse_unary c =
  match C.peek c with
  | MINUS ->
      C.advance c;
      Expr.Neg (parse_unary c)
  | _ -> parse_primary c

and parse_primary c =
  match C.peek c with
  | INT i ->
      C.advance c;
      Expr.Const (Value.Int i)
  | FLOAT f ->
      C.advance c;
      Expr.Const (Value.Float f)
  | STRING s ->
      C.advance c;
      Expr.Const (Value.String s)
  | LPAREN ->
      C.advance c;
      let e = parse_expr c in
      C.eat c RPAREN;
      e
  | IDENT s -> (
      match String.uppercase_ascii s with
      | "TRUE" ->
          C.advance c;
          Expr.Const (Value.Bool true)
      | "FALSE" ->
          C.advance c;
          Expr.Const (Value.Bool false)
      | "NULL" ->
          C.advance c;
          Expr.Const Value.Null
      | "DATE" when C.peek2 c <> LPAREN ->
          Expr.Const (parse_literal c)
      | "CASE" ->
          C.advance c;
          parse_case c
      | _ -> (
          match (Expr.scalar_fun_of_name s, C.peek2 c) with
          | Some g, LPAREN ->
              C.advance c;
              C.advance c;
              let arg = parse_expr c in
              C.eat c RPAREN;
              Expr.Fn (g, arg)
          | _ ->
          match (agg_of_name s, C.peek2 c) with
          | Some g, LPAREN ->
              C.advance c;
              C.advance c;
              if C.peek c = STAR then begin
                C.advance c;
                C.eat c RPAREN;
                if g = Expr.Count then Expr.Agg (Expr.Count_star, None)
                else C.error c "only count may take *"
              end
              else if g = Expr.Count && C.at_keyword c "DISTINCT" then begin
                C.advance c;
                let arg = parse_expr c in
                C.eat c RPAREN;
                Expr.Agg (Expr.Count_distinct, Some arg)
              end
              else begin
                let arg = parse_expr c in
                C.eat c RPAREN;
                Expr.Agg (g, Some arg)
              end
          | _ ->
              C.advance c;
              (* qualified name "t.c" becomes a single dotted column
                 reference; the SQL analyzer resolves the qualifier *)
              if C.peek c = DOT then begin
                C.advance c;
                let field = C.ident c in
                Expr.Col (s ^ "." ^ field)
              end
              else Expr.Col s))
  | _ -> C.error c "expected expression"

and parse_case c =
  (* CASE WHEN cond THEN expr [WHEN ...]* [ELSE expr] END *)
  let rec branches acc =
    if C.keyword c "WHEN" then begin
      let cond = parse_expr c in
      C.expect_keyword c "THEN";
      let expr = parse_expr c in
      branches ((cond, expr) :: acc)
    end
    else List.rev acc
  in
  let bs = branches [] in
  if bs = [] then C.error c "CASE needs at least one WHEN branch"
  else begin
    let default =
      if C.keyword c "ELSE" then Some (parse_expr c) else None
    in
    C.expect_keyword c "END";
    Expr.Case (bs, default)
  end

let parse_string s =
  match tokenize s with
  | exception Lex_error (msg, pos) ->
      Error (Printf.sprintf "lex error at %d: %s" pos msg)
  | toks -> (
      let c = C.make toks in
      match parse_expr c with
      | exception C.Parse_error msg -> Error msg
      | e ->
          if C.at_end c then Ok e
          else
            Error
              (Printf.sprintf "trailing input at token %s"
                 (token_to_string (C.peek c))))

let parse_string_exn s =
  match parse_string s with
  | Ok e -> e
  | Error msg -> invalid_arg ("Expr_parse.parse_string_exn: " ^ msg)
