let schema =
  Schema.of_list
    [ ("ID", Value.TInt);
      ("Model", Value.TString);
      ("Price", Value.TInt);
      ("Year", Value.TInt);
      ("Mileage", Value.TInt);
      ("Condition", Value.TString) ]

let row id model price year mileage condition =
  Row.of_list
    [ Value.Int id;
      Value.String model;
      Value.Int price;
      Value.Int year;
      Value.Int mileage;
      Value.String condition ]

(* Table I of the paper, verbatim. *)
let relation =
  Relation.make schema
    [ row 304 "Jetta" 14500 2005 76000 "Good";
      row 872 "Jetta" 15000 2005 50000 "Excellent";
      row 901 "Jetta" 16000 2005 40000 "Excellent";
      row 423 "Jetta" 17000 2006 42000 "Good";
      row 723 "Jetta" 17500 2006 39000 "Excellent";
      row 725 "Jetta" 18000 2006 30000 "Excellent";
      row 132 "Civic" 13500 2005 86000 "Good";
      row 879 "Civic" 15000 2006 68000 "Good";
      row 322 "Civic" 16000 2006 73000 "Good" ]

let models = [| "Jetta"; "Civic"; "Accord"; "Camry"; "Focus"; "Mazda3" |]
let conditions = [| "Excellent"; "Good"; "Fair"; "Poor" |]

let scaled ~rows ~seed =
  (* splitmix-style deterministic stream; avoids Stdlib.Random so runs
     are reproducible across OCaml versions. *)
  let state = ref (Int64.of_int (seed lxor 0x9E3779B9)) in
  let next () =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
              0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
              0x94D049BB133111EBL in
    Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31))
    land max_int
  in
  let pick arr = arr.(next () mod Array.length arr) in
  let data =
    List.init rows (fun i ->
        row (1000 + i) (pick models)
          (10000 + (next () mod 15000))
          (2000 + (next () mod 9))
          (10000 + (next () mod 120000))
          (pick conditions))
  in
  Relation.make schema data
