type arith = Add | Sub | Mul | Div | Mod
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type agg_fun = Count_star | Count | Count_distinct | Sum | Avg | Min | Max

type scalar_fun =
  | Year_of
  | Month_of
  | Day_of
  | Abs
  | Round
  | Lower
  | Upper
  | Length

type t =
  | Const of Value.t
  | Col of string
  | Neg of t
  | Arith of arith * t * t
  | Concat of t * t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Like of t * string
  | In_list of t * Value.t list
  | Between of t * t * t
  | Fn of scalar_fun * t
  | Case of (t * t) list * t option
  | Agg of agg_fun * t option

let rec fold f acc e =
  let acc = f acc e in
  match e with
  | Const _ | Col _ -> acc
  | Neg a | Not a | Is_null a | Like (a, _) | In_list (a, _) | Fn (_, a) ->
      fold f acc a
  | Agg (_, o) -> ( match o with Some a -> fold f acc a | None -> acc)
  | Arith (_, a, b) | Concat (a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b)
    ->
      fold f (fold f acc a) b
  | Between (a, b, c) -> fold f (fold f (fold f acc a) b) c
  | Case (branches, default) ->
      let acc =
        List.fold_left
          (fun acc (cond, expr) -> fold f (fold f acc cond) expr)
          acc branches
      in
      ( match default with Some d -> fold f acc d | None -> acc)

let columns e =
  let cols =
    fold (fun acc e -> match e with Col c -> c :: acc | _ -> acc) [] e
  in
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc c ->
      if Hashtbl.mem seen c then acc
      else (
        Hashtbl.add seen c ();
        c :: acc))
    [] cols

let has_agg e =
  fold (fun acc e -> acc || match e with Agg _ -> true | _ -> false) false e

let rec map_columns f = function
  | Const v -> Const v
  | Col c -> Col (f c)
  | Neg a -> Neg (map_columns f a)
  | Arith (op, a, b) -> Arith (op, map_columns f a, map_columns f b)
  | Concat (a, b) -> Concat (map_columns f a, map_columns f b)
  | Cmp (op, a, b) -> Cmp (op, map_columns f a, map_columns f b)
  | And (a, b) -> And (map_columns f a, map_columns f b)
  | Or (a, b) -> Or (map_columns f a, map_columns f b)
  | Not a -> Not (map_columns f a)
  | Is_null a -> Is_null (map_columns f a)
  | Like (a, p) -> Like (map_columns f a, p)
  | In_list (a, vs) -> In_list (map_columns f a, vs)
  | Between (a, b, c) ->
      Between (map_columns f a, map_columns f b, map_columns f c)
  | Fn (g, a) -> Fn (g, map_columns f a)
  | Case (branches, default) ->
      Case
        ( List.map
            (fun (c, e) -> (map_columns f c, map_columns f e))
            branches,
          Option.map (map_columns f) default )
  | Agg (g, o) -> Agg (g, Option.map (map_columns f) o)

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let agg_fun_name = function
  | Count_star | Count -> "count"
  | Count_distinct -> "count_distinct"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"

let scalar_fun_name = function
  | Year_of -> "year"
  | Month_of -> "month"
  | Day_of -> "day"
  | Abs -> "abs"
  | Round -> "round"
  | Lower -> "lower"
  | Upper -> "upper"
  | Length -> "length"

let scalar_fun_of_name name =
  match String.lowercase_ascii name with
  | "year" -> Some Year_of
  | "month" -> Some Month_of
  | "day" -> Some Day_of
  | "abs" -> Some Abs
  | "round" -> Some Round
  | "lower" -> Some Lower
  | "upper" -> Some Upper
  | "length" -> Some Length
  | _ -> None

let cmp_name = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let arith_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let equal (a : t) (b : t) = a = b

let quote_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let const_to_string = function
  | Value.String s -> quote_string s
  | Value.Date _ as d -> Printf.sprintf "DATE '%s'" (Value.to_string d)
  | v -> Value.to_string v

(* Precedence levels for parenthesis-minimal printing. *)
let prec = function
  | Or _ -> 1
  | And _ -> 2
  | Not _ -> 3
  | Cmp _ | Is_null _ | Like _ | In_list _ | Between _ -> 4
  | Case _ | Fn _ -> 9
  | Concat _ -> 5
  | Arith ((Add | Sub), _, _) -> 6
  | Arith ((Mul | Div | Mod), _, _) -> 7
  | Neg _ -> 8
  | Const _ | Col _ | Agg _ -> 9

let rec pp_prec level ppf e =
  let p = prec e in
  let wrap = p < level in
  if wrap then Format.pp_print_char ppf '(';
  (match e with
  | Const v -> Format.pp_print_string ppf (const_to_string v)
  | Col c -> Format.pp_print_string ppf c
  | Neg a -> Format.fprintf ppf "-%a" (pp_prec 9) a
  | Arith (op, a, b) ->
      Format.fprintf ppf "%a %s %a" (pp_prec p) a (arith_name op)
        (pp_prec (p + 1)) b
  | Concat (a, b) ->
      Format.fprintf ppf "%a || %a" (pp_prec p) a (pp_prec (p + 1)) b
  | Cmp (op, a, b) ->
      Format.fprintf ppf "%a %s %a" (pp_prec 5) a (cmp_name op) (pp_prec 5) b
  | And (a, b) -> Format.fprintf ppf "%a AND %a" (pp_prec 2) a (pp_prec 3) b
  | Or (a, b) -> Format.fprintf ppf "%a OR %a" (pp_prec 1) a (pp_prec 2) b
  | Not a -> Format.fprintf ppf "NOT %a" (pp_prec 4) a
  | Is_null a -> Format.fprintf ppf "%a IS NULL" (pp_prec 5) a
  | Like (a, pat) ->
      Format.fprintf ppf "%a LIKE %s" (pp_prec 5) a (quote_string pat)
  | In_list (a, vs) ->
      Format.fprintf ppf "%a IN (%s)" (pp_prec 5) a
        (String.concat ", " (List.map const_to_string vs))
  | Between (a, b, c) ->
      Format.fprintf ppf "%a BETWEEN %a AND %a" (pp_prec 5) a (pp_prec 5) b
        (pp_prec 5) c
  | Fn (g, a) ->
      Format.fprintf ppf "%s(%a)" (scalar_fun_name g) (pp_prec 0) a
  | Case (branches, default) ->
      Format.pp_print_string ppf "CASE";
      List.iter
        (fun (c, e) ->
          Format.fprintf ppf " WHEN %a THEN %a" (pp_prec 0) c (pp_prec 0) e)
        branches;
      Option.iter
        (fun d -> Format.fprintf ppf " ELSE %a" (pp_prec 0) d)
        default;
      Format.pp_print_string ppf " END"
  | Agg (Count_star, _) -> Format.pp_print_string ppf "count(*)"
  | Agg (Count_distinct, Some a) ->
      Format.fprintf ppf "count(DISTINCT %a)" (pp_prec 0) a
  | Agg (g, Some a) ->
      Format.fprintf ppf "%s(%a)" (agg_fun_name g) (pp_prec 0) a
  | Agg (g, None) -> Format.fprintf ppf "%s()" (agg_fun_name g));
  if wrap then Format.pp_print_char ppf ')'

let pp = pp_prec 0
let to_string e = Format.asprintf "%a" pp e
