(** Minimal RFC-4180-style CSV reading and writing.

    Quoted fields with embedded commas, quotes (doubled) and newlines
    are supported. Used to load example datasets and to export
    spreadsheets. *)

exception Csv_error of string

val parse_string : string -> string list list
(** Parse CSV text into rows of fields. A trailing newline does not
    produce an empty record.
    @raise Csv_error on an unterminated quoted field. *)

val load_relation : ?schema:Schema.t -> string -> Relation.t
(** Build a relation from CSV text whose first record is the header.
    Without [schema], column types are inferred from the data (the
    narrowest of bool/int/float/date/string that fits every non-empty
    cell; empty cells are [Null]).
    @raise Csv_error on ragged rows or cells that do not parse under
    the given schema. *)

val of_relation : Relation.t -> string
(** Render a relation as CSV with a header record. *)

val read_file : string -> string
val write_file : string -> string -> unit
