(** Aggregation of simulated observations into the paper's evaluation
    artifacts: Fig. 3 (mean speed per query), Fig. 4 (standard
    deviation of speeds), Fig. 5 (correctness counts), the
    significance analyses (Mann–Whitney per query, Fisher's exact on
    the totals), and Table VI (subjective results, derived from the
    objective outcomes as documented in DESIGN.md §3). *)

type per_task = {
  task : int;
  sheet_mean : float;
  navicat_mean : float;
  sheet_ci : float * float;  (** 95% bootstrap CI for the mean *)
  navicat_ci : float * float;
  sheet_stddev : float;
  navicat_stddev : float;
  sheet_correct : int;
  navicat_correct : int;
  n : int;  (** subjects per cell *)
  mw_p : float;  (** Mann–Whitney two-tailed p on the times *)
}

type totals = {
  sheet_correct_total : int;
  navicat_correct_total : int;
  trials_per_tool : int;
  fisher_p : float;
}

type subjective = {
  prefer_sheet : int;
  prefer_navicat : int;
  seeing_data_helps_yes : int;
  progressive_refinement_yes : int;
  concepts_easier_yes : int;
  n : int;
}

type t = {
  per_task : per_task list;
  totals : totals;
  subjective : subjective;
}

val of_observations : Simulator.observation list -> t

val fig3_rows : t -> (int * float * float) list
(** (task, Navicat mean s, SheetMusiq mean s). *)

val fig4_rows : t -> (int * float * float) list
val fig5_rows : t -> (int * int * int) list
(** (task, #correct Navicat, #correct SheetMusiq). *)

val significant_tasks : ?alpha:float -> t -> int list
(** Tasks whose speed difference is significant at [alpha]
    (default 0.002, the paper's threshold). *)

val render : t -> string
(** The full evaluation section as text tables, one block per paper
    artifact. *)

val learning_rows :
  Simulator.observation list -> (int * float * float) list
(** Learning effect (the paper notes subjects "picked up SheetMusiq
    much faster ... also shown by results of the first two queries"):
    per task position, the mean observed time divided by the task's
    KLM base time, for (Navicat, SheetMusiq). Early positions carry
    the learning overhead; the normalization removes intrinsic task
    size, so a downward trend is familiarity. *)

val observations_csv : Simulator.observation list -> string
(** The raw trial data as CSV (subject, task, tool, seconds, correct,
    timed_out, errors) — for re-analysis outside this library. *)
