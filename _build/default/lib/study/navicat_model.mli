(** Cost model of the representative visual query builder ("Navicat
    for PostgreSQL" in the paper).

    Per the paper's own analysis (Sec. VII-A.4): "only queries with
    simple selection, sorting, and joins can be built graphically,
    while the vast majority of the queries need to be completed by
    adding to the SQL query". So simple selections and sorts cost a
    grid interaction; grouping, aggregation, computed expressions and
    HAVING force the user to type SQL clauses (slow non-expert typing,
    syntax-error retry loops) and to understand concepts — grouping
    restrictions, and sub-queries for selection-on-aggregation — that
    carry a substantial silent-wrong-result probability. *)

val model : Tool_model.t
