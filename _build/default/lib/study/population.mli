(** The simulated subject population: ten volunteers with no database
    query language background (Sec. VII-A.1).

    Human task-completion times are well modelled as a lognormal
    multiplier over the KLM prediction; carefulness scales the error
    probabilities of the interface models. Both are fixed per subject
    by the study seed. *)

type subject = {
  id : int;  (** 1..n *)
  speed : float;
      (** multiplier over KLM time; lognormal, median ≈ 2.2 for
          non-technical users (KLM predicts practiced expert times) *)
  carelessness : float;  (** multiplier over error probabilities *)
}

val sample : Sheet_stats.Rng.t -> n:int -> subject list
