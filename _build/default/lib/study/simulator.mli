(** The study protocol of Section VII-A.1, simulated.

    Ten subjects complete all ten tasks with both tools. Timing starts
    when the subject has understood the task (so comprehension time is
    excluded, as in the paper); the tool order alternates per task so
    that "each package was used first half the time", and the tool
    used second benefits from the query having been mentally
    formulated once. A task not finished within 900 seconds counts as
    wrong with time 900 s. *)

type tool = SheetMusiq | Navicat

val tool_name : tool -> string

type observation = {
  subject : int;
  task : int;  (** 1..10 *)
  tool : tool;
  time_s : float;
  correct : bool;
  timed_out : bool;
  errors_hit : string list;  (** concepts that went wrong, detected or not *)
}

type config = {
  seed : int;
  n_subjects : int;
  timeout_s : float;
  second_tool_discount : float;
      (** multiplier for the tool used second on a task (default 0.85) *)
}

val default_config : config
(** [seed = 2115], [n_subjects = 10], [timeout_s = 900],
    [second_tool_discount = 0.85]. *)

val run : ?config:config -> unit -> observation list
(** All 200 observations (10 subjects × 10 tasks × 2 tools),
    deterministic in the seed. *)

val observations :
  observation list -> task:int -> tool:tool -> observation list
