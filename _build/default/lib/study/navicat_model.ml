open Sheet_tpch

let repeat n l = List.concat (List.init (max 0 n) (fun _ -> l))

(* Builder-grid interactions (the graphical window). *)
let grid_selection =
  (Klm.M :: Klm.menu_pick) @ Klm.click @ Klm.type_text 8 @ Klm.dialog_confirm

let grid_sort = Klm.M :: (Klm.menu_pick @ Klm.click)

(* Typing one SQL clause in the text window: switch windows, think,
   type slowly, run, read the output/error. *)
let sql_clause ~chars =
  (Klm.M :: Klm.M :: Klm.click) @ Klm.type_text ~slow:true chars
  @ Klm.click @ [ Klm.R 0.8 ]

let group_by_chars per_col = 9 + per_col (* "GROUP BY " + column *)
let aggregate_chars = 28 (* "sum(l_extendedprice)," plus select-list edit *)
let having_chars = 24 (* "HAVING count(*) >= 3" plus placement *)
let formula_chars = 38 (* "l_extendedprice * (1 - l_discount)" *)

let plan_of_task (task : Tpch_tasks.t) =
  let f = task.Tpch_tasks.features in
  let needs_sql =
    f.Tpch_tasks.n_group_levels > 0
    || f.Tpch_tasks.n_aggregates > 0
    || f.Tpch_tasks.n_formulas > 0
    || f.Tpch_tasks.has_having
  in
  let base_ops =
    repeat f.Tpch_tasks.n_selections grid_selection
    @ repeat f.Tpch_tasks.n_orderings grid_sort
    @ repeat f.Tpch_tasks.n_projections Klm.click
    @ (if f.Tpch_tasks.n_group_levels > 0 then
         sql_clause ~chars:(group_by_chars (12 * f.Tpch_tasks.n_group_levels))
       else [])
    @ repeat f.Tpch_tasks.n_aggregates (sql_clause ~chars:aggregate_chars)
    @ repeat f.Tpch_tasks.n_formulas (sql_clause ~chars:formula_chars)
    @ (if f.Tpch_tasks.has_having then sql_clause ~chars:having_chars
       else [])
    (* one extra full review pass when any SQL was typed *)
    @ if needs_sql then [ Klm.M; Klm.M; Klm.R 1.0 ] else []
  in
  let typed_clauses =
    (if f.Tpch_tasks.n_group_levels > 0 then 1 else 0)
    + f.Tpch_tasks.n_aggregates + f.Tpch_tasks.n_formulas
    + if f.Tpch_tasks.has_having then 1 else 0
  in
  let errors =
    (* grid mistakes: like SheetMusiq's but detection is weaker — the
       result is only visible after running the whole query *)
    List.init f.Tpch_tasks.n_selections (fun _ ->
        { Tool_model.concept = "selection"; prob = 0.07;
          detect_prob = 0.80; recovery_s = Klm.total grid_selection })
    (* each typed clause risks a syntax error: always detected (the
       database refuses the query) but costly to diagnose for a
       non-technical user *)
    @ List.init typed_clauses (fun _ ->
          { Tool_model.concept = "sql-syntax"; prob = 0.35;
            detect_prob = 1.0; recovery_s = 45.0 })
    (* conceptual hazards: silent wrong results *)
    @ (if f.Tpch_tasks.n_group_levels > 0 then
         [ { Tool_model.concept = "grouping"; prob = 0.18;
             detect_prob = 0.40; recovery_s = 90.0 } ]
       else [])
    @ (if f.Tpch_tasks.has_having then
         [ { Tool_model.concept = "subquery-having"; prob = 0.35;
             detect_prob = 0.35; recovery_s = 120.0 } ]
       else [])
    @
    if f.Tpch_tasks.n_formulas > 0 then
      [ { Tool_model.concept = "expression"; prob = 0.15;
          detect_prob = 0.50; recovery_s = 60.0 } ]
    else []
  in
  { Tool_model.tool = "Navicat"; base_ops; errors }

let model =
  { Tool_model.name = "Navicat";
    plan_of_task;
    (* subjects kept struggling with the builder noticeably longer *)
    learning =
      (fun ~trial ->
        match trial with
        | 1 -> 1.60
        | 2 -> 1.35
        | 3 -> 1.15
        | 4 -> 1.05
        | _ -> 1.0) }
