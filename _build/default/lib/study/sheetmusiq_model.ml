open Sheet_tpch

let repeat n l = List.concat (List.init (max 0 n) (fun _ -> l))

(* Interaction sequences per operator, from the Sec. VI designs. *)

(* right-click a cell or header, pick "Selection", fill the small
   condition dialog (operator choice + a short constant), confirm *)
let selection =
  (Klm.M :: Klm.menu_pick) @ Klm.click @ Klm.type_text 8 @ Klm.dialog_confirm

(* right-click, pick Grouping, answer the add-or-replace prompt *)
let grouping = (Klm.M :: Klm.menu_pick) @ Klm.dialog_confirm

(* right-click a cell, choose "aggregation", pick the function, pick
   the grouping level (Fig. 1's dialog) *)
let aggregation = (Klm.M :: Klm.menu_pick) @ Klm.click @ Klm.dialog_confirm

(* FC dialog: choose columns and operators graphically, optionally
   name the column *)
let formula =
  (Klm.M :: Klm.M :: Klm.menu_pick)
  @ repeat 3 Klm.click @ Klm.type_text 6 @ Klm.dialog_confirm

(* click the column header; one more dialog click when grouped *)
let ordering ~grouped =
  (Klm.M :: Klm.click) @ if grouped then Klm.dialog_confirm else []

(* group qualification = ordinary selection on the aggregate column *)
let having = selection

let projection = Klm.click (* uncheck the header checkbox *)

let reading_pause = [ Klm.R 0.3 ] (* redisplay after each manipulation *)

let plan_of_task (task : Tpch_tasks.t) =
  let f = task.Tpch_tasks.features in
  let n_steps =
    f.Tpch_tasks.n_selections + f.Tpch_tasks.n_group_levels
    + f.Tpch_tasks.n_aggregates + f.Tpch_tasks.n_formulas
    + f.Tpch_tasks.n_orderings + f.Tpch_tasks.n_projections
    + if f.Tpch_tasks.has_having then 1 else 0
  in
  let base_ops =
    repeat f.Tpch_tasks.n_selections selection
    @ repeat f.Tpch_tasks.n_group_levels grouping
    @ repeat f.Tpch_tasks.n_aggregates aggregation
    @ repeat f.Tpch_tasks.n_formulas formula
    @ repeat f.Tpch_tasks.n_orderings
        (ordering ~grouped:(f.Tpch_tasks.n_group_levels > 0))
    @ repeat f.Tpch_tasks.n_projections projection
    @ (if f.Tpch_tasks.has_having then having else [])
    @ repeat n_steps reading_pause
  in
  (* Each small step can still be mis-specified (wrong constant, wrong
     column), but the intermediate result is on screen immediately, so
     detection is near-certain and recovery is one redone step. *)
  let step_error concept n prob recovery =
    List.init n (fun _ ->
        { Tool_model.concept; prob; detect_prob = 0.93;
          recovery_s = recovery })
  in
  { Tool_model.tool = "SheetMusiq";
    base_ops;
    errors =
      step_error "selection" f.Tpch_tasks.n_selections 0.05
        (Klm.total selection)
      @ step_error "grouping" f.Tpch_tasks.n_group_levels 0.04
          (Klm.total grouping)
      @ step_error "aggregation" f.Tpch_tasks.n_aggregates 0.05
          (Klm.total aggregation)
      @ step_error "formula" f.Tpch_tasks.n_formulas 0.08
          (Klm.total formula)
      @ step_error "group-qualification"
          (if f.Tpch_tasks.has_having then 1 else 0)
          0.05 (Klm.total having) }

let model =
  { Tool_model.name = "SheetMusiq";
    plan_of_task;
    (* "most users picked up SheetMusiq much faster" — mild initial
       slow-down, gone by the third task *)
    learning =
      (fun ~trial ->
        match trial with 1 -> 1.30 | 2 -> 1.10 | _ -> 1.0) }
