(** Cost model of the SheetMusiq direct-manipulation interface,
    derived from the per-operator interaction designs of Section VI:
    every operation is a contextual-menu interaction with at most a
    short constant to type; the result of each step is immediately
    visible, so mistakes are almost always noticed and cheaply redone;
    no SQL is ever typed, so there are no syntax errors. *)

val model : Tool_model.t
