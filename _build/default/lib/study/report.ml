open Sheet_stats

type per_task = {
  task : int;
  sheet_mean : float;
  navicat_mean : float;
  sheet_ci : float * float;
  navicat_ci : float * float;
  sheet_stddev : float;
  navicat_stddev : float;
  sheet_correct : int;
  navicat_correct : int;
  n : int;
  mw_p : float;
}

type totals = {
  sheet_correct_total : int;
  navicat_correct_total : int;
  trials_per_tool : int;
  fisher_p : float;
}

type subjective = {
  prefer_sheet : int;
  prefer_navicat : int;
  seeing_data_helps_yes : int;
  progressive_refinement_yes : int;
  concepts_easier_yes : int;
  n : int;
}

type t = {
  per_task : per_task list;
  totals : totals;
  subjective : subjective;
}

let times obs = List.map (fun o -> o.Simulator.time_s) obs
let n_correct obs =
  List.length (List.filter (fun o -> o.Simulator.correct) obs)

let of_observations obs =
  let tasks =
    List.sort_uniq Int.compare (List.map (fun o -> o.Simulator.task) obs)
  in
  let per_task =
    List.map
      (fun task ->
        let sheet =
          Simulator.observations obs ~task ~tool:Simulator.SheetMusiq
        in
        let navicat =
          Simulator.observations obs ~task ~tool:Simulator.Navicat
        in
        let mw = Mann_whitney.test (times sheet) (times navicat) in
        let ci_rng = Rng.create (8600 + task) in
        { task;
          sheet_mean = Descriptive.mean (times sheet);
          navicat_mean = Descriptive.mean (times navicat);
          sheet_ci = Descriptive.bootstrap_ci ci_rng (times sheet);
          navicat_ci = Descriptive.bootstrap_ci ci_rng (times navicat);
          sheet_stddev = Descriptive.stddev (times sheet);
          navicat_stddev = Descriptive.stddev (times navicat);
          sheet_correct = n_correct sheet;
          navicat_correct = n_correct navicat;
          n = List.length sheet;
          mw_p = mw.Mann_whitney.p_two_tailed })
      tasks
  in
  let sheet_all =
    List.filter (fun o -> o.Simulator.tool = Simulator.SheetMusiq) obs
  in
  let navicat_all =
    List.filter (fun o -> o.Simulator.tool = Simulator.Navicat) obs
  in
  let sc = n_correct sheet_all and nc = n_correct navicat_all in
  let trials = List.length sheet_all in
  let fisher_p =
    Fisher.p_two_tailed
      { Fisher.a = sc; b = trials - sc; c = nc; d = trials - nc }
  in
  (* Subjective responses, derived from objective outcomes (see
     DESIGN.md §3): preference follows total time; the two subjects
     with the smallest relative time advantage prefer specifying a
     query all at once; the interface-property questions (seeing data,
     database concepts) are answered uniformly as in the paper. *)
  let subjects =
    List.sort_uniq Int.compare (List.map (fun o -> o.Simulator.subject) obs)
  in
  let advantage subject =
    let total tool =
      List.fold_left
        (fun acc o ->
          if o.Simulator.subject = subject && o.Simulator.tool = tool then
            acc +. o.Simulator.time_s
          else acc)
        0.0 obs
    in
    total Simulator.Navicat /. Float.max 1.0 (total Simulator.SheetMusiq)
  in
  let advantages =
    List.map (fun s -> (s, advantage s)) subjects
    |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
  in
  let prefer_sheet =
    List.length (List.filter (fun (_, a) -> a > 1.0) advantages)
  in
  let n = List.length subjects in
  let progressive_refinement_yes = max 0 (n - 2) in
  { per_task;
    totals =
      { sheet_correct_total = sc; navicat_correct_total = nc;
        trials_per_tool = trials; fisher_p };
    subjective =
      { prefer_sheet;
        prefer_navicat = n - prefer_sheet;
        seeing_data_helps_yes = n;
        progressive_refinement_yes;
        concepts_easier_yes = n;
        n } }

let fig3_rows t =
  List.map (fun p -> (p.task, p.navicat_mean, p.sheet_mean)) t.per_task

let fig4_rows t =
  List.map (fun p -> (p.task, p.navicat_stddev, p.sheet_stddev)) t.per_task

let fig5_rows t =
  List.map (fun p -> (p.task, p.navicat_correct, p.sheet_correct)) t.per_task

let significant_tasks ?(alpha = 0.002) t =
  List.filter_map
    (fun p -> if p.mw_p < alpha then Some p.task else None)
    t.per_task

let learning_rows obs =
  let tasks =
    List.sort_uniq Int.compare (List.map (fun o -> o.Simulator.task) obs)
  in
  List.map
    (fun task ->
      let spec = Sheet_tpch.Tpch_tasks.find task in
      let norm tool model =
        let base =
          Tool_model.base_time (model.Tool_model.plan_of_task spec)
        in
        let ts = times (Simulator.observations obs ~task ~tool) in
        Descriptive.mean ts /. Float.max 0.01 base
      in
      ( task,
        norm Simulator.Navicat Navicat_model.model,
        norm Simulator.SheetMusiq Sheetmusiq_model.model ))
    tasks

let observations_csv obs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "subject,task,tool,time_s,correct,timed_out,errors\n";
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%s,%.2f,%b,%b,%s\n" o.Simulator.subject
           o.Simulator.task
           (Simulator.tool_name o.Simulator.tool)
           o.Simulator.time_s o.Simulator.correct o.Simulator.timed_out
           (String.concat ";" o.Simulator.errors_hit)))
    obs;
  Buffer.contents buf

let render t =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "Figure 3 — Speed Result (mean seconds per query)\n";
  pf "%-6s %12s %12s %8s\n" "query" "Navicat" "SheetMusiq" "ratio";
  List.iter
    (fun p ->
      let lo_n, hi_n = p.navicat_ci and lo_s, hi_s = p.sheet_ci in
      pf "%-6d %12.1f %12.1f %7.2fx   CI95 nav [%.0f, %.0f]  sheet [%.0f, %.0f]\n"
        p.task p.navicat_mean p.sheet_mean
        (p.navicat_mean /. Float.max 0.01 p.sheet_mean)
        lo_n hi_n lo_s hi_s)
    t.per_task;
  pf "\nFigure 4 — Standard Deviation of Speeds (seconds)\n";
  pf "%-6s %12s %12s\n" "query" "Navicat" "SheetMusiq";
  List.iter
    (fun p -> pf "%-6d %12.1f %12.1f\n" p.task p.navicat_stddev p.sheet_stddev)
    t.per_task;
  pf "\nFigure 5 — Correctness Result (subjects correct, of %d)\n"
    (match t.per_task with p :: _ -> p.n | [] -> 0);
  pf "%-6s %12s %12s\n" "query" "Navicat" "SheetMusiq";
  List.iter
    (fun p -> pf "%-6d %12d %12d\n" p.task p.navicat_correct p.sheet_correct)
    t.per_task;
  pf "totals: SheetMusiq %d/%d correct, Navicat %d/%d correct\n"
    t.totals.sheet_correct_total t.totals.trials_per_tool
    t.totals.navicat_correct_total t.totals.trials_per_tool;
  pf "\nSignificance\n";
  pf "Mann-Whitney two-tailed p per query (speed):\n";
  List.iter (fun p -> pf "  query %2d: p = %.5f%s\n" p.task p.mw_p
                (if p.mw_p < 0.002 then "  (significant)" else ""))
    t.per_task;
  pf "Fisher's exact on correctness totals: p = %.5f\n" t.totals.fisher_p;
  pf "\nTable VI — Subjective Results (n = %d)\n" t.subjective.n;
  pf "  Prefer SheetMusiq:                 %d\n" t.subjective.prefer_sheet;
  pf "  Prefer Navicat:                    %d\n" t.subjective.prefer_navicat;
  pf "  Seeing data helps formulate:  yes  %d\n"
    t.subjective.seeing_data_helps_yes;
  pf "  Progressive refinement better: yes %d\n"
    t.subjective.progressive_refinement_yes;
  pf "  Concepts easier in SheetMusiq: yes %d\n"
    t.subjective.concepts_easier_yes;
  Buffer.contents buf
