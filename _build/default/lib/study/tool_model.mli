(** Interface cost models: what each tool requires of the user to
    specify one study task.

    A model maps a task's interaction structure ({!Sheet_tpch.Tpch_tasks.features})
    to a {!plan}: the deterministic KLM action sequence plus the error
    sources that the simulator samples stochastically. *)

type error_source = {
  concept : string;  (** e.g. ["sql-syntax"], ["subquery"], ["grouping"] *)
  prob : float;  (** per-attempt probability the step goes wrong *)
  detect_prob : float;
      (** probability the user notices the mistake (and pays
          [recovery_s] to redo the step) rather than silently keeping a
          wrong result. Immediate visual feedback pushes this toward 1
          — the paper's second direct-manipulation principle. *)
  recovery_s : float;  (** time to diagnose and redo once noticed *)
}

type plan = {
  tool : string;
  base_ops : Klm.op list;  (** error-free action sequence *)
  errors : error_source list;
}

val base_time : plan -> float

type t = {
  name : string;
  plan_of_task : Sheet_tpch.Tpch_tasks.t -> plan;
  learning : trial:int -> float;
      (** slow-down multiplier for the [trial]-th task performed with
          this tool (1-based); decays to 1.0 as familiarity grows *)
}
