type error_source = {
  concept : string;
  prob : float;
  detect_prob : float;
  recovery_s : float;
}

type plan = {
  tool : string;
  base_ops : Klm.op list;
  errors : error_source list;
}

let base_time plan = Klm.total plan.base_ops

type t = {
  name : string;
  plan_of_task : Sheet_tpch.Tpch_tasks.t -> plan;
  learning : trial:int -> float;
}
