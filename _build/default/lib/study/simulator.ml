open Sheet_stats
open Sheet_tpch

type tool = SheetMusiq | Navicat

let tool_name = function SheetMusiq -> "SheetMusiq" | Navicat -> "Navicat"

type observation = {
  subject : int;
  task : int;
  tool : tool;
  time_s : float;
  correct : bool;
  timed_out : bool;
  errors_hit : string list;
}

type config = {
  seed : int;
  n_subjects : int;
  timeout_s : float;
  second_tool_discount : float;
}

let default_config =
  { seed = 2115; n_subjects = 10; timeout_s = 900.0;
    second_tool_discount = 0.85 }

let model_of = function
  | SheetMusiq -> Sheetmusiq_model.model
  | Navicat -> Navicat_model.model

(* Sample the error sources of a plan: accumulate recovery time for
   detected mistakes (re-rolling up to twice — a redone step can go
   wrong again) and collect silently-kept mistakes. *)
let sample_errors rng (subject : Population.subject) plan =
  let recovery = ref 0.0 in
  let silent = ref [] in
  let hit = ref [] in
  List.iter
    (fun (e : Tool_model.error_source) ->
      let p = Float.min 0.95 (e.Tool_model.prob *. subject.Population.carelessness) in
      let rec attempt tries =
        if Rng.float rng 1.0 < p then begin
          hit := e.Tool_model.concept :: !hit;
          if Rng.float rng 1.0 < e.Tool_model.detect_prob then begin
            recovery := !recovery +. e.Tool_model.recovery_s;
            if tries < 2 then attempt (tries + 1)
          end
          else silent := e.Tool_model.concept :: !silent
        end
      in
      attempt 0)
    plan.Tool_model.errors;
  (!recovery, List.rev !silent, List.rev !hit)

(* One task-comprehension hazard per trial, shared by both tools: the
   subject misreads the task and delivers a wrong (but syntactically
   fine) answer. *)
let comprehension_error =
  { Tool_model.concept = "task-comprehension"; prob = 0.035;
    detect_prob = 0.35; recovery_s = 30.0 }

let run_trial rng subject task tool ~order_factor ~trial_index =
  let model = model_of tool in
  let plan = model.Tool_model.plan_of_task task in
  let plan =
    { plan with
      Tool_model.errors = comprehension_error :: plan.Tool_model.errors }
  in
  let base = Tool_model.base_time plan in
  let recovery, silent, hit = sample_errors rng subject plan in
  let learning = model.Tool_model.learning ~trial:trial_index in
  let noise = Rng.lognormal rng ~mu:0.0 ~sigma:0.15 in
  let time =
    ((base *. subject.Population.speed *. learning) +. recovery)
    *. order_factor *. noise
  in
  (time, silent, hit)

let run ?(config = default_config) () =
  let rng = Rng.create config.seed in
  let subjects = Rng.split rng |> fun r -> Population.sample r ~n:config.n_subjects in
  let tasks = Tpch_tasks.all in
  List.concat_map
    (fun subject ->
      let srng = Rng.split rng in
      List.concat_map
        (fun (task : Tpch_tasks.t) ->
          let t = task.Tpch_tasks.id in
          (* alternate which tool goes first: half the tasks for each
             subject, shifted per subject *)
          let sheet_first = (subject.Population.id + t) mod 2 = 0 in
          let second = config.second_tool_discount in
          let obs tool ~order_factor =
            let time, silent, hit =
              run_trial srng subject task tool ~order_factor
                ~trial_index:t
            in
            let timed_out = time >= config.timeout_s in
            { subject = subject.Population.id;
              task = t;
              tool;
              time_s = Float.min time config.timeout_s;
              correct = (not timed_out) && silent = [];
              timed_out;
              errors_hit = hit }
          in
          if sheet_first then
            [ obs SheetMusiq ~order_factor:1.0;
              obs Navicat ~order_factor:second ]
          else
            [ obs Navicat ~order_factor:1.0;
              obs SheetMusiq ~order_factor:second ])
        tasks)
    subjects

let observations obs ~task ~tool =
  List.filter (fun o -> o.task = task && o.tool = tool) obs
