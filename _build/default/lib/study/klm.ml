type op = K | K_slow | P | B | H | M | R of float

let time = function
  | K -> 0.28
  | K_slow -> 0.50
  | P -> 1.10
  | B -> 0.10
  | H -> 0.40
  | M -> 1.35
  | R t -> t

let total ops = List.fold_left (fun acc op -> acc +. time op) 0.0 ops

let click = [ P; B ]
let menu_pick = [ P; B; P; B ]

let type_text ?(slow = false) n =
  H :: List.init (max 0 n) (fun _ -> if slow then K_slow else K)

let dialog_confirm = [ P; B ]
