open Sheet_stats

type subject = { id : int; speed : float; carelessness : float }

let sample rng ~n =
  List.init n (fun i ->
      { id = i + 1;
        speed = Rng.lognormal rng ~mu:(log 2.2) ~sigma:0.30;
        carelessness =
          Float.min 2.0 (Rng.lognormal rng ~mu:0.0 ~sigma:0.30) })
