(** Keystroke-Level Model (Card, Moran & Newell, 1980) operators, the
    standard predictive model for expert-free interface time
    comparisons. The user study cannot be re-run with humans in a
    sealed environment; per DESIGN.md §3 we predict per-task
    interaction time from the motor/mental operation sequence each
    interface requires and add population-level variation on top
    ({!Population}). *)

type op =
  | K  (** keystroke — 0.28 s (average skilled typist) *)
  | K_slow  (** keystroke, non-expert SQL typing — 0.50 s *)
  | P  (** point with mouse — 1.10 s *)
  | B  (** mouse button press/release — 0.10 s *)
  | H  (** homing hands between mouse and keyboard — 0.40 s *)
  | M  (** mental preparation — 1.35 s *)
  | R of float  (** system response time in seconds *)

val time : op -> float
val total : op list -> float

(** Composite interactions. *)

val click : op list
(** [P; B] — point and click. *)

val menu_pick : op list
(** Open a contextual menu and choose an entry: [P; B; P; B]. *)

val type_text : ?slow:bool -> int -> op list
(** [type_text n]: home to keyboard, [n] keystrokes. *)

val dialog_confirm : op list
(** Point at and press an OK button. *)
