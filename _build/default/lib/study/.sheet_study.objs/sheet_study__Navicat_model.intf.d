lib/study/navicat_model.mli: Tool_model
