lib/study/tool_model.ml: Klm Sheet_tpch
