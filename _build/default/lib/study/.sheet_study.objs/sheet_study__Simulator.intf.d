lib/study/simulator.mli:
