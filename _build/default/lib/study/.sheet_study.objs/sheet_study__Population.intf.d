lib/study/population.mli: Sheet_stats
