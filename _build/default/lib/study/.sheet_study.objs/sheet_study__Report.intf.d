lib/study/report.mli: Simulator
