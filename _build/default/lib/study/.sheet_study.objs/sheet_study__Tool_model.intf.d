lib/study/tool_model.mli: Klm Sheet_tpch
