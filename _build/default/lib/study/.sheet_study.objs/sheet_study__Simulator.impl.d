lib/study/simulator.ml: Float List Navicat_model Population Rng Sheet_stats Sheet_tpch Sheetmusiq_model Tool_model Tpch_tasks
