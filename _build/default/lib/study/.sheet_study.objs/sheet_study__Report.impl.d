lib/study/report.ml: Buffer Descriptive Fisher Float Int List Mann_whitney Navicat_model Printf Rng Sheet_stats Sheet_tpch Sheetmusiq_model Simulator String Tool_model
