lib/study/population.ml: Float List Rng Sheet_stats
