lib/study/sheetmusiq_model.ml: Klm List Sheet_tpch Tool_model Tpch_tasks
