lib/study/klm.mli:
