lib/study/klm.ml: List
