lib/study/sheetmusiq_model.mli: Tool_model
