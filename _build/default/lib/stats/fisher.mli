(** Fisher's exact test for 2×2 contingency tables — the paper's test
    on the total correct/incorrect counts (95/100 vs 81/100, p < 0.004,
    Sec. VII-A.3). *)

type table = { a : int; b : int; c : int; d : int }
(** Row 1 = (a, b), row 2 = (c, d); e.g. a = SheetMusiq correct,
    b = SheetMusiq wrong, c = Navicat correct, d = Navicat wrong. *)

val p_two_tailed : table -> float
(** Two-tailed p: the sum of the probabilities of all tables with the
    same margins whose hypergeometric probability does not exceed the
    observed table's. *)

val p_one_tailed : table -> float
(** Probability of a table at least as extreme in the direction of the
    observed association (larger [a]). *)
