(** Deterministic pseudo-random number generation (splitmix64).

    The TPC-H generator and the user-study simulator must be exactly
    reproducible across runs and OCaml versions, so no dependency on
    [Stdlib.Random]. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val split : t -> t
(** An independent generator derived from the current state (advances
    the parent). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool
val pick : t -> 'a array -> 'a
val pick_list : t -> 'a list -> 'a
val shuffle : t -> 'a list -> 'a list

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller normal deviate. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** exp of a normal deviate: the standard model for human task-time
    multipliers. *)

val exponential : t -> mean:float -> float
