type result = {
  u : float;
  u1 : float;
  u2 : float;
  z : float;
  p_two_tailed : float;
}

(* Abramowitz & Stegun 7.1.26 erf approximation. *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429
  and p = 0.3275911 in
  let t = 1.0 /. (1.0 +. (p *. x)) in
  let y =
    1.0
    -. (((((a5 *. t) +. a4) *. t +. a3) *. t +. a2) *. t +. a1)
       *. t *. exp (-.x *. x)
  in
  sign *. y

let normal_cdf x = 0.5 *. (1.0 +. erf (x /. sqrt 2.0))

(* Midranks of the pooled sample, and the tie-correction term
   Σ (t^3 - t) over tie groups. *)
let ranks pooled =
  let arr =
    List.mapi (fun i v -> (v, i)) pooled
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
    |> Array.of_list
  in
  let n = Array.length arr in
  let rank_of = Array.make n 0.0 in
  let tie_term = ref 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && fst arr.(!j + 1) = fst arr.(!i) do
      incr j
    done;
    (* positions !i..!j share the midrank *)
    let t = float_of_int (!j - !i + 1) in
    let midrank = (float_of_int (!i + !j + 2)) /. 2.0 in
    for k = !i to !j do
      rank_of.(snd arr.(k)) <- midrank
    done;
    if t > 1.0 then tie_term := !tie_term +. ((t ** 3.0) -. t);
    i := !j + 1
  done;
  (rank_of, !tie_term)

let test xs ys =
  if xs = [] || ys = [] then
    invalid_arg "Mann_whitney.test: empty sample";
  let n1 = float_of_int (List.length xs) in
  let n2 = float_of_int (List.length ys) in
  let rank_of, tie_term = ranks (xs @ ys) in
  let r1 =
    List.fold_left ( +. ) 0.0
      (List.mapi (fun i _ -> rank_of.(i)) xs)
  in
  let u1 = r1 -. (n1 *. (n1 +. 1.0) /. 2.0) in
  let u2 = (n1 *. n2) -. u1 in
  let u = Float.min u1 u2 in
  let n = n1 +. n2 in
  let mu = n1 *. n2 /. 2.0 in
  let sigma2 =
    n1 *. n2 /. 12.0
    *. ((n +. 1.0) -. (tie_term /. (n *. (n -. 1.0))))
  in
  let sigma = sqrt (Float.max sigma2 1e-12) in
  (* continuity correction *)
  let z =
    if u1 = u2 then 0.0
    else
      let diff = u -. mu in
      (diff +. 0.5) /. sigma
  in
  let p = 2.0 *. normal_cdf (-.Float.abs z) in
  let p = Float.min 1.0 p in
  { u; u1; u2; z; p_two_tailed = p }
