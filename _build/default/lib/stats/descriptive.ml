let sum = List.fold_left ( +. ) 0.0

let mean xs =
  match xs with [] -> 0.0 | _ -> sum xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let ss = sum (List.map (fun x -> (x -. m) ** 2.0) xs) in
      ss /. float_of_int (List.length xs - 1)

let stddev xs = sqrt (variance xs)

let percentile p xs =
  match List.sort Float.compare xs with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      let at i = List.nth sorted i in
      at lo +. (frac *. (at hi -. at lo))

let median xs = percentile 50.0 xs

let bootstrap_ci rng ?(level = 0.95) ?(resamples = 2000) xs =
  match xs with
  | [] | [ _ ] ->
      let m = mean xs in
      (m, m)
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let means =
        List.init resamples (fun _ ->
            let total = ref 0.0 in
            for _ = 1 to n do
              total := !total +. arr.(Rng.int rng n)
            done;
            !total /. float_of_int n)
      in
      let alpha = (1.0 -. level) /. 2.0 in
      ( percentile (100.0 *. alpha) means,
        percentile (100.0 *. (1.0 -. alpha)) means )

let minimum = function
  | [] -> 0.0
  | x :: rest -> List.fold_left Float.min x rest

let maximum = function
  | [] -> 0.0
  | x :: rest -> List.fold_left Float.max x rest
