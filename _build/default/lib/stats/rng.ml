type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int (seed * 2 + 1)) }

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = mix (next t) }

let next_nonneg t =
  (* shift_right_logical 1 still exceeds OCaml's 63-bit max_int, so
     mask to keep the conversion non-negative *)
  Int64.to_int (Int64.shift_right_logical (next t) 1) land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next_nonneg t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits into [0,1) *)
  let bits = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int bits /. 9007199254740992.0

let float t bound = unit_float t *. bound

let bool t = Int64.logand (next t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let gaussian t ~mu ~sigma =
  (* Box–Muller; avoid log 0 *)
  let u1 = 1.0 -. unit_float t in
  let u2 = unit_float t in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let exponential t ~mean = -.mean *. log (1.0 -. unit_float t)
