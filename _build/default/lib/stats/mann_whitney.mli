(** Mann–Whitney U test (Wilcoxon rank-sum), the significance test the
    paper applies to per-query completion times (Sec. VII-A.2,
    "statistically significant (with p-value < 0.002)"). *)

type result = {
  u : float;  (** the smaller of U1, U2 *)
  u1 : float;
  u2 : float;
  z : float;  (** normal approximation with tie correction *)
  p_two_tailed : float;
}

val test : float list -> float list -> result
(** [test xs ys]; both samples must be non-empty. Uses midranks for
    ties and the tie-corrected normal approximation (exact enough for
    the paper's n = 10 vs 10 comparisons).
    @raise Invalid_argument on an empty sample. *)

val normal_cdf : float -> float
(** Φ, via the Abramowitz–Stegun erf approximation (|error| < 1.5e-7). *)
