type table = { a : int; b : int; c : int; d : int }

(* log n! via lgamma-style summation; n stays small (≤ a few hundred)
   so direct summation is exact enough and dependency-free. *)
let log_fact =
  let cache = Hashtbl.create 512 in
  fun n ->
    match Hashtbl.find_opt cache n with
    | Some v -> v
    | None ->
        let rec go acc k = if k <= 1 then acc else go (acc +. log (float_of_int k)) (k - 1) in
        let v = go 0.0 n in
        Hashtbl.add cache n v;
        v

(* Hypergeometric probability of a table with fixed margins. *)
let prob { a; b; c; d } =
  let lf = log_fact in
  exp
    (lf (a + b) +. lf (c + d) +. lf (a + c) +. lf (b + d)
    -. lf (a + b + c + d) -. lf a -. lf b -. lf c -. lf d)

(* All tables sharing the observed margins, indexed by their top-left
   cell. *)
let tables_with_margins t =
  let row1 = t.a + t.b and col1 = t.a + t.c in
  let lo = max 0 (col1 - (t.c + t.d)) in
  let hi = min row1 col1 in
  List.init (hi - lo + 1) (fun i ->
      let a = lo + i in
      { a; b = row1 - a; c = col1 - a; d = t.c + t.d - (col1 - a) })

let p_two_tailed t =
  let observed = prob t in
  let total =
    List.fold_left
      (fun acc t' ->
        let p = prob t' in
        if p <= observed *. (1.0 +. 1e-9) then acc +. p else acc)
      0.0 (tables_with_margins t)
  in
  Float.min 1.0 total

let p_one_tailed t =
  (* direction: association as observed or stronger (larger a) *)
  let total =
    List.fold_left
      (fun acc t' -> if t'.a >= t.a then acc +. prob t' else acc)
      0.0 (tables_with_margins t)
  in
  Float.min 1.0 total
