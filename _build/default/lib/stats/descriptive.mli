(** Descriptive statistics over float samples. *)

val mean : float list -> float
(** 0 on empty input. *)

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than two
    points. This matches the "standard deviation of speeds" the paper
    plots in Fig. 4. *)

val variance : float list -> float
val median : float list -> float
val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], linear interpolation. *)

val minimum : float list -> float
val maximum : float list -> float
val sum : float list -> float

val bootstrap_ci :
  Rng.t -> ?level:float -> ?resamples:int -> float list -> float * float
(** Percentile-bootstrap confidence interval for the mean
    ([level] defaults to 0.95, [resamples] to 2000). Degenerates to
    [(mean, mean)] for fewer than two points. *)
