lib/stats/mann_whitney.mli:
