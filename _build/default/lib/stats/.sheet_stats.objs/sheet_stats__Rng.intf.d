lib/stats/rng.mli:
