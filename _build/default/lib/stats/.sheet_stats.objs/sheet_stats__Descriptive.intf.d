lib/stats/descriptive.mli: Rng
