lib/stats/mann_whitney.ml: Array Float List
