lib/stats/fisher.ml: Float Hashtbl List
