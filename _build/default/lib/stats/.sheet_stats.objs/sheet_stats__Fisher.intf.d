lib/stats/fisher.mli:
