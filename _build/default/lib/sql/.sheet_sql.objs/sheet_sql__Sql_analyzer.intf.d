lib/sql/sql_analyzer.mli: Catalog Schema Sheet_rel Sql_ast Value
