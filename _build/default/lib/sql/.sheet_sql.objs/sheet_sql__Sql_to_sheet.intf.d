lib/sql/sql_to_sheet.mli: Catalog Op Relation Session Sheet_core Sheet_rel Sql_ast
