lib/sql/sql_parser.ml: Cursor Expr_parse Lexer List Printf Sheet_rel Sql_ast String
