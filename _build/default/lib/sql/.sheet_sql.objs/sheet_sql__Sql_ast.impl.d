lib/sql/sql_ast.ml: Expr Format List Option Sheet_rel String
