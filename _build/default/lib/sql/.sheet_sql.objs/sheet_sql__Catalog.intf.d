lib/sql/catalog.mli: Relation Sheet_rel
