lib/sql/sql_executor.ml: Array Catalog Expr Expr_eval Hashtbl List Option Printf Rel_algebra Relation Result Row Schema Sheet_rel Sql_analyzer Sql_ast Sql_parser Value
