lib/sql/sql_executor.mli: Catalog Relation Sheet_rel Sql_ast
