lib/sql/sql_of_sheet.ml: Computed Expr Grouping List Printf Query_state Result Sheet_core Sheet_rel Spreadsheet Sql_ast
