lib/sql/catalog.ml: Hashtbl List Relation Sheet_rel String
