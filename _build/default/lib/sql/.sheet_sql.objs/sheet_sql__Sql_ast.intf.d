lib/sql/sql_ast.mli: Expr Format Sheet_rel
