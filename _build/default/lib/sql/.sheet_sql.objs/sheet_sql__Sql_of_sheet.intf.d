lib/sql/sql_of_sheet.mli: Sheet_core Spreadsheet Sql_ast
