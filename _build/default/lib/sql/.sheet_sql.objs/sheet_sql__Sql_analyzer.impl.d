lib/sql/sql_analyzer.ml: Catalog Expr Expr_check List Option Printf Relation Result Schema Sheet_rel Sql_ast String Value
