(** Reference executor for core single-block SQL, used as ground truth
    when validating Theorem 1's translation and as the backend of the
    simulated visual query builder.

    Pipeline (standard SQL semantics over multisets): FROM product →
    WHERE → GROUP BY partition → HAVING → SELECT evaluation (one row
    per group when grouped) → DISTINCT → ORDER BY. *)

open Sheet_rel

val run : Catalog.t -> Sql_ast.query -> (Relation.t, string) result
(** Result column names and types follow
    {!Sql_analyzer.resolved.output}; rows are in ORDER BY order (or
    arbitrary order without ORDER BY). *)

val run_string : Catalog.t -> string -> (Relation.t, string) result
(** Parse then run. *)

val run_exn : Catalog.t -> string -> Relation.t
(** @raise Invalid_argument on parse/analysis/execution errors. *)
