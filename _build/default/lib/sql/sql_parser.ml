open Sheet_rel
open Lexer

module C = Cursor

(* Keywords that terminate an expression or identifier list. *)
let clause_keywords =
  [ "FROM"; "WHERE"; "GROUP"; "HAVING"; "ORDER"; "BY"; "ASC"; "DESC";
    "AS"; "SELECT"; "DISTINCT" ]

let at_clause_boundary c =
  match C.peek c with
  | IDENT s -> List.mem (String.uppercase_ascii s) clause_keywords
  | COMMA | SEMI | EOF -> true
  | _ -> false

let parse_select_item c =
  let expr = Expr_parse.parse_expr c in
  let alias =
    if C.keyword c "AS" then Some (C.ident c)
    else
      match C.peek c with
      | IDENT s when not (at_clause_boundary c) ->
          C.advance c;
          Some s
      | _ -> None
  in
  { Sql_ast.expr; alias }

let parse_select_list c =
  if C.peek c = STAR then begin
    C.advance c;
    []
  end
  else
    let rec go acc =
      let item = parse_select_item c in
      if C.peek c = COMMA then begin
        C.advance c;
        go (item :: acc)
      end
      else List.rev (item :: acc)
    in
    go []

let parse_from_list c =
  let rec go acc =
    let rel = C.ident c in
    let alias =
      match C.peek c with
      | IDENT s when not (at_clause_boundary c) ->
          C.advance c;
          Some s
      | _ -> None
    in
    let item = { Sql_ast.rel; alias } in
    if C.peek c = COMMA then begin
      C.advance c;
      go (item :: acc)
    end
    else List.rev (item :: acc)
  in
  go []

let parse_ident_list c =
  let rec go acc =
    let id = C.ident c in
    (* allow qualified names in GROUP BY *)
    let id =
      if C.peek c = DOT then begin
        C.advance c;
        id ^ "." ^ C.ident c
      end
      else id
    in
    if C.peek c = COMMA then begin
      C.advance c;
      go (id :: acc)
    end
    else List.rev (id :: acc)
  in
  go []

let parse_order_list c =
  let rec go acc =
    let expr = Expr_parse.parse_expr c in
    let dir =
      if C.keyword c "ASC" then `Asc
      else if C.keyword c "DESC" then `Desc
      else `Asc
    in
    let item = { Sql_ast.expr; dir } in
    if C.peek c = COMMA then begin
      C.advance c;
      go (item :: acc)
    end
    else List.rev (item :: acc)
  in
  go []

let parse_query c =
  C.expect_keyword c "SELECT";
  let distinct = C.keyword c "DISTINCT" in
  let select = parse_select_list c in
  C.expect_keyword c "FROM";
  let from = parse_from_list c in
  let where =
    if C.keyword c "WHERE" then Some (Expr_parse.parse_expr c) else None
  in
  let group_by =
    if C.keyword c "GROUP" then begin
      C.expect_keyword c "BY";
      parse_ident_list c
    end
    else []
  in
  let having =
    if C.keyword c "HAVING" then Some (Expr_parse.parse_expr c) else None
  in
  let order_by =
    if C.keyword c "ORDER" then begin
      C.expect_keyword c "BY";
      parse_order_list c
    end
    else []
  in
  if C.peek c = SEMI then C.advance c;
  if not (C.at_end c) then C.error c "trailing input after query";
  { Sql_ast.distinct; select; from; where; group_by; having; order_by }

let parse text =
  match tokenize text with
  | exception Lex_error (msg, pos) ->
      Error (Printf.sprintf "lex error at %d: %s" pos msg)
  | toks -> (
      let c = C.make toks in
      match parse_query c with
      | q -> Ok q
      | exception C.Parse_error msg -> Error msg)

let parse_exn text =
  match parse text with
  | Ok q -> q
  | Error msg -> invalid_arg ("Sql_parser.parse_exn: " ^ msg)
