(** Semantic analysis of core single-block SQL.

    Resolves column references against the FROM product (including
    qualified [alias.column] names and the disambiguating renames the
    product applies to clashing column names), classifies the query as
    plain or grouped, and enforces the well-formedness rules of the
    paper's core-query definition:
    - the WHERE predicate is aggregate-free;
    - in a grouped query, every non-aggregated column in SELECT,
      HAVING and ORDER BY appears in the GROUP BY list;
    - everything type-checks. *)

open Sheet_rel

type resolved = {
  query : Sql_ast.query;
      (** all column references rewritten to plain, unambiguous names
          in the FROM-product schema *)
  source_schema : Schema.t;  (** schema of the FROM product *)
  grouped : bool;  (** GROUP BY present or any aggregate used *)
  output : (string * Value.vtype) list;
      (** result column names (unique) and types, in SELECT order *)
}

val analyze : Catalog.t -> Sql_ast.query -> (resolved, string) result
