open Sheet_rel

type select_item = { expr : Expr.t; alias : string option }

type from_item = { rel : string; alias : string option }

type order_item = { expr : Expr.t; dir : [ `Asc | `Desc ] }

type query = {
  distinct : bool;
  select : select_item list;
  from : from_item list;
  where : Expr.t option;
  group_by : string list;
  having : Expr.t option;
  order_by : order_item list;
}

let output_name (item : select_item) =
  match item.alias with
  | Some a -> a
  | None -> (
      match item.expr with
      | Expr.Col c -> c
      | e -> Expr.to_string e)

let select_is_star q = q.select = []

let pp ppf q =
  let open Format in
  fprintf ppf "@[<v>SELECT %s"
    (if q.distinct then "DISTINCT " else "");
  (if select_is_star q then pp_print_string ppf "*"
   else
     pp_print_list
       ~pp_sep:(fun ppf () -> fprintf ppf ", ")
       (fun ppf (item : select_item) ->
         Expr.pp ppf item.expr;
         match item.alias with
         | Some a -> fprintf ppf " AS %s" a
         | None -> ())
       ppf q.select);
  fprintf ppf "@ FROM %s"
    (String.concat ", "
       (List.map
          (fun (f : from_item) ->
            match f.alias with
            | Some a -> f.rel ^ " " ^ a
            | None -> f.rel)
          q.from));
  Option.iter (fun e -> fprintf ppf "@ WHERE %a" Expr.pp e) q.where;
  if q.group_by <> [] then
    fprintf ppf "@ GROUP BY %s" (String.concat ", " q.group_by);
  Option.iter (fun e -> fprintf ppf "@ HAVING %a" Expr.pp e) q.having;
  if q.order_by <> [] then begin
    fprintf ppf "@ ORDER BY ";
    pp_print_list
      ~pp_sep:(fun ppf () -> fprintf ppf ", ")
      (fun ppf o ->
        Expr.pp ppf o.expr;
        fprintf ppf " %s" (match o.dir with `Asc -> "ASC" | `Desc -> "DESC"))
      ppf q.order_by
  end;
  fprintf ppf "@]"

let to_string q = Format.asprintf "%a" pp q
