open Sheet_rel

type t = (string, Relation.t) Hashtbl.t

let create () = Hashtbl.create 16
let add t ~name rel = Hashtbl.replace t name rel
let find t name = Hashtbl.find_opt t name
let find_exn t name = Hashtbl.find t name

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t []
  |> List.sort String.compare

let of_list l =
  let t = create () in
  List.iter (fun (name, rel) -> add t ~name rel) l;
  t
