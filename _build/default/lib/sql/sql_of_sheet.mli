(** The inverse of Theorem 1: compile a spreadsheet's query state back
    into a core single-block SQL statement, when one exists.

    The paper's interface "never reveals or requires the user to know
    a SQL query" — but the state the user builds by touch often {e is}
    a single-block query, and showing it is both a good teaching
    device and a pushdown path to a SQL backend. The REPL's [sql]
    command prints it.

    Expressible states: selections in stratum 0 (WHERE), aggregates at
    the finest group level with their HAVING-stratum selections,
    formula columns (inlined into the expressions that use them),
    grouping as GROUP BY, duplicate elimination as DISTINCT
    (ungrouped), leaf and group orderings as ORDER BY. States that
    fall outside the core fragment — aggregates at intermediate
    levels, selections reading formula-over-aggregate chains deeper
    than one inlining pass can flatten, grouped sheets with visible
    non-grouped base columns (the sheet shows every row; SQL would
    collapse them) — yield [`Not_single_block reason]. *)

open Sheet_core

val compile :
  table:string ->
  Spreadsheet.t ->
  (Sql_ast.query, [ `Not_single_block of string ]) result
(** [table] names the base relation in the emitted FROM clause. For a
    grouped/aggregated sheet the emitted query returns one row per
    group (SQL semantics); the sheet shows the same values repeated
    per row — the usual presentation collapse (DESIGN.md §4). *)

val to_string :
  table:string -> Spreadsheet.t -> (string, string) result
(** {!compile} rendered as SQL text; the error is the human-readable
    reason. *)
