(** Parser for core single-block SQL, reusing the shared tokenizer and
    expression parser of [Sheet_rel]. Keywords are case-insensitive;
    a trailing semicolon is allowed. *)

val parse : string -> (Sql_ast.query, string) result

val parse_exn : string -> Sql_ast.query
(** @raise Invalid_argument on malformed input. *)
