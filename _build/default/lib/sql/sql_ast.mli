(** Abstract syntax of the paper's {e core single-block SQL}
    (Section IV-A):

    {v
    SELECT [DISTINCT] <projection-list> <aggregation-list>
    FROM <relation-list>
    WHERE <selection-predicate>
    GROUP BY <grouping-list>
    HAVING <group-selection-predicate>
    ORDER BY <ordering-list>
    v} *)

open Sheet_rel

type select_item = {
  expr : Expr.t;  (** may contain aggregate calls *)
  alias : string option;
}

type from_item = { rel : string; alias : string option }

type order_item = { expr : Expr.t; dir : [ `Asc | `Desc ] }

type query = {
  distinct : bool;
  select : select_item list;  (** empty means [SELECT *] *)
  from : from_item list;
  where : Expr.t option;
  group_by : string list;
  having : Expr.t option;
  order_by : order_item list;
}

val output_name : select_item -> string
(** Result column name: the alias if given, the column name for a bare
    column reference, otherwise the printed expression. *)

val select_is_star : query -> bool

val pp : Format.formatter -> query -> unit
(** Print back as SQL. *)

val to_string : query -> string
