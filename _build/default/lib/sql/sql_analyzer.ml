open Sheet_rel

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

type resolved = {
  query : Sql_ast.query;
  source_schema : Schema.t;
  grouped : bool;
  output : (string * Value.vtype) list;
}

(* Build the FROM-product schema and, per FROM item, the mapping from
   the item's original column names to their names in the product
   (clashes get numeric suffixes, exactly as the executor's product
   will produce). *)
let build_source catalog (from : Sql_ast.from_item list) =
  let rec go acc_schema acc_maps = function
    | [] -> Ok (acc_schema, List.rev acc_maps)
    | (item : Sql_ast.from_item) :: rest -> (
        match Catalog.find catalog item.Sql_ast.rel with
        | None -> errf "unknown relation %S" item.Sql_ast.rel
        | Some rel ->
            let schema = Relation.schema rel in
            let label =
              Option.value item.Sql_ast.alias ~default:item.Sql_ast.rel
            in
            let combined, mapping =
              match acc_schema with
              | None -> (schema, List.map (fun n -> (n, n)) (Schema.names schema))
              | Some acc -> Schema.concat_with_mapping acc schema
            in
            go (Some combined) ((label, mapping) :: acc_maps) rest)
  in
  let* schema, maps = go None [] from in
  match schema with
  | None -> errf "empty FROM list"
  | Some s -> Ok (s, maps)

(* Resolve one (possibly qualified) column reference to its name in
   the product schema. *)
let resolve_name maps name =
  match String.index_opt name '.' with
  | Some i ->
      let qualifier = String.sub name 0 i in
      let col = String.sub name (i + 1) (String.length name - i - 1) in
      let rec find = function
        | [] -> errf "unknown table or alias %S" qualifier
        | (label, mapping) :: rest ->
            if label = qualifier then
              match List.assoc_opt col mapping with
              | Some final -> Ok final
              | None -> errf "no column %S in %S" col qualifier
            else find rest
      in
      find maps
  | None -> (
      let hits =
        List.concat_map
          (fun (label, mapping) ->
            match List.assoc_opt name mapping with
            | Some final -> [ (label, final) ]
            | None -> [])
          maps
      in
      match hits with
      | [ (_, final) ] -> Ok final
      | [] -> errf "unknown column %S" name
      | _ -> errf "ambiguous column %S; qualify it" name)

let resolve_expr maps e =
  (* Expr.map_columns cannot fail, so collect errors first. *)
  let* () =
    List.fold_left
      (fun acc col ->
        let* () = acc in
        let* _ = resolve_name maps col in
        Ok ())
      (Ok ()) (Expr.columns e)
  in
  Ok
    (Expr.map_columns
       (fun col ->
         match resolve_name maps col with
         | Ok final -> final
         | Error _ -> col (* unreachable: checked above *))
       e)

(* Columns referenced outside aggregate arguments. *)
let rec bare_columns (e : Expr.t) =
  match e with
  | Expr.Agg _ -> []
  | Expr.Const _ -> []
  | Expr.Col c -> [ c ]
  | Expr.Neg a | Expr.Not a | Expr.Is_null a | Expr.Like (a, _)
  | Expr.In_list (a, _) | Expr.Fn (_, a) ->
      bare_columns a
  | Expr.Arith (_, a, b) | Expr.Concat (a, b) | Expr.Cmp (_, a, b)
  | Expr.And (a, b) | Expr.Or (a, b) ->
      bare_columns a @ bare_columns b
  | Expr.Between (a, b, c) ->
      bare_columns a @ bare_columns b @ bare_columns c
  | Expr.Case (branches, default) ->
      List.concat_map
        (fun (c, e) -> bare_columns c @ bare_columns e)
        branches
      @ (match default with Some d -> bare_columns d | None -> [])

let check_grouped_refs what group_by e =
  match
    List.find_opt (fun c -> not (List.mem c group_by)) (bare_columns e)
  with
  | Some c ->
      errf "%s references column %S which is not in GROUP BY" what c
  | None -> Ok ()

let fresh_output_name used base =
  if not (List.mem base !used) then begin
    used := base :: !used;
    base
  end
  else
    let rec go i =
      let cand = Printf.sprintf "%s_%d" base i in
      if List.mem cand !used then go (i + 1)
      else begin
        used := cand :: !used;
        cand
      end
    in
    go 2

let analyze catalog (q : Sql_ast.query) =
  let* source_schema, maps = build_source catalog q.Sql_ast.from in
  (* Resolve every expression in the query. *)
  let resolve = resolve_expr maps in
  let* select =
    List.fold_left
      (fun acc (item : Sql_ast.select_item) ->
        let* acc = acc in
        let* expr = resolve item.Sql_ast.expr in
        Ok (acc @ [ { item with Sql_ast.expr } ]))
      (Ok []) q.Sql_ast.select
  in
  let* where =
    match q.Sql_ast.where with
    | None -> Ok None
    | Some e ->
        let* e = resolve e in
        if Expr.has_agg e then errf "aggregates are not allowed in WHERE"
        else Ok (Some e)
  in
  let* group_by =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let* final = resolve_name maps name in
        Ok (acc @ [ final ]))
      (Ok []) q.Sql_ast.group_by
  in
  let* having =
    match q.Sql_ast.having with
    | None -> Ok None
    | Some e ->
        let* e = resolve e in
        Ok (Some e)
  in
  let* order_by =
    List.fold_left
      (fun acc (o : Sql_ast.order_item) ->
        let* acc = acc in
        (* an ORDER BY name may refer to a SELECT alias *)
        let by_alias =
          match o.Sql_ast.expr with
          | Expr.Col c -> (
              match
                List.find_opt
                  (fun (item : Sql_ast.select_item) ->
                    item.Sql_ast.alias = Some c)
                  select
              with
              | Some item -> Some item.Sql_ast.expr
              | None -> None)
          | _ -> None
        in
        let* expr =
          match by_alias with Some e -> Ok e | None -> resolve o.Sql_ast.expr
        in
        Ok (acc @ [ { o with Sql_ast.expr } ]))
      (Ok []) q.Sql_ast.order_by
  in
  let has_any_agg =
    List.exists
      (fun (i : Sql_ast.select_item) -> Expr.has_agg i.Sql_ast.expr)
      select
    || Option.fold ~none:false ~some:Expr.has_agg having
    || List.exists (fun o -> Expr.has_agg o.Sql_ast.expr) order_by
  in
  let grouped = group_by <> [] || has_any_agg in
  (* Structural checks for grouped queries. *)
  let* () =
    if not grouped then
      match having with
      | Some _ -> errf "HAVING requires GROUP BY or aggregates"
      | None -> Ok ()
    else
      let* () =
        List.fold_left
          (fun acc (item : Sql_ast.select_item) ->
            let* () = acc in
            check_grouped_refs "SELECT" group_by item.Sql_ast.expr)
          (Ok ()) select
      in
      let* () =
        match having with
        | None -> Ok ()
        | Some e -> check_grouped_refs "HAVING" group_by e
      in
      List.fold_left
        (fun acc (o : Sql_ast.order_item) ->
          let* () = acc in
          check_grouped_refs "ORDER BY" group_by o.Sql_ast.expr)
        (Ok ()) order_by
  in
  (* SELECT * in a grouped query is not part of the core fragment. *)
  let* select =
    if select <> [] then Ok select
    else if grouped then errf "SELECT * cannot be combined with grouping"
    else
      Ok
        (List.map
           (fun name -> { Sql_ast.expr = Expr.Col name; alias = None })
           (Schema.names source_schema))
  in
  (* Type-check everything and compute output schema. *)
  let check_expr e =
    match Expr_check.check ~allow_agg:grouped source_schema e with
    | Ok ty -> Ok ty
    | Error msg -> Error msg
  in
  let used = ref [] in
  let* output =
    List.fold_left
      (fun acc (item : Sql_ast.select_item) ->
        let* acc = acc in
        let* ty = check_expr item.Sql_ast.expr in
        let ty = Option.value ty ~default:Value.TString in
        let name = fresh_output_name used (Sql_ast.output_name item) in
        Ok (acc @ [ (name, ty) ]))
      (Ok []) select
  in
  let* () =
    match where with
    | None -> Ok ()
    | Some e -> (
        match Expr_check.check_pred source_schema e with
        | Ok () -> Ok ()
        | Error msg -> errf "WHERE: %s" msg)
  in
  let* () =
    match having with
    | None -> Ok ()
    | Some e -> (
        match Expr_check.check_pred ~allow_agg:true source_schema e with
        | Ok () -> Ok ()
        | Error msg -> errf "HAVING: %s" msg)
  in
  let* () =
    List.fold_left
      (fun acc (o : Sql_ast.order_item) ->
        let* () = acc in
        match check_expr o.Sql_ast.expr with
        | Ok _ -> Ok ()
        | Error msg -> errf "ORDER BY: %s" msg)
      (Ok ()) order_by
  in
  let* () =
    List.fold_left
      (fun acc col ->
        let* () = acc in
        if Schema.mem source_schema col then Ok ()
        else errf "GROUP BY column %S not found" col)
      (Ok ()) group_by
  in
  Ok
    { query =
        { q with Sql_ast.select; where; group_by; having; order_by };
      source_schema;
      grouped;
      output }
