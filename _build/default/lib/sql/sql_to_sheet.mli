(** Theorem 1, constructively: translate any core single-block SQL
    query into a sequence of spreadsheet-algebra operators whose
    evaluation yields the same result.

    The translation follows the paper's 7-step procedure (Sec. IV-A):
    + product of the FROM relations, one at a time;
    + WHERE as a selection;
    + each GROUP BY item as a new grouping level, left to right;
    + each aggregate as an aggregation operator at the finest level
      (aggregates over expressions first create the expression as a
      formula column);
    + HAVING as a selection over the aggregate columns;
    + ORDER BY via the ordering operator at the appropriate level;
    + projection of every column not in the output, one at a time.

    Deviations needed for exact result equality (documented in
    DESIGN.md): a grouped query additionally applies duplicate
    elimination at the end (SQL yields one row per group; the
    spreadsheet repeats group values on every row, which collapse to
    exactly the SQL rows once non-output columns are projected out),
    and non-column output expressions are realized as formula
    columns. *)

open Sheet_rel
open Sheet_core

type plan = {
  first_relation : string;  (** the sheet the session starts on *)
  ops : Op.t list;  (** operator sequence in application order *)
  output : string list;
      (** visible column names of the final sheet, positionally
          matching the SQL output columns *)
}

val translate : Catalog.t -> Sql_ast.query -> (plan, string) result

val execute : Catalog.t -> Sql_ast.query -> (Relation.t, string) result
(** Run the plan in a fresh session (all catalog relations saved to
    the sheet store first) and return the visible materialization with
    columns renamed/ordered to match the SQL output. *)

val session_of_plan :
  Catalog.t -> plan -> (Session.t, string) result
(** The session after applying the plan — for callers that want to
    keep manipulating the result interactively. *)
