(** A named collection of relations — the "database" that SQL queries
    and spreadsheet sessions read from. *)

open Sheet_rel

type t

val create : unit -> t
val add : t -> name:string -> Relation.t -> unit
val find : t -> string -> Relation.t option
val find_exn : t -> string -> Relation.t
(** @raise Not_found *)

val names : t -> string list
(** Sorted. *)

val of_list : (string * Relation.t) list -> t
