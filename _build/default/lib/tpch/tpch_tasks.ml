open Sheet_rel

type features = {
  n_selections : int;
  n_group_levels : int;
  n_aggregates : int;
  n_formulas : int;
  has_having : bool;
  n_orderings : int;
  n_projections : int;
}

type t = {
  id : int;
  title : string;
  english : string;
  base : string;
  sql : string;
  script : string;
  output : string list;
  grouped : bool;
  features : features;
}

let task ~id ~title ~english ~base ~sql ~script ~output ~grouped ~features =
  { id; title; english; base; sql; script; output; grouped; features }

let all =
  [ task ~id:1 ~title:"Pricing summary report"
      ~english:
        "For all items shipped on or before 1998-09-01, report per return \
         flag and line status: total quantity, total extended price, \
         average discount, and the number of line items; present the \
         report grouped by return flag and line status."
      ~base:"lineitem"
      ~sql:
        "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty, \
         sum(l_extendedprice) AS sum_price, avg(l_discount) AS avg_disc, \
         count(*) AS cnt FROM lineitem WHERE l_shipdate <= DATE \
         '1998-09-01' GROUP BY l_returnflag, l_linestatus"
      ~script:
        {|select l_shipdate <= DATE '1998-09-01'
group l_returnflag asc
group l_linestatus asc
agg sum l_quantity as sum_qty
agg sum l_extendedprice as sum_price
agg avg l_discount as avg_disc
agg count as cnt|}
      ~output:
        [ "l_returnflag"; "l_linestatus"; "sum_qty"; "sum_price";
          "avg_disc"; "cnt" ]
      ~grouped:true
      ~features:
        { n_selections = 1; n_group_levels = 2; n_aggregates = 4;
          n_formulas = 0; has_having = false; n_orderings = 0;
          n_projections = 0 };
    task ~id:2 ~title:"Revenue of building-segment orders"
      ~english:
        "For orders of customers in the BUILDING market segment placed \
         before 1995-03-15, compute the revenue (extended price less \
         discount) of their line items shipped after 1995-03-15, per \
         order, largest revenue first."
      ~base:"v_lineitem_orders"
      ~sql:
        "SELECT l_orderkey, sum(l_extendedprice * (1 - l_discount)) AS \
         revenue FROM v_lineitem_orders WHERE c_mktsegment = 'BUILDING' \
         AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE \
         '1995-03-15' GROUP BY l_orderkey"
      ~script:
        {|select c_mktsegment = 'BUILDING'
select o_orderdate < DATE '1995-03-15'
select l_shipdate > DATE '1995-03-15'
formula disc_price = l_extendedprice * (1 - l_discount)
group l_orderkey asc
agg sum disc_price as revenue
order-groups revenue desc|}
      ~output:[ "l_orderkey"; "revenue" ] ~grouped:true
      ~features:
        { n_selections = 3; n_group_levels = 1; n_aggregates = 1;
          n_formulas = 1; has_having = false; n_orderings = 1;
          n_projections = 0 };
    task ~id:3 ~title:"Forecast revenue change"
      ~english:
        "How much revenue (extended price times discount) was produced in \
         1994 by line items with a discount between 0.05 and 0.07 and \
         quantity below 24?"
      ~base:"lineitem"
      ~sql:
        "SELECT sum(l_extendedprice * l_discount) AS revenue FROM \
         lineitem WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < \
         DATE '1995-01-01' AND l_discount BETWEEN 0.05 AND 0.07 AND \
         l_quantity < 24"
      ~script:
        {|select l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
select l_discount BETWEEN 0.05 AND 0.07
select l_quantity < 24
formula disc_rev = l_extendedprice * l_discount
agg sum disc_rev as revenue|}
      ~output:[ "revenue" ] ~grouped:true
      ~features:
        { n_selections = 3; n_group_levels = 0; n_aggregates = 1;
          n_formulas = 1; has_having = false; n_orderings = 0;
          n_projections = 0 };
    task ~id:4 ~title:"Returned items by customer"
      ~english:
        "Which customers returned items, and how much revenue (extended \
         price less discount) did those returned items represent per \
         customer? Show the largest revenue first."
      ~base:"v_lineitem_orders"
      ~sql:
        "SELECT c_name, sum(l_extendedprice * (1 - l_discount)) AS \
         revenue FROM v_lineitem_orders WHERE l_returnflag = 'R' GROUP \
         BY c_name"
      ~script:
        {|select l_returnflag = 'R'
formula disc_price = l_extendedprice * (1 - l_discount)
group c_name asc
agg sum disc_price as revenue
order-groups revenue desc|}
      ~output:[ "c_name"; "revenue" ] ~grouped:true
      ~features:
        { n_selections = 1; n_group_levels = 1; n_aggregates = 1;
          n_formulas = 1; has_having = false; n_orderings = 1;
          n_projections = 0 };
    task ~id:5 ~title:"Parts of size 15"
      ~english:
        "List the name and retail price of parts of size 15, most \
         expensive first."
      ~base:"part"
      ~sql:
        "SELECT p_name, p_retailprice FROM part WHERE p_size = 15 ORDER \
         BY p_retailprice DESC"
      ~script:{|select p_size = 15
order p_retailprice desc|}
      ~output:[ "p_name"; "p_retailprice" ] ~grouped:false
      ~features:
        { n_selections = 1; n_group_levels = 0; n_aggregates = 0;
          n_formulas = 0; has_having = false; n_orderings = 1;
          n_projections = 0 };
    task ~id:6 ~title:"Shipping mode counts"
      ~english:
        "Count the line items received in 1994 that were shipped by MAIL \
         or SHIP, per shipping mode."
      ~base:"lineitem"
      ~sql:
        "SELECT l_shipmode, count(*) AS cnt FROM lineitem WHERE \
         l_shipmode IN ('MAIL', 'SHIP') AND l_receiptdate >= DATE \
         '1994-01-01' AND l_receiptdate < DATE '1995-01-01' GROUP BY \
         l_shipmode"
      ~script:
        {|select l_shipmode IN ('MAIL', 'SHIP')
select l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1995-01-01'
group l_shipmode asc
agg count as cnt|}
      ~output:[ "l_shipmode"; "cnt" ] ~grouped:true
      ~features:
        { n_selections = 2; n_group_levels = 1; n_aggregates = 1;
          n_formulas = 0; has_having = false; n_orderings = 0;
          n_projections = 0 };
    task ~id:7 ~title:"Customers of a market segment"
      ~english:
        "List the name and account balance of customers in the \
         AUTOMOBILE market segment, richest first."
      ~base:"customer"
      ~sql:
        "SELECT c_name, c_acctbal FROM customer WHERE c_mktsegment = \
         'AUTOMOBILE' ORDER BY c_acctbal DESC"
      ~script:{|select c_mktsegment = 'AUTOMOBILE'
order c_acctbal desc|}
      ~output:[ "c_name"; "c_acctbal" ] ~grouped:false
      ~features:
        { n_selections = 1; n_group_levels = 0; n_aggregates = 0;
          n_formulas = 0; has_having = false; n_orderings = 1;
          n_projections = 0 };
    task ~id:8 ~title:"Brand revenue with quantity bounds"
      ~english:
        "Compute the revenue (extended price less discount) of Brand#12 \
         parts of size at most 25 sold in quantities between 5 and 40."
      ~base:"v_lineitem_parts"
      ~sql:
        "SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue FROM \
         v_lineitem_parts WHERE p_brand = 'Brand#12' AND l_quantity \
         BETWEEN 5 AND 40 AND p_size <= 25"
      ~script:
        {|select p_brand = 'Brand#12'
select l_quantity BETWEEN 5 AND 40
select p_size <= 25
formula disc_price = l_extendedprice * (1 - l_discount)
agg sum disc_price as revenue|}
      ~output:[ "revenue" ] ~grouped:true
      ~features:
        { n_selections = 3; n_group_levels = 0; n_aggregates = 1;
          n_formulas = 1; has_having = false; n_orderings = 0;
          n_projections = 0 };
    task ~id:9 ~title:"Busy clerks"
      ~english:
        "Which clerks processed at least three orders, and how many \
         orders did each of them process?"
      ~base:"orders"
      ~sql:
        "SELECT o_clerk, count(*) AS cnt FROM orders GROUP BY o_clerk \
         HAVING count(*) >= 3"
      ~script:{|group o_clerk asc
agg count as cnt
select cnt >= 3|}
      ~output:[ "o_clerk"; "cnt" ] ~grouped:true
      ~features:
        { n_selections = 0; n_group_levels = 1; n_aggregates = 1;
          n_formulas = 0; has_having = true; n_orderings = 0;
          n_projections = 0 };
    task ~id:10 ~title:"Expensive orders"
      ~english:
        "List the key, total price and date of orders whose total price \
         exceeds 150000, oldest first."
      ~base:"orders"
      ~sql:
        "SELECT o_orderkey, o_totalprice, o_orderdate FROM orders WHERE \
         o_totalprice > 150000 ORDER BY o_orderdate ASC"
      ~script:{|select o_totalprice > 150000
order o_orderdate asc|}
      ~output:[ "o_orderkey"; "o_totalprice"; "o_orderdate" ]
      ~grouped:false
      ~features:
        { n_selections = 1; n_group_levels = 0; n_aggregates = 0;
          n_formulas = 0; has_having = false; n_orderings = 1;
          n_projections = 0 } ]

let extensions =
  [ task ~id:11 ~title:"Priority shipping by mode (Q12 pattern)"
      ~english:
        "For line items received in 1994, count per shipping mode how \
         many belong to urgent-or-high-priority orders and how many do \
         not."
      ~base:"v_lineitem_orders"
      ~sql:
        "SELECT l_shipmode, sum(CASE WHEN o_orderpriority = '1-URGENT' \
         OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line, \
         sum(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority \
         <> '2-HIGH' THEN 1 ELSE 0 END) AS low_line FROM \
         v_lineitem_orders WHERE l_receiptdate >= DATE '1994-01-01' AND \
         l_receiptdate < DATE '1995-01-01' GROUP BY l_shipmode"
      ~script:
        {|select l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1995-01-01'
formula is_high = CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END
formula is_low = CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END
group l_shipmode asc
agg sum is_high as high_line
agg sum is_low as low_line|}
      ~output:[ "l_shipmode"; "high_line"; "low_line" ] ~grouped:true
      ~features:
        { n_selections = 1; n_group_levels = 1; n_aggregates = 2;
          n_formulas = 2; has_having = false; n_orderings = 0;
          n_projections = 0 };
    task ~id:12 ~title:"Promotion revenue share (Q14 pattern)"
      ~english:
        "Of the revenue from line items shipped in a given month, which \
         part came from promotional parts? Compute both the promotional \
         and the total revenue."
      ~base:"v_lineitem_parts"
      ~sql:
        "SELECT sum(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice \
         * (1 - l_discount) ELSE 0 END) AS promo_rev, \
         sum(l_extendedprice * (1 - l_discount)) AS total_rev FROM \
         v_lineitem_parts WHERE l_shipdate >= DATE '1995-09-01' AND \
         l_shipdate < DATE '1995-10-01'"
      ~script:
        {|select l_shipdate >= DATE '1995-09-01' AND l_shipdate < DATE '1995-10-01'
formula disc_price = l_extendedprice * (1 - l_discount)
formula promo_part = CASE WHEN p_type LIKE 'PROMO%' THEN disc_price ELSE 0 END
agg sum promo_part as promo_rev
agg sum disc_price as total_rev|}
      ~output:[ "promo_rev"; "total_rev" ] ~grouped:true
      ~features:
        { n_selections = 1; n_group_levels = 0; n_aggregates = 2;
          n_formulas = 2; has_having = false; n_orderings = 0;
          n_projections = 0 } ]

let find id =
  match List.find_opt (fun t -> t.id = id) (all @ extensions) with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Tpch_tasks.find: no task %d" id)

let ( let* ) = Result.bind

let project_output rel output =
  let schema = Relation.schema rel in
  match
    List.find_opt (fun c -> not (Schema.mem schema c)) output
  with
  | Some c -> Error (Printf.sprintf "output column %S missing" c)
  | None -> Ok (Rel_algebra.project output rel)

let sheet_result catalog task =
  match Sheet_sql.Catalog.find catalog task.base with
  | None -> Error (Printf.sprintf "no base %S in catalog" task.base)
  | Some base ->
      let session = Sheet_core.Session.create ~name:task.base base in
      let* session = Sheet_core.Script.run_silent session task.script in
      let rel = Sheet_core.Session.materialized session in
      let* projected = project_output rel task.output in
      Ok
        (if task.grouped then Rel_algebra.distinct projected else projected)

let sql_result catalog task =
  Sheet_sql.Sql_executor.run_string catalog task.sql

let verify catalog task =
  let* sheet = sheet_result catalog task in
  let* sql = sql_result catalog task in
  if Relation.equal_unordered_data sheet sql then Ok ()
  else
    Error
      (Printf.sprintf
         "task %d: sheet result (%d rows) differs from SQL result (%d \
          rows)"
         task.id
         (Relation.cardinality sheet)
         (Relation.cardinality sql))
