(** Schemas of the eight TPC-H base tables (TPC-H Benchmark
    Specification §1.4), with types mapped onto the value domain of
    [Sheet_rel]: keys and quantities as ints, monetary amounts as
    floats, dates as dates. *)

open Sheet_rel

val region : Schema.t
val nation : Schema.t
val supplier : Schema.t
val customer : Schema.t
val part : Schema.t
val partsupp : Schema.t
val orders : Schema.t
val lineitem : Schema.t

val all : (string * Schema.t) list
(** Table name → schema, in population order. *)
