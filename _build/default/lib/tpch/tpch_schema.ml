open Sheet_rel

let s = Schema.of_list

let region =
  s [ ("r_regionkey", Value.TInt); ("r_name", Value.TString);
      ("r_comment", Value.TString) ]

let nation =
  s [ ("n_nationkey", Value.TInt); ("n_name", Value.TString);
      ("n_regionkey", Value.TInt); ("n_comment", Value.TString) ]

let supplier =
  s [ ("s_suppkey", Value.TInt); ("s_name", Value.TString);
      ("s_address", Value.TString); ("s_nationkey", Value.TInt);
      ("s_phone", Value.TString); ("s_acctbal", Value.TFloat);
      ("s_comment", Value.TString) ]

let customer =
  s [ ("c_custkey", Value.TInt); ("c_name", Value.TString);
      ("c_address", Value.TString); ("c_nationkey", Value.TInt);
      ("c_phone", Value.TString); ("c_acctbal", Value.TFloat);
      ("c_mktsegment", Value.TString); ("c_comment", Value.TString) ]

let part =
  s [ ("p_partkey", Value.TInt); ("p_name", Value.TString);
      ("p_mfgr", Value.TString); ("p_brand", Value.TString);
      ("p_type", Value.TString); ("p_size", Value.TInt);
      ("p_container", Value.TString); ("p_retailprice", Value.TFloat);
      ("p_comment", Value.TString) ]

let partsupp =
  s [ ("ps_partkey", Value.TInt); ("ps_suppkey", Value.TInt);
      ("ps_availqty", Value.TInt); ("ps_supplycost", Value.TFloat);
      ("ps_comment", Value.TString) ]

let orders =
  s [ ("o_orderkey", Value.TInt); ("o_custkey", Value.TInt);
      ("o_orderstatus", Value.TString); ("o_totalprice", Value.TFloat);
      ("o_orderdate", Value.TDate); ("o_orderpriority", Value.TString);
      ("o_clerk", Value.TString); ("o_shippriority", Value.TInt);
      ("o_comment", Value.TString) ]

let lineitem =
  s [ ("l_orderkey", Value.TInt); ("l_partkey", Value.TInt);
      ("l_suppkey", Value.TInt); ("l_linenumber", Value.TInt);
      ("l_quantity", Value.TInt); ("l_extendedprice", Value.TFloat);
      ("l_discount", Value.TFloat); ("l_tax", Value.TFloat);
      ("l_returnflag", Value.TString); ("l_linestatus", Value.TString);
      ("l_shipdate", Value.TDate); ("l_commitdate", Value.TDate);
      ("l_receiptdate", Value.TDate); ("l_shipinstruct", Value.TString);
      ("l_shipmode", Value.TString); ("l_comment", Value.TString) ]

let all =
  [ ("region", region); ("nation", nation); ("supplier", supplier);
    ("customer", customer); ("part", part); ("partsupp", partsupp);
    ("orders", orders); ("lineitem", lineitem) ]
