open Sheet_stats

let colors =
  [| "almond"; "antique"; "aquamarine"; "azure"; "beige"; "bisque";
     "black"; "blanched"; "blue"; "blush"; "brown"; "burlywood";
     "burnished"; "chartreuse"; "chiffon"; "chocolate"; "coral";
     "cornflower"; "cornsilk"; "cream"; "cyan"; "dark"; "deep"; "dim";
     "dodger"; "drab"; "firebrick"; "floral"; "forest"; "frosted";
     "gainsboro"; "ghost"; "goldenrod"; "green"; "grey"; "honeydew";
     "hot"; "indian"; "ivory"; "khaki"; "lace"; "lavender"; "lawn";
     "lemon"; "light"; "lime"; "linen"; "magenta"; "maroon"; "medium";
     "metallic"; "midnight"; "mint"; "misty"; "moccasin"; "navajo";
     "navy"; "olive"; "orange"; "orchid"; "pale"; "papaya"; "peach";
     "peru"; "pink"; "plum"; "powder"; "puff"; "purple"; "red"; "rose";
     "rosy"; "royal"; "saddle"; "salmon"; "sandy"; "seashell"; "sienna";
     "sky"; "slate"; "smoke"; "snow"; "spring"; "steel"; "tan";
     "thistle"; "tomato"; "turquoise"; "violet"; "wheat"; "white";
     "yellow" |]

let type_syllable_1 = [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |]
let type_syllable_2 = [| "ANODIZED"; "BURNISHED"; "PLATED"; "POLISHED"; "BRUSHED" |]
let type_syllable_3 = [| "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" |]

let container_1 = [| "SM"; "LG"; "MED"; "JUMBO"; "WRAP" |]
let container_2 = [| "CASE"; "BOX"; "BAG"; "JAR"; "PKG"; "PACK"; "CAN"; "DRUM" |]

let nouns =
  [| "packages"; "requests"; "accounts"; "deposits"; "foxes"; "ideas";
     "theodolites"; "pinto beans"; "instructions"; "dependencies";
     "excuses"; "platelets"; "asymptotes"; "courts"; "dolphins";
     "multipliers"; "sauternes"; "warthogs"; "frets"; "dinos" |]

let verbs =
  [| "sleep"; "wake"; "are"; "cajole"; "haggle"; "nag"; "use"; "boost";
     "affix"; "detect"; "integrate"; "maintain"; "nod"; "was"; "lose";
     "sublate"; "solve"; "thrash"; "promise"; "engage" |]

let adverbs =
  [| "quickly"; "slowly"; "carefully"; "blithely"; "furiously";
     "slyly"; "silently"; "daringly"; "fluffily"; "ruthlessly" |]

let part_name rng =
  let rec pick3 acc =
    if List.length acc = 3 then acc
    else
      let w = Rng.pick rng colors in
      if List.mem w acc then pick3 acc else pick3 (w :: acc)
  in
  String.concat " " (pick3 [])

let part_type rng =
  Printf.sprintf "%s %s %s"
    (Rng.pick rng type_syllable_1)
    (Rng.pick rng type_syllable_2)
    (Rng.pick rng type_syllable_3)

let container rng =
  Printf.sprintf "%s %s" (Rng.pick rng container_1) (Rng.pick rng container_2)

let comment rng max_len =
  let buf = Buffer.create max_len in
  let rec go () =
    let clause =
      Printf.sprintf "%s %s %s"
        (Rng.pick rng adverbs) (Rng.pick rng nouns) (Rng.pick rng verbs)
    in
    if Buffer.length buf + String.length clause + 2 <= max_len then begin
      if Buffer.length buf > 0 then Buffer.add_string buf ". ";
      Buffer.add_string buf clause;
      if Rng.bool rng then go ()
    end
  in
  go ();
  Buffer.contents buf

let phone rng nation_key =
  Printf.sprintf "%02d-%03d-%03d-%04d" (10 + nation_key)
    (Rng.int_in rng 100 999) (Rng.int_in rng 100 999)
    (Rng.int_in rng 1000 9999)

let segments =
  [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]

let priorities =
  [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let ship_modes =
  [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]

let ship_instructs =
  [| "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" |]

let segment rng = Rng.pick rng segments
let priority rng = Rng.pick rng priorities
let ship_mode rng = Rng.pick rng ship_modes
let ship_instruct rng = Rng.pick rng ship_instructs

let clerk rng = Printf.sprintf "Clerk#%09d" (Rng.int_in rng 1 1000)

let nation_names =
  [| "ALGERIA"; "ARGENTINA"; "BRAZIL"; "CANADA"; "EGYPT"; "ETHIOPIA";
     "FRANCE"; "GERMANY"; "INDIA"; "INDONESIA"; "IRAN"; "IRAQ"; "JAPAN";
     "JORDAN"; "KENYA"; "MOROCCO"; "MOZAMBIQUE"; "PERU"; "CHINA";
     "ROMANIA"; "SAUDI ARABIA"; "VIETNAM"; "RUSSIA"; "UNITED KINGDOM";
     "UNITED STATES" |]

let region_names =
  [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

(* The fixed nation → region assignment of the TPC-H specification. *)
let nation_regions =
  [| 0; 1; 1; 1; 4; 0; 3; 3; 2; 2; 4; 4; 2; 4; 0; 0; 0; 1; 2; 3; 4; 2;
     3; 3; 1 |]

let region_of_nation i = nation_regions.(i)
