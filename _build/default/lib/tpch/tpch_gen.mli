(** Deterministic TPC-H data generator.

    The paper's evaluation used "the demonstration dataset in the
    benchmark, which was 31MB in size"; since dbgen and its output are
    not available in a sealed environment, this generator produces the
    same eight tables with the specification's cardinality ratios and
    value distributions (scaled by [sf]), fully determined by [seed].

    Cardinalities at scale factor [sf] (with floors so that tiny test
    scale factors still produce meaningful data):
    region 5, nation 25, supplier 10000·sf, customer 150000·sf,
    part 200000·sf, partsupp 4/part, orders 10/customer,
    lineitem 1–7/order. *)

type config = { sf : float; seed : int }

val default : config
(** [sf = 0.002], [seed = 20090329] — a workload of a few thousand
    lineitems, proportionate to the paper's demo dataset for an
    in-memory engine. *)

val generate : config -> Sheet_sql.Catalog.t
(** All eight base tables. *)

val row_counts : Sheet_sql.Catalog.t -> (string * int) list
