(** Deterministic text generation in the spirit of TPC-H dbgen: part
    names from color/adjective word lists, V2-grammar-ish comments,
    formatted phone numbers and clerk names. *)

open Sheet_stats

val part_name : Rng.t -> string
(** Three distinct color words, e.g. ["goldenrod lavender spring"]. *)

val part_type : Rng.t -> string
(** E.g. ["STANDARD POLISHED BRASS"]. *)

val container : Rng.t -> string
(** E.g. ["JUMBO PKG"]. *)

val comment : Rng.t -> int -> string
(** [comment rng max_len]: pseudo-sentence of at most [max_len]
    characters. *)

val phone : Rng.t -> int -> string
(** [phone rng nation_key]: TPC-H format
    ["NN-NNN-NNN-NNNN"] with country code [10 + nation_key]. *)

val segment : Rng.t -> string
val priority : Rng.t -> string
val ship_mode : Rng.t -> string
val ship_instruct : Rng.t -> string
val clerk : Rng.t -> string
val nation_names : string array
val region_names : string array
val region_of_nation : int -> int
(** Region index of nation index, fixed as in TPC-H. *)
