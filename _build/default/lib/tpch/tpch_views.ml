open Sheet_rel

let project = Rel_algebra.project
let equijoin = Rel_algebra.equijoin

let find = Sheet_sql.Catalog.find_exn

let v_customer_orders catalog =
  let orders = find catalog "orders" in
  let customer = find catalog "customer" in
  let nation = find catalog "nation" in
  equijoin ~on:("o_custkey", "c_custkey") orders customer
  |> equijoin ~on:("c_nationkey", "n_nationkey")
  |> fun joined ->
  project
    [ "o_orderkey"; "o_orderstatus"; "o_totalprice"; "o_orderdate";
      "o_orderpriority"; "o_clerk"; "c_name"; "c_acctbal";
      "c_mktsegment"; "n_name" ]
    (joined nation)

let v_lineitem_orders catalog =
  let lineitem = find catalog "lineitem" in
  let orders = find catalog "orders" in
  let customer = find catalog "customer" in
  let joined =
    equijoin ~on:("l_orderkey", "o_orderkey") lineitem orders
    |> fun lo -> equijoin ~on:("o_custkey", "c_custkey") lo customer
  in
  project
    [ "l_orderkey"; "l_linenumber"; "l_quantity"; "l_extendedprice";
      "l_discount"; "l_returnflag"; "l_linestatus"; "l_shipdate";
      "l_receiptdate"; "l_shipmode"; "o_orderdate"; "o_orderpriority";
      "o_totalprice"; "c_name"; "c_mktsegment" ]
    joined

let v_lineitem_parts catalog =
  let lineitem = find catalog "lineitem" in
  let part = find catalog "part" in
  let supplier = find catalog "supplier" in
  let joined =
    equijoin ~on:("l_partkey", "p_partkey") lineitem part
    |> fun lp -> equijoin ~on:("l_suppkey", "s_suppkey") lp supplier
  in
  project
    [ "l_orderkey"; "l_quantity"; "l_extendedprice"; "l_discount";
      "l_shipdate"; "l_shipinstruct"; "l_shipmode"; "p_name"; "p_brand";
      "p_type"; "p_size"; "p_container"; "p_retailprice"; "s_name" ]
    joined

let install catalog =
  Sheet_sql.Catalog.add catalog ~name:"v_customer_orders"
    (v_customer_orders catalog);
  Sheet_sql.Catalog.add catalog ~name:"v_lineitem_orders"
    (v_lineitem_orders catalog);
  Sheet_sql.Catalog.add catalog ~name:"v_lineitem_parts"
    (v_lineitem_parts catalog);
  catalog
