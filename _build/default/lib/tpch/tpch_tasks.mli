(** The ten TPC-H-derived query tasks of the user study.

    The paper used 10 of the 22 TPC-H queries — those without nesting,
    EXISTS or CASE — over predefined single-table views
    (Sec. VII-A.1). The benchmark's query numbers are not listed in
    the paper, so the tasks here are reconstructed from the same
    constraint: non-nested TPC-H query patterns (Q1, Q3, Q6, Q10, Q12,
    Q19 analogues, plus a HAVING task and three deliberately simple
    tasks in positions 5, 7 and 10, matching the paper's observation
    that "query tasks 5, 7 and 10 are relatively simple" and showed no
    significant speed difference).

    Each task carries the English statement given to subjects, the SQL
    a query-builder user must produce, the SheetMusiq script a
    direct-manipulation user performs, the output columns both must
    deliver, and an interaction-structure summary consumed by the
    study simulator. *)

type features = {
  n_selections : int;  (** selection predicates to specify *)
  n_group_levels : int;
  n_aggregates : int;
  n_formulas : int;  (** computed expressions (e.g. revenue) *)
  has_having : bool;  (** group qualification required *)
  n_orderings : int;
  n_projections : int;  (** columns hidden in the sheet script *)
}

type t = {
  id : int;  (** 1..10, the x-axis of Figs. 3-5 *)
  title : string;
  english : string;  (** the task statement given to the subject *)
  base : string;  (** table or view queried *)
  sql : string;
  script : string;  (** Sheet_core.Script command sequence *)
  output : string list;  (** result columns, shared by both tools *)
  grouped : bool;
  features : features;
}

val all : t list
(** The ten tasks in study order. *)

val extensions : t list
(** Two additional tasks (ids 11-12) built on TPC-H Q12 and Q14, whose
    CASE expressions the paper's prototype explicitly did not support
    (Sec. VII-A.1) — expressible here through the CASE extension.
    Not part of the simulated study. *)

val find : int -> t

val sheet_result :
  Sheet_sql.Catalog.t -> t -> (Sheet_rel.Relation.t, string) result
(** Run the task's SheetMusiq script on its base view and return the
    result projected to the output columns, with grouped sheets
    collapsed to one row per group (the presentation collapse of
    DESIGN.md §4). *)

val sql_result :
  Sheet_sql.Catalog.t -> t -> (Sheet_rel.Relation.t, string) result

val verify : Sheet_sql.Catalog.t -> t -> (unit, string) result
(** Check that both tools produce the same multiset of rows — the
    ground truth used for "correct result" in the study simulation. *)
