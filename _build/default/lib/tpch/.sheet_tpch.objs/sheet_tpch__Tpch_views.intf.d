lib/tpch/tpch_views.mli: Sheet_rel Sheet_sql
