lib/tpch/tpch_text.ml: Array Buffer List Printf Rng Sheet_stats String
