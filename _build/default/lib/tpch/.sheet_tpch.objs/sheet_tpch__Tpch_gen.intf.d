lib/tpch/tpch_gen.mli: Sheet_sql
