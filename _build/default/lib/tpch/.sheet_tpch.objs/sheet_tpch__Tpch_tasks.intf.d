lib/tpch/tpch_tasks.mli: Sheet_rel Sheet_sql
