lib/tpch/tpch_tasks.ml: List Printf Rel_algebra Relation Result Schema Sheet_core Sheet_rel Sheet_sql
