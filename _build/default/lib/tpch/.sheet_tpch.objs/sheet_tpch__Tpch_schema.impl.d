lib/tpch/tpch_schema.ml: Schema Sheet_rel Value
