lib/tpch/tpch_text.mli: Rng Sheet_stats
