lib/tpch/tpch_gen.ml: Array Float Fun List Printf Relation Rng Row Sheet_rel Sheet_sql Sheet_stats String Tpch_schema Tpch_text Value
