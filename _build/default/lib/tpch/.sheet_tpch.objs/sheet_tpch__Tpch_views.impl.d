lib/tpch/tpch_views.ml: Rel_algebra Sheet_rel Sheet_sql
