lib/tpch/tpch_schema.mli: Schema Sheet_rel
