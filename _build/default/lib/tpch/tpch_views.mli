(** Pre-joined single-table views over the TPC-H catalog.

    The paper "predefined views for queries involving many joins so
    that users always query a single table" (Sec. VII-A.1); these are
    those views. Each is materialized once from the base tables. *)

val v_customer_orders : Sheet_sql.Catalog.t -> Sheet_rel.Relation.t
(** orders ⋈ customer ⋈ nation: order identity/price/date columns,
    customer name/segment/balance, nation name. *)

val v_lineitem_orders : Sheet_sql.Catalog.t -> Sheet_rel.Relation.t
(** lineitem ⋈ orders ⋈ customer: line quantities/prices/dates/flags
    plus order date/priority and customer name/segment. *)

val v_lineitem_parts : Sheet_sql.Catalog.t -> Sheet_rel.Relation.t
(** lineitem ⋈ part ⋈ supplier: line columns plus part
    brand/type/size/container and supplier name. *)

val install : Sheet_sql.Catalog.t -> Sheet_sql.Catalog.t
(** Add all three views (names [v_customer_orders],
    [v_lineitem_orders], [v_lineitem_parts]) to the catalog; returns
    the same catalog for chaining. *)
