open Sheet_rel
open Sheet_tpch

type criterion = { column : string; op : Expr.cmp; value : Value.t }

type t = {
  table : string;
  output : string list;
  criteria : criterion list;
  sort : (string * [ `Asc | `Desc ]) list;
  sql_tail : string;
}

(* The SELECT-list replacement typed in the SQL window is part of the
   tail state but rendered in front; we keep it inside [sql_tail] with
   a marker-free convention: a tail starting with "SELECT-LIST:" up to
   the first newline overrides the projection. Kept internal — the
   public API is [type_sql] and the task builder. *)
let select_list_marker = "SELECT-LIST:"

let create ~table =
  { table; output = []; criteria = []; sort = []; sql_tail = "" }

let set_output t output = { t with output }

let add_criterion t ~column ~op ~value =
  { t with criteria = t.criteria @ [ { column; op; value } ] }

let add_sort t ~column ~dir = { t with sort = t.sort @ [ (column, dir) ] }

let type_sql t text =
  { t with
    sql_tail = (if t.sql_tail = "" then text else t.sql_tail ^ " " ^ text) }

let split_tail t =
  (* separate a SELECT-list override from the rest of the typed text *)
  let tail = t.sql_tail in
  if String.length tail >= String.length select_list_marker
     && String.sub tail 0 (String.length select_list_marker)
        = select_list_marker
  then
    let rest = String.sub tail (String.length select_list_marker)
        (String.length tail - String.length select_list_marker) in
    match String.index_opt rest '\n' with
    | Some i ->
        ( Some (String.trim (String.sub rest 0 i)),
          String.trim (String.sub rest (i + 1) (String.length rest - i - 1))
        )
    | None -> (Some (String.trim rest), "")
  else (None, tail)

let const_text = function
  | Value.String s -> "'" ^ s ^ "'"
  | Value.Date _ as d -> Printf.sprintf "DATE '%s'" (Value.to_string d)
  | v -> Value.to_string v

let to_sql t =
  let select_override, tail = split_tail t in
  let select =
    match select_override with
    | Some text -> text
    | None -> (
        match t.output with [] -> "*" | cols -> String.concat ", " cols)
  in
  let where =
    match t.criteria with
    | [] -> ""
    | cs ->
        " WHERE "
        ^ String.concat " AND "
            (List.map
               (fun c ->
                 Printf.sprintf "%s %s %s" c.column (Expr.cmp_name c.op)
                   (const_text c.value))
               cs)
  in
  let order =
    match t.sort with
    | [] -> ""
    | keys ->
        " ORDER BY "
        ^ String.concat ", "
            (List.map
               (fun (c, d) ->
                 Printf.sprintf "%s %s" c
                   (match d with `Asc -> "ASC" | `Desc -> "DESC"))
               keys)
  in
  let tail = if tail = "" then "" else " " ^ tail in
  Printf.sprintf "SELECT %s FROM %s%s%s%s" select t.table where tail order

let run t catalog = Sheet_sql.Sql_executor.run_string catalog (to_sql t)

let classify (task : Tpch_tasks.t) =
  let f = task.Tpch_tasks.features in
  let concepts =
    (if f.Tpch_tasks.n_group_levels > 0 then [ "grouping" ] else [])
    @ (if f.Tpch_tasks.n_aggregates > 0 then [ "aggregation" ] else [])
    @ (if f.Tpch_tasks.has_having then [ "group-qualification" ] else [])
    @ if f.Tpch_tasks.n_formulas > 0 then [ "expression" ] else []
  in
  if concepts = [] then `Graphical else `Requires_sql concepts

(* Is a WHERE conjunct expressible as one criteria-grid row? *)
let as_criterion = function
  | Expr.Cmp (op, Expr.Col column, Expr.Const value) ->
      Some { column; op; value }
  | _ -> None

let build_for_task (task : Tpch_tasks.t) =
  let q =
    match Sheet_sql.Sql_parser.parse task.Tpch_tasks.sql with
    | Ok q -> q
    | Error msg ->
        invalid_arg ("Query_builder.build_for_task: " ^ msg)
  in
  let t = create ~table:task.Tpch_tasks.base in
  (* WHERE: grid rows where possible, otherwise typed *)
  let conjuncts =
    match q.Sheet_sql.Sql_ast.where with
    | None -> []
    | Some e -> Expr.conjuncts e
  in
  let grid, typed =
    List.partition (fun c -> Option.is_some (as_criterion c)) conjuncts
  in
  let t =
    List.fold_left
      (fun t c ->
        match as_criterion c with
        | Some { column; op; value } -> add_criterion t ~column ~op ~value
        | None -> t)
      t grid
  in
  let typed_where =
    match typed with
    | [] -> ""
    | es ->
        (if grid = [] then "WHERE " else "AND ")
        ^ String.concat " AND " (List.map Expr.to_string es)
  in
  (* the grid renders its WHERE before the tail, so typed conjuncts
     continue it with AND; with no grid rows the user types WHERE *)
  match classify task with
  | `Graphical ->
      let t =
        set_output t
          (List.map
             (fun (i : Sheet_sql.Sql_ast.select_item) ->
               Sheet_sql.Sql_ast.output_name i)
             q.Sheet_sql.Sql_ast.select)
      in
      let t = if typed_where = "" then t else type_sql t typed_where in
      List.fold_left
        (fun t (o : Sheet_sql.Sql_ast.order_item) ->
          match o.Sheet_sql.Sql_ast.expr with
          | Expr.Col column ->
              add_sort t ~column ~dir:o.Sheet_sql.Sql_ast.dir
          | _ -> t)
        t q.Sheet_sql.Sql_ast.order_by
  | `Requires_sql _ ->
      (* the user rewrites the SELECT list and types the back half *)
      let select_text =
        String.concat ", "
          (List.map
             (fun (i : Sheet_sql.Sql_ast.select_item) ->
               Expr.to_string i.Sheet_sql.Sql_ast.expr
               ^
               match i.Sheet_sql.Sql_ast.alias with
               | Some a -> " AS " ^ a
               | None -> "")
             q.Sheet_sql.Sql_ast.select)
      in
      let t = type_sql t (select_list_marker ^ select_text ^ "\n") in
      let t = if typed_where = "" then t else type_sql t typed_where in
      let t =
        if q.Sheet_sql.Sql_ast.group_by = [] then t
        else
          type_sql t
            ("GROUP BY " ^ String.concat ", " q.Sheet_sql.Sql_ast.group_by)
      in
      let t =
        match q.Sheet_sql.Sql_ast.having with
        | None -> t
        | Some e -> type_sql t ("HAVING " ^ Expr.to_string e)
      in
      if q.Sheet_sql.Sql_ast.order_by = [] then t
      else
        type_sql t
          ("ORDER BY "
          ^ String.concat ", "
              (List.map
                 (fun (o : Sheet_sql.Sql_ast.order_item) ->
                   Printf.sprintf "%s %s"
                     (Expr.to_string o.Sheet_sql.Sql_ast.expr)
                     (match o.Sheet_sql.Sql_ast.dir with
                     | `Asc -> "ASC"
                     | `Desc -> "DESC"))
                 q.Sheet_sql.Sql_ast.order_by))
