(** A model of the baseline: a Navicat-style visual query builder.

    The paper characterizes such builders precisely (Sec. VII-A.4):
    "two separate windows for building a query — a graphical window
    where users manipulate with mouse-clicks and a text window for SQL
    query expression. Usually, only queries with simple selection,
    sorting, and joins can be built graphically, while the vast
    majority of the queries need to be completed by adding to the SQL
    query."

    This module implements that interaction model: a builder state
    holding what the graphical grid can express (output columns,
    comparison criteria, sort keys) plus a free-text SQL tail for
    everything it cannot (grouping, aggregation, HAVING, computed
    expressions). It compiles to a core single-block SQL statement,
    which makes the study simulator's cost model concrete: the
    [`Graphical] / [`Requires_sql] split below is exactly the
    "SQL cliff" the simulator prices. *)

open Sheet_rel

type criterion = {
  column : string;
  op : Expr.cmp;
  value : Value.t;
}

type t = {
  table : string;
  output : string list;  (** checked output columns; [] means all *)
  criteria : criterion list;  (** AND-ed comparison rows of the grid *)
  sort : (string * [ `Asc | `Desc ]) list;
  sql_tail : string;
      (** text typed into the SQL window and appended verbatim
          (SELECT-list replacements, GROUP BY, HAVING, ...) *)
}

val create : table:string -> t
val set_output : t -> string list -> t
val add_criterion : t -> column:string -> op:Expr.cmp -> value:Value.t -> t
val add_sort : t -> column:string -> dir:[ `Asc | `Desc ] -> t
val type_sql : t -> string -> t
(** Append text to the SQL window (the part the grid cannot build). *)

val to_sql : t -> string
(** The generated statement: grid parts rendered, then the typed
    tail. *)

val run : t -> Sheet_sql.Catalog.t -> (Relation.t, string) result
(** Compile and execute — syntax errors in the typed tail surface
    here, exactly the retry loop the study model prices. *)

val classify :
  Sheet_tpch.Tpch_tasks.t ->
  [ `Graphical | `Requires_sql of string list ]
(** Whether the task fits in the graphical grid alone, or which
    concepts force the SQL window ("grouping", "aggregation",
    "group-qualification", "expression"). Matches the cost model in
    [Sheet_study.Navicat_model]. *)

val build_for_task :
  Sheet_tpch.Tpch_tasks.t -> t
(** The builder state a flawless user would reach for a study task:
    graphical parts in the grid, everything else typed. [run] on the
    result reproduces the task's SQL result. *)
