lib/ui/query_builder.mli: Expr Relation Sheet_rel Sheet_sql Sheet_tpch Value
