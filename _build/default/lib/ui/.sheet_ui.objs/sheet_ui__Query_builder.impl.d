lib/ui/query_builder.ml: Expr List Option Printf Sheet_rel Sheet_sql Sheet_tpch String Tpch_tasks Value
