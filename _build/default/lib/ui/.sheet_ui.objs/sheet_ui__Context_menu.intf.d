lib/ui/context_menu.mli: Sheet_core Sheet_rel Value
