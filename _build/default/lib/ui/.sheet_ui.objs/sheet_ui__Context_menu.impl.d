lib/ui/context_menu.ml: Expr Grouping List Option Printf Query_state Schema Sheet_core Sheet_rel Spreadsheet String Value
