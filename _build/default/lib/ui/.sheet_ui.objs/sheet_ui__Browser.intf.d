lib/ui/browser.mli: Context_menu Relation Session Sheet_core Sheet_rel Value
