lib/ui/browser.ml: Buffer Context_menu Grouping List Materialize Option Printf Relation Render Row Schema Script Session Sheet_core Sheet_rel Spreadsheet Store String Value
