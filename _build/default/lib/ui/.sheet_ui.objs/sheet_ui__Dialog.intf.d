lib/ui/dialog.mli: Op Sheet_core Spreadsheet
