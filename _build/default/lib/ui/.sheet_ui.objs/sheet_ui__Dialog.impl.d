lib/ui/dialog.ml: Expr Expr_parse Grouping List Op Printf Schema Sheet_core Sheet_rel Spreadsheet String Value
