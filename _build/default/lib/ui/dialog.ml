open Sheet_rel
open Sheet_core

type question =
  | Choice of { prompt : string; options : string list }
  | Text of { prompt : string; placeholder : string }

type t = {
  title : string;
  questions : question list;
  finish : string list -> (Op.t, string) result;
}

let answer t answers =
  if List.length answers <> List.length t.questions then
    Error
      (Printf.sprintf "%s: expected %d answer(s), got %d" t.title
         (List.length t.questions)
         (List.length answers))
  else
    let rec validate qs ans =
      match (qs, ans) with
      | [], [] -> Ok ()
      | Choice { prompt; options } :: qs, a :: ans ->
          if List.mem a options then validate qs ans
          else
            Error
              (Printf.sprintf "%s: %S is not one of %s" prompt a
                 (String.concat " / " options))
      | Text _ :: qs, _ :: ans -> validate qs ans
      | _ -> assert false
    in
    match validate t.questions answers with
    | Error _ as e -> e
    | Ok () -> t.finish answers

let level_label sheet level =
  if level = 1 then "all the rows"
  else
    Printf.sprintf "rows with the same %s"
      (String.concat ", "
         (Grouping.cumulative_basis (Spreadsheet.grouping sheet) level))

let levels sheet =
  List.init (Grouping.num_levels (Spreadsheet.grouping sheet)) (fun i -> i + 1)

let aggregation sheet ~column =
  let numeric =
    match column with
    | None -> false
    | Some c -> (
        match Schema.type_of (Spreadsheet.full_schema sheet) c with
        | Some ty -> Value.numeric ty
        | None -> false)
  in
  let functions =
    match column with
    | None -> [ "count" ]
    | Some _ when numeric ->
        [ "count"; "count_distinct"; "sum"; "avg"; "min"; "max" ]
    | Some _ -> [ "count"; "count_distinct"; "min"; "max" ]
  in
  let level_options = List.map (level_label sheet) (levels sheet) in
  { title = "Aggregation";
    questions =
      [ Choice { prompt = "Function"; options = functions };
        Choice { prompt = "Compute over"; options = level_options } ];
    finish =
      (fun answers ->
        match answers with
        | [ fn_name; level_text ] ->
            let fn =
              match fn_name with
              | "count" -> (
                  match column with
                  | None -> Expr.Count_star
                  | Some _ -> Expr.Count)
              | "count_distinct" -> Expr.Count_distinct
              | "sum" -> Expr.Sum
              | "avg" -> Expr.Avg
              | "min" -> Expr.Min
              | "max" -> Expr.Max
              | _ -> assert false
            in
            let level =
              match
                List.find_opt
                  (fun l -> level_label sheet l = level_text)
                  (levels sheet)
              with
              | Some l -> l
              | None -> Grouping.num_levels (Spreadsheet.grouping sheet)
            in
            Ok (Op.Aggregate { fn; col = column; level; as_name = None })
        | _ -> Error "Aggregation: malformed answers") }

let selection sheet ~column =
  ignore sheet;
  { title = "Selection";
    questions =
      [ Choice
          { prompt = "Comparison";
            options = [ "="; "<>"; "<"; "<="; ">"; ">=" ] };
        Text { prompt = "Value"; placeholder = "e.g. 2005 or 'Jetta'" } ];
    finish =
      (fun answers ->
        match answers with
        | [ op; value ] -> (
            let text = Printf.sprintf "%s %s %s" column op value in
            match Expr_parse.parse_string text with
            | Ok pred -> Ok (Op.Select pred)
            | Error msg -> Error msg)
        | _ -> Error "Selection: malformed answers") }

let formula sheet =
  ignore sheet;
  { title = "Formula computation";
    questions =
      [ Text { prompt = "Column name (optional)"; placeholder = "revenue" };
        Text
          { prompt = "Formula"; placeholder = "price * quantity" } ];
    finish =
      (fun answers ->
        match answers with
        | [ name; body ] -> (
            match Expr_parse.parse_string body with
            | Ok expr ->
                Ok
                  (Op.Formula
                     { name = (if String.trim name = "" then None
                               else Some (String.trim name));
                       expr })
            | Error msg -> Error msg)
        | _ -> Error "Formula: malformed answers") }

let ordering sheet ~column =
  let grouped = Grouping.num_levels (Spreadsheet.grouping sheet) > 1 in
  let level_options = List.map (level_label sheet) (levels sheet) in
  { title = "Ordering";
    questions =
      (Choice { prompt = "Direction"; options = [ "ascending"; "descending" ] }
      ::
      (if grouped then
         [ Choice { prompt = "Apply to"; options = level_options } ]
       else []));
    finish =
      (fun answers ->
        let dir, level =
          match answers with
          | [ d ] -> (d, Grouping.num_levels (Spreadsheet.grouping sheet))
          | [ d; level_text ] ->
              ( d,
                match
                  List.find_opt
                    (fun l -> level_label sheet l = level_text)
                    (levels sheet)
                with
                | Some l -> l
                | None -> Grouping.num_levels (Spreadsheet.grouping sheet) )
          | _ -> ("ascending", 1)
        in
        Ok
          (Op.Order
             { attr = column;
               dir =
                 (if dir = "descending" then Grouping.Desc
                  else Grouping.Asc);
               level })) }

let join sheet ~stored =
  ignore sheet;
  { title = "Join";
    questions =
      [ Choice { prompt = "Join with"; options = stored };
        Text
          { prompt = "Join condition";
            placeholder = "this_column = that_column" } ];
    finish =
      (fun answers ->
        match answers with
        | [ name; cond_text ] -> (
            match Expr_parse.parse_string cond_text with
            | Ok cond -> Ok (Op.Join { stored = name; cond })
            | Error msg -> Error msg)
        | _ -> Error "Join: malformed answers") }
