(** The contextual-menu model of Section VI: "Most query operations
    are accessible with a contextual menu, which pops up when the user
    right-clicks a cell or column-header. It is contextual because it
    shows only options that are available for the current cell value
    type under current grouping and ordering."

    This module computes that menu for a click target; the REPL prints
    it, tests assert on it, and it documents precisely when each
    operator is offered. *)

open Sheet_rel

type target =
  | Header of string  (** right-click on a column header *)
  | Cell of { column : string; value : Value.t }  (** on a data cell *)
  | Sheet  (** on the sheet background *)

type item = {
  label : string;  (** menu entry text *)
  hint : string;  (** what invoking it will ask for / do *)
  enabled : bool;
  reason : string option;  (** why a disabled entry is disabled *)
}

val menu :
  ?stored:string list -> Sheet_core.Spreadsheet.t -> target -> item list
(** The entries shown for a right-click on [target]. [stored] is the
    list of saved spreadsheet names (binary operators are disabled
    without one). Rules implemented:
    - Filter-by-this-value appears only on cells (Sec. VI Selection);
    - aggregation functions sum/avg appear only on numeric columns;
      the grouping-level choice is offered only when grouped (Fig. 1);
    - Group-by offers "add to existing grouping" vs "replace" when
      already grouped, and "replace" is disabled while aggregates
      depend on the grouping;
    - ordering on a non-finest level that would destroy grouping is
      marked accordingly, and disabled when aggregates depend on it;
    - restore-column entries list the currently hidden columns;
    - binary operators require a stored spreadsheet. *)

val describe : item list -> string
(** Render a menu as text, one line per entry, disabled entries
    parenthesized with their reason. *)
