(** Dialog flows: the multi-step interactions behind the contextual
    menu entries of Section VI.

    A dialog is a typed sequence of questions; answering every
    question yields the operator invocation the dialog was gathering
    parameters for. The aggregation dialog reproduces Fig. 1: the
    function choice is restricted to the column's type, and the
    grouping-level choice is worded in terms of the current grouping
    ("over all the rows" / "rows with the same Model" / "rows with the
    same Model, Year"). *)

open Sheet_core

type question =
  | Choice of { prompt : string; options : string list }
      (** answer: one of [options] *)
  | Text of { prompt : string; placeholder : string }
      (** answer: free text (a constant, a name, a predicate) *)

type t = {
  title : string;
  questions : question list;
  finish : string list -> (Op.t, string) result;
      (** answers, positionally aligned with [questions] *)
}

val answer : t -> string list -> (Op.t, string) result
(** Validate the answers (arity, choice membership) and build the
    operator. *)

val aggregation : Spreadsheet.t -> column:string option -> t
(** Fig. 1. [column = None] offers only row counting. The level
    options are generated from the sheet's grouping. *)

val selection : Spreadsheet.t -> column:string -> t
(** Comparison operator + constant against the clicked column; offers
    the existing predicates on that column for replacement is the
    {!Context_menu} entry's job — this dialog adds a new predicate. *)

val formula : Spreadsheet.t -> t
(** Name (optional) and expression text. *)

val ordering : Spreadsheet.t -> column:string -> t
(** Direction, and — when grouped — the level to order (Sec. VI-A
    "Ordering": "the user is asked explicitly for the level of
    grouping to which the order should be applied"). *)

val join : Spreadsheet.t -> stored:string list -> t
(** Stored-sheet choice and a join condition. *)

val level_label : Spreadsheet.t -> int -> string
(** Human wording for a paper group level, e.g. level 1 → ["all the
    rows"], level 3 → ["rows with the same Model, Year"]. *)
