open Sheet_rel
open Sheet_core

type target =
  | Header of string
  | Cell of { column : string; value : Value.t }
  | Sheet

type item = {
  label : string;
  hint : string;
  enabled : bool;
  reason : string option;
}

let item ?(enabled = true) ?reason label hint =
  { label; hint; enabled; reason }

let column_type sheet col =
  Schema.type_of (Spreadsheet.full_schema sheet) col

let numeric sheet col =
  match column_type sheet col with
  | Some ty -> Value.numeric ty
  | None -> false

let aggregates_depend_on_grouping sheet =
  Query_state.aggregates_broken_by_grouping_change
    sheet.Spreadsheet.state ~surviving_levels:1
  <> []

let level_hint sheet =
  let n = Grouping.num_levels (Spreadsheet.grouping sheet) in
  if n = 1 then "over the whole spreadsheet"
  else Printf.sprintf "choose group level 1..%d" n

let column_items sheet col =
  let grouped = Grouping.num_levels (Spreadsheet.grouping sheet) > 1 in
  let agg_dep = aggregates_depend_on_grouping sheet in
  let selection =
    item "Selection..."
      (Printf.sprintf "specify a condition on %s" col)
  in
  let existing =
    match Query_state.selections_on sheet.Spreadsheet.state col with
    | [] -> []
    | sels ->
        [ item "Modify previous selection..."
            (Printf.sprintf "replace or delete: %s"
               (String.concat "; "
                  (List.map
                     (fun s ->
                       Printf.sprintf "#%d %s" s.Query_state.id
                         (Expr.to_string s.Query_state.pred))
                     sels))) ]
  in
  let order =
    item "Sort ascending/descending"
      (if grouped then "asked for the group level to apply the order to"
       else "orders the whole sheet")
  in
  let group_add =
    if grouped then
      [ item "Group by (add to existing grouping)"
          (Printf.sprintf "adds %s as the innermost grouping level" col);
        (if agg_dep then
           item "Group by (replace current grouping)"
             "destroys the current grouping first" ~enabled:false
             ~reason:
               "aggregation columns depend on the current grouping; \
                remove them first"
         else
           item "Group by (replace current grouping)"
             "destroys the current grouping first") ]
    else [ item "Group by" (Printf.sprintf "groups the sheet by %s" col) ]
  in
  let aggregation =
    let fns =
      if numeric sheet col then "count, sum, avg, min, max"
      else "count, min, max"
    in
    [ item "Aggregation..."
        (Printf.sprintf "%s; %s" fns (level_hint sheet)) ]
  in
  let projection =
    if Spreadsheet.is_hidden sheet col then []
    else [ item "Hide column" "uncheck the header checkbox" ]
  in
  let drop =
    if Spreadsheet.is_computed sheet col then
      let deps = Query_state.column_dependents sheet.Spreadsheet.state col in
      if deps = [] then [ item "Remove computed column" "deletes it" ]
      else
        [ item "Remove computed column" "deletes it" ~enabled:false
            ~reason:
              (Printf.sprintf "depended on by %s"
                 (String.concat "; " deps)) ]
    else []
  in
  let rename = [ item "Rename column..." "type a new name" ] in
  (selection :: existing) @ [ order ] @ group_add @ aggregation
  @ projection @ drop @ rename

let sheet_items ?(stored = []) sheet =
  let binary label hint =
    if stored = [] then
      item label hint ~enabled:false
        ~reason:"no stored spreadsheet; use Save first"
    else
      item label
        (Printf.sprintf "%s (stored: %s)" hint (String.concat ", " stored))
  in
  let restore =
    match Spreadsheet.hidden_columns sheet with
    | [] -> []
    | hidden ->
        [ item "Restore column..."
            (Printf.sprintf "hidden: %s" (String.concat ", " hidden)) ]
  in
  [ item "Formula computation..."
      "choose columns and operators; result becomes a computed column";
    item "Duplicate elimination" "removes all duplicate rows";
    item "Save spreadsheet" "store the current sheet under a name";
    binary "Cartesian product with..." "pick a stored spreadsheet";
    binary "Union with..." "requires the same base columns";
    binary "Difference with..." "requires the same base columns";
    binary "Join with..." "pick a stored sheet and a join condition";
    item "History..." "numbered list of all manipulations; undo/redo" ]
  @ restore

let menu ?stored sheet target =
  match target with
  | Header col -> column_items sheet col
  | Cell { column; value } ->
      item "Filter to this value"
        (Printf.sprintf "select %s = %s" column (Value.to_string value))
      :: column_items sheet column
  | Sheet -> sheet_items ?stored sheet

let describe items =
  String.concat "\n"
    (List.map
       (fun i ->
         if i.enabled then Printf.sprintf "  %-42s %s" i.label i.hint
         else
           Printf.sprintf "  (%s -- %s)" i.label
             (Option.value i.reason ~default:"unavailable"))
       items)
