lib/core/engine.ml: Computed Errors Expr Expr_check Grouping List Materialize Op Printf Query_state Rel_algebra Relation Result Row Schema Sheet_rel Spreadsheet Store String Value
