lib/core/materialize.ml: Array Computed Expr Expr_eval Grouping Hashtbl List Option Printf Query_state Rel_algebra Relation Row Schema Sheet_rel Spreadsheet Value
