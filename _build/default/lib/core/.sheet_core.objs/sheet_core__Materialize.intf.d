lib/core/materialize.mli: Relation Sheet_rel Spreadsheet
