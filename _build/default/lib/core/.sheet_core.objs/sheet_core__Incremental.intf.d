lib/core/incremental.mli: Op Relation Sheet_rel Spreadsheet
