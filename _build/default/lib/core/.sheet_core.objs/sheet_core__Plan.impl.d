lib/core/plan.ml: Buffer Computed Expr Expr_eval Expr_simplify Grouping Hashtbl List Option Printf Query_state Rel_algebra Relation Row Schema Sheet_rel Spreadsheet String Value
