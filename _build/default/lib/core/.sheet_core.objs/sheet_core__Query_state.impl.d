lib/core/query_state.ml: Computed Expr Grouping List Option Printf Sheet_rel
