lib/core/query_state.mli: Computed Expr Grouping Sheet_rel
