lib/core/plan.mli: Expr Relation Sheet_rel Spreadsheet Value
