lib/core/render_html.ml: Buffer Csv Grouping List Materialize Option Printf Rel_algebra Relation Render Row Schema Sheet_rel Spreadsheet String Value
