lib/core/render.ml: Format Grouping List Materialize Printf Rel_algebra Relation Row Schema Sheet_rel Spreadsheet Table_print Value
