lib/core/store.mli: Spreadsheet
