lib/core/render_html.mli: Spreadsheet
