lib/core/persist.ml: Buffer Computed Csv Expr Expr_parse Grouping List Option Printf Query_state Relation Row Schema Sheet_rel Spreadsheet String Value
