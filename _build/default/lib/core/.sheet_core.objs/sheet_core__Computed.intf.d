lib/core/computed.mli: Format Sheet_rel
