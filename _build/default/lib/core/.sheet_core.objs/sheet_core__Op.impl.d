lib/core/op.ml: Expr Format Grouping Printf Sheet_rel String
