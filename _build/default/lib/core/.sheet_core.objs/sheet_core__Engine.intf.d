lib/core/engine.mli: Errors Expr Op Query_state Sheet_rel Spreadsheet Store
