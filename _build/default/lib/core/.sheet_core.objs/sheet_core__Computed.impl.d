lib/core/computed.ml: Expr Format Option Printf Sheet_rel Value
