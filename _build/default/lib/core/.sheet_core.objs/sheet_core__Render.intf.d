lib/core/render.mli: Spreadsheet
