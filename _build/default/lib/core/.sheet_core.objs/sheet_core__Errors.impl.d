lib/core/errors.ml: Format Printf Stdlib
