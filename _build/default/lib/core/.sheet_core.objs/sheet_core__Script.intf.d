lib/core/script.mli: Session
