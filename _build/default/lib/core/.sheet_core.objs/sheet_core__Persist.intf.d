lib/core/persist.mli: Spreadsheet
