lib/core/spreadsheet.ml: Computed Format Grouping List Option Printf Query_state Relation Schema Sheet_rel String
