lib/core/spreadsheet.mli: Format Grouping Query_state Relation Schema Sheet_rel
