lib/core/session.ml: Engine Errors Expr Incremental List Materialize Op Option Printf Sheet_rel Spreadsheet Store
