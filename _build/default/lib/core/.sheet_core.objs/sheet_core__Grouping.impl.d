lib/core/grouping.ml: Format List Option Printf String
