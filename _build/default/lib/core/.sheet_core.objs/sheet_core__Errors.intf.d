lib/core/errors.mli: Format Stdlib
