lib/core/group_tree.ml: Buffer Grouping List Materialize Option Printf Relation Row Schema Sheet_rel Spreadsheet String Value
