lib/core/group_tree.mli: Row Schema Sheet_rel Spreadsheet Value
