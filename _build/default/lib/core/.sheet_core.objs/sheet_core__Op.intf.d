lib/core/op.mli: Expr Format Grouping Sheet_rel
