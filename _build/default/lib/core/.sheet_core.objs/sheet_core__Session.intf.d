lib/core/session.mli: Errors Expr Op Query_state Relation Sheet_rel Spreadsheet Store
