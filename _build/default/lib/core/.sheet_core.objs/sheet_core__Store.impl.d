lib/core/store.ml: Hashtbl List Spreadsheet String
