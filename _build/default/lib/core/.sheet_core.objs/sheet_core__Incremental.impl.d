lib/core/incremental.ml: Computed Expr Expr_eval Grouping Hashtbl List Materialize Op Option Query_state Rel_algebra Relation Row Schema Sheet_rel Spreadsheet Value
