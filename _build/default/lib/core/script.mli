(** A small textual command language over sessions.

    Each line is one direct-manipulation action; this is the scripting
    equivalent of the mouse interactions of Section VI, used by the
    [sheetmusiq] REPL, the examples, and the tests.

    {v
    group <col>[, <col>...] [asc|desc]     -- τ: add a grouping level
    regroup <col>[, ...] [asc|desc]        -- destroy grouping, group afresh
    ungroup                                -- destroy grouping
    order <col> [asc|desc] [level <n>]     -- λ (default: finest level)
    order-groups <aggcol> [asc|desc]       -- order groups by an aggregate
    select <predicate>                     -- σ
    hide <col>                             -- π
    show <col>                             -- inverse projection
    agg <fn> [<col>] [level <n>] [as <name>]  -- η (count|sum|avg|min|max)
    formula [<name> =] <expr>              -- θ
    dedup                                  -- δ
    rename <old> <new>
    save <name> | open <name> | close <name>
    export <path> | import <path>          -- durable sheets (Persist)
    load <csv-path>                        -- start on a CSV file
    product <name> | union <name> | except <name>
    join <name> on <predicate>
    undo [n] | redo | goto <n> | history
    selections <col>                       -- list predicates on a column
    replace <sel-id> <predicate>           -- query modification
    drop-select <sel-id>
    drop-column <name>
    print [n]                              -- render (optionally first n rows)
    tree [n]                               -- nested group-tree view
    describe                               -- per-column data profile
    html <path>                            -- export a standalone HTML view
    explain                                -- physical plan, raw and optimized
    status
    v}

    Blank lines and [#]-comments are ignored. *)

type outcome = {
  session : Session.t;
  output : string option;  (** text produced by informational commands *)
}

val run_line : Session.t -> string -> (outcome, string) result
(** Execute one command line. Engine refusals come back as [Error]
    with the user-facing message. *)

val run : Session.t -> string -> (Session.t, string) result
(** Execute a whole script, printing informational output to stdout.
    Stops at the first error, reporting the line number. *)

val run_silent : Session.t -> string -> (Session.t, string) result
(** Like {!run} but discards informational output (for tests and
    benchmarks). *)
