type dir = Asc | Desc

let dir_to_string = function Asc -> "ASC" | Desc -> "DESC"
let flip = function Asc -> Desc | Desc -> Asc

type level = {
  basis_add : string list;
  dir : dir;
  order_by_value : (string * dir) option;
}

type t = { levels : level list; leaf_order : (string * dir) list }

let empty = { levels = []; leaf_order = [] }

let num_levels t = 1 + List.length t.levels

let cumulative_basis t i =
  if i < 1 || i > num_levels t then
    invalid_arg "Grouping.cumulative_basis: level out of range";
  List.concat_map
    (fun lv -> lv.basis_add)
    (List.filteri (fun idx _ -> idx < i - 1) t.levels)

let finest_basis t = cumulative_basis t (num_levels t)
let all_group_attrs t = finest_basis t
let is_group_attr t a = List.mem a (all_group_attrs t)

let add_level t ~basis ~dir =
  let current = finest_basis t in
  if List.exists (fun a -> not (List.mem a basis)) current then
    Error
      "grouping-basis must contain every attribute of the current finest \
       grouping basis"
  else
    let added = List.filter (fun a -> not (List.mem a current)) basis in
    if added = [] then
      Error "grouping-basis adds no attribute over the current finest basis"
    else
      let dup =
        List.find_opt
          (fun a -> List.length (List.filter (String.equal a) added) > 1)
          added
      in
      match dup with
      | Some a -> Error (Printf.sprintf "attribute %S repeated in basis" a)
      | None ->
          let leaf_order =
            List.filter (fun (a, _) -> not (List.mem a basis)) t.leaf_order
          in
          Ok
            { levels =
                t.levels @ [ { basis_add = added; dir; order_by_value = None } ];
              leaf_order }

let ungroup t = { t with levels = [] }

type order_outcome = { spec : t; destroyed_from : int option }

let order t ~attr ~dir ~level =
  let n = num_levels t in
  if level < 1 || level > n then
    Error (Printf.sprintf "group level %d out of range 1..%d" level n)
  else if level < n then
    (* Paper level [level]; the dictated ordering attributes at this
       level are the relative basis of level [level+1], i.e. our
       [levels] element at index [level-1]. *)
    let dictated = (List.nth t.levels (level - 1)).basis_add in
    if List.mem attr dictated then
      let levels =
        List.mapi
          (fun idx lv -> if idx = level - 1 then { lv with dir } else lv)
          t.levels
      in
      Ok { spec = { t with levels }; destroyed_from = None }
    else if List.mem attr (cumulative_basis t level) then
      Error
        (Printf.sprintf
           "attribute %S already groups a coarser level; ordering by it \
            here has no effect"
           attr)
    else
      (* Definition 4 case 1: destroy all grouping strictly deeper
         than [level]; [attr] becomes the leaf order. *)
      let levels = List.filteri (fun idx _ -> idx < level - 1) t.levels in
      Ok
        { spec = { levels; leaf_order = [ (attr, dir) ] };
          destroyed_from = Some level }
  else if is_group_attr t attr then
    (* Definition 4 case 3, grouping attribute: O unchanged. *)
    Ok { spec = t; destroyed_from = None }
  else
    let leaf_order =
      if List.mem_assoc attr t.leaf_order then
        List.map
          (fun (a, d) -> if a = attr then (a, dir) else (a, d))
          t.leaf_order
      else t.leaf_order @ [ (attr, dir) ]
    in
    Ok { spec = { t with leaf_order }; destroyed_from = None }

let set_group_order t ~level ~by ~dir =
  let n = num_levels t in
  if level < 2 || level > n then
    Error
      (Printf.sprintf
         "group level %d has no sibling groups to reorder (valid: 2..%d)"
         level n)
  else
    Ok
      { t with
        levels =
          List.mapi
            (fun idx lv ->
              if idx = level - 2 then
                { lv with order_by_value = Some (by, dir) }
              else lv)
            t.levels }

let group_order_columns t =
  List.filter_map
    (fun lv -> Option.map fst lv.order_by_value)
    t.levels

let rename t ~old_name ~new_name =
  let ren a = if a = old_name then new_name else a in
  { levels =
      List.map
        (fun lv ->
          { lv with
            basis_add = List.map ren lv.basis_add;
            order_by_value =
              Option.map (fun (a, d) -> (ren a, d)) lv.order_by_value })
        t.levels;
    leaf_order = List.map (fun (a, d) -> (ren a, d)) t.leaf_order }

let sort_keys t =
  List.concat_map
    (fun lv ->
      (* an order-by-value override leads; the basis attributes stay
         as the deterministic tie-break among equal-valued groups *)
      (match lv.order_by_value with Some k -> [ k ] | None -> [])
      @ List.map (fun a -> (a, lv.dir)) lv.basis_add)
    t.levels
  @ t.leaf_order

let equal (a : t) (b : t) = a = b

let pp ppf t =
  let pp_level ppf lv =
    Format.fprintf ppf "{%s} %s"
      (String.concat ", " lv.basis_add)
      (dir_to_string lv.dir)
  in
  Format.fprintf ppf "@[<h>group [%a]; order [%a]@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       pp_level)
    t.levels
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (a, d) -> Format.fprintf ppf "%s %s" a (dir_to_string d)))
    t.leaf_order
