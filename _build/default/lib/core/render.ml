open Sheet_rel

let header_decoration sheet col =
  let grouping = Spreadsheet.grouping sheet in
  let level_marker =
    let rec find_level idx = function
      | [] -> None
      | lv :: rest ->
          if List.mem col lv.Grouping.basis_add then Some (idx + 1)
          else find_level (idx + 1) rest
    in
    (* 1-based position among the stored (non-root) grouping levels *)
    match find_level 0 grouping.Grouping.levels with
    | Some lvl -> Printf.sprintf " *%d" lvl
    | None -> ""
  in
  let arrow =
    match List.assoc_opt col grouping.Grouping.leaf_order with
    | Some Grouping.Asc -> " ^"
    | Some Grouping.Desc -> " v"
    | None -> (
        let rec dir_of = function
          | [] -> ""
          | lv :: _ when List.mem col lv.Grouping.basis_add -> (
              match lv.Grouping.dir with
              | Grouping.Asc -> " ^"
              | Grouping.Desc -> " v")
          | _ :: rest -> dir_of rest
        in
        dir_of grouping.Grouping.levels)
  in
  let computed_marker = if Spreadsheet.is_computed sheet col then " =" else "" in
  level_marker ^ arrow ^ computed_marker

let to_string ?max_rows sheet =
  let full = Materialize.full_cached sheet in
  let visible_cols = Spreadsheet.visible_columns sheet in
  let rel = Rel_algebra.project visible_cols full in
  let boundaries = Materialize.finest_group_boundaries sheet full in
  let header =
    List.map (fun c -> c ^ header_decoration sheet c) visible_cols
  in
  let align_right =
    List.map
      (fun c -> Value.numeric c.Schema.ty)
      (Schema.columns (Relation.schema rel))
  in
  let all_rows =
    List.map
      (fun row -> List.map Value.to_string (Row.to_list row))
      (Relation.rows rel)
  in
  let total = List.length all_rows in
  let rows, truncated =
    match max_rows with
    | Some m when total > m -> (List.filteri (fun i _ -> i < m) all_rows, true)
    | _ -> (all_rows, false)
  in
  let separators_after =
    match max_rows with
    | Some m -> List.filter (fun i -> i < List.length rows - 1 && i < m - 1)
                  boundaries
    | None -> List.filter (fun i -> i < List.length rows - 1) boundaries
  in
  let table =
    Table_print.render_cells ~align_right ~header ~separators_after rows
  in
  if truncated then
    table ^ Printf.sprintf "... (%d more rows)\n" (total - List.length rows)
  else table

let print ?max_rows sheet = print_string (to_string ?max_rows sheet)

let status_line sheet =
  let rel = Materialize.full_cached sheet in
  Format.asprintf "%s v%d | %d rows | %a" sheet.Spreadsheet.name
    sheet.Spreadsheet.version
    (Relation.cardinality rel)
    Grouping.pp
    (Spreadsheet.grouping sheet)
