(** Standalone HTML rendering of a spreadsheet.

    Produces a self-contained page (inline CSS, no scripts) with the
    visual vocabulary of Sec. VI: sort arrows in headers, grouping-
    level badges, computed columns tinted, finest-level groups
    separated by heavier rules, alternating group backgrounds. Used by
    the REPL's [html <path>] command to hand a result to someone
    outside the terminal. *)

val to_html : ?title:string -> Spreadsheet.t -> string
(** The complete document. *)

val save : ?title:string -> Spreadsheet.t -> path:string -> unit
(** @raise Sys_error on I/O failure. *)
