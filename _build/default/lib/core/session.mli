(** An interactive session: the current spreadsheet, the store of
    saved sheets, and the operation history.

    Realizes the paper's third direct-manipulation principle: "all
    user actions are reversible. Users can access query history ...
    shown as a numbered list, each with meaningful names. Users can do
    one-step or multi-step undo/redo" (Sec. VI), plus the query
    modification facility of Section V. *)

open Sheet_rel

type entry = {
  index : int;  (** 1-based position in the history menu *)
  label : string;  (** meaningful name (Op.describe or a modification) *)
}

type t

val create : name:string -> Relation.t -> t
(** Start a session on the base spreadsheet of a relation. *)

val current : t -> Spreadsheet.t
val store : t -> Store.t

val apply : t -> Op.t -> (t, Errors.t) result
(** Apply an operator; on success the result is pushed on the history
    and the redo stack is cleared. *)

val history : t -> entry list
(** Oldest first. *)

val can_undo : t -> bool
val can_redo : t -> bool
val undo : t -> t option
val redo : t -> t option
val undo_many : t -> int -> t
(** Undo up to [n] steps (stops at the beginning). *)

val goto : t -> int -> t option
(** Jump to a history entry by its 1-based index (as shown by
    {!history}), undoing or redoing as many steps as needed; [None]
    when the index does not exist on the current timeline. *)

(** {1 Housekeeping (Sec. III-C)} *)

val save_as : t -> string -> t
(** Save the current spreadsheet under a name. *)

val open_sheet : t -> string -> (t, Errors.t) result
(** Make a stored sheet current. This is a fresh line of work: history
    is kept (the open is itself an entry) but the loaded sheet's own
    state becomes current. *)

val load_relation : t -> name:string -> Relation.t -> t
(** Switch to the base spreadsheet of a new relation. *)

val push_sheet : t -> label:string -> Spreadsheet.t -> t
(** Make an externally obtained sheet (e.g. {!Persist.load}) current,
    recording [label] in the history. *)

(** {1 Query modification (Sec. V-B)} *)

val selections_on : t -> string -> Query_state.selection list

val replace_selection : t -> id:int -> Expr.t -> (t, Errors.t) result
(** Rewrites history: the history menu gains a "Modified selection"
    entry, and the resulting sheet is as if the new predicate had been
    given originally (Theorem 3). *)

val remove_selection : t -> id:int -> (t, Errors.t) result
val remove_computed : t -> string -> (t, Errors.t) result

(** {1 Views} *)

val materialized : t -> Relation.t
(** Visible materialization of the current sheet. *)
