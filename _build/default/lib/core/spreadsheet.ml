open Sheet_rel

type t = {
  uid : int;
  name : string;
  base_name : string;
  version : int;
  base : Relation.t;
  state : Query_state.t;
}

let uid_counter = ref 0

let fresh_uid () =
  incr uid_counter;
  !uid_counter

let of_relation ~name base =
  { uid = fresh_uid ();
    name;
    base_name = name;
    version = 0;
    base;
    state = Query_state.empty }

let bump t = { t with version = t.version + 1; uid = fresh_uid () }

let grouping t = t.state.Query_state.grouping

let base_schema t = Relation.schema t.base

let full_schema t =
  List.fold_left
    (fun acc (c : Computed.t) ->
      Schema.append acc { Schema.name = c.Computed.name; ty = c.Computed.ty })
    (base_schema t) t.state.Query_state.computed

let hidden_columns t = t.state.Query_state.hidden

let is_hidden t name = List.mem name (hidden_columns t)

let visible_columns t =
  List.filter (fun n -> not (is_hidden t n)) (Schema.names (full_schema t))

let visible_schema t = Schema.restrict (full_schema t) (visible_columns t)

let column_exists t name = Schema.mem (full_schema t) name

let is_computed t name =
  Option.is_some (Query_state.find_computed t.state name)

let is_aggregate_column t name =
  match Query_state.find_computed t.state name with
  | Some c -> Computed.is_aggregate c
  | None -> false

let pp ppf t =
  Format.fprintf ppf
    "@[<v>spreadsheet %S (version %d, base %s, %d rows)@ columns: %s%s@ %a@ \
     %d selection(s), %d computed, dedup=%b@]"
    t.name t.version t.base_name
    (Relation.cardinality t.base)
    (String.concat ", " (visible_columns t))
    (match hidden_columns t with
    | [] -> ""
    | h -> Printf.sprintf " (hidden: %s)" (String.concat ", " h))
    Grouping.pp (grouping t)
    (List.length t.state.Query_state.selections)
    (List.length t.state.Query_state.computed)
    t.state.Query_state.dedup
