(** Stored spreadsheets (Sec. III-B, III-C).

    The interface presents a single spreadsheet at a time; binary
    operators pair the current sheet with a previously {b Save}d one,
    retrieved from this store by name. *)

type t

val create : unit -> t

val save : t -> name:string -> Spreadsheet.t -> unit
(** Stores a snapshot under [name], replacing any previous one. The
    snapshot is the full spreadsheet value (immutable), so later
    operations on the current sheet never affect it. *)

val open_ : t -> string -> Spreadsheet.t option
val close : t -> string -> bool
(** [close t name] removes the sheet; false when absent. *)

val names : t -> string list
(** Saved names, sorted. *)
