open Sheet_rel

type spec =
  | Aggregate of { fn : Expr.agg_fun; arg : Expr.t option; level : int }
  | Formula of Expr.t

type t = { name : string; ty : Value.vtype; spec : spec }

let referenced_columns t =
  match t.spec with
  | Aggregate { arg = None; _ } -> []
  | Aggregate { arg = Some e; _ } | Formula e -> Expr.columns e

let is_aggregate t =
  match t.spec with Aggregate _ -> true | Formula _ -> false

let rename_refs t ~old_name ~new_name =
  let ren e =
    Expr.map_columns (fun c -> if c = old_name then new_name else c) e
  in
  let spec =
    match t.spec with
    | Aggregate a -> Aggregate { a with arg = Option.map ren a.arg }
    | Formula e -> Formula (ren e)
  in
  let name = if t.name = old_name then new_name else t.name in
  { t with name; spec }

let describe t =
  match t.spec with
  | Aggregate { fn; arg; level } ->
      Printf.sprintf "%s = %s(%s) per group level %d" t.name
        (Expr.agg_fun_name fn)
        (match arg with Some e -> Expr.to_string e | None -> "*")
        level
  | Formula e -> Printf.sprintf "%s = %s" t.name (Expr.to_string e)

let pp ppf t = Format.pp_print_string ppf (describe t)
