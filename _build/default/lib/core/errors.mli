(** User-facing errors of the spreadsheet engine.

    Every refusal an operator can produce in the paper's interface
    design (Sec. VI-A) — e.g. destroying a grouping that aggregates
    depend on — surfaces as one of these, with a message suitable for
    a dialog box. *)

type t =
  | Unknown_column of string
  | Type_error of string  (** ill-typed predicate or formula *)
  | Grouping_error of string  (** invalid τ/λ parameters *)
  | Dependency_error of string
      (** the operation would invalidate operators that depend on a
          column, grouping level, or ordering *)
  | Incompatible_schemas of string  (** union/difference mismatch *)
  | No_such_sheet of string  (** unknown stored-spreadsheet name *)
  | Invalid_op of string  (** anything else the engine refuses *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

type 'a result = ('a, t) Stdlib.result

val fail_type : ('b, unit, string, ('a, t) Stdlib.result) format4 -> 'b
val fail_grouping : ('b, unit, string, ('a, t) Stdlib.result) format4 -> 'b
val fail_dependency : ('b, unit, string, ('a, t) Stdlib.result) format4 -> 'b
val fail_invalid : ('b, unit, string, ('a, t) Stdlib.result) format4 -> 'b
