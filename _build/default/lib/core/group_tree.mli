(** The recursive grouped structure itself.

    A spreadsheet is "a recursively grouped set of tuples ... a set of
    (set of ...) sets" (Sec. II-A). {!Materialize} realizes it as a
    flat, ordered relation (the form a screen shows); this module
    recovers the explicit tree — one node per group, rows at the
    leaves — which is what operators that "compute any function of
    groups" conceptually traverse, and what a richer UI (collapsible
    groups) would render. *)

open Sheet_rel

type node = {
  level : int;  (** paper group level of this node's group, [>= 2] *)
  key : (string * Value.t) list;
      (** the group's values on its {e relative} grouping basis *)
  members : members;
}

and members =
  | Groups of node list  (** subgroups, in presentation order *)
  | Rows of Row.t list  (** leaf group: tuples in presentation order *)

type t = {
  schema : Schema.t;
  members : members;  (** the root (paper level 1) group's members *)
}

val build : Spreadsheet.t -> t
(** Build from the full materialization (hidden columns included). *)

val rows : t -> Row.t list
(** All tuples, flattened back, in presentation order — inverse of
    {!build} with respect to the materialized row list. *)

val group_count : t -> level:int -> int
(** Number of groups at a paper level ([level 1] is always 1, the
    sheet itself). *)

val depth : t -> int
(** Number of group levels including the root — equals
    [Grouping.num_levels]. *)

val to_string : ?max_rows:int -> t -> string
(** Indented textual rendering: group headers with their key values,
    rows beneath. *)
