(** Computed columns: aggregation results (Definition 11) and formula
    computation results (Definition 12).

    A computed column is a {e definition}, not a stored value: its
    cells are recomputed whenever the underlying data changes — the
    property that makes aggregation commute with selection
    (Theorem 2). *)

type spec =
  | Aggregate of {
      fn : Sheet_rel.Expr.agg_fun;
      arg : Sheet_rel.Expr.t option;  (** [None] only for [Count_star] *)
      level : int;  (** paper group level: 1 = whole spreadsheet *)
    }
  | Formula of Sheet_rel.Expr.t

type t = { name : string; ty : Sheet_rel.Value.vtype; spec : spec }

val referenced_columns : t -> string list
(** Columns the definition reads (for an aggregate, the columns of its
    argument). Grouping-level dependencies are tracked separately by
    the engine. *)

val is_aggregate : t -> bool

val rename_refs : t -> old_name:string -> new_name:string -> t

val describe : t -> string
(** One-line description for the history menu, e.g.
    ["Avg_Price = avg(Price) per group level 3"]. *)

val pp : Format.formatter -> t -> unit
