open Sheet_rel

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let css =
  {|  body { font-family: system-ui, sans-serif; margin: 2rem; }
  h1 { font-size: 1.2rem; }
  .meta { color: #555; margin-bottom: 1rem; }
  table { border-collapse: collapse; }
  th, td { padding: 0.25rem 0.6rem; border: 1px solid #ccc; }
  th { background: #f2f2f2; text-align: left; }
  td.num { text-align: right; font-variant-numeric: tabular-nums; }
  th .arrow { color: #0a58ca; }
  th .level { background: #0a58ca; color: white; border-radius: 0.6em;
              padding: 0 0.4em; font-size: 0.75em; margin-left: 0.3em; }
  th.computed, td.computed { background: #fff8e1; }
  tr.group-b td { background: #f7fbff; }
  tr.group-b td.computed { background: #f3ecd0; }
  tr.boundary td { border-top: 2px solid #888; }
|}

let header_cell sheet col =
  let grouping = Spreadsheet.grouping sheet in
  let level_badge =
    let rec find idx = function
      | [] -> ""
      | lv :: rest ->
          if List.mem col lv.Grouping.basis_add then
            Printf.sprintf {|<span class="level">g%d</span>|} (idx + 1)
          else find (idx + 1) rest
    in
    find 0 grouping.Grouping.levels
  in
  let arrow_of = function
    | Grouping.Asc -> {|<span class="arrow">&#9650;</span>|}
    | Grouping.Desc -> {|<span class="arrow">&#9660;</span>|}
  in
  let arrow =
    match List.assoc_opt col grouping.Grouping.leaf_order with
    | Some dir -> arrow_of dir
    | None -> (
        let rec dir_of = function
          | [] -> ""
          | lv :: _ when List.mem col lv.Grouping.basis_add ->
              arrow_of lv.Grouping.dir
          | _ :: rest -> dir_of rest
        in
        dir_of grouping.Grouping.levels)
  in
  let cls = if Spreadsheet.is_computed sheet col then {| class="computed"|} else "" in
  Printf.sprintf "<th%s>%s %s%s</th>" cls (escape col) arrow level_badge

let to_html ?title sheet =
  let title =
    Option.value title ~default:(sheet.Spreadsheet.name ^ " — SheetMusiq")
  in
  let full = Materialize.full_cached sheet in
  let visible = Spreadsheet.visible_columns sheet in
  let rel = Rel_algebra.project visible full in
  let schema = Relation.schema rel in
  let boundaries = Materialize.finest_group_boundaries sheet full in
  let numeric =
    List.map (fun c -> Value.numeric c.Schema.ty) (Schema.columns schema)
  in
  let computed = List.map (Spreadsheet.is_computed sheet) visible in
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>%s</title>\n<style>\n%s</style></head>\n<body>\n"
    (escape title) css;
  pf "<h1>%s</h1>\n" (escape title);
  pf "<p class=\"meta\">%s</p>\n" (escape (Render.status_line sheet));
  pf "<table>\n<thead><tr>";
  List.iter (fun col -> Buffer.add_string buf (header_cell sheet col)) visible;
  pf "</tr></thead>\n<tbody>\n";
  let group_idx = ref 0 in
  List.iteri
    (fun i row ->
      let classes =
        (if !group_idx mod 2 = 1 then [ "group-b" ] else [])
        @ if i > 0 && List.mem (i - 1) boundaries then [ "boundary" ]
          else []
      in
      pf "<tr%s>"
        (match classes with
        | [] -> ""
        | cs -> Printf.sprintf {| class="%s"|} (String.concat " " cs));
      List.iteri
        (fun j v ->
          let cls =
            (if List.nth numeric j then [ "num" ] else [])
            @ if List.nth computed j then [ "computed" ] else []
          in
          pf "<td%s>%s</td>"
            (match cls with
            | [] -> ""
            | cs -> Printf.sprintf {| class="%s"|} (String.concat " " cs))
            (escape (Value.to_string v)))
        (Row.to_list row);
      pf "</tr>\n";
      if List.mem i boundaries then incr group_idx)
    (Relation.rows rel);
  pf "</tbody>\n</table>\n</body></html>\n";
  Buffer.contents buf

let save ?title sheet ~path = Csv.write_file path (to_html ?title sheet)
