(** Text rendering of a spreadsheet in presentation order.

    Mirrors the interface design of Section VI: column headers carry
    sort arrows ([^] ascending, [v] descending) and grouping-level
    markers ([*1], [*2], ... outermost first); computed columns are
    marked with [=]; horizontal rules separate finest-level groups. *)

val to_string : ?max_rows:int -> Spreadsheet.t -> string
(** Render the visible materialization. [max_rows] truncates long
    sheets with an ellipsis line ("a chunk of the data set is visible
    on the screen — all of it is not likely to fit"). *)

val print : ?max_rows:int -> Spreadsheet.t -> unit

val status_line : Spreadsheet.t -> string
(** One-line summary: name, version, row count, grouping/order. *)
