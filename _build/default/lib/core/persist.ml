open Sheet_rel

exception Persist_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Persist_error s)) fmt

let ty_name = Value.type_name

let ty_of_name = function
  | "bool" -> Value.TBool
  | "int" -> Value.TInt
  | "float" -> Value.TFloat
  | "string" -> Value.TString
  | "date" -> Value.TDate
  | other -> err "unknown type %S" other

let dir_to_string = function Grouping.Asc -> "ASC" | Grouping.Desc -> "DESC"

let dir_of_string = function
  | "ASC" -> Grouping.Asc
  | "DESC" -> Grouping.Desc
  | other -> err "unknown direction %S" other

let to_string (sheet : Spreadsheet.t) =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let state = sheet.Spreadsheet.state in
  pf "musiq-sheet v1\n";
  pf "name %s\n" sheet.Spreadsheet.name;
  pf "base_name %s\n" sheet.Spreadsheet.base_name;
  pf "version %d\n" sheet.Spreadsheet.version;
  List.iter
    (fun (s : Query_state.selection) ->
      pf "selection %d %s\n" s.Query_state.id
        (Expr.to_string s.Query_state.pred))
    state.Query_state.selections;
  List.iter (fun col -> pf "hidden %s\n" col) state.Query_state.hidden;
  List.iter
    (fun (c : Computed.t) ->
      match c.Computed.spec with
      | Computed.Aggregate { fn; arg; level } ->
          pf "computed agg %s %d %s = %s(%s)\n" (ty_name c.Computed.ty)
            level c.Computed.name (Expr.agg_fun_name fn)
            (match arg with
            | Some (Expr.Col col) -> col
            | Some e -> Expr.to_string e
            | None -> "*")
      | Computed.Formula e ->
          pf "computed formula %s %s = %s\n" (ty_name c.Computed.ty)
            c.Computed.name (Expr.to_string e))
    state.Query_state.computed;
  if state.Query_state.dedup then pf "dedup\n";
  let grouping = state.Query_state.grouping in
  List.iter
    (fun (lv : Grouping.level) ->
      pf "group %s %s%s\n"
        (dir_to_string lv.Grouping.dir)
        (String.concat "," lv.Grouping.basis_add)
        (match lv.Grouping.order_by_value with
        | Some (col, d) -> Printf.sprintf " by %s %s" col (dir_to_string d)
        | None -> ""))
    grouping.Grouping.levels;
  List.iter
    (fun (col, dir) -> pf "leaf %s %s\n" (dir_to_string dir) col)
    grouping.Grouping.leaf_order;
  pf "data\n";
  (* data header carries the types: name:type *)
  let schema = Relation.schema sheet.Spreadsheet.base in
  let typed_header =
    Relation.unsafe_make
      (Schema.of_list
         (List.map
            (fun c ->
              (Printf.sprintf "%s:%s" c.Schema.name (ty_name c.Schema.ty),
               c.Schema.ty))
            (Schema.columns schema)))
      (Relation.rows sheet.Spreadsheet.base)
  in
  Buffer.add_string buf (Csv.of_relation typed_header);
  Buffer.contents buf

let split2 line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.sub line (i + 1) (String.length line - i - 1) )

let parse_expr_exn what text =
  match Expr_parse.parse_string text with
  | Ok e -> e
  | Error msg -> err "bad %s %S: %s" what text msg

let parse_computed rest =
  (* "agg <ty> <level> <name> = <fn>(<arg>)"
     or "formula <ty> <name> = <expr>" *)
  let kind, rest = split2 rest in
  match kind with
  | "agg" -> (
      let ty, rest = split2 rest in
      let level, rest = split2 rest in
      let name, rest = split2 rest in
      let eq, rhs = split2 rest in
      if eq <> "=" then err "malformed computed line"
      else
        match String.index_opt rhs '(' with
        | None -> err "malformed aggregate %S" rhs
        | Some i ->
            let fn_name = String.sub rhs 0 i in
            let arg_text =
              String.sub rhs (i + 1) (String.length rhs - i - 2)
            in
            let fn =
              match fn_name with
              | "count" when arg_text = "*" -> Expr.Count_star
              | "count" -> Expr.Count
              | "count_distinct" -> Expr.Count_distinct
              | "sum" -> Expr.Sum
              | "avg" -> Expr.Avg
              | "min" -> Expr.Min
              | "max" -> Expr.Max
              | other -> err "unknown aggregate %S" other
            in
            let arg =
              if arg_text = "*" then None
              else Some (parse_expr_exn "aggregate argument" arg_text)
            in
            let level =
              match int_of_string_opt level with
              | Some l -> l
              | None -> err "bad level %S" level
            in
            { Computed.name;
              ty = ty_of_name ty;
              spec = Computed.Aggregate { fn; arg; level } })
  | "formula" ->
      let ty, rest = split2 rest in
      let name, rest = split2 rest in
      let eq, rhs = split2 rest in
      if eq <> "=" then err "malformed computed line"
      else
        { Computed.name;
          ty = ty_of_name ty;
          spec = Computed.Formula (parse_expr_exn "formula" rhs) }
  | other -> err "unknown computed kind %S" other

let of_string text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | header :: rest when String.trim header = "musiq-sheet v1" ->
      let name = ref "sheet" in
      let base_name = ref "sheet" in
      let version = ref 0 in
      let selections = ref [] in
      let hidden = ref [] in
      let computed = ref [] in
      let dedup = ref false in
      let levels = ref [] in
      let leaf = ref [] in
      let rec header_lines = function
        | [] -> err "missing data section"
        | line :: rest -> (
            let line = String.trim line in
            if line = "data" then rest
            else if line = "" then header_lines rest
            else
              let key, value = split2 line in
              match key with
              | "name" ->
                  name := value;
                  header_lines rest
              | "base_name" ->
                  base_name := value;
                  header_lines rest
              | "version" ->
                  version := Option.value (int_of_string_opt value) ~default:0;
                  header_lines rest
              | "selection" ->
                  let id_text, pred_text = split2 value in
                  let id =
                    match int_of_string_opt id_text with
                    | Some i -> i
                    | None -> err "bad selection id %S" id_text
                  in
                  selections :=
                    { Query_state.id;
                      pred = parse_expr_exn "selection" pred_text }
                    :: !selections;
                  header_lines rest
              | "hidden" ->
                  hidden := value :: !hidden;
                  header_lines rest
              | "computed" ->
                  computed := parse_computed value :: !computed;
                  header_lines rest
              | "dedup" ->
                  dedup := true;
                  header_lines rest
              | "group" ->
                  let dir_text, rest_text = split2 value in
                  let cols_text, order_by_value =
                    (* optional " by <col> <dir>" suffix *)
                    match String.index_opt rest_text ' ' with
                    | Some _ -> (
                        match String.split_on_char ' ' rest_text with
                        | [ cols; "by"; col; d ] ->
                            (cols, Some (col, dir_of_string d))
                        | _ -> (rest_text, None))
                    | None -> (rest_text, None)
                  in
                  levels :=
                    { Grouping.basis_add =
                        String.split_on_char ',' cols_text
                        |> List.map String.trim
                        |> List.filter (fun c -> c <> "");
                      dir = dir_of_string dir_text;
                      order_by_value }
                    :: !levels;
                  header_lines rest
              | "leaf" ->
                  let dir_text, col = split2 value in
                  leaf := (col, dir_of_string dir_text) :: !leaf;
                  header_lines rest
              | other -> err "unknown header line %S" other)
      in
      let data_lines = header_lines rest in
      let csv_text = String.concat "\n" data_lines in
      let raw =
        try Csv.load_relation csv_text with
        | Csv.Csv_error msg -> err "data section: %s" msg
        | Schema.Schema_error msg | Relation.Relation_error msg ->
            err "data section: %s" msg
      in
      (* decode the name:type header and re-type the columns *)
      let schema =
        try
          Schema.of_list
          (List.map
             (fun c ->
               match String.index_opt c.Schema.name ':' with
               | None -> err "data header %S lacks a type" c.Schema.name
               | Some i ->
                   let col = String.sub c.Schema.name 0 i in
                   let ty =
                     ty_of_name
                       (String.sub c.Schema.name (i + 1)
                          (String.length c.Schema.name - i - 1))
                   in
                   (col, ty))
             (Schema.columns (Relation.schema raw)))
        with Schema.Schema_error msg -> err "data header: %s" msg
      in
      let rows =
        List.map
          (fun row ->
            Row.of_list
              (List.mapi
                 (fun i v ->
                   let target = (Schema.column_at schema i).Schema.ty in
                   match (v, target) with
                   | Value.Null, _ -> Value.Null
                   | v, ty -> (
                       (* reparse through the display form to coerce
                          inferred types (e.g. "2005-01-02" parsed as
                          date when the column is a string) *)
                       match Value.parse_typed ty (Value.to_string v) with
                       | Some v -> v
                       | None ->
                           err "value %s does not fit column type %s"
                             (Value.to_string v) (Value.type_name ty)))
                 (Row.to_list row)))
          (Relation.rows raw)
      in
      let base =
        try Relation.make schema rows
        with Relation.Relation_error msg -> err "data: %s" msg
      in
      { Spreadsheet.uid = Spreadsheet.fresh_uid ();
        name = !name;
        base_name = !base_name;
        version = !version;
        base;
        state =
          { Query_state.selections = List.rev !selections;
            hidden = List.rev !hidden;
            computed = List.rev !computed;
            dedup = !dedup;
            grouping =
              { Grouping.levels = List.rev !levels;
                leaf_order = List.rev !leaf } } }
  | _ -> err "not a musiq-sheet file"

let save sheet ~path =
  try Csv.write_file path (to_string sheet)
  with Sys_error msg -> err "cannot write %s: %s" path msg

let load ~path =
  match Csv.read_file path with
  | text -> of_string text
  | exception Sys_error msg -> err "cannot read %s: %s" path msg
