(** The spreadsheet-algebra engine: applies operators (Section III)
    and query modifications (Section V) to spreadsheets, enforcing
    every precondition the paper's interface design imposes
    (Section VI-A).

    All functions are pure with respect to the spreadsheet — a new
    version is returned, the input is unchanged — which is what makes
    undo/redo ({!Session}) trivial. *)

open Sheet_rel

val apply : ?store:Store.t -> Spreadsheet.t -> Op.t -> Spreadsheet.t Errors.result
(** Apply one operator. [store] is required by the binary operators
    ([Product]/[Union]/[Diff]/[Join]), which resolve their stored
    spreadsheet by name.

    Guards enforced (each yields a typed {!Errors.t}):
    - selection/formula predicates must type-check against the visible
      schema and must not contain aggregate calls;
    - grouping attributes must be visible and must not (transitively)
      depend on an aggregate column;
    - regrouping/ungrouping, and orderings that destroy grouping
      levels (Def. 4 case 1), are refused while aggregates depend on
      the destroyed levels — "the aggregates have to be projected out
      before such operations are allowed";
    - aggregation group level must exist; sum/avg need a numeric
      column;
    - union/difference require union-compatible base schemas (computed
      columns excluded, Defs. 8–9);
    - renaming must not clash. *)

(** {1 Query modification (Section V-B)}

    These rewrite the query state; by Theorem 3 the result is the
    sheet that would have been obtained had the modified operation
    been issued originally. *)

val remove_selection : Spreadsheet.t -> int -> Spreadsheet.t Errors.result
val replace_selection :
  Spreadsheet.t -> int -> Expr.t -> Spreadsheet.t Errors.result

val remove_computed : Spreadsheet.t -> string -> Spreadsheet.t Errors.result
(** Refused while any selection, formula or aggregate reads the
    column, or the grouping/ordering uses it — dependents must be
    removed first. *)

(** {1 Introspection used by the interface layer} *)

val selections_on :
  Spreadsheet.t -> string -> Query_state.selection list

val aggregate_default_name : Expr.agg_fun -> string option -> string
(** The auto-generated column name, e.g. [avg] on ["Price"] →
    ["Avg_Price"] (before uniqueness suffixing). *)
