type t = (string, Spreadsheet.t) Hashtbl.t

let create () = Hashtbl.create 8

let save t ~name sheet =
  Hashtbl.replace t name { sheet with Spreadsheet.name }

let open_ t name = Hashtbl.find_opt t name

let close t name =
  if Hashtbl.mem t name then begin
    Hashtbl.remove t name;
    true
  end
  else false

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t []
  |> List.sort String.compare
