type t =
  | Unknown_column of string
  | Type_error of string
  | Grouping_error of string
  | Dependency_error of string
  | Incompatible_schemas of string
  | No_such_sheet of string
  | Invalid_op of string

let to_string = function
  | Unknown_column c -> Printf.sprintf "unknown column %S" c
  | Type_error m -> "type error: " ^ m
  | Grouping_error m -> "grouping error: " ^ m
  | Dependency_error m -> "dependency error: " ^ m
  | Incompatible_schemas m -> "incompatible spreadsheets: " ^ m
  | No_such_sheet n -> Printf.sprintf "no stored spreadsheet named %S" n
  | Invalid_op m -> "invalid operation: " ^ m

let pp ppf e = Format.pp_print_string ppf (to_string e)

type 'a result = ('a, t) Stdlib.result

let fail_type fmt = Printf.ksprintf (fun s -> Error (Type_error s)) fmt
let fail_grouping fmt = Printf.ksprintf (fun s -> Error (Grouping_error s)) fmt

let fail_dependency fmt =
  Printf.ksprintf (fun s -> Error (Dependency_error s)) fmt

let fail_invalid fmt = Printf.ksprintf (fun s -> Error (Invalid_op s)) fmt
