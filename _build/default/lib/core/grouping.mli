(** Grouping and ordering specifications — the [(G, O)] half of the
    spreadsheet quadruple (Definition 1).

    The paper numbers grouping levels from the root: level 1 is the
    spreadsheet itself (basis [{NULL}], represented here as the empty
    attribute list), level [i] groups tuples equal on the cumulative
    basis [g_i]. We store the {e relative} basis of each non-root
    level ([basis_add], the attributes new at that level) together
    with the direction in which groups at that level are ordered, plus
    the ordering of tuples inside the finest groups ([leaf_order]). *)

type dir = Asc | Desc

val dir_to_string : dir -> string
val flip : dir -> dir

type level = {
  basis_add : string list;  (** relative grouping basis, in the order given *)
  dir : dir;  (** order of the groups at this level *)
  order_by_value : (string * dir) option;
      (** extension: order the groups at this level by a column whose
          value is constant within each group (an aggregate at this
          level) instead of by the basis attributes — the "ORDER BY
          revenue DESC" presentation single-level SQL reports but
          Definition 4 cannot express. The basis attributes remain the
          tie-break. *)
}

type t = {
  levels : level list;  (** outermost first; excludes the root level *)
  leaf_order : (string * dir) list;
      (** ordering of tuples inside the finest groups *)
}

val empty : t
(** Grouped by NULL, ordered by NULL (Definition 2's [G^0], [O^0]). *)

val num_levels : t -> int
(** [|G|]: 1 (the root) plus one per stored level. *)

val cumulative_basis : t -> int -> string list
(** [cumulative_basis t i] is the paper's [g_i] for [1 <= i <=
    num_levels t]; [g_1] is the empty list. Order: outermost basis
    attributes first. *)

val finest_basis : t -> string list
val all_group_attrs : t -> string list
val is_group_attr : t -> string -> bool

val add_level : t -> basis:string list -> dir:dir -> (t, string) result
(** The grouping operator [τ] (Definition 3). [basis] is the full
    grouping-basis, which must be a strict superset of the current
    finest basis; the new level's relative basis is [basis] minus the
    current one, and leaf-order attributes absorbed into the basis are
    dropped ([o_L = L - grouping-basis]). *)

val ungroup : t -> t
(** Destroy all grouping (levels and their dictated orders); the leaf
    order survives. *)

type order_outcome = {
  spec : t;
  destroyed_from : int option;
      (** [Some l] when Definition 4 case 1 applied: every level
          strictly deeper than paper-level [l] was destroyed. *)
}

val order :
  t -> attr:string -> dir:dir -> level:int -> (order_outcome, string) result
(** The ordering operator [λ] (Definition 4). [level] is a paper
    level in [1 .. num_levels]. Case 2 (attribute dictated by the
    grouping) flips that level's direction; case 1 destroys deeper
    levels and installs [attr] as the leaf order; case 3 updates the
    leaf order (a no-op when [attr] is a grouping attribute). *)

val set_group_order : t -> level:int -> by:string -> dir:dir -> (t, string) result
(** Install an order-by-value override for the paper level [level]
    (which must be in [2 .. num_levels]). The caller guarantees the
    column is constant within level-[level] groups. *)

val group_order_columns : t -> string list
(** Columns referenced by order-by-value overrides. *)

val rename : t -> old_name:string -> new_name:string -> t

val sort_keys : t -> (string * dir) list
(** The single flat ordering that emulates the recursive grouping
    (Sec. II-A): each level's basis attributes with that level's
    direction, outermost first, followed by the leaf order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
