(** Incremental materialization.

    Section V observes that recomputing a query from scratch after
    every small step "is likely to take too long" and that the
    commutativity structure of the algebra can "reduce this cost
    substantially". This module is that reduction: given a parent
    sheet whose materialization is known and the operator that
    produced a child sheet, it derives the child's materialization
    without replaying the whole query state, whenever the operator's
    effect on the materialized relation is local:

    - projection / inverse projection: the full materialization is
      unchanged (hidden columns are presentational) — unless duplicate
      elimination is active, whose key is the visible column set;
    - grouping and ordering operators: a re-sort of the parent rows
      (their guards ensure no computed value changes);
    - a selection applied at the highest stratum (no computed column
      defined after it): a filter of the parent rows;
    - a new aggregation or formula column: computed over the parent
      rows and appended.

    Anything else — duplicate elimination with computed columns,
    renames, binary operators, query modification — answers [None]
    and falls back to full replay. Derivations are exact: the result
    is the relation {!Materialize.full} would compute (checked by the
    property suite). *)

open Sheet_rel

val derive :
  parent:Spreadsheet.t ->
  op:Op.t ->
  child:Spreadsheet.t ->
  Relation.t option
(** Derive the child's full materialization from the parent's
    (obtained via {!Materialize.full_cached}); [None] when the
    operator requires full recomputation. *)

val materialize_after :
  parent:Spreadsheet.t -> op:Op.t -> child:Spreadsheet.t -> Relation.t
(** {!derive}, falling back to {!Materialize.full}; in either case the
    result is seeded into the materialization cache under the child's
    uid, so subsequent {!Materialize.full_cached} and
    {!Materialize.visible} calls are free. *)
