(** Durable spreadsheets: serialize a spreadsheet — base relation and
    complete query state — to a single text file and load it back.

    This backs the Save/Open housekeeping operators (Sec. III-C) with
    real storage: a saved sheet survives the session, and loading it
    restores not just the data but the {e modifiable} query state —
    selections can still be replaced, hidden columns restored,
    aggregates redefined.

    Format (version 1, line-oriented header followed by CSV data):
    {v
    musiq-sheet v1
    name <display name>
    base_name <R description>
    version <j>
    selection <id> <predicate>
    hidden <column>
    computed agg <ty> <level> <name> = <fn>(<column> or star)
    computed formula <ty> <name> = <expression>
    dedup
    group <ASC|DESC> <col>[,<col>...]
    leaf <ASC|DESC> <column>
    data
    <CSV with a  name:type  header>
    v} *)

exception Persist_error of string

val to_string : Spreadsheet.t -> string
val of_string : string -> Spreadsheet.t
(** @raise Persist_error on malformed input. *)

val save : Spreadsheet.t -> path:string -> unit
val load : path:string -> Spreadsheet.t
(** @raise Persist_error (also wraps I/O errors). *)
