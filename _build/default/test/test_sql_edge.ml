(* Edge-case tests of the SQL engine: NULL semantics, dates, FROM
   aliases and self-joins, ORDER BY aliases, DISTINCT with grouping,
   and scalar functions in every clause. *)

open Sheet_rel
open Sheet_sql

let nullable =
  Relation.make
    (Schema.of_list
       [ ("k", Value.TInt); ("grp", Value.TString); ("v", Value.TInt);
         ("d", Value.TDate) ])
    [ Row.of_list
        [ Value.Int 1; Value.String "a"; Value.Int 10;
          Value.of_ymd 1994 1 15 ];
      Row.of_list
        [ Value.Int 2; Value.String "a"; Value.Null;
          Value.of_ymd 1994 6 1 ];
      Row.of_list
        [ Value.Int 3; Value.Null; Value.Int 30; Value.of_ymd 1995 2 1 ];
      Row.of_list [ Value.Int 4; Value.Null; Value.Null; Value.Null ] ]

let catalog () =
  Catalog.of_list [ ("t", nullable); ("cars", Sample_cars.relation) ]

let run sql = Sql_executor.run_exn (catalog ()) sql

let get rel i j = Row.get (List.nth (Relation.rows rel) i) j

let test_null_in_where () =
  Alcotest.(check int) "comparison with null is false" 1
    (Relation.cardinality (run "SELECT k FROM t WHERE v > 15"));
  Alcotest.(check int) "IS NULL" 2
    (Relation.cardinality (run "SELECT k FROM t WHERE v IS NULL"));
  Alcotest.(check int) "IS NOT NULL" 2
    (Relation.cardinality (run "SELECT k FROM t WHERE v IS NOT NULL"))

let test_null_grouping () =
  let rel =
    run
      "SELECT grp, count(*) AS n, sum(v) AS s FROM t GROUP BY grp ORDER \
       BY grp"
  in
  Alcotest.(check int) "null group kept" 2 (Relation.cardinality rel);
  (* ascending: "a" first, NULL group last *)
  Alcotest.(check bool) "a group counts 2" true
    (Value.equal (get rel 0 1) (Value.Int 2));
  Alcotest.(check bool) "a group sum skips null" true
    (Value.equal (get rel 0 2) (Value.Int 10));
  Alcotest.(check bool) "null group last" true (Value.is_null (get rel 1 0));
  Alcotest.(check bool) "null group sum" true
    (Value.equal (get rel 1 2) (Value.Int 30))

let test_all_null_aggregates () =
  let rel =
    run "SELECT avg(v) AS a, min(v) AS lo, count(v) AS c FROM t WHERE k = 4"
  in
  Alcotest.(check bool) "avg of nothing is null" true
    (Value.is_null (get rel 0 0));
  Alcotest.(check bool) "min of nothing is null" true
    (Value.is_null (get rel 0 1));
  Alcotest.(check bool) "count of nothing is 0" true
    (Value.equal (get rel 0 2) (Value.Int 0))

let test_date_predicates () =
  Alcotest.(check int) "date range" 2
    (Relation.cardinality
       (run
          "SELECT k FROM t WHERE d >= DATE '1994-01-01' AND d < DATE \
           '1995-01-01'"));
  Alcotest.(check int) "null date excluded" 3
    (Relation.cardinality (run "SELECT k FROM t WHERE d > DATE '1900-01-01'"));
  let rel = run "SELECT k, year(d) AS y FROM t WHERE k = 3" in
  Alcotest.(check bool) "year()" true
    (Value.equal (get rel 0 1) (Value.Int 1995))

let test_from_aliases_self_join () =
  (* pairs of cars of the same model and year with different prices *)
  let rel =
    run
      "SELECT a.ID, b.ID FROM cars a, cars b WHERE a.Model = b.Model AND \
       a.Year = b.Year AND a.Price < b.Price"
  in
  (* Jetta 2005: 3 cars -> 3 ordered pairs; Jetta 2006: 3 -> 3;
     Civic 2006: 2 -> 1; Civic 2005: 1 -> 0 *)
  Alcotest.(check int) "ordered pairs" 7 (Relation.cardinality rel);
  (* unqualified ambiguous column must be refused *)
  Alcotest.(check bool) "ambiguity detected" true
    (Result.is_error
       (Sql_executor.run_string (catalog ())
          "SELECT Model FROM cars a, cars b"))

let test_order_by_alias_and_expr () =
  let rel =
    run "SELECT k, v * 2 AS dbl FROM t WHERE v IS NOT NULL ORDER BY dbl DESC"
  in
  Alcotest.(check bool) "alias ordering" true
    (Value.equal (get rel 0 0) (Value.Int 3));
  let rel2 =
    run "SELECT k FROM t WHERE v IS NOT NULL ORDER BY v + k DESC"
  in
  Alcotest.(check bool) "expression ordering" true
    (Value.equal (get rel2 0 0) (Value.Int 3))

let test_distinct_with_expressions () =
  let rel = run "SELECT DISTINCT grp FROM t" in
  Alcotest.(check int) "2 distinct incl. null" 2 (Relation.cardinality rel);
  let rel2 = run "SELECT DISTINCT Model, Year FROM cars" in
  Alcotest.(check int) "4 model-year pairs" 4 (Relation.cardinality rel2)

let test_having_composite () =
  let rel =
    run
      "SELECT Model FROM cars GROUP BY Model HAVING count(*) > 2 AND \
       avg(Price) < 16000"
  in
  Alcotest.(check int) "only Civic" 1 (Relation.cardinality rel);
  Alcotest.(check bool) "civic" true
    (Value.equal (get rel 0 0) (Value.String "Civic"))

let test_group_by_qualified () =
  let rel =
    run
      "SELECT cars.Model, count(*) AS n FROM cars GROUP BY cars.Model \
       ORDER BY cars.Model"
  in
  Alcotest.(check int) "2 groups" 2 (Relation.cardinality rel)

let test_output_name_collision () =
  let rel = run "SELECT Model, Model FROM cars WHERE Year = 2005" in
  Alcotest.(check (list string)) "deduplicated output names"
    [ "Model"; "Model_2" ]
    (Schema.names (Relation.schema rel))

let test_theorem1_edge_queries () =
  let cat = catalog () in
  List.iter
    (fun sql ->
      let q = Sql_parser.parse_exn sql in
      match (Sql_executor.run cat q, Sql_to_sheet.execute cat q) with
      | Ok a, Ok b ->
          Alcotest.(check bool) sql true
            (Relation.equal_unordered_data (Relation.normalize a)
               (Relation.normalize b))
      | Error m, _ | _, Error m -> Alcotest.failf "%s: %s" sql m)
    [ "SELECT grp, count(*) AS n FROM t GROUP BY grp";
      "SELECT grp, sum(v) AS s FROM t WHERE k < 4 GROUP BY grp";
      "SELECT k FROM t WHERE d >= DATE '1994-01-01' AND d < DATE \
       '1995-01-01'";
      "SELECT grp, count(v) AS nv FROM t GROUP BY grp HAVING count(*) >= 1"
    ]

let () =
  Alcotest.run "sheet_sql_edge"
    [ ( "nulls",
        [ Alcotest.test_case "where" `Quick test_null_in_where;
          Alcotest.test_case "grouping" `Quick test_null_grouping;
          Alcotest.test_case "all-null aggregates" `Quick
            test_all_null_aggregates ] );
      ( "dates",
        [ Alcotest.test_case "predicates + year()" `Quick
            test_date_predicates ] );
      ( "structure",
        [ Alcotest.test_case "aliases/self-join" `Quick
            test_from_aliases_self_join;
          Alcotest.test_case "order by alias/expr" `Quick
            test_order_by_alias_and_expr;
          Alcotest.test_case "distinct" `Quick test_distinct_with_expressions;
          Alcotest.test_case "composite having" `Quick test_having_composite;
          Alcotest.test_case "qualified group by" `Quick
            test_group_by_qualified;
          Alcotest.test_case "output name collision" `Quick
            test_output_name_collision ] );
      ( "theorem1",
        [ Alcotest.test_case "edge queries" `Quick
            test_theorem1_edge_queries ] ) ]
