(* Deeper coverage of the value layer: typed parsing, rendering,
   coercions, hashing and type lattice. *)

open Sheet_rel

let v = Alcotest.testable Value.pp Value.equal

let test_parse_typed () =
  let p ty s = Value.parse_typed ty s in
  Alcotest.(check (option v)) "int" (Some (Value.Int 42)) (p Value.TInt "42");
  Alcotest.(check (option v)) "negative int" (Some (Value.Int (-3)))
    (p Value.TInt "-3");
  Alcotest.(check (option v)) "bad int" None (p Value.TInt "4x");
  Alcotest.(check (option v)) "float" (Some (Value.Float 2.5))
    (p Value.TFloat "2.5");
  Alcotest.(check (option v)) "float accepts int text"
    (Some (Value.Float 7.0)) (p Value.TFloat "7");
  Alcotest.(check (option v)) "bool true" (Some (Value.Bool true))
    (p Value.TBool "TRUE");
  Alcotest.(check (option v)) "bool yes" (Some (Value.Bool true))
    (p Value.TBool "yes");
  Alcotest.(check (option v)) "bool 0" (Some (Value.Bool false))
    (p Value.TBool "0");
  Alcotest.(check (option v)) "bad bool" None (p Value.TBool "maybe");
  Alcotest.(check (option v)) "date" (Some (Value.of_ymd 2009 3 29))
    (p Value.TDate "2009-03-29");
  Alcotest.(check (option v)) "bad month" None (p Value.TDate "2009-13-29");
  Alcotest.(check (option v)) "not a date" None (p Value.TDate "whenever");
  Alcotest.(check (option v)) "string verbatim"
    (Some (Value.String "2009-03-29")) (p Value.TString "2009-03-29");
  (* empty string is NULL for every type *)
  List.iter
    (fun ty ->
      Alcotest.(check (option v))
        ("empty as " ^ Value.type_name ty)
        (Some Value.Null) (p ty ""))
    [ Value.TBool; Value.TInt; Value.TFloat; Value.TString; Value.TDate ]

let test_rendering () =
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "csv null is empty" ""
    (Value.to_csv_string Value.Null);
  Alcotest.(check string) "whole float" "2.0"
    (Value.to_string (Value.Float 2.0));
  Alcotest.(check string) "fractional float" "2.5"
    (Value.to_string (Value.Float 2.5));
  Alcotest.(check string) "bool" "true" (Value.to_string (Value.Bool true));
  Alcotest.(check string) "date padding" "0099-01-05"
    (Value.to_string (Value.of_ymd 99 1 5))

let test_type_lattice () =
  Alcotest.(check bool) "int <= float" true
    (Value.subtype Value.TInt Value.TFloat);
  Alcotest.(check bool) "float not <= int" false
    (Value.subtype Value.TFloat Value.TInt);
  Alcotest.(check bool) "reflexive" true
    (Value.subtype Value.TDate Value.TDate);
  Alcotest.(check bool) "unify numerics" true
    (Value.unify Value.TInt Value.TFloat = Some Value.TFloat);
  Alcotest.(check bool) "no unifier" true
    (Value.unify Value.TDate Value.TString = None);
  Alcotest.(check bool) "numeric" true
    (Value.numeric Value.TInt && Value.numeric Value.TFloat
    && (not (Value.numeric Value.TDate)))

let test_hash_consistency () =
  (* values that compare equal must hash equal (int/float coercion) *)
  Alcotest.(check bool) "int/float hash" true
    (Value.hash (Value.Int 3) = Value.hash (Value.Float 3.0));
  Alcotest.(check bool) "string hash stable" true
    (Value.hash (Value.String "x") = Value.hash (Value.String "x"))

let test_to_float () =
  Alcotest.(check (option (float 0.0))) "int" (Some 3.0)
    (Value.to_float (Value.Int 3));
  Alcotest.(check (option (float 0.0))) "float" (Some 2.5)
    (Value.to_float (Value.Float 2.5));
  Alcotest.(check (option (float 0.0))) "string" None
    (Value.to_float (Value.String "3"));
  Alcotest.(check (option (float 0.0))) "null" None
    (Value.to_float Value.Null)

let test_date_boundaries () =
  List.iter
    (fun (y, m, d) ->
      match Value.of_ymd y m d with
      | Value.Date days ->
          Alcotest.(check (triple int int int))
            (Printf.sprintf "%04d-%02d-%02d" y m d)
            (y, m, d)
            (Value.ymd_of_days days)
      | _ -> Alcotest.fail "not a date")
    [ (1970, 1, 1); (1969, 12, 31); (2000, 2, 29); (1900, 2, 28);
      (2400, 2, 29); (1, 1, 1); (9999, 12, 31) ]

let test_date_arithmetic () =
  let eval e =
    Expr_eval.eval ~lookup:(fun _ -> raise Not_found)
      (Expr_parse.parse_string_exn e)
  in
  Alcotest.(check v) "date + days" (Value.of_ymd 1994 1 31)
    (eval "DATE '1994-01-01' + 30");
  Alcotest.(check v) "date - days" (Value.of_ymd 1993 12 31)
    (eval "DATE '1994-01-01' - 1");
  Alcotest.(check v) "days + date" (Value.of_ymd 1994 1 2)
    (eval "1 + DATE '1994-01-01'");
  Alcotest.(check v) "date - date" (Value.Int 365)
    (eval "DATE '1995-01-01' - DATE '1994-01-01'");
  Alcotest.(check bool) "date * int refused at eval" true
    (try ignore (eval "DATE '1994-01-01' * 2"); false
     with Expr_eval.Eval_error _ -> true);
  (* and the type checker agrees *)
  let schema = Schema.of_list [ ("d", Value.TDate); ("n", Value.TInt) ] in
  let check e = Expr_check.check schema (Expr_parse.parse_string_exn e) in
  Alcotest.(check bool) "d + n : date" true
    (check "d + n" = Ok (Some Value.TDate));
  Alcotest.(check bool) "d - d : int" true
    (check "d - d" = Ok (Some Value.TInt));
  Alcotest.(check bool) "d * n refused" true (Result.is_error (check "d * n"));
  Alcotest.(check bool) "n - d refused" true (Result.is_error (check "n - d"));
  (* usable in predicates: shipped within 30 days of a reference *)
  Alcotest.(check bool) "predicate typechecks" true
    (Result.is_ok
       (Expr_check.check_pred schema
          (Expr_parse.parse_string_exn
             "d >= DATE '1994-01-01' AND d < DATE '1994-01-01' + 90")))

let test_row_utilities () =
  let r = Row.of_list [ Value.Int 1; Value.Int 2; Value.Int 3 ] in
  Alcotest.(check int) "width" 3 (Row.width r);
  Alcotest.(check v) "get" (Value.Int 2) (Row.get r 1);
  let r2 = Row.remove_at r 1 in
  Alcotest.(check int) "remove width" 2 (Row.width r2);
  Alcotest.(check v) "remove shifts" (Value.Int 3) (Row.get r2 1);
  let r3 = Row.set_at r 0 (Value.Int 9) in
  Alcotest.(check v) "set_at fresh" (Value.Int 9) (Row.get r3 0);
  Alcotest.(check v) "original untouched" (Value.Int 1) (Row.get r 0);
  let r4 = Row.project r [ 2; 0 ] in
  Alcotest.(check bool) "project reorders" true
    (Row.to_list r4 = [ Value.Int 3; Value.Int 1 ]);
  Alcotest.(check bool) "lexicographic shorter-first" true
    (Row.compare (Row.of_list [ Value.Int 1 ]) r < 0)

let () =
  Alcotest.run "sheet_values_deep"
    [ ( "values",
        [ Alcotest.test_case "parse_typed" `Quick test_parse_typed;
          Alcotest.test_case "rendering" `Quick test_rendering;
          Alcotest.test_case "type lattice" `Quick test_type_lattice;
          Alcotest.test_case "hash consistency" `Quick test_hash_consistency;
          Alcotest.test_case "to_float" `Quick test_to_float;
          Alcotest.test_case "date boundaries" `Quick test_date_boundaries;
          Alcotest.test_case "date arithmetic" `Quick test_date_arithmetic ]
      );
      ("rows", [ Alcotest.test_case "utilities" `Quick test_row_utilities ])
    ]
