(* Exhaustive tests of the engine's guards — every refusal the paper's
   interface design calls for (Sec. VI-A) surfaces as a typed error. *)

open Sheet_rel
open Sheet_core

let parse = Expr_parse.parse_string_exn

let sheet () = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation

let apply_exn s op =
  match Engine.apply s op with
  | Ok s -> s
  | Error e -> Alcotest.failf "unexpected refusal: %s" (Errors.to_string e)

let apply_seq ops =
  List.fold_left apply_exn (sheet ()) ops

let expect_error ?store s op pred =
  match Engine.apply ?store s op with
  | Ok _ -> Alcotest.failf "expected refusal of %s" (Op.describe op)
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error class for %s" (Op.describe op))
        true (pred e)

let is_unknown_column = function Errors.Unknown_column _ -> true | _ -> false
let is_type_error = function Errors.Type_error _ -> true | _ -> false
let is_grouping = function Errors.Grouping_error _ -> true | _ -> false
let is_dependency = function Errors.Dependency_error _ -> true | _ -> false
let is_invalid = function Errors.Invalid_op _ -> true | _ -> false
let is_incompatible = function
  | Errors.Incompatible_schemas _ -> true
  | _ -> false
let is_no_such_sheet = function Errors.No_such_sheet _ -> true | _ -> false

(* ---- selection ---- *)

let test_selection_guards () =
  let s = sheet () in
  expect_error s (Op.Select (parse "Nope = 1")) is_type_error;
  expect_error s (Op.Select (parse "Model + 1 = 2")) is_type_error;
  expect_error s (Op.Select (parse "Price")) is_type_error;
  expect_error s (Op.Select (parse "avg(Price) > 1")) is_invalid;
  (* selections cannot reference hidden columns *)
  let s = apply_exn s (Op.Project "Mileage") in
  expect_error s (Op.Select (parse "Mileage < 10")) is_type_error

(* ---- projection ---- *)

let test_projection_guards () =
  let s = sheet () in
  expect_error s (Op.Project "Nope") is_unknown_column;
  let s = apply_exn s (Op.Project "Mileage") in
  expect_error s (Op.Project "Mileage") is_invalid;
  expect_error s (Op.Unproject "Price") is_invalid;
  let s = apply_exn s (Op.Unproject "Mileage") in
  ignore s

(* ---- grouping ---- *)

let test_grouping_guards () =
  let s = sheet () in
  expect_error s
    (Op.Group { basis = [ "Nope" ]; dir = Grouping.Asc })
    is_unknown_column;
  let s1 = apply_exn s (Op.Project "Condition") in
  expect_error s1
    (Op.Group { basis = [ "Condition" ]; dir = Grouping.Asc })
    is_invalid;
  (* grouping by an aggregate column is circular *)
  let s2 =
    apply_exn s
      (Op.Aggregate
         { fn = Expr.Avg; col = Some "Price"; level = 1; as_name = None })
  in
  expect_error s2
    (Op.Group { basis = [ "Avg_Price" ]; dir = Grouping.Asc })
    is_grouping;
  (* ... even transitively through a formula *)
  let s3 =
    apply_exn s2 (Op.Formula { name = Some "f"; expr = parse "Avg_Price * 2" })
  in
  expect_error s3
    (Op.Group { basis = [ "f" ]; dir = Grouping.Asc })
    is_grouping;
  (* grouping by a pure formula is fine *)
  let s4 =
    apply_exn s (Op.Formula { name = Some "g"; expr = parse "Price * 2" })
  in
  ignore (apply_exn s4 (Op.Group { basis = [ "g" ]; dir = Grouping.Asc }));
  (* adding an already-grouped attribute adds nothing *)
  let s5 =
    apply_exn s (Op.Group { basis = [ "Model" ]; dir = Grouping.Asc })
  in
  expect_error s5
    (Op.Group { basis = [ "Model" ]; dir = Grouping.Asc })
    is_grouping

let test_regroup_and_ungroup_guards () =
  let s =
    apply_seq
      [ Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
        Op.Aggregate
          { fn = Expr.Avg; col = Some "Price"; level = 2; as_name = None } ]
  in
  expect_error s
    (Op.Regroup { basis = [ "Year" ]; dir = Grouping.Asc })
    is_dependency;
  expect_error s Op.Ungroup is_dependency;
  (* whole-sheet aggregates (level 1) survive regrouping *)
  let s2 =
    apply_seq
      [ Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
        Op.Aggregate
          { fn = Expr.Avg; col = Some "Price"; level = 1; as_name = None } ]
  in
  ignore (apply_exn s2 (Op.Regroup { basis = [ "Year" ]; dir = Grouping.Asc }));
  ignore (apply_exn s2 Op.Ungroup)

(* ---- ordering ---- *)

let test_ordering_guards () =
  let s = sheet () in
  expect_error s
    (Op.Order { attr = "Nope"; dir = Grouping.Asc; level = 1 })
    is_unknown_column;
  expect_error s
    (Op.Order { attr = "Price"; dir = Grouping.Asc; level = 2 })
    is_grouping;
  let s = apply_exn s (Op.Group { basis = [ "Model" ]; dir = Grouping.Asc }) in
  let s =
    apply_exn s
      (Op.Aggregate
         { fn = Expr.Avg; col = Some "Price"; level = 2; as_name = None })
  in
  (* ordering level-1 groups by a non-dictated attribute destroys the
     Model level, on which Avg_Price depends *)
  expect_error s
    (Op.Order { attr = "Price"; dir = Grouping.Asc; level = 1 })
    is_dependency

(* ---- aggregation ---- *)

let test_aggregation_guards () =
  let s = sheet () in
  expect_error s
    (Op.Aggregate
       { fn = Expr.Avg; col = Some "Nope"; level = 1; as_name = None })
    is_unknown_column;
  expect_error s
    (Op.Aggregate
       { fn = Expr.Sum; col = Some "Model"; level = 1; as_name = None })
    is_type_error;
  expect_error s
    (Op.Aggregate
       { fn = Expr.Avg; col = Some "Price"; level = 2; as_name = None })
    is_grouping;
  expect_error s
    (Op.Aggregate { fn = Expr.Avg; col = None; level = 1; as_name = None })
    is_invalid;
  (* min/max on strings are fine *)
  ignore
    (apply_exn s
       (Op.Aggregate
          { fn = Expr.Min; col = Some "Model"; level = 1; as_name = None }))

let test_aggregate_names () =
  Alcotest.(check string) "avg name" "Avg_Price"
    (Engine.aggregate_default_name Expr.Avg (Some "Price"));
  Alcotest.(check string) "count-star name" "Count"
    (Engine.aggregate_default_name Expr.Count_star None);
  (* name collisions get numeric suffixes *)
  let s =
    apply_seq
      [ Op.Aggregate
          { fn = Expr.Avg; col = Some "Price"; level = 1; as_name = None };
        Op.Aggregate
          { fn = Expr.Avg; col = Some "Price"; level = 1; as_name = None } ]
  in
  let names = Schema.names (Spreadsheet.full_schema s) in
  Alcotest.(check bool) "both columns exist" true
    (List.mem "Avg_Price" names && List.mem "Avg_Price_2" names)

(* ---- formula ---- *)

let test_formula_guards () =
  let s = sheet () in
  expect_error s
    (Op.Formula { name = None; expr = parse "avg(Price)" })
    is_invalid;
  expect_error s
    (Op.Formula { name = None; expr = parse "Nope + 1" })
    is_type_error;
  (* auto-generated names *)
  let s2 = apply_exn s (Op.Formula { name = None; expr = parse "Price * 2" }) in
  Alcotest.(check bool) "auto name F1" true
    (Schema.mem (Spreadsheet.full_schema s2) "F1")

(* ---- rename ---- *)

let test_rename_guards () =
  let s = sheet () in
  expect_error s
    (Op.Rename { old_name = "Nope"; new_name = "X" })
    is_unknown_column;
  expect_error s
    (Op.Rename { old_name = "Price"; new_name = "Model" })
    is_invalid;
  (* renaming onto itself is a no-op, not an error *)
  ignore (apply_exn s (Op.Rename { old_name = "Price"; new_name = "Price" }))

(* ---- binary operators ---- *)

let test_binary_guards () =
  let s = sheet () in
  (* no store at all *)
  expect_error s (Op.Union "other") is_invalid;
  let store = Store.create () in
  expect_error ~store s (Op.Union "other") is_no_such_sheet;
  (* incompatible schemas *)
  let other =
    Spreadsheet.of_relation ~name:"other"
      (Relation.make
         (Schema.of_list [ ("x", Value.TInt) ])
         [ Row.of_list [ Value.Int 1 ] ])
  in
  Store.save store ~name:"other" other;
  expect_error ~store s (Op.Union "other") is_incompatible;
  expect_error ~store s (Op.Diff "other") is_incompatible;
  (* product with it is fine *)
  (match Engine.apply ~store s (Op.Product "other") with
  | Ok s2 ->
      Alcotest.(check int) "9 x 1 rows" 9
        (Relation.cardinality (Materialize.full s2))
  | Error e -> Alcotest.fail (Errors.to_string e));
  (* bad join condition *)
  expect_error ~store s
    (Op.Join { stored = "other"; cond = parse "Model = x" })
    is_type_error

let test_binary_hidden_dependency_guard () =
  let store = Store.create () in
  Store.save store ~name:"snapshot" (sheet ());
  (* grouping uses Model, then Model is hidden: binary ops must refuse *)
  let s =
    apply_seq
      [ Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
        Op.Project "Model" ]
  in
  expect_error ~store s (Op.Union "snapshot") is_dependency;
  (* whereas hiding an unrelated column only narrows the operand *)
  let s2 = apply_seq [ Op.Project "Mileage" ] in
  match Engine.apply ~store s2 (Op.Diff "snapshot") with
  | Ok _ -> Alcotest.fail "diff of 5-col vs 6-col sheets must be refused"
  | Error e ->
      Alcotest.(check bool) "incompatible after projection" true
        (is_incompatible e)

let test_point_of_noncommutativity_semantics () =
  let store = Store.create () in
  Store.save store ~name:"all" (sheet ());
  let s =
    apply_seq
      [ Op.Select (parse "Model = 'Jetta'");
        Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
        Op.Aggregate
          { fn = Expr.Count_star; col = None; level = 2;
            as_name = Some "n" } ]
  in
  match Engine.apply ~store s (Op.Union "all") with
  | Error e -> Alcotest.fail (Errors.to_string e)
  | Ok s2 ->
      (* selections baked in; grouping and the aggregate survive and
         recompute over the union *)
      Alcotest.(check int) "no modifiable selections" 0
        (List.length s2.Spreadsheet.state.Query_state.selections);
      Alcotest.(check int) "6 + 9 rows" 15
        (Relation.cardinality (Materialize.full s2));
      let rel = Materialize.full s2 in
      let n_of_jetta =
        List.filter_map
          (fun row ->
            let get c = Row.get row (Schema.index_exn (Relation.schema rel) c) in
            if Value.equal (get "Model") (Value.String "Jetta") then
              Some (get "n")
            else None)
          (Relation.rows rel)
      in
      Alcotest.(check bool) "aggregate recomputed over union: 12 Jettas"
        true
        (List.for_all (Value.equal (Value.Int 12)) n_of_jetta)

(* ---- modification guards ---- *)

let test_modification_guards () =
  let s = sheet () in
  (match Engine.remove_selection s 99 with
  | Error (Errors.Invalid_op _) -> ()
  | _ -> Alcotest.fail "expected invalid-op for missing selection");
  (match Engine.remove_computed s "Price" with
  | Error (Errors.Unknown_column _) -> ()
  | _ -> Alcotest.fail "base columns are not computed");
  let s =
    apply_seq
      [ Op.Aggregate
          { fn = Expr.Avg; col = Some "Price"; level = 1; as_name = None };
        Op.Formula { name = Some "f"; expr = parse "Avg_Price + 1" } ]
  in
  (match Engine.remove_computed s "Avg_Price" with
  | Error (Errors.Dependency_error _) -> ()
  | _ -> Alcotest.fail "dependent formula must block removal");
  (* remove the dependent first, then the aggregate *)
  match Engine.remove_computed s "f" with
  | Error e -> Alcotest.fail (Errors.to_string e)
  | Ok s -> (
      match Engine.remove_computed s "Avg_Price" with
      | Error e -> Alcotest.fail (Errors.to_string e)
      | Ok s ->
          Alcotest.(check int) "no computed left" 0
            (List.length s.Spreadsheet.state.Query_state.computed))

let test_ordering_column_removal_guard () =
  let s =
    apply_seq
      [ Op.Aggregate
          { fn = Expr.Avg; col = Some "Price"; level = 1; as_name = None };
        Op.Order { attr = "Avg_Price"; dir = Grouping.Desc; level = 1 } ]
  in
  match Engine.remove_computed s "Avg_Price" with
  | Error (Errors.Dependency_error _) -> ()
  | _ -> Alcotest.fail "ordering must block removal of its column"

let () =
  Alcotest.run "sheet_engine"
    [ ( "guards",
        [ Alcotest.test_case "selection" `Quick test_selection_guards;
          Alcotest.test_case "projection" `Quick test_projection_guards;
          Alcotest.test_case "grouping" `Quick test_grouping_guards;
          Alcotest.test_case "regroup/ungroup" `Quick
            test_regroup_and_ungroup_guards;
          Alcotest.test_case "ordering" `Quick test_ordering_guards;
          Alcotest.test_case "aggregation" `Quick test_aggregation_guards;
          Alcotest.test_case "aggregate names" `Quick test_aggregate_names;
          Alcotest.test_case "formula" `Quick test_formula_guards;
          Alcotest.test_case "rename" `Quick test_rename_guards ] );
      ( "binary",
        [ Alcotest.test_case "store/compat guards" `Quick test_binary_guards;
          Alcotest.test_case "hidden dependency guard" `Quick
            test_binary_hidden_dependency_guard;
          Alcotest.test_case "non-commutativity semantics" `Quick
            test_point_of_noncommutativity_semantics ] );
      ( "modification",
        [ Alcotest.test_case "guards" `Quick test_modification_guards;
          Alcotest.test_case "ordering blocks removal" `Quick
            test_ordering_column_removal_guard ] ) ]
