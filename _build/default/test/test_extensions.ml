(* Tests for the extension features beyond the paper's prototype:
   CASE expressions, COUNT(DISTINCT), durable sheets (Persist), and
   the memoized materialization. *)

open Sheet_rel
open Sheet_core

let parse = Expr_parse.parse_string_exn

let session () = Session.create ~name:"cars" Sample_cars.relation

let run_script s script =
  match Script.run_silent s script with
  | Ok s -> s
  | Error msg -> Alcotest.failf "script failed: %s" msg

(* ---- CASE ---- *)

let test_case_parse_print () =
  let e =
    parse
      "CASE WHEN Price < 15000 THEN 'cheap' WHEN Price < 17000 THEN 'ok' \
       ELSE 'pricey' END"
  in
  let e2 = parse (Expr.to_string e) in
  Alcotest.(check bool) "roundtrip" true (Expr.equal e e2);
  (match e with
  | Expr.Case (branches, Some _) ->
      Alcotest.(check int) "two WHEN branches" 2 (List.length branches)
  | _ -> Alcotest.fail "not a CASE")

let test_case_eval () =
  let eval price =
    Expr_eval.eval
      ~lookup:(fun name ->
        if name = "Price" then Value.Int price else raise Not_found)
      (parse
         "CASE WHEN Price < 15000 THEN 'cheap' WHEN Price < 17000 THEN \
          'ok' ELSE 'pricey' END")
  in
  Alcotest.(check bool) "first branch" true
    (Value.equal (eval 14000) (Value.String "cheap"));
  Alcotest.(check bool) "second branch" true
    (Value.equal (eval 16000) (Value.String "ok"));
  Alcotest.(check bool) "else branch" true
    (Value.equal (eval 20000) (Value.String "pricey"));
  (* no ELSE: falls through to NULL *)
  let e = parse "CASE WHEN FALSE THEN 1 END" in
  Alcotest.(check bool) "no match is null" true
    (Value.is_null (Expr_eval.eval ~lookup:(fun _ -> raise Not_found) e))

let test_case_typecheck () =
  let schema = Sample_cars.schema in
  let ok e = Result.is_ok (Expr_check.check schema (parse e)) in
  Alcotest.(check bool) "well-typed case" true
    (ok "CASE WHEN Price < 15000 THEN 1 ELSE 0 END");
  Alcotest.(check bool) "branch type clash refused" false
    (ok "CASE WHEN Price < 15000 THEN 1 ELSE 'x' END");
  Alcotest.(check bool) "non-boolean condition refused" false
    (ok "CASE WHEN Price THEN 1 ELSE 0 END")

let test_case_in_formula () =
  (* the TPC-H Q12 pattern: CASE inside an aggregated expression *)
  let s =
    run_script (session ())
      {|formula urgent = CASE WHEN Condition = 'Excellent' THEN 1 ELSE 0 END
agg sum urgent as n_excellent|}
  in
  let rel = Session.materialized s in
  let v = List.hd (Relation.column_values rel "n_excellent") in
  Alcotest.(check bool) "4 excellent cars" true (Value.equal v (Value.Int 4))

let test_case_in_sql () =
  let catalog =
    Sheet_sql.Catalog.of_list [ ("cars", Sample_cars.relation) ]
  in
  let rel =
    Sheet_sql.Sql_executor.run_exn catalog
      "SELECT Model, sum(CASE WHEN Condition = 'Excellent' THEN 1 ELSE 0 \
       END) AS nice FROM cars GROUP BY Model ORDER BY Model"
  in
  (match Relation.rows rel with
  | [ civic; jetta ] ->
      Alcotest.(check bool) "civic 0" true
        (Value.equal (Row.get civic 1) (Value.Int 0));
      Alcotest.(check bool) "jetta 4" true
        (Value.equal (Row.get jetta 1) (Value.Int 4))
  | _ -> Alcotest.fail "expected 2 groups");
  (* and through the Theorem-1 translation *)
  let q =
    Sheet_sql.Sql_parser.parse_exn
      "SELECT Model, sum(CASE WHEN Condition = 'Excellent' THEN 1 ELSE 0 \
       END) AS nice FROM cars GROUP BY Model"
  in
  match
    ( Sheet_sql.Sql_executor.run catalog q,
      Sheet_sql.Sql_to_sheet.execute catalog q )
  with
  | Ok a, Ok b ->
      Alcotest.(check bool) "translation matches" true
        (Relation.equal_unordered_data (Relation.normalize a)
           (Relation.normalize b))
  | Error m, _ | _, Error m -> Alcotest.failf "failed: %s" m

(* ---- scalar functions ---- *)

let test_scalar_functions_eval () =
  let eval e =
    Expr_eval.eval ~lookup:(fun _ -> raise Not_found) (parse e)
  in
  Alcotest.(check bool) "year" true
    (Value.equal (eval "year(DATE '2009-03-29')") (Value.Int 2009));
  Alcotest.(check bool) "month" true
    (Value.equal (eval "month(DATE '2009-03-29')") (Value.Int 3));
  Alcotest.(check bool) "day" true
    (Value.equal (eval "day(DATE '2009-03-29')") (Value.Int 29));
  Alcotest.(check bool) "abs int" true
    (Value.equal (eval "abs(-4)") (Value.Int 4));
  Alcotest.(check bool) "abs float" true
    (Value.equal (eval "abs(-4.5)") (Value.Float 4.5));
  Alcotest.(check bool) "round" true
    (Value.equal (eval "round(2.6)") (Value.Int 3));
  Alcotest.(check bool) "lower" true
    (Value.equal (eval "lower('JeTTa')") (Value.String "jetta"));
  Alcotest.(check bool) "upper" true
    (Value.equal (eval "upper('jetta')") (Value.String "JETTA"));
  Alcotest.(check bool) "length" true
    (Value.equal (eval "length('jetta')") (Value.Int 5));
  Alcotest.(check bool) "null propagates" true
    (Value.is_null (eval "year(NULL)"));
  (* parse/print roundtrip *)
  let e = parse "year(l_shipdate) + 1" in
  Alcotest.(check bool) "roundtrip" true
    (Expr.equal e (parse (Expr.to_string e)))

let test_scalar_functions_typecheck () =
  let schema =
    Schema.of_list
      [ ("d", Value.TDate); ("n", Value.TInt); ("s", Value.TString) ]
  in
  let ok e = Result.is_ok (Expr_check.check schema (parse e)) in
  Alcotest.(check bool) "year of date" true (ok "year(d) = 2009");
  Alcotest.(check bool) "year of int refused" false (ok "year(n) = 2009");
  Alcotest.(check bool) "abs keeps type" true (ok "abs(n) + 1 = 2");
  Alcotest.(check bool) "upper of int refused" false (ok "upper(n) = 'X'");
  Alcotest.(check bool) "length gives int" true (ok "length(s) > 2")

let test_scalar_functions_in_sheet_and_sql () =
  (* group TPC-H-style by ship year via a formula *)
  let dated =
    Relation.make
      (Schema.of_list [ ("id", Value.TInt); ("when_", Value.TDate) ])
      [ Row.of_list [ Value.Int 1; Value.of_ymd 1994 5 1 ];
        Row.of_list [ Value.Int 2; Value.of_ymd 1994 7 2 ];
        Row.of_list [ Value.Int 3; Value.of_ymd 1995 1 3 ] ]
  in
  let s = Session.create ~name:"dated" dated in
  let s = run_script s
      "formula yr = year(when_)
group yr asc
agg count as n" in
  let rel = Session.materialized s in
  let pairs =
    List.map
      (fun row ->
        ( Row.get row (Schema.index_exn (Relation.schema rel) "yr"),
          Row.get row (Schema.index_exn (Relation.schema rel) "n") ))
      (Relation.rows rel)
  in
  Alcotest.(check bool) "1994 has 2" true
    (List.mem (Value.Int 1994, Value.Int 2) pairs);
  (* same through SQL + Theorem 1 *)
  let catalog = Sheet_sql.Catalog.of_list [ ("dated", dated) ] in
  let q =
    Sheet_sql.Sql_parser.parse_exn
      "SELECT year(when_) AS yr, count(*) AS n FROM dated GROUP BY when_"
  in
  ignore q;
  let rel2 =
    Sheet_sql.Sql_executor.run_exn catalog
      "SELECT id, year(when_) AS yr FROM dated ORDER BY id"
  in
  Alcotest.(check bool) "sql scalar fn" true
    (Value.equal
       (Row.get (List.hd (Relation.rows rel2)) 1)
       (Value.Int 1994))

(* ---- COUNT(DISTINCT) ---- *)

let test_count_distinct_eval () =
  let vs =
    [ Value.Int 1; Value.Int 2; Value.Int 1; Value.Null; Value.Int 2 ]
  in
  Alcotest.(check bool) "distinct count" true
    (Value.equal
       (Expr_eval.apply_agg Expr.Count_distinct vs)
       (Value.Int 2))

let test_count_distinct_sheet_and_sql () =
  let s = run_script (session ()) "agg count_distinct Model as models" in
  let v =
    List.hd (Relation.column_values (Session.materialized s) "models")
  in
  Alcotest.(check bool) "2 models" true (Value.equal v (Value.Int 2));
  let catalog =
    Sheet_sql.Catalog.of_list [ ("cars", Sample_cars.relation) ]
  in
  let rel =
    Sheet_sql.Sql_executor.run_exn catalog
      "SELECT count(DISTINCT Year) AS years FROM cars"
  in
  Alcotest.(check bool) "2 years" true
    (Value.equal (Row.get (List.hd (Relation.rows rel)) 0) (Value.Int 2))

(* ---- Persist ---- *)

let full_state_session () =
  run_script (session ())
    {|select Year >= 2005
select Model = 'Jetta'
group Model asc
group Year asc
order Price desc
agg avg Price level 3
formula diff = Price - Mileage
hide Mileage
dedup|}

let test_persist_roundtrip () =
  let s = full_state_session () in
  let sheet = Session.current s in
  let text = Persist.to_string sheet in
  let sheet2 = Persist.of_string text in
  Alcotest.(check bool) "same materialization" true
    (Relation.equal (Materialize.full sheet) (Materialize.full sheet2));
  Alcotest.(check (list string))
    "hidden preserved" [ "Mileage" ]
    (Spreadsheet.hidden_columns sheet2);
  Alcotest.(check int) "selections preserved" 2
    (List.length sheet2.Spreadsheet.state.Query_state.selections);
  Alcotest.(check int) "computed preserved" 2
    (List.length sheet2.Spreadsheet.state.Query_state.computed);
  Alcotest.(check bool) "dedup preserved" true
    sheet2.Spreadsheet.state.Query_state.dedup;
  Alcotest.(check bool) "grouping preserved" true
    (Grouping.equal (Spreadsheet.grouping sheet)
       (Spreadsheet.grouping sheet2))

let test_persist_state_still_modifiable () =
  let s = full_state_session () in
  let sheet2 = Persist.of_string (Persist.to_string (Session.current s)) in
  (* replace the Year selection on the reloaded sheet *)
  let sel =
    List.hd (Query_state.selections_on sheet2.Spreadsheet.state "Year")
  in
  match
    Engine.replace_selection sheet2 sel.Query_state.id
      (parse "Year = 2006")
  with
  | Error e -> Alcotest.fail (Errors.to_string e)
  | Ok modified ->
      let years =
        Relation.column_values (Materialize.visible modified) "Year"
      in
      Alcotest.(check bool) "only 2006 remains" true
        (years <> [] && List.for_all (Value.equal (Value.Int 2006)) years)

let test_persist_file_io () =
  let s = full_state_session () in
  let path = Filename.temp_file "musiq" ".sheet" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Persist.save (Session.current s) ~path;
      let sheet2 = Persist.load ~path in
      Alcotest.(check bool) "file roundtrip" true
        (Relation.equal
           (Materialize.full (Session.current s))
           (Materialize.full sheet2)))

let test_export_import_script () =
  let path = Filename.temp_file "musiq" ".sheet" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let s = run_script (session ()) "select Model = 'Civic'" in
      let s = run_script s (Printf.sprintf "export %s" path) in
      let s = run_script s "undo" in
      let s = run_script s (Printf.sprintf "import %s" path) in
      Alcotest.(check int) "imported sheet has the selection" 3
        (Relation.cardinality (Session.materialized s)))

let test_persist_group_order_override () =
  let s =
    run_script (session ())
      {|group Model asc
agg avg Price level 2 as ap
order-groups ap desc|}
  in
  let sheet = Session.current s in
  let sheet2 = Persist.of_string (Persist.to_string sheet) in
  Alcotest.(check bool) "override survives the roundtrip" true
    (Grouping.equal (Spreadsheet.grouping sheet)
       (Spreadsheet.grouping sheet2));
  Alcotest.(check bool) "same presentation order" true
    (Relation.equal (Materialize.full sheet) (Materialize.full sheet2))

let test_persist_rejects_garbage () =
  Alcotest.(check bool) "not a sheet file" true
    (try
       ignore (Persist.of_string "hello world");
       false
     with Persist.Persist_error _ -> true);
  Alcotest.(check bool) "truncated file" true
    (try
       ignore (Persist.of_string "musiq-sheet v1\nname x\n");
       false
     with Persist.Persist_error _ -> true)

(* ---- cached materialization ---- *)

let test_cached_materialization () =
  let s = full_state_session () in
  let sheet = Session.current s in
  let a = Materialize.full_cached sheet in
  let b = Materialize.full_cached sheet in
  Alcotest.(check bool) "physically shared" true (a == b);
  Alcotest.(check bool) "equal to uncached" true
    (Relation.equal a (Materialize.full sheet));
  (* a new operator application gets a fresh uid, hence a fresh entry *)
  match Engine.apply sheet (Op.Select (parse "Price > 0")) with
  | Error e -> Alcotest.fail (Errors.to_string e)
  | Ok sheet2 ->
      Alcotest.(check bool) "new sheet, distinct cache entry" true
        (Materialize.full_cached sheet2 != a)

let () =
  Alcotest.run "sheet_extensions"
    [ ( "case",
        [ Alcotest.test_case "parse/print" `Quick test_case_parse_print;
          Alcotest.test_case "eval" `Quick test_case_eval;
          Alcotest.test_case "typecheck" `Quick test_case_typecheck;
          Alcotest.test_case "in formulas" `Quick test_case_in_formula;
          Alcotest.test_case "in SQL + translation" `Quick test_case_in_sql
        ] );
      ( "scalar-functions",
        [ Alcotest.test_case "eval" `Quick test_scalar_functions_eval;
          Alcotest.test_case "typecheck" `Quick
            test_scalar_functions_typecheck;
          Alcotest.test_case "sheet and SQL" `Quick
            test_scalar_functions_in_sheet_and_sql ] );
      ( "count-distinct",
        [ Alcotest.test_case "apply_agg" `Quick test_count_distinct_eval;
          Alcotest.test_case "sheet and SQL" `Quick
            test_count_distinct_sheet_and_sql ] );
      ( "persist",
        [ Alcotest.test_case "roundtrip" `Quick test_persist_roundtrip;
          Alcotest.test_case "state still modifiable" `Quick
            test_persist_state_still_modifiable;
          Alcotest.test_case "file io" `Quick test_persist_file_io;
          Alcotest.test_case "export/import script" `Quick
            test_export_import_script;
          Alcotest.test_case "rejects garbage" `Quick
            test_persist_rejects_garbage;
          Alcotest.test_case "group-order override" `Quick
            test_persist_group_order_override ] );
      ( "cache",
        [ Alcotest.test_case "memoized materialization" `Quick
            test_cached_materialization ] ) ]
