(* Tests of the incremental materialization engine: every derivation
   must coincide with a full stratified replay, and the non-derivable
   cases must decline. *)

open Sheet_rel
open Sheet_core

let parse = Expr_parse.parse_string_exn

let cars () = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation

let apply_exn s op =
  match Engine.apply s op with
  | Ok s -> s
  | Error e -> Alcotest.failf "refused: %s" (Errors.to_string e)

let apply_seq sheet ops = List.fold_left apply_exn sheet ops

let check_derivation ?(expect_derived = true) parent op =
  let child = apply_exn parent op in
  (match Incremental.derive ~parent ~op ~child with
  | Some derived ->
      Alcotest.(check bool)
        (Printf.sprintf "derivation expected for %s" (Op.describe op))
        true expect_derived;
      Alcotest.(check bool)
        (Printf.sprintf "derived == full for %s" (Op.describe op))
        true
        (Relation.equal derived (Materialize.full child))
  | None ->
      Alcotest.(check bool)
        (Printf.sprintf "fallback expected for %s" (Op.describe op))
        false expect_derived);
  child

let test_projection_derivation () =
  let s = cars () in
  let s = check_derivation s (Op.Project "Mileage") in
  let s = check_derivation s (Op.Unproject "Mileage") in
  (* under DE, projection changes the dedup key: no derivation *)
  let s = apply_exn s Op.Dedup in
  ignore (check_derivation ~expect_derived:false s (Op.Project "Mileage"))

let test_organization_derivation () =
  let s = cars () in
  let s =
    check_derivation s (Op.Group { basis = [ "Model" ]; dir = Grouping.Desc })
  in
  let s =
    check_derivation s (Op.Order { attr = "Price"; dir = Grouping.Asc; level = 2 })
  in
  let s =
    check_derivation s (Op.Group { basis = [ "Year" ]; dir = Grouping.Asc })
  in
  (* grouping after an aggregate at an existing level: content stable *)
  let s =
    apply_exn s
      (Op.Aggregate
         { fn = Expr.Avg; col = Some "Price"; level = 2; as_name = None })
  in
  ignore
    (check_derivation s
       (Op.Group { basis = [ "Condition" ]; dir = Grouping.Asc }));
  (* ungroup is derivable when no aggregate depends on the grouping *)
  let flat =
    apply_exn (cars ())
      (Op.Group { basis = [ "Model" ]; dir = Grouping.Asc })
  in
  ignore (check_derivation flat Op.Ungroup)

let test_order_groups_derivation () =
  let s =
    apply_seq (cars ())
      [ Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
        Op.Aggregate
          { fn = Expr.Avg; col = Some "Price"; level = 2;
            as_name = Some "ap" } ]
  in
  ignore
    (check_derivation s (Op.Order_groups { attr = "ap"; dir = Grouping.Desc }))

let test_selection_derivation () =
  (* no computed columns: every selection is at the highest stratum *)
  let s = cars () in
  let s = check_derivation s (Op.Select (parse "Year = 2005")) in
  (* with an aggregate, a base-column selection must NOT be derived
     (the aggregate would need recomputation) *)
  let s =
    apply_exn s
      (Op.Aggregate
         { fn = Expr.Avg; col = Some "Price"; level = 1; as_name = None })
  in
  let s =
    check_derivation ~expect_derived:false s
      (Op.Select (parse "Price < 16000"))
  in
  (* whereas a HAVING-style selection on the aggregate is derivable *)
  ignore (check_derivation s (Op.Select (parse "Avg_Price > 14000")))

let test_computed_derivation () =
  let s =
    apply_seq (cars ())
      [ Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
        Op.Select (parse "Year >= 2005") ]
  in
  let s =
    check_derivation s
      (Op.Aggregate
         { fn = Expr.Avg; col = Some "Price"; level = 2;
           as_name = Some "ap" })
  in
  let s =
    check_derivation s
      (Op.Formula { name = Some "delta"; expr = parse "Price - ap" })
  in
  ignore
    (check_derivation s
       (Op.Aggregate
          { fn = Expr.Count_star; col = None; level = 1;
            as_name = Some "n" }))

let test_dedup_derivation () =
  let dup =
    Relation.make Sample_cars.schema
      (Relation.rows Sample_cars.relation
      @ Relation.rows Sample_cars.relation)
  in
  let s = Spreadsheet.of_relation ~name:"dup" dup in
  ignore (check_derivation s Op.Dedup);
  (* hidden column present: key mismatch risk, no derivation *)
  let s2 = apply_exn s (Op.Project "ID") in
  ignore (check_derivation ~expect_derived:false s2 Op.Dedup);
  (* computed column present: no derivation *)
  let s3 =
    apply_exn s
      (Op.Aggregate
         { fn = Expr.Count_star; col = None; level = 1; as_name = None })
  in
  ignore (check_derivation ~expect_derived:false s3 Op.Dedup)

let test_rename_not_derived () =
  ignore
    (check_derivation ~expect_derived:false (cars ())
       (Op.Rename { old_name = "Price"; new_name = "Cost" }))

let test_session_consistency () =
  (* a long session mixing derivable and non-derivable operators: the
     cached materializations must always equal a fresh replay *)
  let session = Session.create ~name:"cars" Sample_cars.relation in
  let script =
    [ "group Model desc"; "select Year >= 2005"; "agg avg Price level 2";
      "select Price <= Avg_Price"; "order Price asc"; "hide Condition";
      "formula m = Mileage / 1000"; "rename m kmiles"; "dedup";
      "show Condition"; "order kmiles desc" ]
  in
  ignore
    (List.fold_left
       (fun session line ->
         match Script.run_line session line with
         | Ok { Script.session; _ } ->
             let cached = Session.materialized session in
             let fresh =
               Sheet_rel.Rel_algebra.project
                 (Spreadsheet.visible_columns (Session.current session))
                 (Materialize.full (Session.current session))
             in
             Alcotest.(check bool)
               (Printf.sprintf "cache consistent after %S" line)
               true (Relation.equal cached fresh);
             session
         | Error msg -> Alcotest.failf "%S failed: %s" line msg)
       session script)

let () =
  Alcotest.run "sheet_incremental"
    [ ( "derivations",
        [ Alcotest.test_case "projection" `Quick test_projection_derivation;
          Alcotest.test_case "group/order" `Quick
            test_organization_derivation;
          Alcotest.test_case "selection strata" `Quick
            test_selection_derivation;
          Alcotest.test_case "order-groups resort" `Quick
            test_order_groups_derivation;
          Alcotest.test_case "computed columns" `Quick
            test_computed_derivation;
          Alcotest.test_case "dedup" `Quick test_dedup_derivation;
          Alcotest.test_case "rename declines" `Quick
            test_rename_not_derived ] );
      ( "integration",
        [ Alcotest.test_case "session cache consistency" `Quick
            test_session_consistency ] ) ]
