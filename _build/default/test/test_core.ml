(* Unit tests for the spreadsheet-algebra core, anchored on the
   paper's running example (Tables I-V). *)

open Sheet_rel
open Sheet_core

let v_int i = Value.Int i
let v_str s = Value.String s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let session () = Session.create ~name:"cars" Sample_cars.relation

let run_script s script =
  match Script.run_silent s script with
  | Ok s -> s
  | Error msg -> Alcotest.failf "script failed: %s" msg

let expect_error s script =
  match Script.run_silent s script with
  | Ok _ -> Alcotest.failf "script unexpectedly succeeded: %s" script
  | Error msg -> msg

let ids s =
  Relation.column_values (Session.materialized s) "ID"
  |> List.map (function Value.Int i -> i | _ -> assert false)

let check_ids what expected s = Alcotest.(check (list int)) what expected (ids s)

(* ---- Table I: base spreadsheet ---- *)

let test_base_spreadsheet () =
  let s = session () in
  let rel = Session.materialized s in
  Alcotest.(check int) "9 rows" 9 (Relation.cardinality rel);
  Alcotest.(check (list string))
    "columns inherited"
    [ "ID"; "Model"; "Price"; "Year"; "Mileage"; "Condition" ]
    (Schema.names (Relation.schema rel));
  let g = Spreadsheet.grouping (Session.current s) in
  Alcotest.(check int) "grouped by NULL only" 1 (Grouping.num_levels g)

(* ---- Example 1 / Table II: grouping ---- *)

(* Set up the paper's starting point for the grouping examples: cars
   grouped by Model (DESC) then Year (ASC), ordered by Price (ASC)
   inside the finest groups. *)
let example_setup = {|
group Model desc
group Year asc
order Price asc
|}

let test_table2_grouping () =
  let s = run_script (session ()) example_setup in
  (* τ_{Year,Model,Condition},ASC creates a fourth level with relative
     basis Condition. *)
  let s = run_script s "group Year, Model, Condition asc" in
  check_ids "Table II row order"
    [ 872; 901; 304; 723; 725; 423; 132; 879; 322 ]
    s;
  let g = Spreadsheet.grouping (Session.current s) in
  Alcotest.(check int) "four levels incl. root" 4 (Grouping.num_levels g);
  Alcotest.(check (list string))
    "finest basis" [ "Model"; "Year"; "Condition" ]
    (Grouping.finest_basis g);
  (* price ordering survives as leaf order (o_L = L - basis) *)
  Alcotest.(check bool)
    "Price still leaf order" true
    (List.mem_assoc "Price" g.Grouping.leaf_order)

(* ---- Example 2: ordering ---- *)

let test_ordering_level3 () =
  let s = run_script (session ()) example_setup in
  (* Def. 4 case 3: ordering by a new attribute at the finest level
     appends it as a secondary key after Price ("we further order cars
     by Mileage"), so with no Price ties the row order is unchanged. *)
  let s = run_script s "order Mileage asc level 3" in
  let g = Spreadsheet.grouping (Session.current s) in
  Alcotest.(check int) "grouping intact" 3 (Grouping.num_levels g);
  Alcotest.(check (list (pair string bool)))
    "leaf order is Price then Mileage"
    [ ("Price", true); ("Mileage", true) ]
    (List.map
       (fun (a, d) -> (a, d = Grouping.Asc))
       g.Grouping.leaf_order);
  check_ids "row order unchanged (no Price ties)"
    [ 304; 872; 901; 423; 723; 725; 132; 879; 322 ]
    s;
  (* re-ordering an attribute already in the leaf order flips it in
     place instead of appending *)
  let s = run_script s "order Price desc level 3" in
  check_ids "Price flipped to descending"
    [ 901; 872; 304; 725; 723; 423; 132; 322; 879 ]
    s

let test_ordering_destroys_grouping () =
  let s = run_script (session ()) example_setup in
  (* ordering level-2 groups by Mileage destroys the Year level *)
  let s = run_script s "order Mileage asc level 2" in
  let g = Spreadsheet.grouping (Session.current s) in
  Alcotest.(check int) "Year level destroyed" 2 (Grouping.num_levels g);
  Alcotest.(check (list string)) "only Model" [ "Model" ]
    (Grouping.finest_basis g)

let test_ordering_destroy_refused_with_aggregates () =
  let s = run_script (session ()) example_setup in
  let s = run_script s "agg avg Price level 3" in
  let msg = expect_error s "order Mileage asc level 2" in
  Alcotest.(check bool) "mentions aggregates" true
    (contains msg "Avg_Price")

(* ---- Table III: aggregation ---- *)

let test_table3_aggregation () =
  let s = run_script (session ()) example_setup in
  (* Paper presentation: Model implicitly ascending in Table III *)
  let s = run_script s "order Model asc level 1" in
  let s = run_script s "agg avg Price level 3" in
  let rel = Session.materialized s in
  Alcotest.(check bool) "Avg_Price column present" true
    (Schema.mem (Relation.schema rel) "Avg_Price");
  let rows =
    List.map
      (fun row ->
        let get name =
          Row.get row (Schema.index_exn (Relation.schema rel) name)
        in
        (get "ID", get "Avg_Price"))
      (Relation.rows rel)
  in
  let avg_of id =
    match List.assoc (v_int id) rows with
    | Value.Float f -> f
    | v -> Alcotest.failf "Avg_Price not a float: %s" (Value.to_string v)
  in
  Alcotest.(check (float 0.5)) "Jetta 2005 avg" 15166.67 (avg_of 304);
  Alcotest.(check (float 0.5)) "Jetta 2006 avg" 17500.0 (avg_of 423);
  Alcotest.(check (float 0.5)) "Civic 2005 avg" 13500.0 (avg_of 132);
  Alcotest.(check (float 0.5)) "Civic 2006 avg" 15500.0 (avg_of 879)

let test_aggregation_whole_sheet () =
  let s = run_script (session ()) "agg count" in
  let rel = Session.materialized s in
  let counts = Relation.column_values rel "Count" in
  List.iter
    (fun v -> Alcotest.(check bool) "count=9 everywhere" true
        (Value.equal v (v_int 9)))
    counts

(* ---- selection then compare with aggregate (Fig. 2 scenario) ---- *)

let test_select_below_average () =
  let s = run_script (session ()) {|
group Model asc
group Year asc
agg avg Price level 3
select Price <= Avg_Price
|} in
  check_ids "cars at or below their group average"
    [ 132; 879; 304; 872; 423; 723 ]
    s

(* ---- Tables IV & V: query modification ---- *)

let modification_setup = {|
select Year = 2005
select Model = 'Jetta'
select Mileage < 80000
group Condition asc
order Price asc
|}

let test_table4_before_modification () =
  let s = run_script (session ()) modification_setup in
  check_ids "Table IV" [ 872; 901; 304 ] s

let test_table5_after_modification () =
  let s = run_script (session ()) modification_setup in
  (* Find the selection on Year and replace 2005 by 2006. *)
  let sels = Session.selections_on s "Year" in
  let id = (List.hd sels).Query_state.id in
  let s =
    run_script s (Printf.sprintf "replace %d Year = 2006" id)
  in
  check_ids "Table V" [ 723; 725; 423 ] s

let test_remove_selection () =
  let s = run_script (session ()) modification_setup in
  let sels = Session.selections_on s "Model" in
  let id = (List.hd sels).Query_state.id in
  let s = run_script s (Printf.sprintf "drop-select %d" id) in
  (* without the Model predicate: all 2005 cars under 80k miles *)
  check_ids "Model restriction dropped" [ 872; 901; 304 ] s
  [@@warning "-26"]

let test_remove_selection_all_models () =
  let s = run_script (session ()) modification_setup in
  let id_model = (List.hd (Session.selections_on s "Model")).Query_state.id in
  let id_mileage =
    (List.hd (Session.selections_on s "Mileage")).Query_state.id
  in
  let s = run_script s (Printf.sprintf "drop-select %d" id_model) in
  let s = run_script s (Printf.sprintf "drop-select %d" id_mileage) in
  Alcotest.(check int) "all 2005 cars" 4
    (Relation.cardinality (Session.materialized s))

(* ---- commutativity smoke checks (Theorem 2 is exercised in depth by
   the property suite) ---- *)

let test_selection_aggregation_commute () =
  let s1 = run_script (session ()) {|
group Model asc
agg avg Price level 2
select Year = 2005
|} in
  let s2 = run_script (session ()) {|
group Model asc
select Year = 2005
agg avg Price level 2
|} in
  Alcotest.(check bool) "same result" true
    (Relation.equal (Session.materialized s1) (Session.materialized s2))

let test_projection_retains_grouping () =
  let s = run_script (session ()) example_setup in
  let s = run_script s "hide Mileage" in
  let rel = Session.materialized s in
  Alcotest.(check bool) "Mileage hidden" false
    (Schema.mem (Relation.schema rel) "Mileage");
  check_ids "order unchanged"
    [ 304; 872; 901; 423; 723; 725; 132; 879; 322 ]
    s;
  let s = run_script s "show Mileage" in
  Alcotest.(check bool) "Mileage restored" true
    (Schema.mem (Relation.schema (Session.materialized s)) "Mileage")

(* ---- order-groups extension ---- *)

let test_order_groups_by_aggregate () =
  let s = run_script (session ()) {|
group Model asc
agg avg Price level 2 as ap
order-groups ap desc
order Price asc|} in
  (* Jetta's average (16333) beats Civic's (14833): Jettas first, and
     groups stay contiguous *)
  check_ids "groups ordered by their average, rows by price"
    [ 304; 872; 901; 423; 723; 725; 132; 879; 322 ]
    s;
  (* ascending flips the groups *)
  let s = run_script s "order-groups ap asc" in
  check_ids "flipped"
    [ 132; 879; 322; 304; 872; 901; 423; 723; 725 ]
    s;
  (* the aggregate column is now load-bearing: removal refused *)
  let msg = expect_error s "drop-column ap" in
  Alcotest.(check bool) "removal blocked by group ordering" true
    (contains msg "ordered")

let test_order_groups_guards () =
  let s = run_script (session ()) "agg avg Price as whole_sheet" in
  let msg = expect_error s "order-groups whole_sheet desc" in
  Alcotest.(check bool) "whole-sheet aggregate refused" true
    (contains msg "sibling");
  let msg = expect_error s "order-groups Price desc" in
  Alcotest.(check bool) "base column refused" true
    (contains msg "aggregation column");
  let msg = expect_error s "order-groups Nope desc" in
  Alcotest.(check bool) "unknown column" true (contains msg "Nope")

(* ---- undo/redo ---- *)

let test_undo_redo () =
  let s = run_script (session ()) "select Year = 2005" in
  Alcotest.(check int) "filtered" 4
    (Relation.cardinality (Session.materialized s));
  let s = Option.get (Session.undo s) in
  Alcotest.(check int) "undone" 9
    (Relation.cardinality (Session.materialized s));
  let s = Option.get (Session.redo s) in
  Alcotest.(check int) "redone" 4
    (Relation.cardinality (Session.materialized s))

(* ---- binary operators ---- *)

let test_union_and_diff () =
  let s = run_script (session ()) {|
save all
select Model = 'Jetta'
save jettas
open all
except jettas
|} in
  check_ids "difference leaves Civics" [ 132; 879; 322 ] s;
  let s = run_script s "union jettas" in
  Alcotest.(check int) "union restores all 9" 9
    (Relation.cardinality (Session.materialized s))

let test_join () =
  let s = session () in
  (* a tiny lookup table of model -> maker *)
  let makers =
    Relation.make
      (Schema.of_list [ ("MModel", Value.TString); ("Maker", Value.TString) ])
      [ Row.of_list [ v_str "Jetta"; v_str "VW" ];
        Row.of_list [ v_str "Civic"; v_str "Honda" ] ]
  in
  Store.save (Session.store s) ~name:"makers"
    (Spreadsheet.of_relation ~name:"makers" makers);
  let s = run_script s "join makers on Model = MModel" in
  let rel = Session.materialized s in
  Alcotest.(check int) "9 joined rows" 9 (Relation.cardinality rel);
  Alcotest.(check bool) "Maker column" true
    (Schema.mem (Relation.schema rel) "Maker")

let test_point_of_noncommutativity () =
  let s = run_script (session ()) {|
save all
select Model = 'Jetta'
union all
|} in
  (* after the union, earlier selections are baked in: no selections
     remain modifiable *)
  Alcotest.(check int) "selection history cleared" 0
    (List.length (Session.selections_on s "Model"));
  Alcotest.(check int) "6 + 9 rows" 15
    (Relation.cardinality (Session.materialized s))

(* ---- computed column auto-update across DE ---- *)

let test_dedup_recomputes_aggregates () =
  let dup_rel =
    Relation.make Sample_cars.schema
      (Relation.rows Sample_cars.relation
      @ Relation.rows Sample_cars.relation)
  in
  let s = Session.create ~name:"cars2" dup_rel in
  let s = run_script s "agg count" in
  let counts = Relation.column_values (Session.materialized s) "Count" in
  Alcotest.(check bool) "18 before dedup" true
    (List.for_all (Value.equal (v_int 18)) counts);
  let s = run_script s "dedup" in
  let counts = Relation.column_values (Session.materialized s) "Count" in
  Alcotest.(check bool) "9 after dedup" true
    (List.for_all (Value.equal (v_int 9)) counts)

let test_rename_rewrites_state () =
  let s = run_script (session ()) {|
select Price < 16000
group Model asc
rename Price AskingPrice
|} in
  let rel = Session.materialized s in
  Alcotest.(check bool) "new name present" true
    (Schema.mem (Relation.schema rel) "AskingPrice");
  Alcotest.(check int) "selection still applies" 4
    (Relation.cardinality rel);
  let sels = Session.selections_on s "AskingPrice" in
  Alcotest.(check int) "selection re-associated" 1 (List.length sels)

let test_remove_computed_guard () =
  let s = run_script (session ()) {|
agg avg Price
select Price < Avg_Price
|} in
  let msg = expect_error s "drop-column Avg_Price" in
  Alcotest.(check bool) "refusal mentions dependency" true
    (contains msg "depended on");
  let s = run_script s "drop-select 1" in
  let s = run_script s "drop-column Avg_Price" in
  Alcotest.(check bool) "column gone" false
    (Schema.mem (Relation.schema (Session.materialized s)) "Avg_Price")

let () =
  Alcotest.run "sheet_core"
    [ ( "paper-example",
        [ Alcotest.test_case "table1 base spreadsheet" `Quick
            test_base_spreadsheet;
          Alcotest.test_case "table2 grouping" `Quick test_table2_grouping;
          Alcotest.test_case "example2 ordering level 3" `Quick
            test_ordering_level3;
          Alcotest.test_case "ordering destroys grouping" `Quick
            test_ordering_destroys_grouping;
          Alcotest.test_case "destroy refused with aggregates" `Quick
            test_ordering_destroy_refused_with_aggregates;
          Alcotest.test_case "table3 aggregation" `Quick
            test_table3_aggregation;
          Alcotest.test_case "whole-sheet aggregation" `Quick
            test_aggregation_whole_sheet;
          Alcotest.test_case "select below group average" `Quick
            test_select_below_average ] );
      ( "query-modification",
        [ Alcotest.test_case "table4 before" `Quick
            test_table4_before_modification;
          Alcotest.test_case "table5 after" `Quick
            test_table5_after_modification;
          Alcotest.test_case "remove selection" `Quick test_remove_selection;
          Alcotest.test_case "remove several selections" `Quick
            test_remove_selection_all_models ] );
      ( "algebra-properties",
        [ Alcotest.test_case "selection/aggregation commute" `Quick
            test_selection_aggregation_commute;
          Alcotest.test_case "projection retains grouping" `Quick
            test_projection_retains_grouping ] );
      ( "order-groups",
        [ Alcotest.test_case "order groups by aggregate" `Quick
            test_order_groups_by_aggregate;
          Alcotest.test_case "guards" `Quick test_order_groups_guards ] );
      ( "session",
        [ Alcotest.test_case "undo/redo" `Quick test_undo_redo;
          Alcotest.test_case "union and difference" `Quick test_union_and_diff;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "point of non-commutativity" `Quick
            test_point_of_noncommutativity;
          Alcotest.test_case "dedup recomputes aggregates" `Quick
            test_dedup_recomputes_aggregates;
          Alcotest.test_case "rename rewrites state" `Quick
            test_rename_rewrites_state;
          Alcotest.test_case "remove computed guard" `Quick
            test_remove_computed_guard ] ) ]
