(* Tests of the inverse translation (sheet state -> single-block SQL):
   hand-built states, refusal reasons, and round trips
   SQL -> (Theorem 1) -> sheet -> (inverse) -> SQL. *)

open Sheet_rel
open Sheet_core
open Sheet_sql

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let catalog () = Catalog.of_list [ ("cars", Sample_cars.relation) ]

let session_with script =
  let s = Session.create ~name:"cars" Sample_cars.relation in
  match Script.run_silent s script with
  | Ok s -> s
  | Error msg -> Alcotest.failf "script failed: %s" msg

let compile_current s =
  Sql_of_sheet.to_string ~table:"cars" (Session.current s)

let test_plain_state () =
  let s = session_with "select Year >= 2005\nhide Mileage\norder Price desc" in
  match compile_current s with
  | Error m -> Alcotest.fail m
  | Ok sql ->
      Alcotest.(check bool) "where" true (contains sql "WHERE Year >= 2005");
      Alcotest.(check bool) "order" true (contains sql "ORDER BY Price DESC");
      Alcotest.(check bool) "projection" false (contains sql "Mileage");
      (* and it runs, matching the sheet *)
      let rel = Sql_executor.run_exn (catalog ()) sql in
      Alcotest.(check bool) "same data" true
        (Relation.equal_unordered_data
           (Relation.normalize rel)
           (Relation.normalize (Session.materialized s)))

let test_grouped_state () =
  let s =
    session_with
      {|select Condition = 'Good'
group Model asc
agg avg Price level 2 as ap
agg count as n
hide ID
hide Price
hide Year
hide Mileage
hide Condition
select n >= 1|}
  in
  match compile_current s with
  | Error m -> Alcotest.fail m
  | Ok sql ->
      Alcotest.(check bool) "group by" true (contains sql "GROUP BY Model");
      Alcotest.(check bool) "having" true
        (contains sql "HAVING count(*) >= 1");
      Alcotest.(check bool) "aggregate alias" true
        (contains sql "avg(Price) AS ap");
      let rel = Sql_executor.run_exn (catalog ()) sql in
      (* the sheet repeats group values per row; collapse to compare *)
      let collapsed = Rel_algebra.distinct (Session.materialized s) in
      Alcotest.(check bool) "same groups" true
        (Relation.equal_unordered_data
           (Relation.normalize rel)
           (Relation.normalize collapsed))

let test_formula_inlining () =
  let s =
    session_with
      {|formula rev = Price - Mileage / 10
select rev > 8000
hide rev|}
  in
  match compile_current s with
  | Error m -> Alcotest.fail m
  | Ok sql ->
      (* the formula column does not exist in SQL; its definition is
         inlined into the predicate *)
      Alcotest.(check bool) "inlined" true
        (contains sql "WHERE Price - Mileage / 10 > 8000");
      let rel = Sql_executor.run_exn (catalog ()) sql in
      Alcotest.(check int) "rows agree"
        (Relation.cardinality (Session.materialized s))
        (Relation.cardinality rel)

let test_distinct_state () =
  let s = session_with "hide ID\nhide Price\nhide Year\nhide Mileage\ndedup" in
  match compile_current s with
  | Error m -> Alcotest.fail m
  | Ok sql ->
      Alcotest.(check bool) "distinct" true (contains sql "SELECT DISTINCT");
      let rel = Sql_executor.run_exn (catalog ()) sql in
      Alcotest.(check int) "3 distinct model-condition pairs" 3
        (Relation.cardinality rel)

let test_order_groups_emitted () =
  let s =
    session_with
      {|group Model asc
agg sum Price level 2 as total
order-groups total desc
hide ID
hide Price
hide Year
hide Mileage
hide Condition|}
  in
  match compile_current s with
  | Error m -> Alcotest.fail m
  | Ok sql ->
      Alcotest.(check bool) "ORDER BY the aggregate" true
        (contains sql "ORDER BY sum(Price) DESC");
      let rel = Sql_executor.run_exn (catalog ()) sql in
      (match Relation.rows rel with
      | first :: _ ->
          Alcotest.(check bool) "jetta first (sum 98000 > 44500)" true
            (Sheet_rel.Value.equal (Sheet_rel.Row.get first 0)
               (Sheet_rel.Value.String "Jetta"))
      | [] -> Alcotest.fail "no rows")

let test_not_single_block_reasons () =
  (* the paper's introduction example: compare each row against its
     group's average — needs a nested query *)
  let s =
    session_with
      {|group Model asc
agg avg Price level 2
select Price <= Avg_Price
hide ID
hide Price
hide Year
hide Mileage
hide Condition|}
  in
  (match compile_current s with
  | Error reason ->
      Alcotest.(check bool) "mentions nested query" true
        (contains reason "nested")
  | Ok sql -> Alcotest.failf "unexpectedly compiled: %s" sql);
  (* visible non-grouped base column *)
  let s2 = session_with "group Model asc\nagg count as n" in
  (match compile_current s2 with
  | Error reason ->
      Alcotest.(check bool) "mentions collapse/projection" true
        (contains reason "project")
  | Ok sql -> Alcotest.failf "unexpectedly compiled: %s" sql);
  (* intermediate-level aggregate *)
  let s3 =
    session_with
      {|group Model asc
group Year asc
agg avg Price level 2 as ap
hide ID
hide Price
hide Mileage
hide Condition|}
  in
  match compile_current s3 with
  | Error reason ->
      Alcotest.(check bool) "mentions level" true (contains reason "level")
  | Ok sql -> Alcotest.failf "unexpectedly compiled: %s" sql

let round_trip sql_text =
  let cat = catalog () in
  let q = Sql_parser.parse_exn sql_text in
  let plan =
    match Sql_to_sheet.translate cat q with
    | Ok p -> p
    | Error m -> Alcotest.failf "translate failed: %s" m
  in
  let session =
    match Sql_to_sheet.session_of_plan cat plan with
    | Ok s -> s
    | Error m -> Alcotest.failf "plan failed: %s" m
  in
  match
    Sql_of_sheet.compile ~table:"cars" (Session.current session)
  with
  | Error (`Not_single_block m) ->
      Alcotest.failf "%s: not single block: %s" sql_text m
  | Ok q2 ->
      let expected = Sql_executor.run_exn cat sql_text in
      let actual =
        match Sql_executor.run cat q2 with
        | Ok rel -> rel
        | Error m -> Alcotest.failf "recompiled query failed: %s" m
      in
      (* align the recompiled output to the original's columns via the
         plan's output mapping (sheet column names) *)
      let projected =
        Rel_algebra.project plan.Sql_to_sheet.output actual
      in
      Alcotest.(check bool)
        (Printf.sprintf "round trip: %s" sql_text)
        true
        (List.sort compare
           (List.map Row.to_list (Relation.rows projected))
        = List.sort compare
            (List.map Row.to_list (Relation.rows expected)))

let test_round_trips () =
  List.iter round_trip
    [ "SELECT Model, Price FROM cars WHERE Year = 2005";
      "SELECT Model, avg(Price) AS ap FROM cars GROUP BY Model";
      "SELECT Model, Year, count(*) AS n FROM cars GROUP BY Model, Year \
       HAVING count(*) >= 2";
      "SELECT Condition, min(Price) AS lo, max(Price) AS hi FROM cars \
       WHERE Year >= 2005 GROUP BY Condition" ]

let () =
  Alcotest.run "sheet_sql_inverse"
    [ ( "compile",
        [ Alcotest.test_case "plain state" `Quick test_plain_state;
          Alcotest.test_case "grouped state" `Quick test_grouped_state;
          Alcotest.test_case "formula inlining" `Quick test_formula_inlining;
          Alcotest.test_case "distinct" `Quick test_distinct_state;
          Alcotest.test_case "refusal reasons" `Quick
            test_not_single_block_reasons;
          Alcotest.test_case "order-groups to ORDER BY" `Quick
            test_order_groups_emitted ] );
      ( "round-trip",
        [ Alcotest.test_case "sql -> sheet -> sql" `Quick test_round_trips ]
      ) ]
