(* Tests of the plan compiler and optimizer. *)

open Sheet_rel
open Sheet_core

let parse = Expr_parse.parse_string_exn

let cars () = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation

let apply_exn s op =
  match Engine.apply s op with
  | Ok s -> s
  | Error e -> Alcotest.failf "refused: %s" (Errors.to_string e)

let apply_seq sheet ops = List.fold_left apply_exn sheet ops

let rich_sheet () =
  apply_seq (cars ())
    [ Op.Select (parse "Year >= 2005");
      Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
      Op.Aggregate
        { fn = Expr.Avg; col = Some "Price"; level = 2; as_name = Some "ap" };
      Op.Select (parse "Price <= ap");
      Op.Formula { name = Some "d"; expr = parse "ap - Price" };
      Op.Select (parse "d >= 0");
      Op.Project "Mileage";
      Op.Order { attr = "Price"; dir = Grouping.Asc; level = 2 } ]

let rec count pred plan =
  let self = if pred plan then 1 else 0 in
  match plan with
  | Plan.Scan _ -> self
  | Plan.Project (_, c)
  | Plan.Filter (_, c)
  | Plan.Distinct_on (_, c)
  | Plan.Extend_formula (_, c)
  | Plan.Extend_aggregate (_, c)
  | Plan.Sort (_, c) ->
      self + count pred c

let is_filter = function Plan.Filter _ -> true | _ -> false
let is_project = function Plan.Project _ -> true | _ -> false

let test_compile_equals_materialize () =
  let sheet = rich_sheet () in
  let plan = Plan.of_sheet sheet in
  Alcotest.(check bool) "plan == interpreter" true
    (Relation.equal (Plan.execute plan) (Materialize.full sheet))

let test_optimize_preserves () =
  let sheet = rich_sheet () in
  let plan = Plan.of_sheet sheet in
  let optimized = Plan.optimize plan in
  Alcotest.(check bool) "optimized == raw" true
    (Relation.equal
       (Relation.normalize
          (Rel_algebra.project (Plan.output_columns plan)
             (Plan.execute optimized)))
       (Relation.normalize (Plan.execute plan)))

let test_optimize_for_visible () =
  let sheet = rich_sheet () in
  let visible = Spreadsheet.visible_columns sheet in
  let plan = Plan.of_sheet sheet in
  let optimized = Plan.optimize ~keep:visible plan in
  Alcotest.(check bool) "visible projection preserved" true
    (Relation.equal
       (Rel_algebra.project visible (Plan.execute optimized))
       (Materialize.visible sheet));
  (* the hidden, unused Mileage column is pruned at the scan *)
  Alcotest.(check bool) "scan projected" true
    (count is_project optimized >= 1)

let test_filter_fusion () =
  let sheet =
    apply_seq (cars ())
      [ Op.Select (parse "Year >= 2005");
        Op.Select (parse "Price < 17000");
        Op.Select (parse "Model = 'Jetta'") ]
  in
  let plan = Plan.of_sheet sheet in
  Alcotest.(check int) "three filters raw" 3 (count is_filter plan);
  let optimized = Plan.optimize plan in
  Alcotest.(check int) "one fused filter" 1 (count is_filter optimized);
  Alcotest.(check bool) "same result" true
    (Relation.equal
       (Relation.normalize (Plan.execute optimized))
       (Relation.normalize (Plan.execute plan)))

let test_pushdown_blocked_by_aggregate () =
  (* HAVING-style filter must stay above the aggregate extension *)
  let sheet =
    apply_seq (cars ())
      [ Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
        Op.Aggregate
          { fn = Expr.Count_star; col = None; level = 2;
            as_name = Some "n" };
        Op.Select (parse "n >= 4") ]
  in
  let optimized = Plan.optimize (Plan.of_sheet sheet) in
  let rec having_above_agg = function
    | Plan.Filter (pred, child) ->
        if List.mem "n" (Expr.columns pred) then
          (* the aggregate extension must appear below us *)
          count (function Plan.Extend_aggregate _ -> true | _ -> false)
            child
          = 1
        else having_above_agg child
    | Plan.Scan _ -> false
    | Plan.Project (_, c)
    | Plan.Distinct_on (_, c)
    | Plan.Extend_formula (_, c)
    | Plan.Extend_aggregate (_, c)
    | Plan.Sort (_, c) ->
        having_above_agg c
  in
  Alcotest.(check bool) "having stays above" true
    (having_above_agg optimized);
  Alcotest.(check bool) "result preserved" true
    (Relation.equal
       (Relation.normalize (Plan.execute optimized))
       (Relation.normalize (Materialize.full sheet)))

let test_pushdown_through_formula () =
  let sheet =
    apply_seq (cars ())
      [ Op.Formula { name = Some "f"; expr = parse "Price * 2" };
        Op.Select (parse "Year >= 2005") ]
  in
  let optimized = Plan.optimize (Plan.of_sheet sheet) in
  (* the Year filter reads no formula output, so it slides below *)
  let rec filter_below_formula = function
    | Plan.Extend_formula (_, Plan.Filter _) -> true
    | Plan.Scan _ -> false
    | Plan.Project (_, c)
    | Plan.Filter (_, c)
    | Plan.Distinct_on (_, c)
    | Plan.Extend_formula (_, c)
    | Plan.Extend_aggregate (_, c)
    | Plan.Sort (_, c) ->
        filter_below_formula c
  in
  Alcotest.(check bool) "filter pushed below formula" true
    (filter_below_formula optimized)

let test_prune_drops_unused_extension () =
  let sheet =
    apply_seq (cars ())
      [ Op.Formula { name = Some "unused"; expr = parse "Price * 3" };
        Op.Select (parse "Year >= 2005") ]
  in
  let plan = Plan.of_sheet sheet in
  let keep = [ "ID"; "Model" ] in
  let optimized = Plan.optimize ~keep plan in
  Alcotest.(check int) "unused formula dropped" 0
    (count (function Plan.Extend_formula _ -> true | _ -> false) optimized);
  Alcotest.(check bool) "kept columns agree" true
    (Relation.equal
       (Relation.normalize (Rel_algebra.project keep (Plan.execute optimized)))
       (Relation.normalize (Rel_algebra.project keep (Plan.execute plan))))

let test_explain_output () =
  let text = Plan.explain (Plan.of_sheet (rich_sheet ())) in
  let has needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub text i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "sort line" true (has "Sort [Model asc");
  Alcotest.(check bool) "aggregate line" true
    (has "ExtendAgg ap = avg(Price) over [Model]");
  Alcotest.(check bool) "scan line" true (has "Scan (9 rows")

let test_dedup_distinct_on () =
  let dup =
    Relation.make Sample_cars.schema
      (Relation.rows Sample_cars.relation
      @ Relation.rows Sample_cars.relation)
  in
  let sheet =
    apply_seq
      (Spreadsheet.of_relation ~name:"dup" dup)
      [ Op.Project "ID"; Op.Dedup ]
  in
  let plan = Plan.of_sheet sheet in
  Alcotest.(check bool) "plan == interpreter under partial dedup keys" true
    (Relation.equal (Plan.execute plan) (Materialize.full sheet))

let () =
  Alcotest.run "sheet_plan"
    [ ( "compile",
        [ Alcotest.test_case "equals interpreter" `Quick
            test_compile_equals_materialize;
          Alcotest.test_case "dedup keys" `Quick test_dedup_distinct_on;
          Alcotest.test_case "explain" `Quick test_explain_output ] );
      ( "optimize",
        [ Alcotest.test_case "preserves semantics" `Quick
            test_optimize_preserves;
          Alcotest.test_case "for visible columns" `Quick
            test_optimize_for_visible;
          Alcotest.test_case "filter fusion" `Quick test_filter_fusion;
          Alcotest.test_case "pushdown blocked by aggregate" `Quick
            test_pushdown_blocked_by_aggregate;
          Alcotest.test_case "pushdown through formula" `Quick
            test_pushdown_through_formula;
          Alcotest.test_case "prunes unused extensions" `Quick
            test_prune_drops_unused_extension ] ) ]
