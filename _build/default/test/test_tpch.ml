(* TPC-H substrate tests: generator invariants, views, and the
   task-level equivalence between the SheetMusiq scripts and their SQL
   statements (the "correct result" ground truth of the study). *)

open Sheet_rel
open Sheet_tpch

let catalog =
  lazy
    (Tpch_views.install
       (Tpch_gen.generate { Tpch_gen.sf = 0.001; seed = 42 }))

let cat () = Lazy.force catalog

let find name = Sheet_sql.Catalog.find_exn (cat ()) name

let test_cardinalities () =
  let counts = Tpch_gen.row_counts (cat ()) in
  let get name = List.assoc name counts in
  Alcotest.(check int) "5 regions" 5 (get "region");
  Alcotest.(check int) "25 nations" 25 (get "nation");
  Alcotest.(check bool) "suppliers floor" true (get "supplier" >= 10);
  Alcotest.(check int) "4 partsupp per part" (4 * get "part")
    (get "partsupp");
  Alcotest.(check bool) "lineitems 1-7 per order" true
    (get "lineitem" >= get "orders" && get "lineitem" <= 7 * get "orders")

let test_determinism () =
  let c1 = Tpch_gen.generate { Tpch_gen.sf = 0.001; seed = 7 } in
  let c2 = Tpch_gen.generate { Tpch_gen.sf = 0.001; seed = 7 } in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " identical across runs")
        true
        (Relation.equal
           (Sheet_sql.Catalog.find_exn c1 name)
           (Sheet_sql.Catalog.find_exn c2 name)))
    (Sheet_sql.Catalog.names c1)

let test_referential_integrity () =
  let keys rel col =
    List.fold_left
      (fun acc v -> match v with Value.Int i -> i :: acc | _ -> acc)
      []
      (Relation.column_values rel col)
  in
  let custkeys = keys (find "customer") "c_custkey" in
  let orders_cust = keys (find "orders") "o_custkey" in
  Alcotest.(check bool) "orders reference customers" true
    (List.for_all (fun k -> List.mem k custkeys) orders_cust);
  let partkeys = keys (find "part") "p_partkey" in
  let line_parts = keys (find "lineitem") "l_partkey" in
  Alcotest.(check bool) "lineitems reference parts" true
    (List.for_all (fun k -> List.mem k partkeys) line_parts)

let test_value_sanity () =
  let li = find "lineitem" in
  List.iter
    (fun row ->
      let get name = Row.get row (Schema.index_exn (Relation.schema li) name) in
      (match get "l_discount" with
      | Value.Float d ->
          Alcotest.(check bool) "discount range" true (d >= 0.0 && d <= 0.1)
      | _ -> Alcotest.fail "discount not float");
      (match (get "l_shipdate", get "l_receiptdate") with
      | Value.Date s, Value.Date r ->
          Alcotest.(check bool) "receipt after ship" true (r > s)
      | _ -> Alcotest.fail "dates missing"))
    (Relation.rows li)

let test_views () =
  let vlo = find "v_lineitem_orders" in
  Alcotest.(check int) "view joins every lineitem"
    (Relation.cardinality (find "lineitem"))
    (Relation.cardinality vlo);
  Alcotest.(check bool) "has customer column" true
    (Schema.mem (Relation.schema vlo) "c_mktsegment");
  let vlp = find "v_lineitem_parts" in
  Alcotest.(check int) "parts view joins every lineitem"
    (Relation.cardinality (find "lineitem"))
    (Relation.cardinality vlp)

let test_task_nonempty_results () =
  List.iter
    (fun task ->
      match Tpch_tasks.sql_result (cat ()) task with
      | Error msg ->
          Alcotest.failf "task %d SQL failed: %s" task.Tpch_tasks.id msg
      | Ok rel ->
          Alcotest.(check bool)
            (Printf.sprintf "task %d yields rows" task.Tpch_tasks.id)
            true
            (Relation.cardinality rel > 0))
    Tpch_tasks.all

let test_task_equivalence () =
  List.iter
    (fun task ->
      match Tpch_tasks.verify (cat ()) task with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    Tpch_tasks.all

let test_extension_tasks () =
  (* the Q12/Q14 CASE patterns, beyond the paper's prototype *)
  List.iter
    (fun task ->
      (match Tpch_tasks.sql_result (cat ()) task with
      | Ok rel ->
          Alcotest.(check bool)
            (Printf.sprintf "extension task %d yields rows"
               task.Tpch_tasks.id)
            true
            (Sheet_rel.Relation.cardinality rel > 0)
      | Error msg -> Alcotest.fail msg);
      match Tpch_tasks.verify (cat ()) task with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    Tpch_tasks.extensions

let () =
  Alcotest.run "sheet_tpch"
    [ ( "generator",
        [ Alcotest.test_case "cardinalities" `Quick test_cardinalities;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "referential integrity" `Quick
            test_referential_integrity;
          Alcotest.test_case "value sanity" `Quick test_value_sanity ] );
      ("views", [ Alcotest.test_case "joins" `Quick test_views ]);
      ( "tasks",
        [ Alcotest.test_case "non-empty results" `Quick
            test_task_nonempty_results;
          Alcotest.test_case "sheet == sql for all 10 tasks" `Quick
            test_task_equivalence;
          Alcotest.test_case "extension tasks (CASE)" `Quick
            test_extension_tasks ] ) ]
