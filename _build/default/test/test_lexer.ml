(* Tests of the shared tokenizer and parse cursor. *)


open Sheet_rel.Lexer

let tokens text = Array.to_list (tokenize text)

let test_basic_tokens () =
  Alcotest.(check bool) "idents and ops" true
    (tokens "a <= 2.5 AND b_2 <> 'x''y'"
    = [ IDENT "a"; LE; FLOAT 2.5; IDENT "AND"; IDENT "b_2"; NE;
        STRING "x'y"; EOF ]);
  Alcotest.(check bool) "punctuation" true
    (tokens "( ) , . ; * + - / % ||"
    = [ LPAREN; RPAREN; COMMA; DOT; SEMI; STAR; PLUS; MINUS; SLASH;
        PERCENT; CONCAT_BARS; EOF ]);
  Alcotest.(check bool) "comparison family" true
    (tokens "< <= > >= = <> !="
    = [ LT; LE; GT; GE; EQ; NE; NE; EOF ])

let test_numbers () =
  Alcotest.(check bool) "int" true (tokens "42" = [ INT 42; EOF ]);
  Alcotest.(check bool) "float" true (tokens "4.25" = [ FLOAT 4.25; EOF ]);
  Alcotest.(check bool) "exponent" true
    (tokens "1e3" = [ FLOAT 1000.0; EOF ]);
  Alcotest.(check bool) "exponent with sign" true
    (tokens "2.5e-2" = [ FLOAT 0.025; EOF ]);
  (* '1e' is an int followed by an identifier, not a malformed float *)
  Alcotest.(check bool) "non-exponent suffix" true
    (tokens "1e" = [ INT 1; IDENT "e"; EOF ]);
  (* a dot not followed by a digit is the DOT token *)
  Alcotest.(check bool) "trailing dot" true
    (tokens "1.x" = [ INT 1; DOT; IDENT "x"; EOF ])

let test_strings_and_comments () =
  Alcotest.(check bool) "empty string" true (tokens "''" = [ STRING ""; EOF ]);
  Alcotest.(check bool) "doubled quote" true
    (tokens "'it''s'" = [ STRING "it's"; EOF ]);
  Alcotest.(check bool) "line comment" true
    (tokens "a -- the rest\nb" = [ IDENT "a"; IDENT "b"; EOF ]);
  Alcotest.(check bool) "minus is not a comment" true
    (tokens "a - b" = [ IDENT "a"; MINUS; IDENT "b"; EOF ]);
  Alcotest.(check bool) "unterminated string raises" true
    (try
       ignore (tokenize "'oops");
       false
     with Lex_error _ -> true);
  Alcotest.(check bool) "unexpected char raises" true
    (try
       ignore (tokenize "a ? b");
       false
     with Lex_error _ -> true)

let test_cursor () =
  let c = Cursor.make (tokenize "SELECT a FROM t") in
  Alcotest.(check bool) "at keyword" true (Cursor.at_keyword c "SELECT");
  Alcotest.(check bool) "keyword consumes" true (Cursor.keyword c "SELECT");
  Alcotest.(check string) "ident" "a" (Cursor.ident c);
  Alcotest.(check bool) "case-insensitive keyword" true
    (Cursor.keyword c "FROM");
  Alcotest.(check bool) "peek2 is EOF" true (Cursor.peek2 c = EOF);
  Alcotest.(check string) "last ident" "t" (Cursor.ident c);
  Alcotest.(check bool) "at end" true (Cursor.at_end c);
  (* advancing past the end stays on EOF *)
  Cursor.advance c;
  Alcotest.(check bool) "still EOF" true (Cursor.peek c = EOF);
  Alcotest.(check bool) "errors carry context" true
    (try
       Cursor.error c "boom"
     with Cursor.Parse_error msg ->
       String.length msg > 0)

let test_token_to_string_roundtrip () =
  (* token_to_string of simple tokens re-lexes to the same token *)
  List.iter
    (fun t ->
      let text = token_to_string t in
      match Array.to_list (tokenize text) with
      | [ t'; EOF ] ->
          Alcotest.(check bool) ("roundtrip " ^ text) true (t = t')
      | _ -> Alcotest.failf "token %s did not re-lex" text)
    [ IDENT "abc"; INT 7; STRING "hi"; LPAREN; RPAREN; COMMA; STAR;
      PLUS; MINUS; SLASH; PERCENT; CONCAT_BARS; EQ; NE; LT; LE; GT; GE ]

let () =
  Alcotest.run "sheet_lexer"
    [ ( "lexer",
        [ Alcotest.test_case "basic tokens" `Quick test_basic_tokens;
          Alcotest.test_case "numbers" `Quick test_numbers;
          Alcotest.test_case "strings/comments" `Quick
            test_strings_and_comments;
          Alcotest.test_case "cursor" `Quick test_cursor;
          Alcotest.test_case "token_to_string roundtrip" `Quick
            test_token_to_string_roundtrip ] ) ]
