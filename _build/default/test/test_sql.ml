(* Unit tests for the SQL subset and the Theorem-1 translation. *)

open Sheet_rel
open Sheet_sql

let catalog () =
  let makers =
    Relation.make
      (Schema.of_list [ ("MModel", Value.TString); ("Maker", Value.TString) ])
      [ Row.of_list [ Value.String "Jetta"; Value.String "VW" ];
        Row.of_list [ Value.String "Civic"; Value.String "Honda" ] ]
  in
  Catalog.of_list
    [ ("cars", Sample_cars.relation); ("makers", makers) ]

let run sql = Sql_executor.run_exn (catalog ()) sql

let check_card what expected rel =
  Alcotest.(check int) what expected (Relation.cardinality rel)

let col rel name = Relation.column_values rel name

(* ---- parser ---- *)

let test_parse_full_query () =
  let q =
    Sql_parser.parse_exn
      "SELECT Model, avg(Price) AS ap FROM cars WHERE Year >= 2005 GROUP \
       BY Model HAVING count(*) > 2 ORDER BY Model DESC;"
  in
  Alcotest.(check int) "2 select items" 2 (List.length q.Sql_ast.select);
  Alcotest.(check bool) "where present" true (Option.is_some q.Sql_ast.where);
  Alcotest.(check (list string)) "group by" [ "Model" ] q.Sql_ast.group_by;
  Alcotest.(check bool) "having present" true
    (Option.is_some q.Sql_ast.having);
  Alcotest.(check int) "1 order item" 1 (List.length q.Sql_ast.order_by);
  (* print back and reparse *)
  let q2 = Sql_parser.parse_exn (Sql_ast.to_string q) in
  Alcotest.(check bool) "roundtrip" true (q = q2)

let test_parse_errors () =
  let bad s =
    match Sql_parser.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "missing FROM" true (bad "SELECT a");
  Alcotest.(check bool) "garbage" true (bad "SELEKT a FROM t");
  Alcotest.(check bool) "trailing junk" true (bad "SELECT a FROM t t2 t3")

(* ---- analyzer ---- *)

let test_analyzer_rules () =
  let bad sql =
    match Sql_executor.run_string (catalog ()) sql with
    | Ok _ -> false
    | Error _ -> true
  in
  Alcotest.(check bool) "agg in where refused" true
    (bad "SELECT Model FROM cars WHERE avg(Price) > 1");
  Alcotest.(check bool) "non-grouped col refused" true
    (bad "SELECT Price FROM cars GROUP BY Model");
  Alcotest.(check bool) "unknown relation" true
    (bad "SELECT a FROM nope");
  Alcotest.(check bool) "unknown column" true
    (bad "SELECT nope FROM cars");
  Alcotest.(check bool) "having without grouping refused" true
    (bad "SELECT Model FROM cars HAVING Model = 'Jetta'");
  Alcotest.(check bool) "ambiguous column refused" true
    (bad "SELECT Model FROM cars c1, cars c2")

let test_qualified_names () =
  let rel =
    run
      "SELECT cars.Model, makers.Maker FROM cars, makers WHERE Model = \
       MModel AND Maker = 'VW'"
  in
  check_card "6 VW rows" 6 rel

(* ---- executor ---- *)

let test_simple_select () =
  let rel = run "SELECT Model, Price FROM cars WHERE Year = 2005" in
  check_card "4 cars in 2005" 4 rel;
  Alcotest.(check (list string)) "output columns" [ "Model"; "Price" ]
    (Schema.names (Relation.schema rel))

let test_order_by () =
  let rel = run "SELECT ID FROM cars ORDER BY Price DESC, ID ASC" in
  (match col rel "ID" with
  | Value.Int first :: _ -> Alcotest.(check int) "most expensive" 725 first
  | _ -> Alcotest.fail "no rows")

let test_distinct () =
  let rel = run "SELECT DISTINCT Model FROM cars" in
  check_card "2 models" 2 rel

let test_group_aggregate () =
  let rel =
    run
      "SELECT Model, Year, avg(Price) AS ap, count(*) AS n FROM cars GROUP \
       BY Model, Year ORDER BY Model, Year"
  in
  check_card "4 groups" 4 rel;
  Alcotest.(check (list string)) "columns"
    [ "Model"; "Year"; "ap"; "n" ]
    (Schema.names (Relation.schema rel));
  (match Relation.rows rel with
  | first :: _ ->
      (* Civic, 2005: one car, avg 13500 *)
      Alcotest.(check bool) "civic 2005 avg" true
        (Value.equal (Row.get first 2) (Value.Float 13500.0));
      Alcotest.(check bool) "civic 2005 count" true
        (Value.equal (Row.get first 3) (Value.Int 1))
  | [] -> Alcotest.fail "no rows")

let test_having () =
  let rel =
    run
      "SELECT Model FROM cars GROUP BY Model HAVING avg(Mileage) > 60000"
  in
  check_card "only Civic exceeds 60k avg" 1 rel;
  Alcotest.(check bool) "it is Civic" true
    (Value.equal (List.hd (col rel "Model")) (Value.String "Civic"))

let test_aggregate_without_group_by () =
  let rel = run "SELECT count(*) AS n, min(Price) AS lo FROM cars" in
  check_card "one row" 1 rel;
  let row = List.hd (Relation.rows rel) in
  Alcotest.(check bool) "n=9" true (Value.equal (Row.get row 0) (Value.Int 9));
  Alcotest.(check bool) "lo=13500" true
    (Value.equal (Row.get row 1) (Value.Int 13500))

let test_aggregate_expression () =
  let rel =
    run "SELECT Model, sum(Price * 2) AS s FROM cars GROUP BY Model ORDER \
         BY Model"
  in
  (match Relation.rows rel with
  | civic :: _ ->
      (* Civic prices: 13500+15000+16000 = 44500, doubled 89000 *)
      Alcotest.(check bool) "sum of expression" true
        (Value.equal (Row.get civic 1) (Value.Int 89000))
  | [] -> Alcotest.fail "no rows")

let test_join_query () =
  let rel =
    run
      "SELECT Maker, count(*) AS n FROM cars, makers WHERE Model = MModel \
       GROUP BY Maker ORDER BY Maker"
  in
  check_card "2 makers" 2 rel;
  Alcotest.(check bool) "honda count 3" true
    (Value.equal (Row.get (List.hd (Relation.rows rel)) 1) (Value.Int 3))

(* ---- Theorem 1: translation equivalence ---- *)

let equivalent sql =
  let cat = catalog () in
  let expected = Sql_executor.run_exn cat sql in
  match Sql_to_sheet.execute cat (Sql_parser.parse_exn sql) with
  | Error msg -> Alcotest.failf "translation failed for %s: %s" sql msg
  | Ok actual ->
      Alcotest.(check bool)
        (Printf.sprintf "sheet == sql for: %s" sql)
        true
        (Relation.equal_unordered_data
           (Relation.normalize expected)
           (Relation.normalize actual))

let test_theorem1_plain () =
  equivalent "SELECT Model, Price FROM cars WHERE Year = 2005";
  equivalent "SELECT ID FROM cars WHERE Price < 16000 OR Model = 'Civic'";
  equivalent "SELECT Model, Price + Mileage AS total FROM cars";
  equivalent "SELECT ID, Model FROM cars ORDER BY Price DESC"

let test_theorem1_grouped () =
  equivalent "SELECT Model, avg(Price) AS ap FROM cars GROUP BY Model";
  equivalent
    "SELECT Model, Year, avg(Price) AS ap, count(*) AS n FROM cars GROUP \
     BY Model, Year";
  equivalent
    "SELECT Model FROM cars GROUP BY Model HAVING avg(Mileage) > 60000";
  equivalent
    "SELECT Model, Year, min(Price) AS lo FROM cars WHERE Condition = \
     'Good' GROUP BY Model, Year HAVING count(*) >= 1 ORDER BY Model, Year";
  equivalent "SELECT count(*) AS n FROM cars WHERE Year = 2006";
  equivalent
    "SELECT Model, sum(Price * 2) AS s FROM cars GROUP BY Model"

let test_theorem1_join () =
  equivalent
    "SELECT Maker, count(*) AS n FROM cars, makers WHERE Model = MModel \
     GROUP BY Maker";
  equivalent
    "SELECT Maker, Model, Price FROM cars, makers WHERE Model = MModel \
     AND Price > 15000"

let test_theorem1_ordered_presentation () =
  (* When the ORDER BY list is a prefix of the grouping columns the
     spreadsheet's presentation order must match SQL's exactly. *)
  let sql =
    "SELECT Model, Year, avg(Price) AS ap FROM cars GROUP BY Model, Year \
     ORDER BY Model ASC, Year ASC"
  in
  let cat = catalog () in
  let expected = Sql_executor.run_exn cat sql in
  match Sql_to_sheet.execute cat (Sql_parser.parse_exn sql) with
  | Error msg -> Alcotest.failf "translation failed: %s" msg
  | Ok actual ->
      Alcotest.(check bool) "ordered equality" true
        (Relation.equal_unordered_data expected actual
        && List.equal Row.equal (Relation.rows expected)
             (Relation.rows actual))

let test_theorem1_order_by_aggregate () =
  (* with the order-groups extension, even the presentation order of
     ORDER BY <aggregate> matches SQL *)
  let sql =
    "SELECT Model, sum(Price) AS total FROM cars GROUP BY Model ORDER BY      total DESC"
  in
  let cat = catalog () in
  let expected = Sql_executor.run_exn cat sql in
  match Sql_to_sheet.execute cat (Sql_parser.parse_exn sql) with
  | Error msg -> Alcotest.failf "translation failed: %s" msg
  | Ok actual ->
      Alcotest.(check bool) "ordered equality" true
        (List.equal Row.equal (Relation.rows expected)
           (Relation.rows actual))

let () =
  Alcotest.run "sheet_sql"
    [ ( "parser",
        [ Alcotest.test_case "full query" `Quick test_parse_full_query;
          Alcotest.test_case "errors" `Quick test_parse_errors ] );
      ( "analyzer",
        [ Alcotest.test_case "rules" `Quick test_analyzer_rules;
          Alcotest.test_case "qualified names" `Quick test_qualified_names ]
      );
      ( "executor",
        [ Alcotest.test_case "simple select" `Quick test_simple_select;
          Alcotest.test_case "order by" `Quick test_order_by;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "group/aggregate" `Quick test_group_aggregate;
          Alcotest.test_case "having" `Quick test_having;
          Alcotest.test_case "agg without group by" `Quick
            test_aggregate_without_group_by;
          Alcotest.test_case "aggregate over expression" `Quick
            test_aggregate_expression;
          Alcotest.test_case "join" `Quick test_join_query ] );
      ( "theorem1",
        [ Alcotest.test_case "plain queries" `Quick test_theorem1_plain;
          Alcotest.test_case "grouped queries" `Quick test_theorem1_grouped;
          Alcotest.test_case "joins" `Quick test_theorem1_join;
          Alcotest.test_case "presentation order" `Quick
            test_theorem1_ordered_presentation;
          Alcotest.test_case "order by aggregate (extension)" `Quick
            test_theorem1_order_by_aggregate ] ) ]
