(* Miscellaneous coverage: operator descriptions (the history menu's
   "meaningful names"), error rendering, TPC-H text generation formats,
   and structural printers. *)

open Sheet_rel
open Sheet_core

let parse = Expr_parse.parse_string_exn

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_op_descriptions () =
  let cases =
    [ (Op.Group { basis = [ "Model"; "Year" ]; dir = Grouping.Asc },
       "Group by {Model, Year} ASC");
      (Op.Regroup { basis = [ "Year" ]; dir = Grouping.Desc },
       "Regroup by {Year} DESC");
      (Op.Ungroup, "Remove grouping");
      (Op.Order { attr = "Price"; dir = Grouping.Desc; level = 2 },
       "Order by Price DESC at level 2");
      (Op.Select (parse "Price < 10"), "Select Price < 10");
      (Op.Project "ID", "Hide column ID");
      (Op.Unproject "ID", "Restore column ID");
      (Op.Product "other", "Cartesian product with other");
      (Op.Union "other", "Union with other");
      (Op.Diff "other", "Difference with other");
      (Op.Join { stored = "other"; cond = parse "a = b" },
       "Join with other on a = b");
      ( Op.Aggregate
          { fn = Expr.Avg; col = Some "Price"; level = 3;
            as_name = Some "ap" },
        "Aggregate avg(Price) at level 3 as ap" );
      (Op.Aggregate
         { fn = Expr.Count_star; col = None; level = 1; as_name = None },
       "Aggregate count(*) at level 1");
      (Op.Formula { name = Some "f"; expr = parse "a + 1" },
       "Formula f = a + 1");
      (Op.Dedup, "Eliminate duplicates");
      (Op.Rename { old_name = "a"; new_name = "b" }, "Rename a to b") ]
  in
  List.iter
    (fun (op, expected) ->
      Alcotest.(check string) expected expected (Op.describe op))
    cases

let test_error_messages () =
  let cases =
    [ (Errors.Unknown_column "x", "x");
      (Errors.Type_error "boom", "type error");
      (Errors.Grouping_error "boom", "grouping");
      (Errors.Dependency_error "boom", "dependency");
      (Errors.Incompatible_schemas "boom", "incompatible");
      (Errors.No_such_sheet "s", "no stored spreadsheet");
      (Errors.Invalid_op "boom", "invalid") ]
  in
  List.iter
    (fun (e, fragment) ->
      Alcotest.(check bool) fragment true
        (contains
           (String.lowercase_ascii (Errors.to_string e))
           fragment))
    cases

let test_computed_describe () =
  let agg =
    { Computed.name = "Avg_Price"; ty = Value.TFloat;
      spec =
        Computed.Aggregate
          { fn = Expr.Avg; arg = Some (Expr.Col "Price"); level = 3 } }
  in
  Alcotest.(check string) "aggregate description"
    "Avg_Price = avg(Price) per group level 3"
    (Computed.describe agg);
  let fc =
    { Computed.name = "rev"; ty = Value.TInt;
      spec = Computed.Formula (parse "price * qty") }
  in
  Alcotest.(check string) "formula description" "rev = price * qty"
    (Computed.describe fc);
  Alcotest.(check (list string)) "referenced columns"
    [ "price"; "qty" ]
    (Computed.referenced_columns fc)

let test_tpch_text_formats () =
  let rng = Sheet_stats.Rng.create 5 in
  let phone = Sheet_tpch.Tpch_text.phone rng 3 in
  Alcotest.(check int) "phone length" 15 (String.length phone);
  Alcotest.(check string) "country code" "13" (String.sub phone 0 2);
  let name = Sheet_tpch.Tpch_text.part_name rng in
  Alcotest.(check int) "three words" 3
    (List.length (String.split_on_char ' ' name));
  let clerk = Sheet_tpch.Tpch_text.clerk rng in
  Alcotest.(check bool) "clerk format" true
    (String.length clerk = 15 && String.sub clerk 0 6 = "Clerk#");
  let comment = Sheet_tpch.Tpch_text.comment rng 40 in
  Alcotest.(check bool) "comment bounded" true (String.length comment <= 40);
  Alcotest.(check int) "25 nations" 25
    (Array.length Sheet_tpch.Tpch_text.nation_names);
  for i = 0 to 24 do
    let r = Sheet_tpch.Tpch_text.region_of_nation i in
    Alcotest.(check bool) "region in range" true (r >= 0 && r < 5)
  done

let test_spreadsheet_pp () =
  let sheet = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation in
  let text = Format.asprintf "%a" Spreadsheet.pp sheet in
  Alcotest.(check bool) "mentions name and rows" true
    (contains text "cars" && contains text "9 rows");
  let gtext =
    Format.asprintf "%a" Grouping.pp
      { Grouping.levels =
          [ { Grouping.basis_add = [ "Model" ]; dir = Grouping.Desc;
              order_by_value = None } ];
        leaf_order = [ ("Price", Grouping.Asc) ] }
  in
  Alcotest.(check bool) "grouping pp" true
    (contains gtext "Model" && contains gtext "DESC"
    && contains gtext "Price ASC")

let test_conjuncts_and_columns () =
  let e = parse "a = 1 AND (b = 2 AND c = 3) AND d = 4" in
  Alcotest.(check int) "four conjuncts" 4 (List.length (Expr.conjuncts e));
  Alcotest.(check (list string)) "columns in order" [ "a"; "b"; "c"; "d" ]
    (Expr.columns e);
  let renamed =
    Expr.map_columns (fun c -> if c = "a" then "z" else c) e
  in
  Alcotest.(check bool) "rename hits only a" true
    (Expr.columns renamed = [ "z"; "b"; "c"; "d" ])

let () =
  Alcotest.run "sheet_misc"
    [ ( "descriptions",
        [ Alcotest.test_case "operator names" `Quick test_op_descriptions;
          Alcotest.test_case "error messages" `Quick test_error_messages;
          Alcotest.test_case "computed columns" `Quick test_computed_describe
        ] );
      ( "tpch-text",
        [ Alcotest.test_case "formats" `Quick test_tpch_text_formats ] );
      ( "printers",
        [ Alcotest.test_case "spreadsheet/grouping pp" `Quick
            test_spreadsheet_pp ] );
      ( "expr-utils",
        [ Alcotest.test_case "conjuncts/columns" `Quick
            test_conjuncts_and_columns ] ) ]
