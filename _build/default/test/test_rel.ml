(* Unit tests for the relational substrate. *)

open Sheet_rel

let schema_ab =
  Schema.of_list [ ("a", Value.TInt); ("b", Value.TString) ]

let rel_of rows =
  Relation.make schema_ab
    (List.map
       (fun (a, b) -> Row.of_list [ Value.Int a; Value.String b ])
       rows)

(* ---- values ---- *)

let test_value_compare () =
  Alcotest.(check bool) "int/float equal" true
    (Value.equal (Value.Int 3) (Value.Float 3.0));
  Alcotest.(check bool) "int < float" true
    (Value.compare (Value.Int 3) (Value.Float 3.5) < 0);
  Alcotest.(check bool) "null sorts last" true
    (Value.compare Value.Null (Value.String "z") > 0);
  Alcotest.(check (option int)) "sql compare with null" None
    (Value.sql_compare Value.Null (Value.Int 1));
  Alcotest.(check (option int)) "sql compare across types" None
    (Value.sql_compare (Value.String "1") (Value.Int 1))

let test_value_dates () =
  let d = Value.of_ymd 2009 3 29 in
  Alcotest.(check string) "render" "2009-03-29" (Value.to_string d);
  (match d with
  | Value.Date days ->
      Alcotest.(check (triple int int int))
        "roundtrip" (2009, 3, 29)
        (Value.ymd_of_days days)
  | _ -> Alcotest.fail "not a date");
  Alcotest.(check bool) "epoch" true
    (Value.equal (Value.of_ymd 1970 1 1) (Value.Date 0));
  Alcotest.(check bool) "leap year" true
    (Value.equal (Value.of_ymd 2000 3 1)
       (match Value.of_ymd 2000 2 29 with
       | Value.Date x -> Value.Date (x + 1)
       | _ -> assert false))

let test_value_parse () =
  Alcotest.(check bool) "guess int" true
    (Value.parse_guess "42" = Value.Int 42);
  Alcotest.(check bool) "guess float" true
    (Value.parse_guess "4.5" = Value.Float 4.5);
  Alcotest.(check bool) "guess date" true
    (Value.parse_guess "2005-01-02" = Value.of_ymd 2005 1 2);
  Alcotest.(check bool) "guess string" true
    (Value.parse_guess "Jetta" = Value.String "Jetta");
  Alcotest.(check bool) "empty is null" true
    (Value.parse_guess "" = Value.Null)

(* ---- schema ---- *)

let test_schema_ops () =
  let s = schema_ab in
  Alcotest.(check int) "arity" 2 (Schema.arity s);
  Alcotest.(check int) "index" 1 (Schema.index_exn s "b");
  let s2 = Schema.append s { Schema.name = "c"; ty = Value.TFloat } in
  Alcotest.(check (list string)) "append" [ "a"; "b"; "c" ] (Schema.names s2);
  let s3 = Schema.remove s2 "b" in
  Alcotest.(check (list string)) "remove" [ "a"; "c" ] (Schema.names s3);
  let s4 = Schema.rename s3 "c" "z" in
  Alcotest.(check (list string)) "rename" [ "a"; "z" ] (Schema.names s4);
  Alcotest.check_raises "duplicate refused"
    (Schema.Schema_error "duplicate column \"a\"")
    (fun () -> ignore (Schema.of_list [ ("a", Value.TInt); ("a", Value.TInt) ]))

let test_schema_concat_renames () =
  let s2, mapping = Schema.concat_with_mapping schema_ab schema_ab in
  Alcotest.(check (list string))
    "suffixing" [ "a"; "b"; "a_2"; "b_2" ] (Schema.names s2);
  Alcotest.(check (list (pair string string)))
    "mapping" [ ("a", "a_2"); ("b", "b_2") ] mapping

(* ---- expressions ---- *)

let parse s = Expr_parse.parse_string_exn s

let eval_static e =
  Expr_eval.eval ~lookup:(fun _ -> raise Not_found) (parse e)

let test_expr_parse_roundtrip () =
  let cases =
    [ "a + b * 2";
      "(a + b) * 2";
      "Price <= Avg_Price AND Year = 2005";
      "Model IN ('Jetta', 'Civic')";
      "NOT (a = 1 OR b = 'x')";
      "name LIKE 'J%ta'";
      "Mileage BETWEEN 30000 AND 80000";
      "a IS NULL";
      "avg(Price)";
      "count(*)" ]
  in
  List.iter
    (fun text ->
      let e = parse text in
      let e2 = parse (Expr.to_string e) in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" text)
        true (Expr.equal e e2))
    cases

let test_expr_precedence () =
  Alcotest.(check bool) "mul binds tighter" true
    (Value.equal (eval_static "2 + 3 * 4") (Value.Int 14));
  Alcotest.(check bool) "parens" true
    (Value.equal (eval_static "(2 + 3) * 4") (Value.Int 20));
  Alcotest.(check bool) "unary minus" true
    (Value.equal (eval_static "-2 + 5") (Value.Int 3));
  Alcotest.(check bool) "and/or precedence" true
    (Value.equal
       (eval_static "TRUE OR FALSE AND FALSE")
       (Value.Bool true))

let test_expr_null_semantics () =
  Alcotest.(check bool) "null arith propagates" true
    (Value.is_null (eval_static "NULL + 1"));
  Alcotest.(check bool) "null comparison false" true
    (Value.equal (eval_static "NULL = NULL") (Value.Bool false));
  Alcotest.(check bool) "is null" true
    (Value.equal (eval_static "NULL IS NULL") (Value.Bool true));
  Alcotest.(check bool) "division by zero" true
    (Value.is_null (eval_static "1 / 0"))

let test_like () =
  let m p s = Expr_eval.like_match ~pattern:p s in
  Alcotest.(check bool) "percent" true (m "J%" "Jetta");
  Alcotest.(check bool) "underscore" true (m "J_tta" "Jetta");
  Alcotest.(check bool) "middle" true (m "%ett%" "Jetta");
  Alcotest.(check bool) "no match" false (m "J%x" "Jetta");
  Alcotest.(check bool) "empty pattern" false (m "" "Jetta");
  Alcotest.(check bool) "exact" true (m "Jetta" "Jetta");
  Alcotest.(check bool) "all" true (m "%" "")

let test_expr_typecheck () =
  let check_ok e = Result.is_ok (Expr_check.check_pred schema_ab (parse e)) in
  Alcotest.(check bool) "ok pred" true (check_ok "a > 1 AND b = 'x'");
  Alcotest.(check bool) "string+int comparison refused" false
    (check_ok "a = b");
  Alcotest.(check bool) "unknown column refused" false (check_ok "c = 1");
  Alcotest.(check bool) "arith on string refused" false
    (check_ok "b + 1 = 2");
  Alcotest.(check bool) "non-bool refused" false (check_ok "a + 1");
  Alcotest.(check bool) "aggregate refused by default" false
    (check_ok "avg(a) > 1")

let test_aggregates () =
  let vs = List.map (fun i -> Value.Int i) [ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "sum" true
    (Value.equal (Expr_eval.apply_agg Expr.Sum vs) (Value.Int 10));
  Alcotest.(check bool) "avg" true
    (Value.equal (Expr_eval.apply_agg Expr.Avg vs) (Value.Float 2.5));
  Alcotest.(check bool) "min" true
    (Value.equal (Expr_eval.apply_agg Expr.Min vs) (Value.Int 1));
  Alcotest.(check bool) "max" true
    (Value.equal (Expr_eval.apply_agg Expr.Max vs) (Value.Int 4));
  Alcotest.(check bool) "count skips nulls" true
    (Value.equal
       (Expr_eval.apply_agg Expr.Count (Value.Null :: vs))
       (Value.Int 4));
  Alcotest.(check bool) "count_star keeps nulls" true
    (Value.equal
       (Expr_eval.apply_agg Expr.Count_star (Value.Null :: vs))
       (Value.Int 5));
  Alcotest.(check bool) "sum of empty is null" true
    (Value.is_null (Expr_eval.apply_agg Expr.Sum []));
  Alcotest.(check bool) "avg ignores nulls" true
    (Value.equal
       (Expr_eval.apply_agg Expr.Avg (Value.Null :: vs))
       (Value.Float 2.5))

let test_simplify () =
  let simp text = Expr.to_string (Expr_simplify.simplify (parse text)) in
  Alcotest.(check string) "constant folding" "14" (simp "2 + 3 * 4");
  Alcotest.(check string) "true and" "a > 1" (simp "TRUE AND a > 1");
  Alcotest.(check string) "or true" "true" (simp "a > 1 OR TRUE");
  Alcotest.(check string) "false and" "false" (simp "a > 1 AND FALSE");
  Alcotest.(check string) "double negation" "a > 1" (simp "NOT (NOT (a > 1))");
  Alcotest.(check string) "constant comparison" "true" (simp "2 < 3");
  Alcotest.(check string) "case static true" "1"
    (simp "CASE WHEN 1 = 1 THEN 1 ELSE 2 END");
  Alcotest.(check string) "case drops false branch" "CASE WHEN a > 1 THEN 2 END"
    (simp "CASE WHEN FALSE THEN 1 WHEN a > 1 THEN 2 END");
  Alcotest.(check string) "columns block folding" "a + 1" (simp "a + 1");
  (* folding goes through the evaluator, so null semantics hold *)
  Alcotest.(check string) "null arith folds to null" "NULL" (simp "NULL + 1")

(* ---- relational algebra ---- *)

let test_select_project () =
  let r = rel_of [ (1, "x"); (2, "y"); (3, "x") ] in
  let s = Rel_algebra.select (parse "b = 'x'") r in
  Alcotest.(check int) "selected" 2 (Relation.cardinality s);
  let p = Rel_algebra.project [ "b" ] r in
  Alcotest.(check (list string)) "projected schema" [ "b" ]
    (Schema.names (Relation.schema p));
  Alcotest.(check int) "no dedup on project" 3 (Relation.cardinality p)

let test_product_join () =
  let r = rel_of [ (1, "x"); (2, "y") ] in
  let p = Rel_algebra.product r r in
  Alcotest.(check int) "product size" 4 (Relation.cardinality p);
  Alcotest.(check (list string)) "product schema"
    [ "a"; "b"; "a_2"; "b_2" ]
    (Schema.names (Relation.schema p));
  let j = Rel_algebra.join (parse "a = a_2") r r in
  Alcotest.(check int) "join size" 2 (Relation.cardinality j)

let test_union_diff_bags () =
  let r1 = rel_of [ (1, "x"); (1, "x"); (2, "y") ] in
  let r2 = rel_of [ (1, "x") ] in
  let u = Rel_algebra.union r1 r2 in
  Alcotest.(check int) "bag union" 4 (Relation.cardinality u);
  let d = Rel_algebra.diff r1 r2 in
  (* {t,t} - {t} = {t} *)
  Alcotest.(check int) "bag difference" 2 (Relation.cardinality d);
  Alcotest.(check bool) "one x remains" true
    (List.exists
       (fun row -> Value.equal (Row.get row 0) (Value.Int 1))
       (Relation.rows d))

let test_distinct_sort () =
  let r = rel_of [ (2, "y"); (1, "x"); (1, "x") ] in
  let d = Rel_algebra.distinct r in
  Alcotest.(check int) "distinct" 2 (Relation.cardinality d);
  let s = Rel_algebra.sort [ ("a", `Desc) ] r in
  (match Relation.rows s with
  | first :: _ ->
      Alcotest.(check bool) "desc sort" true
        (Value.equal (Row.get first 0) (Value.Int 2))
  | [] -> Alcotest.fail "empty");
  let incompatible =
    Relation.make (Schema.of_list [ ("a", Value.TInt) ])
      [ Row.of_list [ Value.Int 1 ] ]
  in
  Alcotest.(check bool) "union incompatible refused" true
    (try
       ignore (Rel_algebra.union r incompatible);
       false
     with Rel_algebra.Algebra_error _ -> true)

let test_group_rows () =
  let r = rel_of [ (1, "x"); (2, "x"); (3, "y") ] in
  let groups = Rel_algebra.group_rows [ "b" ] r in
  Alcotest.(check int) "2 groups" 2 (List.length groups);
  let sizes = List.map (fun (_, rows) -> List.length rows) groups in
  Alcotest.(check (list int)) "sizes in first-occurrence order" [ 2; 1 ] sizes

(* ---- csv ---- *)

let test_csv_roundtrip () =
  let text = Csv.of_relation Sample_cars.relation in
  let r = Csv.load_relation ~schema:Sample_cars.schema text in
  Alcotest.(check bool) "roundtrip" true (Relation.equal r Sample_cars.relation)

let test_csv_inference_and_quoting () =
  let text = "name,price,when\n\"Liu, Bin\",12.5,2009-03-29\nquote\"\"d,3,2009-04-01\n" in
  let r = Csv.load_relation text in
  Alcotest.(check int) "2 rows" 2 (Relation.cardinality r);
  (match Schema.type_of (Relation.schema r) "price" with
  | Some Value.TFloat -> ()
  | _ -> Alcotest.fail "price should infer float");
  (match Schema.type_of (Relation.schema r) "when" with
  | Some Value.TDate -> ()
  | _ -> Alcotest.fail "when should infer date");
  (match Relation.rows r with
  | first :: _ ->
      Alcotest.(check bool) "embedded comma preserved" true
        (Value.equal (Row.get first 0) (Value.String "Liu, Bin"))
  | [] -> Alcotest.fail "no rows");
  (* quoting roundtrip *)
  let again = Csv.load_relation (Csv.of_relation r) in
  Alcotest.(check bool) "quoting roundtrip" true
    (Relation.equal_unordered_data again r)

let test_profile () =
  let rel =
    Relation.make
      (Schema.of_list [ ("n", Value.TInt); ("s", Value.TString) ])
      [ Row.of_list [ Value.Int 1; Value.String "a" ];
        Row.of_list [ Value.Int 3; Value.String "a" ];
        Row.of_list [ Value.Null; Value.String "b" ] ]
  in
  let p = Profile.column rel "n" in
  Alcotest.(check int) "non-null" 2 p.Profile.non_null;
  Alcotest.(check int) "nulls" 1 p.Profile.nulls;
  Alcotest.(check int) "distinct" 2 p.Profile.distinct;
  Alcotest.(check bool) "min" true (Value.equal p.Profile.min_value (Value.Int 1));
  Alcotest.(check bool) "max" true (Value.equal p.Profile.max_value (Value.Int 3));
  Alcotest.(check (option (float 1e-9))) "mean" (Some 2.0) p.Profile.mean;
  let ps = Profile.column rel "s" in
  Alcotest.(check int) "string distinct" 2 ps.Profile.distinct;
  Alcotest.(check (option (float 1e-9))) "no mean for strings" None
    ps.Profile.mean;
  Alcotest.(check bool) "render" true (String.length (Profile.render rel) > 0);
  (* whole-relation profile covers every column *)
  Alcotest.(check int) "2 columns" 2 (List.length (Profile.relation rel));
  (* empty relation profiles are all-null *)
  let p0 = Profile.column (Relation.empty (Relation.schema rel)) "n" in
  Alcotest.(check bool) "empty min is null" true
    (Value.is_null p0.Profile.min_value)

let test_table_print () =
  let text = Table_print.render (rel_of [ (1, "x") ]) in
  Alcotest.(check bool) "has header" true
    (String.length text > 0
    && List.exists
         (fun line ->
           String.length line > 0
           && String.contains line 'a'
           && String.contains line 'b')
         (String.split_on_char '\n' text))

let () =
  Alcotest.run "sheet_rel"
    [ ( "value",
        [ Alcotest.test_case "compare/equal" `Quick test_value_compare;
          Alcotest.test_case "dates" `Quick test_value_dates;
          Alcotest.test_case "parsing" `Quick test_value_parse ] );
      ( "schema",
        [ Alcotest.test_case "basic ops" `Quick test_schema_ops;
          Alcotest.test_case "concat renames" `Quick
            test_schema_concat_renames ] );
      ( "expr",
        [ Alcotest.test_case "parse roundtrip" `Quick
            test_expr_parse_roundtrip;
          Alcotest.test_case "precedence" `Quick test_expr_precedence;
          Alcotest.test_case "null semantics" `Quick test_expr_null_semantics;
          Alcotest.test_case "like" `Quick test_like;
          Alcotest.test_case "typecheck" `Quick test_expr_typecheck;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "simplifier" `Quick test_simplify ] );
      ( "algebra",
        [ Alcotest.test_case "select/project" `Quick test_select_project;
          Alcotest.test_case "product/join" `Quick test_product_join;
          Alcotest.test_case "bag union/diff" `Quick test_union_diff_bags;
          Alcotest.test_case "distinct/sort" `Quick test_distinct_sort;
          Alcotest.test_case "group rows" `Quick test_group_rows ] );
      ( "io",
        [ Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "csv inference/quoting" `Quick
            test_csv_inference_and_quoting;
          Alcotest.test_case "profile" `Quick test_profile;
          Alcotest.test_case "table print" `Quick test_table_print ] ) ]
