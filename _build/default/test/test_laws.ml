(* Algebraic laws of the binary operators and organization operators,
   property-tested. These complement Theorem 2 (test_props): they pin
   the bag semantics of Defs. 7-9 and the content-stability of τ/λ. *)

open Sheet_rel
open Sheet_core

let ( let* ) = QCheck.Gen.( let* ) [@@warning "-32"]

let models = [ "Jetta"; "Civic"; "Accord" ]

let gen_relation : Relation.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 0 15 in
  let* rows =
    list_repeat n
      (let* id = int_range 1 6 in
       let* model = oneofl models in
       let* price = int_range 1 4 in
       return
         (Row.of_list
            [ Value.Int id; Value.String model; Value.Int (price * 1000);
              Value.Int 2005; Value.Int 50000; Value.String "Good" ]))
  in
  return (Relation.make Sample_cars.schema rows)

let sheet_of rel = Spreadsheet.of_relation ~name:"t" rel

let with_stored rel_b =
  let store = Store.create () in
  Store.save store ~name:"b" (sheet_of rel_b);
  store

let apply_exn ?store sheet op =
  match Engine.apply ?store sheet op with
  | Ok s -> s
  | Error e -> failwith (Errors.to_string e)

let content sheet = Relation.normalize (Materialize.current_base_rows sheet)

let union_cardinality =
  QCheck.Test.make ~count:200 ~name:"card(a ∪ b) = card(a) + card(b)"
    QCheck.(make Gen.(pair gen_relation gen_relation))
    (fun (a, b) ->
      let store = with_stored b in
      let u = apply_exn ~store (sheet_of a) (Op.Union "b") in
      Relation.cardinality (Materialize.full u)
      = Relation.cardinality a + Relation.cardinality b)

let union_then_diff_roundtrip =
  QCheck.Test.make ~count:200 ~name:"(a ∪ b) − b = a (bag semantics)"
    QCheck.(make Gen.(pair gen_relation gen_relation))
    (fun (a, b) ->
      let store = with_stored b in
      let u = apply_exn ~store (sheet_of a) (Op.Union "b") in
      let d = apply_exn ~store u (Op.Diff "b") in
      Relation.equal (content d) (Relation.normalize a))

let diff_bounds =
  QCheck.Test.make ~count:200
    ~name:"card(a − b) between card(a) − card(b) and card(a)"
    QCheck.(make Gen.(pair gen_relation gen_relation))
    (fun (a, b) ->
      let store = with_stored b in
      let d = apply_exn ~store (sheet_of a) (Op.Diff "b") in
      let n = Relation.cardinality (Materialize.full d) in
      n >= max 0 (Relation.cardinality a - Relation.cardinality b)
      && n <= Relation.cardinality a)

let self_difference_empty =
  QCheck.Test.make ~count:200 ~name:"a − a = ∅"
    (QCheck.make gen_relation)
    (fun a ->
      let store = with_stored a in
      let d = apply_exn ~store (sheet_of a) (Op.Diff "b") in
      Relation.cardinality (Materialize.full d) = 0)

let product_cardinality =
  QCheck.Test.make ~count:100 ~name:"card(a × b) = card(a) · card(b)"
    QCheck.(make Gen.(pair gen_relation gen_relation))
    (fun (a, b) ->
      let store = with_stored b in
      let p = apply_exn ~store (sheet_of a) (Op.Product "b") in
      Relation.cardinality (Materialize.full p)
      = Relation.cardinality a * Relation.cardinality b)

let join_is_product_then_select =
  QCheck.Test.make ~count:100
    ~name:"join == product followed by selection (Def. 10)"
    QCheck.(make Gen.(pair gen_relation gen_relation))
    (fun (a, b) ->
      let cond = Expr_parse.parse_string_exn "ID = ID_2" in
      let store = with_stored b in
      let joined = apply_exn ~store (sheet_of a) (Op.Join { stored = "b"; cond }) in
      let via_product =
        let p = apply_exn ~store (sheet_of a) (Op.Product "b") in
        apply_exn p (Op.Select cond)
      in
      Relation.equal (content joined) (content via_product))

let selection_distributes_over_union =
  QCheck.Test.make ~count:200
    ~name:"σ(a) ∪ σ(b) = σ(a ∪ b) — formula (1), content level"
    QCheck.(make Gen.(pair gen_relation gen_relation))
    (fun (a, b) ->
      let pred = Expr_parse.parse_string_exn "Price >= 2000" in
      (* left: select both sides first (selection applied to the stored
         sheet before saving), then union *)
      let store = Store.create () in
      let b_selected = apply_exn (sheet_of b) (Op.Select pred) in
      Store.save store ~name:"b" b_selected;
      let left =
        apply_exn ~store
          (apply_exn (sheet_of a) (Op.Select pred))
          (Op.Union "b")
      in
      (* right: union first, then select *)
      let store2 = with_stored b in
      let right =
        apply_exn
          (apply_exn ~store:store2 (sheet_of a) (Op.Union "b"))
          (Op.Select pred)
      in
      Relation.equal (content left) (content right))

let organization_preserves_content =
  QCheck.Test.make ~count:200
    ~name:"τ and λ never change the multiset (only its presentation)"
    (QCheck.make gen_relation)
    (fun a ->
      let s0 = sheet_of a in
      let s1 =
        apply_exn s0 (Op.Group { basis = [ "Model" ]; dir = Grouping.Desc })
      in
      let s2 =
        apply_exn s1 (Op.Order { attr = "Price"; dir = Grouping.Asc; level = 2 })
      in
      let s3 =
        apply_exn s2 (Op.Group { basis = [ "ID" ]; dir = Grouping.Asc })
      in
      Relation.equal (content s0) (content s3))

let selection_monotone =
  QCheck.Test.make ~count:200
    ~name:"adding a conjunct never grows the selection"
    (QCheck.make gen_relation)
    (fun a ->
      let s1 =
        apply_exn (sheet_of a)
          (Op.Select (Expr_parse.parse_string_exn "Price >= 2000"))
      in
      let s2 =
        apply_exn s1
          (Op.Select (Expr_parse.parse_string_exn "Model = 'Jetta'"))
      in
      Relation.cardinality (Materialize.full s2)
      <= Relation.cardinality (Materialize.full s1))

let () =
  let suite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "sheet_laws"
    [ suite "set-operators"
        [ union_cardinality; union_then_diff_roundtrip; diff_bounds;
          self_difference_empty ];
      suite "product-join"
        [ product_cardinality; join_is_product_then_select ];
      suite "distribution" [ selection_distributes_over_union ];
      suite "organization"
        [ organization_preserves_content; selection_monotone ] ]
