(* Tests for the contextual-menu model of Section VI. *)

open Sheet_rel
open Sheet_core
open Sheet_ui

let session () = Session.create ~name:"cars" Sample_cars.relation

let run_script s script =
  match Script.run_silent s script with
  | Ok s -> s
  | Error msg -> Alcotest.failf "script failed: %s" msg

let labels items =
  List.map (fun i -> i.Context_menu.label) items

let find_item items label =
  match
    List.find_opt (fun i -> i.Context_menu.label = label) items
  with
  | Some i -> i
  | None -> Alcotest.failf "menu has no entry %S" label

let test_header_menu_plain () =
  let sheet = Session.current (session ()) in
  let items = Context_menu.menu sheet (Context_menu.Header "Price") in
  let ls = labels items in
  Alcotest.(check bool) "selection offered" true
    (List.mem "Selection..." ls);
  Alcotest.(check bool) "ungrouped group-by entry" true
    (List.mem "Group by" ls);
  Alcotest.(check bool) "no modify entry without history" false
    (List.mem "Modify previous selection..." ls);
  let agg = find_item items "Aggregation..." in
  Alcotest.(check bool) "numeric column offers sum/avg" true
    (String.length agg.Context_menu.hint > 0
    && String.sub agg.Context_menu.hint 0 5 = "count")

let test_cell_menu_filter () =
  let sheet = Session.current (session ()) in
  let items =
    Context_menu.menu sheet
      (Context_menu.Cell { column = "Model"; value = Value.String "Jetta" })
  in
  let filter = find_item items "Filter to this value" in
  Alcotest.(check bool) "filter hint shows the predicate" true
    (filter.Context_menu.hint = "select Model = Jetta")

let test_grouped_menu () =
  let s = run_script (session ()) "group Model asc\nagg avg Price level 2" in
  let sheet = Session.current s in
  let items = Context_menu.menu sheet (Context_menu.Header "Year") in
  let replace = find_item items "Group by (replace current grouping)" in
  Alcotest.(check bool) "replace disabled under dependent aggregates"
    false replace.Context_menu.enabled;
  Alcotest.(check bool) "reason mentions aggregates" true
    (match replace.Context_menu.reason with
    | Some r -> String.length r > 0
    | None -> false);
  let add = find_item items "Group by (add to existing grouping)" in
  Alcotest.(check bool) "adding a level stays enabled" true
    add.Context_menu.enabled

let test_modify_entry_after_selection () =
  let s = run_script (session ()) "select Year = 2005" in
  let items =
    Context_menu.menu (Session.current s) (Context_menu.Header "Year")
  in
  let modify = find_item items "Modify previous selection..." in
  Alcotest.(check bool) "lists the existing predicate" true
    (modify.Context_menu.enabled
    &&
    let hint = modify.Context_menu.hint in
    String.length hint > 0)

let test_computed_column_menu () =
  let s = run_script (session ()) "agg avg Price\nselect Price < Avg_Price" in
  let items =
    Context_menu.menu (Session.current s) (Context_menu.Header "Avg_Price")
  in
  let remove = find_item items "Remove computed column" in
  Alcotest.(check bool) "remove disabled while depended upon" false
    remove.Context_menu.enabled

let test_sheet_menu_binary_ops () =
  let s = session () in
  let items =
    Context_menu.menu (Session.current s) Context_menu.Sheet
  in
  let union = find_item items "Union with..." in
  Alcotest.(check bool) "binary ops disabled without stored sheets" false
    union.Context_menu.enabled;
  let s = Session.save_as s "snapshot" in
  let items =
    Context_menu.menu
      ~stored:(Store.names (Session.store s))
      (Session.current s) Context_menu.Sheet
  in
  let union = find_item items "Union with..." in
  Alcotest.(check bool) "enabled once a sheet is stored" true
    union.Context_menu.enabled

let test_restore_entry () =
  let s = run_script (session ()) "hide Mileage" in
  let items =
    Context_menu.menu (Session.current s) Context_menu.Sheet
  in
  let restore = find_item items "Restore column..." in
  Alcotest.(check bool) "restore lists hidden column" true
    (restore.Context_menu.hint = "hidden: Mileage")

let test_describe_renders () =
  let s = session () in
  let text =
    Context_menu.describe
      (Context_menu.menu (Session.current s) Context_menu.Sheet)
  in
  Alcotest.(check bool) "non-empty rendering" true (String.length text > 0)

(* ---- query builder (the baseline system) ---- *)

let tpch_catalog =
  lazy
    (Sheet_tpch.Tpch_views.install
       (Sheet_tpch.Tpch_gen.generate
          { Sheet_tpch.Tpch_gen.sf = 0.001; seed = 42 }))

let test_builder_graphical_tasks () =
  List.iter
    (fun id ->
      let task = Sheet_tpch.Tpch_tasks.find id in
      match Query_builder.classify task with
      | `Graphical -> ()
      | `Requires_sql concepts ->
          Alcotest.failf "task %d should be graphical, needs %s" id
            (String.concat "," concepts))
    [ 5; 7; 10 ]

let test_builder_sql_cliff_tasks () =
  let expect id concepts =
    let task = Sheet_tpch.Tpch_tasks.find id in
    match Query_builder.classify task with
    | `Graphical -> Alcotest.failf "task %d should need SQL" id
    | `Requires_sql cs ->
        Alcotest.(check (list string))
          (Printf.sprintf "task %d concepts" id)
          concepts cs
  in
  expect 1 [ "grouping"; "aggregation" ];
  expect 2 [ "grouping"; "aggregation"; "expression" ];
  expect 9 [ "grouping"; "aggregation"; "group-qualification" ]

let test_builder_reproduces_tasks () =
  let catalog = Lazy.force tpch_catalog in
  List.iter
    (fun (task : Sheet_tpch.Tpch_tasks.t) ->
      let builder = Query_builder.build_for_task task in
      match
        ( Query_builder.run builder catalog,
          Sheet_tpch.Tpch_tasks.sql_result catalog task )
      with
      | Ok got, Ok expected ->
          Alcotest.(check bool)
            (Printf.sprintf "task %d builder == sql (%s)"
               task.Sheet_tpch.Tpch_tasks.id
               (Query_builder.to_sql builder))
            true
            (Sheet_rel.Relation.equal_unordered_data
               (Sheet_rel.Relation.normalize got)
               (Sheet_rel.Relation.normalize expected))
      | Error msg, _ | _, Error msg ->
          Alcotest.failf "task %d failed: %s"
            task.Sheet_tpch.Tpch_tasks.id msg)
    (Sheet_tpch.Tpch_tasks.all @ Sheet_tpch.Tpch_tasks.extensions)

let test_builder_manual_flow () =
  let catalog =
    Sheet_sql.Catalog.of_list [ ("cars", Sample_cars.relation) ]
  in
  let b = Query_builder.create ~table:"cars" in
  let b = Query_builder.set_output b [ "Model"; "Price" ] in
  let b =
    Query_builder.add_criterion b ~column:"Year" ~op:Expr.Eq
      ~value:(Value.Int 2005)
  in
  let b = Query_builder.add_sort b ~column:"Price" ~dir:`Desc in
  Alcotest.(check string) "generated SQL"
    "SELECT Model, Price FROM cars WHERE Year = 2005 ORDER BY Price DESC"
    (Query_builder.to_sql b);
  (match Query_builder.run b catalog with
  | Ok rel -> Alcotest.(check int) "4 rows" 4 (Relation.cardinality rel)
  | Error msg -> Alcotest.fail msg);
  (* a syntax error typed into the SQL window surfaces at run time *)
  let broken = Query_builder.type_sql b "GRUOP BY Model" in
  Alcotest.(check bool) "typed syntax error caught" true
    (Result.is_error (Query_builder.run broken catalog))

(* ---- dialogs (Sec. VI / Fig. 1) ---- *)

let grouped_session () =
  run_script (session ()) "group Model asc\ngroup Year asc"

let test_aggregation_dialog_fig1 () =
  let sheet = Session.current (grouped_session ()) in
  let dialog = Dialog.aggregation sheet ~column:(Some "Price") in
  (* Fig. 1's level wording, generated from the grouping *)
  (match dialog.Dialog.questions with
  | [ Dialog.Choice { options = fns; _ };
      Dialog.Choice { options = levels; _ } ] ->
      Alcotest.(check bool) "avg offered for numeric column" true
        (List.mem "avg" fns);
      Alcotest.(check (list string)) "level wording"
        [ "all the rows"; "rows with the same Model";
          "rows with the same Model, Year" ]
        levels
  | _ -> Alcotest.fail "two choices expected");
  match
    Dialog.answer dialog [ "avg"; "rows with the same Model, Year" ]
  with
  | Ok (Op.Aggregate { fn = Expr.Avg; col = Some "Price"; level = 3; _ }) ->
      ()
  | Ok op -> Alcotest.failf "wrong op: %s" (Op.describe op)
  | Error msg -> Alcotest.fail msg

let test_aggregation_dialog_string_column () =
  let sheet = Session.current (session ()) in
  let dialog = Dialog.aggregation sheet ~column:(Some "Model") in
  match dialog.Dialog.questions with
  | Dialog.Choice { options = fns; _ } :: _ ->
      Alcotest.(check bool) "no sum/avg on strings" false
        (List.mem "sum" fns || List.mem "avg" fns);
      Alcotest.(check bool) "min/max allowed" true
        (List.mem "min" fns && List.mem "max" fns)
  | _ -> Alcotest.fail "choice expected"

let test_dialog_validation () =
  let sheet = Session.current (session ()) in
  let dialog = Dialog.aggregation sheet ~column:(Some "Price") in
  Alcotest.(check bool) "wrong arity rejected" true
    (Result.is_error (Dialog.answer dialog [ "avg" ]));
  Alcotest.(check bool) "bad choice rejected" true
    (Result.is_error (Dialog.answer dialog [ "median"; "all the rows" ]))

let test_selection_dialog () =
  let sheet = Session.current (session ()) in
  let dialog = Dialog.selection sheet ~column:"Year" in
  (match Dialog.answer dialog [ ">="; "2005" ] with
  | Ok (Op.Select pred) ->
      Alcotest.(check string) "predicate" "Year >= 2005"
        (Expr.to_string pred)
  | Ok op -> Alcotest.failf "wrong op: %s" (Op.describe op)
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "garbage constant rejected" true
    (Result.is_error (Dialog.answer dialog [ "="; "'unterminated" ]))

let test_ordering_dialog () =
  let flat = Session.current (session ()) in
  let d1 = Dialog.ordering flat ~column:"Price" in
  Alcotest.(check int) "no level question when ungrouped" 1
    (List.length d1.Dialog.questions);
  let grouped = Session.current (grouped_session ()) in
  let d2 = Dialog.ordering grouped ~column:"Price" in
  Alcotest.(check int) "level question when grouped" 2
    (List.length d2.Dialog.questions);
  match
    Dialog.answer d2 [ "descending"; "rows with the same Model" ]
  with
  | Ok (Op.Order { attr = "Price"; dir = Grouping.Desc; level = 2 }) -> ()
  | Ok op -> Alcotest.failf "wrong op: %s" (Op.describe op)
  | Error msg -> Alcotest.fail msg

let test_formula_and_join_dialogs () =
  let sheet = Session.current (session ()) in
  (match Dialog.answer (Dialog.formula sheet) [ ""; "Price * 2" ] with
  | Ok (Op.Formula { name = None; _ }) -> ()
  | _ -> Alcotest.fail "anonymous formula expected");
  (match Dialog.answer (Dialog.formula sheet) [ "dbl"; "Price * 2" ] with
  | Ok (Op.Formula { name = Some "dbl"; _ }) -> ()
  | _ -> Alcotest.fail "named formula expected");
  let join = Dialog.join sheet ~stored:[ "makers" ] in
  (match Dialog.answer join [ "makers"; "Model = MModel" ] with
  | Ok (Op.Join { stored = "makers"; _ }) -> ()
  | _ -> Alcotest.fail "join op expected");
  Alcotest.(check bool) "unknown stored sheet rejected" true
    (Result.is_error (Dialog.answer join [ "nope"; "Model = MModel" ]))

let () =
  Alcotest.run "sheet_ui"
    [ ( "context-menu",
        [ Alcotest.test_case "header menu (plain)" `Quick
            test_header_menu_plain;
          Alcotest.test_case "cell filter entry" `Quick test_cell_menu_filter;
          Alcotest.test_case "grouped menu guards" `Quick test_grouped_menu;
          Alcotest.test_case "modify entry after selection" `Quick
            test_modify_entry_after_selection;
          Alcotest.test_case "computed column guard" `Quick
            test_computed_column_menu;
          Alcotest.test_case "binary ops need stored sheet" `Quick
            test_sheet_menu_binary_ops;
          Alcotest.test_case "restore entry" `Quick test_restore_entry;
          Alcotest.test_case "describe renders" `Quick test_describe_renders
        ] );
      ( "query-builder",
        [ Alcotest.test_case "graphical tasks" `Quick
            test_builder_graphical_tasks;
          Alcotest.test_case "SQL cliff tasks" `Quick
            test_builder_sql_cliff_tasks;
          Alcotest.test_case "reproduces every task" `Quick
            test_builder_reproduces_tasks;
          Alcotest.test_case "manual flow + syntax error" `Quick
            test_builder_manual_flow ] );
      ( "dialogs",
        [ Alcotest.test_case "aggregation (Fig. 1)" `Quick
            test_aggregation_dialog_fig1;
          Alcotest.test_case "string column functions" `Quick
            test_aggregation_dialog_string_column;
          Alcotest.test_case "validation" `Quick test_dialog_validation;
          Alcotest.test_case "selection" `Quick test_selection_dialog;
          Alcotest.test_case "ordering" `Quick test_ordering_dialog;
          Alcotest.test_case "formula and join" `Quick
            test_formula_and_join_dialogs ] ) ]
