(* Unit tests for the statistics substrate. *)

open Sheet_stats

let feq = Alcotest.(check (float 1e-6))
let feq_loose = Alcotest.(check (float 0.05))

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let sa = List.init 20 (fun _ -> Rng.int a 1000) in
  let sb = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" sa sb;
  let c = Rng.create 43 in
  let sc = List.init 20 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" false (sa = sc)

let test_rng_ranges () =
  let t = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int t 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10);
    let w = Rng.int_in t 5 8 in
    Alcotest.(check bool) "int_in range" true (w >= 5 && w <= 8);
    let f = Rng.float t 2.5 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_distributions () =
  let t = Rng.create 11 in
  let n = 20000 in
  let sample = List.init n (fun _ -> Rng.gaussian t ~mu:5.0 ~sigma:2.0) in
  feq_loose "gaussian mean" 5.0 (Descriptive.mean sample);
  Alcotest.(check bool) "gaussian sd close" true
    (Float.abs (Descriptive.stddev sample -. 2.0) < 0.05);
  let e = List.init n (fun _ -> Rng.exponential t ~mean:3.0) in
  Alcotest.(check bool) "exponential mean close" true
    (Float.abs (Descriptive.mean e -. 3.0) < 0.1)

let test_descriptive () =
  let xs = [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  feq "mean" 5.0 (Descriptive.mean xs);
  feq "sample sd" 2.138089935 (Descriptive.stddev xs);
  feq "median" 4.5 (Descriptive.median xs);
  feq "min" 2.0 (Descriptive.minimum xs);
  feq "max" 9.0 (Descriptive.maximum xs);
  feq "p25" 4.0 (Descriptive.percentile 25.0 xs);
  feq "empty mean" 0.0 (Descriptive.mean []);
  feq "singleton sd" 0.0 (Descriptive.stddev [ 3.0 ])

let test_bootstrap_ci () =
  let rng = Rng.create 3 in
  let xs = List.init 200 (fun _ -> Rng.gaussian rng ~mu:10.0 ~sigma:2.0) in
  let lo, hi = Descriptive.bootstrap_ci (Rng.create 4) xs in
  let m = Descriptive.mean xs in
  Alcotest.(check bool) "interval brackets the mean" true (lo < m && m < hi);
  Alcotest.(check bool) "roughly +-2 se" true
    (hi -. lo > 0.2 && hi -. lo < 1.5);
  (* degenerate inputs *)
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "singleton" (5.0, 5.0)
    (Descriptive.bootstrap_ci (Rng.create 1) [ 5.0 ]);
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "empty" (0.0, 0.0)
    (Descriptive.bootstrap_ci (Rng.create 1) []);
  (* wider level -> narrower interval *)
  let lo50, hi50 =
    Descriptive.bootstrap_ci (Rng.create 4) ~level:0.5 xs
  in
  Alcotest.(check bool) "50% narrower than 95%" true
    (hi50 -. lo50 < hi -. lo)

let test_normal_cdf () =
  feq "phi(0)" 0.5 (Mann_whitney.normal_cdf 0.0);
  Alcotest.(check (float 1e-4)) "phi(1.96)" 0.975
    (Mann_whitney.normal_cdf 1.96);
  Alcotest.(check (float 1e-4)) "phi(-1.96)" 0.025
    (Mann_whitney.normal_cdf (-1.96))

let test_mann_whitney_separated () =
  (* clearly separated samples: p must be small *)
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0; 10.0 ] in
  let ys = List.map (fun x -> x +. 100.0) xs in
  let r = Mann_whitney.test xs ys in
  feq "U is 0 for disjoint samples" 0.0 r.Mann_whitney.u;
  Alcotest.(check bool) "p < 0.001" true (r.Mann_whitney.p_two_tailed < 0.001)

let test_mann_whitney_identical () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  let r = Mann_whitney.test xs xs in
  Alcotest.(check bool) "p is 1 for identical samples" true
    (r.Mann_whitney.p_two_tailed > 0.9)

let test_mann_whitney_known () =
  (* Small worked example: xs = {1,2,3}, ys = {4,5,6}: U = 0,
     two-tailed p with normal approx + continuity ≈ 0.0765 (exact is
     0.1); just pin the U statistics. *)
  let r = Mann_whitney.test [ 1.0; 2.0; 3.0 ] [ 4.0; 5.0; 6.0 ] in
  feq "u1" 0.0 r.Mann_whitney.u1;
  feq "u2" 9.0 r.Mann_whitney.u2

let test_fisher_known () =
  (* Classic tea-tasting table: (3,1;1,3) → one-tailed 0.242857,
     two-tailed 0.485714 *)
  let t = { Fisher.a = 3; b = 1; c = 1; d = 3 } in
  Alcotest.(check (float 1e-5)) "one-tailed" 0.242857 (Fisher.p_one_tailed t);
  Alcotest.(check (float 1e-5)) "two-tailed" 0.485714 (Fisher.p_two_tailed t)

let test_fisher_paper_counts () =
  (* The paper's totals: 95/100 correct vs 81/100 correct, p < 0.004 *)
  let t = { Fisher.a = 95; b = 5; c = 81; d = 19 } in
  let p = Fisher.p_two_tailed t in
  Alcotest.(check bool) "p < 0.004 as the paper reports" true (p < 0.004);
  Alcotest.(check bool) "p sane" true (p > 0.0)

let test_fisher_no_association () =
  let t = { Fisher.a = 10; b = 10; c = 10; d = 10 } in
  Alcotest.(check bool) "p = 1 for balanced table" true
    (Fisher.p_two_tailed t > 0.99)

let () =
  Alcotest.run "sheet_stats"
    [ ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "distributions" `Slow test_rng_distributions ]
      );
      ( "descriptive",
        [ Alcotest.test_case "moments/percentiles" `Quick test_descriptive ]
      );
      ( "bootstrap",
        [ Alcotest.test_case "confidence interval" `Quick test_bootstrap_ci ]
      );
      ( "mann-whitney",
        [ Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
          Alcotest.test_case "separated samples" `Quick
            test_mann_whitney_separated;
          Alcotest.test_case "identical samples" `Quick
            test_mann_whitney_identical;
          Alcotest.test_case "known U" `Quick test_mann_whitney_known ] );
      ( "fisher",
        [ Alcotest.test_case "known table" `Quick test_fisher_known;
          Alcotest.test_case "paper counts" `Quick test_fisher_paper_counts;
          Alcotest.test_case "no association" `Quick
            test_fisher_no_association ] ) ]
