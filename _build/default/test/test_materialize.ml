(* Edge-case tests of the materialization semantics: stratified
   replay, HAVING non-retroactivity, aggregation levels, NULLs in
   groups, empty relations, group boundaries. *)

open Sheet_rel
open Sheet_core

let parse = Expr_parse.parse_string_exn

let apply_exn s op =
  match Engine.apply s op with
  | Ok s -> s
  | Error e -> Alcotest.failf "refused: %s" (Errors.to_string e)

let apply_seq sheet ops = List.fold_left apply_exn sheet ops

let cars () = Spreadsheet.of_relation ~name:"cars" Sample_cars.relation

(* ---- strata: HAVING-style selections do not retro-recompute ---- *)

let test_having_not_retroactive () =
  (* group by Model; count per group; keep groups with count >= 4.
     Jetta has 6 cars, Civic 3. After the selection only Jettas
     remain, but their count column must still read 6, not recompute
     to the filtered size. *)
  let s =
    apply_seq (cars ())
      [ Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
        Op.Aggregate
          { fn = Expr.Count_star; col = None; level = 2;
            as_name = Some "n" };
        Op.Select (parse "n >= 4") ]
  in
  let rel = Materialize.full s in
  Alcotest.(check int) "only the 6 Jettas" 6 (Relation.cardinality rel);
  Alcotest.(check bool) "count still reads 6" true
    (List.for_all (Value.equal (Value.Int 6))
       (Relation.column_values rel "n"))

let test_later_aggregates_see_earlier_filters () =
  (* a selection on a base column IS seen by a later aggregate *)
  let s =
    apply_seq (cars ())
      [ Op.Select (parse "Model = 'Jetta'");
        Op.Aggregate
          { fn = Expr.Count_star; col = None; level = 1;
            as_name = Some "n" } ]
  in
  let rel = Materialize.full s in
  Alcotest.(check bool) "aggregate over filtered rows" true
    (List.for_all (Value.equal (Value.Int 6))
       (Relation.column_values rel "n"))

let test_stacked_having () =
  (* an aggregate defined after a HAVING-style selection recomputes
     over the filtered data (strata are ordered by definition) *)
  let s =
    apply_seq (cars ())
      [ Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
        Op.Aggregate
          { fn = Expr.Count_star; col = None; level = 2;
            as_name = Some "n" };
        Op.Select (parse "n >= 4");
        Op.Aggregate
          { fn = Expr.Count_star; col = None; level = 1;
            as_name = Some "total" } ]
  in
  let rel = Materialize.full s in
  Alcotest.(check bool) "total counts surviving rows" true
    (List.for_all (Value.equal (Value.Int 6))
       (Relation.column_values rel "total"))

(* ---- aggregation levels ---- *)

let test_aggregation_levels () =
  let s =
    apply_seq (cars ())
      [ Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
        Op.Group { basis = [ "Year" ]; dir = Grouping.Asc };
        Op.Aggregate
          { fn = Expr.Count_star; col = None; level = 1;
            as_name = Some "all" };
        Op.Aggregate
          { fn = Expr.Count_star; col = None; level = 2;
            as_name = Some "per_model" };
        Op.Aggregate
          { fn = Expr.Count_star; col = None; level = 3;
            as_name = Some "per_model_year" } ]
  in
  let rel = Materialize.full s in
  let get row c = Row.get row (Schema.index_exn (Relation.schema rel) c) in
  List.iter
    (fun row ->
      Alcotest.(check bool) "level 1 counts everything" true
        (Value.equal (get row "all") (Value.Int 9));
      let model = get row "Model" in
      let expected_model =
        if Value.equal model (Value.String "Jetta") then 6 else 3
      in
      Alcotest.(check bool) "level 2 counts the model group" true
        (Value.equal (get row "per_model") (Value.Int expected_model)))
    (Relation.rows rel);
  Alcotest.(check int) "4 distinct (model, year) groups" 4
    (Materialize.group_count s ~level:3);
  Alcotest.(check int) "2 model groups" 2
    (Materialize.group_count s ~level:2);
  Alcotest.(check int) "root is one group" 1
    (Materialize.group_count s ~level:1)

(* ---- NULL handling ---- *)

let null_cars () =
  let row id model price =
    Row.of_list
      [ Value.Int id; model; price; Value.Int 2005; Value.Int 1000;
        Value.String "Good" ]
  in
  Relation.make Sample_cars.schema
    [ row 1 (Value.String "Jetta") (Value.Int 10);
      row 2 Value.Null (Value.Int 20);
      row 3 Value.Null Value.Null;
      row 4 (Value.String "Civic") (Value.Int 30) ]

let test_null_grouping_and_aggregation () =
  let s = Spreadsheet.of_relation ~name:"n" (null_cars ()) in
  let s =
    apply_seq s
      [ Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
        Op.Aggregate
          { fn = Expr.Avg; col = Some "Price"; level = 2;
            as_name = Some "ap" } ]
  in
  (* the two NULL models form one group, as in SQL GROUP BY *)
  Alcotest.(check int) "3 groups incl. the null group" 3
    (Materialize.group_count s ~level:2);
  let rel = Materialize.full s in
  let get row c = Row.get row (Schema.index_exn (Relation.schema rel) c) in
  (* nulls sort last in ascending group order *)
  (match List.rev (Relation.rows rel) with
  | last :: _ ->
      Alcotest.(check bool) "null group last" true
        (Value.is_null (get last "Model"))
  | [] -> Alcotest.fail "no rows");
  (* avg over the null group skips the null price: avg {20} = 20 *)
  List.iter
    (fun row ->
      if Value.is_null (get row "Model") then
        Alcotest.(check bool) "avg skips null" true
          (Value.equal (get row "ap") (Value.Float 20.0)))
    (Relation.rows rel)

let test_selection_on_null_is_false () =
  let s = Spreadsheet.of_relation ~name:"n" (null_cars ()) in
  let s = apply_exn s (Op.Select (parse "Price > 0")) in
  (* the NULL price row disappears: comparisons with NULL are false *)
  Alcotest.(check int) "null row filtered" 3
    (Relation.cardinality (Materialize.full s));
  let s2 = Spreadsheet.of_relation ~name:"n" (null_cars ()) in
  let s2 = apply_exn s2 (Op.Select (parse "Model IS NULL")) in
  Alcotest.(check int) "IS NULL finds them" 2
    (Relation.cardinality (Materialize.full s2))

(* ---- empty relation ---- *)

let test_empty_relation () =
  let s =
    Spreadsheet.of_relation ~name:"empty"
      (Relation.empty Sample_cars.schema)
  in
  let s =
    apply_seq s
      [ Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
        Op.Aggregate
          { fn = Expr.Sum; col = Some "Price"; level = 2; as_name = None };
        Op.Select (parse "Price > 0");
        Op.Dedup ]
  in
  Alcotest.(check int) "still empty, no crash" 0
    (Relation.cardinality (Materialize.full s));
  Alcotest.(check int) "zero groups" 0 (Materialize.group_count s ~level:2)

(* ---- boundaries ---- *)

let test_group_boundaries () =
  let s =
    apply_seq (cars ())
      [ Op.Group { basis = [ "Model" ]; dir = Grouping.Desc };
        Op.Group { basis = [ "Year" ]; dir = Grouping.Asc } ]
  in
  let rel = Materialize.full s in
  (* Jetta 2005 (3 rows) | Jetta 2006 (3) | Civic 2005 (1) | Civic 2006 (2) *)
  Alcotest.(check (list int)) "boundaries after rows 2, 5, 6"
    [ 2; 5; 6 ]
    (Materialize.finest_group_boundaries s rel);
  (* no grouping, no boundaries *)
  let flat = cars () in
  Alcotest.(check (list int)) "flat sheet" []
    (Materialize.finest_group_boundaries flat (Materialize.full flat))

(* ---- formula over computed ---- *)

let test_formula_chain () =
  let s =
    apply_seq (cars ())
      [ Op.Group { basis = [ "Model" ]; dir = Grouping.Asc };
        Op.Aggregate
          { fn = Expr.Avg; col = Some "Price"; level = 2;
            as_name = Some "ap" };
        Op.Formula { name = Some "delta"; expr = parse "Price - ap" } ]
  in
  let rel = Materialize.full s in
  let get row c = Row.get row (Schema.index_exn (Relation.schema rel) c) in
  (* the deltas within each group must sum to ~0 *)
  let sum_jetta =
    List.fold_left
      (fun acc row ->
        if Value.equal (get row "Model") (Value.String "Jetta") then
          match Value.to_float (get row "delta") with
          | Some f -> acc +. f
          | None -> acc
        else acc)
      0.0 (Relation.rows rel)
  in
  Alcotest.(check bool) "deltas cancel" true (Float.abs sum_jetta < 1e-6)

let () =
  Alcotest.run "sheet_materialize"
    [ ( "strata",
        [ Alcotest.test_case "HAVING not retroactive" `Quick
            test_having_not_retroactive;
          Alcotest.test_case "aggregates see earlier filters" `Quick
            test_later_aggregates_see_earlier_filters;
          Alcotest.test_case "stacked having" `Quick test_stacked_having ]
      );
      ( "levels",
        [ Alcotest.test_case "aggregation levels" `Quick
            test_aggregation_levels ] );
      ( "nulls",
        [ Alcotest.test_case "null grouping/aggregation" `Quick
            test_null_grouping_and_aggregation;
          Alcotest.test_case "selection on null" `Quick
            test_selection_on_null_is_false ] );
      ( "edges",
        [ Alcotest.test_case "empty relation" `Quick test_empty_relation;
          Alcotest.test_case "group boundaries" `Quick test_group_boundaries;
          Alcotest.test_case "formula over aggregate" `Quick
            test_formula_chain ] ) ]
