(* Tests of the Script command language: parsing of each command form,
   informational outputs, error reporting with line numbers. *)

open Sheet_rel
open Sheet_core

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let session () = Session.create ~name:"cars" Sample_cars.relation

let run s script =
  match Script.run_silent s script with
  | Ok s -> s
  | Error msg -> Alcotest.failf "script failed: %s" msg

let line s text =
  match Script.run_line s text with
  | Ok o -> o
  | Error msg -> Alcotest.failf "line failed: %s" msg

let expect_line_error s text =
  match Script.run_line s text with
  | Ok _ -> Alcotest.failf "expected failure: %s" text
  | Error msg -> msg

let test_group_forms () =
  let s = run (session ()) "group Model, Year desc" in
  let g = Spreadsheet.grouping (Session.current s) in
  Alcotest.(check (list string)) "multi-column basis" [ "Model"; "Year" ]
    (Grouping.finest_basis g);
  (match g.Grouping.levels with
  | [ lv ] -> Alcotest.(check bool) "desc" true (lv.Grouping.dir = Grouping.Desc)
  | _ -> Alcotest.fail "one level expected");
  (* default direction is ascending *)
  let s2 = run (session ()) "group Model" in
  (match (Spreadsheet.grouping (Session.current s2)).Grouping.levels with
  | [ lv ] -> Alcotest.(check bool) "asc default" true (lv.Grouping.dir = Grouping.Asc)
  | _ -> Alcotest.fail "one level expected")

let test_order_forms () =
  let s = run (session ()) "group Model asc\norder Price desc level 2" in
  let g = Spreadsheet.grouping (Session.current s) in
  Alcotest.(check (list (pair string bool))) "leaf"
    [ ("Price", false) ]
    (List.map (fun (a, d) -> (a, d = Grouping.Asc)) g.Grouping.leaf_order);
  (* default level = finest *)
  let s2 = run (session ()) "order Mileage" in
  let g2 = Spreadsheet.grouping (Session.current s2) in
  Alcotest.(check bool) "leaf default" true
    (List.mem_assoc "Mileage" g2.Grouping.leaf_order)

let test_agg_forms () =
  let s =
    run (session ())
      "group Model asc\nagg count\nagg count ID as ids\nagg avg Price \
       level 2 as ap"
  in
  let names = Schema.names (Spreadsheet.full_schema (Session.current s)) in
  Alcotest.(check bool) "count(*) column" true (List.mem "Count" names);
  Alcotest.(check bool) "count(ID) alias" true (List.mem "ids" names);
  Alcotest.(check bool) "avg alias" true (List.mem "ap" names)

let test_formula_forms () =
  let s = run (session ()) "formula total = Price + Mileage" in
  Alcotest.(check bool) "named formula" true
    (Schema.mem (Spreadsheet.full_schema (Session.current s)) "total");
  let s2 = run (session ()) "formula Price * 2" in
  Alcotest.(check bool) "anonymous formula gets F1" true
    (Schema.mem (Spreadsheet.full_schema (Session.current s2)) "F1");
  (* '=' inside a comparison does not create a name *)
  let s3 = run (session ()) "formula CASE WHEN Year = 2005 THEN 1 ELSE 0 END" in
  Alcotest.(check bool) "condition kept whole" true
    (Schema.mem (Spreadsheet.full_schema (Session.current s3)) "F1")

let test_informational_commands () =
  let s = run (session ()) "select Year = 2005\ngroup Model asc" in
  let o = line s "history" in
  Alcotest.(check bool) "history lists ops" true
    (match o.Script.output with
    | Some text -> contains text "Select Year = 2005"
    | None -> false);
  let o = line s "selections Year" in
  Alcotest.(check bool) "selections listed" true
    (match o.Script.output with
    | Some text -> contains text "#1"
    | None -> false);
  let o = line s "selections Price" in
  Alcotest.(check bool) "empty selections message" true
    (match o.Script.output with
    | Some text -> contains text "no selections"
    | None -> false);
  let o = line s "status" in
  Alcotest.(check bool) "status output" true (Option.is_some o.Script.output);
  let o = line s "print 3" in
  Alcotest.(check bool) "print output" true
    (match o.Script.output with
    | Some text -> contains text "more rows"
    | None -> false)

let test_error_reporting () =
  (match Script.run_silent (session ()) "select Year = 2005\nbogus cmd" with
  | Error msg ->
      Alcotest.(check bool) "line number reported" true
        (contains msg "line 2")
  | Ok _ -> Alcotest.fail "expected error");
  let msg = expect_line_error (session ()) "order" in
  Alcotest.(check bool) "order arity" true (contains msg "expected column");
  let msg = expect_line_error (session ()) "agg frobnicate Price" in
  Alcotest.(check bool) "unknown aggregate" true (contains msg "frobnicate");
  let msg = expect_line_error (session ()) "rename onlyone" in
  Alcotest.(check bool) "rename arity" true (contains msg "expected");
  let msg = expect_line_error (session ()) "select Price <" in
  Alcotest.(check bool) "parse error surfaces" true
    (contains msg "cannot parse");
  let msg = expect_line_error (session ()) "replace zero Year = 1" in
  Alcotest.(check bool) "replace id" true (contains msg "selection-id")

let test_comments_and_blanks () =
  let s =
    run (session ())
      "# a comment line\n\n   \nselect Year = 2005  # trailing comment\n"
  in
  Alcotest.(check int) "filter applied" 4
    (Relation.cardinality (Session.materialized s));
  (* a '#' inside a string literal is data, not a comment *)
  let s2 = run (session ()) "select Model <> 'no#model'" in
  Alcotest.(check int) "all rows kept" 9
    (Relation.cardinality (Session.materialized s2))

let test_undo_redo_commands () =
  let s = run (session ()) "select Year = 2005\nselect Model = 'Jetta'" in
  let s = run s "undo 2" in
  Alcotest.(check int) "both undone" 9
    (Relation.cardinality (Session.materialized s));
  let s = run s "redo" in
  Alcotest.(check int) "one redone" 4
    (Relation.cardinality (Session.materialized s));
  let msg = expect_line_error (run s "redo") "redo" in
  Alcotest.(check bool) "nothing to redo" true (contains msg "redo")

let test_load_command () =
  let path = Filename.temp_file "musiq" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc "x,y\n1,a\n2,b\n";
      close_out oc;
      let s = run (session ()) (Printf.sprintf "load %s" path) in
      Alcotest.(check int) "csv loaded" 2
        (Relation.cardinality (Session.materialized s));
      (* undo returns to the cars sheet *)
      let s = run s "undo" in
      Alcotest.(check int) "back to cars" 9
        (Relation.cardinality (Session.materialized s)));
  let msg = expect_line_error (session ()) "load /no/such/file.csv" in
  Alcotest.(check bool) "missing file reported" true (String.length msg > 0)

let test_close_command () =
  let s = run (session ()) "save snap" in
  let s = run s "close snap" in
  let msg = expect_line_error s "open snap" in
  Alcotest.(check bool) "closed sheet is gone" true (contains msg "snap")

let () =
  Alcotest.run "sheet_script"
    [ ( "commands",
        [ Alcotest.test_case "group forms" `Quick test_group_forms;
          Alcotest.test_case "order forms" `Quick test_order_forms;
          Alcotest.test_case "agg forms" `Quick test_agg_forms;
          Alcotest.test_case "formula forms" `Quick test_formula_forms;
          Alcotest.test_case "informational" `Quick
            test_informational_commands;
          Alcotest.test_case "undo/redo" `Quick test_undo_redo_commands;
          Alcotest.test_case "close" `Quick test_close_command;
          Alcotest.test_case "load csv" `Quick test_load_command ] );
      ( "robustness",
        [ Alcotest.test_case "error reporting" `Quick test_error_reporting;
          Alcotest.test_case "comments and blanks" `Quick
            test_comments_and_blanks ] ) ]
