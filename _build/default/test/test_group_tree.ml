(* Tests of the recursive group-tree structure (Sec. II-A). *)

open Sheet_rel
open Sheet_core

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let run_script s script =
  match Script.run_silent s script with
  | Ok s -> s
  | Error msg -> Alcotest.failf "script failed: %s" msg

let session () = Session.create ~name:"cars" Sample_cars.relation

let grouped_sheet () =
  Session.current
    (run_script (session ())
       "group Model desc\ngroup Year asc\norder Price asc")

let test_structure () =
  let tree = Group_tree.build (grouped_sheet ()) in
  Alcotest.(check int) "depth = |G|" 3 (Group_tree.depth tree);
  Alcotest.(check int) "root" 1 (Group_tree.group_count tree ~level:1);
  Alcotest.(check int) "2 models" 2 (Group_tree.group_count tree ~level:2);
  Alcotest.(check int) "4 (model, year) groups" 4
    (Group_tree.group_count tree ~level:3);
  match tree.Group_tree.members with
  | Group_tree.Groups [ jetta; civic ] ->
      Alcotest.(check bool) "Jetta first (desc)" true
        (jetta.Group_tree.key = [ ("Model", Value.String "Jetta") ]);
      Alcotest.(check bool) "Civic second" true
        (civic.Group_tree.key = [ ("Model", Value.String "Civic") ]);
      (match jetta.Group_tree.members with
      | Group_tree.Groups [ y2005; y2006 ] ->
          Alcotest.(check bool) "2005 before 2006 (asc)" true
            (y2005.Group_tree.key = [ ("Year", Value.Int 2005) ]
            && y2006.Group_tree.key = [ ("Year", Value.Int 2006) ]);
          (match y2005.Group_tree.members with
          | Group_tree.Rows rows ->
              Alcotest.(check int) "3 Jetta 2005 rows" 3 (List.length rows)
          | _ -> Alcotest.fail "leaf expected")
      | _ -> Alcotest.fail "expected 2 year groups under Jetta")
  | _ -> Alcotest.fail "expected 2 model groups"

let test_rows_roundtrip () =
  let sheet = grouped_sheet () in
  let tree = Group_tree.build sheet in
  let flat = Relation.rows (Materialize.full sheet) in
  Alcotest.(check bool) "flatten inverts build" true
    (List.equal Row.equal flat (Group_tree.rows tree))

let test_ungrouped_tree () =
  let sheet = Session.current (session ()) in
  let tree = Group_tree.build sheet in
  Alcotest.(check int) "depth 1" 1 (Group_tree.depth tree);
  (match tree.Group_tree.members with
  | Group_tree.Rows rows -> Alcotest.(check int) "all rows" 9 (List.length rows)
  | _ -> Alcotest.fail "flat sheet has no groups")

let test_rendering () =
  let text = Group_tree.to_string (Group_tree.build (grouped_sheet ())) in
  Alcotest.(check bool) "group headers" true
    (contains text "+ Model = Jetta" && contains text "+ Year = 2005");
  Alcotest.(check bool) "indented rows" true (contains text "  ");
  let truncated =
    Group_tree.to_string ~max_rows:2 (Group_tree.build (grouped_sheet ()))
  in
  Alcotest.(check bool) "ellipsis" true (contains truncated "...")

let test_order_groups_ordering () =
  let s =
    run_script (session ())
      "group Model asc\nagg avg Price level 2 as ap\norder-groups ap desc"
  in
  let tree = Group_tree.build (Session.current s) in
  match tree.Group_tree.members with
  | Group_tree.Groups [ first; second ] ->
      (* Jetta's avg 16333 > Civic's 14833: Jetta group first *)
      Alcotest.(check bool) "jetta first" true
        (first.Group_tree.key = [ ("Model", Value.String "Jetta") ]
        && second.Group_tree.key = [ ("Model", Value.String "Civic") ])
  | _ -> Alcotest.fail "expected two groups"

let test_script_tree_command () =
  let s = run_script (session ()) "group Model asc" in
  match Script.run_line s "tree" with
  | Ok { Script.output = Some text; _ } ->
      Alcotest.(check bool) "tree output" true (contains text "+ Model = ")
  | _ -> Alcotest.fail "tree command must produce output"

let () =
  Alcotest.run "sheet_group_tree"
    [ ( "tree",
        [ Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "rows roundtrip" `Quick test_rows_roundtrip;
          Alcotest.test_case "ungrouped" `Quick test_ungrouped_tree;
          Alcotest.test_case "rendering" `Quick test_rendering;
          Alcotest.test_case "script command" `Quick
            test_script_tree_command;
          Alcotest.test_case "order-groups ordering" `Quick
            test_order_groups_ordering ] ) ]
