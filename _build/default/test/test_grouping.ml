(* Direct unit tests of the grouping/ordering specification module —
   Definitions 1, 3 and 4 of the paper, case by case. *)

open Sheet_core

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let expect_err what = function
  | Ok _ -> Alcotest.failf "expected error: %s" what
  | Error _ -> ()

(* the Example-1 starting point: Model desc, Year asc, leaf Price asc *)
let example () =
  let g = ok (Grouping.add_level Grouping.empty ~basis:[ "Model" ] ~dir:Grouping.Desc) in
  let g = ok (Grouping.add_level g ~basis:[ "Model"; "Year" ] ~dir:Grouping.Asc) in
  let o = ok (Grouping.order g ~attr:"Price" ~dir:Grouping.Asc ~level:3) in
  o.Grouping.spec

let test_definition1_levels () =
  let g = example () in
  Alcotest.(check int) "|G| = 3" 3 (Grouping.num_levels g);
  Alcotest.(check (list string)) "g1 = {NULL}" [] (Grouping.cumulative_basis g 1);
  Alcotest.(check (list string)) "g2" [ "Model" ] (Grouping.cumulative_basis g 2);
  Alcotest.(check (list string)) "g3" [ "Model"; "Year" ]
    (Grouping.cumulative_basis g 3);
  Alcotest.(check (list string)) "finest" [ "Model"; "Year" ]
    (Grouping.finest_basis g);
  Alcotest.(check bool) "is_group_attr" true (Grouping.is_group_attr g "Year");
  Alcotest.(check bool) "leaf attr is not group attr" false
    (Grouping.is_group_attr g "Price")

let test_add_level_validation () =
  let g = example () in
  (* must be a superset of the current finest basis *)
  expect_err "non-superset"
    (Grouping.add_level g ~basis:[ "Condition" ] ~dir:Grouping.Asc);
  (* must add something *)
  expect_err "no new attribute"
    (Grouping.add_level g ~basis:[ "Model"; "Year" ] ~dir:Grouping.Asc);
  (* Example 1: the paper's exact invocation *)
  let g2 =
    ok
      (Grouping.add_level g
         ~basis:[ "Year"; "Model"; "Condition" ]
         ~dir:Grouping.Asc)
  in
  Alcotest.(check int) "4 levels" 4 (Grouping.num_levels g2);
  (* o_L = L - grouping-basis: Price survives since not in the basis *)
  Alcotest.(check bool) "Price kept in leaf order" true
    (List.mem_assoc "Price" g2.Grouping.leaf_order);
  (* absorbing the leaf attribute drops it from the leaf order *)
  let g3 =
    ok
      (Grouping.add_level g
         ~basis:[ "Model"; "Year"; "Price" ]
         ~dir:Grouping.Asc)
  in
  Alcotest.(check (list (pair string bool))) "leaf emptied" []
    (List.map (fun (a, d) -> (a, d = Grouping.Asc)) g3.Grouping.leaf_order)

let test_order_case1_destroys () =
  let g = example () in
  (* level 2 ordered by an attribute outside g3 - g2: destroys level 3 *)
  let o = ok (Grouping.order g ~attr:"Mileage" ~dir:Grouping.Asc ~level:2) in
  Alcotest.(check bool) "destroyed marker" true
    (o.Grouping.destroyed_from = Some 2);
  Alcotest.(check int) "two levels left" 2
    (Grouping.num_levels o.Grouping.spec);
  Alcotest.(check (list (pair string bool)))
    "Mileage becomes the leaf order"
    [ ("Mileage", true) ]
    (List.map
       (fun (a, d) -> (a, d = Grouping.Asc))
       o.Grouping.spec.Grouping.leaf_order)

let test_order_case2_flips_direction () =
  let g = example () in
  (* Year is the dictated ordering attribute of level-2 groups *)
  let o = ok (Grouping.order g ~attr:"Year" ~dir:Grouping.Desc ~level:2) in
  Alcotest.(check bool) "no destruction" true
    (o.Grouping.destroyed_from = None);
  (match o.Grouping.spec.Grouping.levels with
  | [ _; year_level ] ->
      Alcotest.(check bool) "year level now desc" true
        (year_level.Grouping.dir = Grouping.Desc)
  | _ -> Alcotest.fail "level structure changed");
  (* ordering by an attribute of a coarser basis is rejected *)
  expect_err "coarser attr"
    (Grouping.order g ~attr:"Model" ~dir:Grouping.Asc ~level:2)

let test_order_case3_leaf () =
  let g = example () in
  (* append a secondary key *)
  let o = ok (Grouping.order g ~attr:"Mileage" ~dir:Grouping.Desc ~level:3) in
  Alcotest.(check (list (pair string bool)))
    "appended"
    [ ("Price", true); ("Mileage", false) ]
    (List.map
       (fun (a, d) -> (a, d = Grouping.Asc))
       o.Grouping.spec.Grouping.leaf_order);
  (* flipping an existing key updates it in place *)
  let o2 =
    ok
      (Grouping.order o.Grouping.spec ~attr:"Price" ~dir:Grouping.Desc
         ~level:3)
  in
  Alcotest.(check (list (pair string bool)))
    "flipped in place"
    [ ("Price", false); ("Mileage", false) ]
    (List.map
       (fun (a, d) -> (a, d = Grouping.Asc))
       o2.Grouping.spec.Grouping.leaf_order);
  (* ordering by a grouping attribute at the finest level: O unchanged *)
  let o3 = ok (Grouping.order g ~attr:"Model" ~dir:Grouping.Asc ~level:3) in
  Alcotest.(check bool) "noop" true (Grouping.equal g o3.Grouping.spec);
  (* level out of range *)
  expect_err "level 9" (Grouping.order g ~attr:"Price" ~dir:Grouping.Asc ~level:9);
  expect_err "level 0" (Grouping.order g ~attr:"Price" ~dir:Grouping.Asc ~level:0)

let test_sort_keys_emulation () =
  (* Sec. II-A: the recursive grouping is emulated by one flat
     ordering: levels outermost-first, then the leaf order *)
  let g = example () in
  Alcotest.(check (list (pair string bool)))
    "flat ordering"
    [ ("Model", false); ("Year", true); ("Price", true) ]
    (List.map (fun (a, d) -> (a, d = Grouping.Asc)) (Grouping.sort_keys g))

let test_rename_and_ungroup () =
  let g = example () in
  let g2 = Grouping.rename g ~old_name:"Year" ~new_name:"ModelYear" in
  Alcotest.(check (list string)) "renamed basis" [ "Model"; "ModelYear" ]
    (Grouping.finest_basis g2);
  let g3 = Grouping.rename g ~old_name:"Price" ~new_name:"Cost" in
  Alcotest.(check bool) "renamed leaf" true
    (List.mem_assoc "Cost" g3.Grouping.leaf_order);
  let u = Grouping.ungroup g in
  Alcotest.(check int) "only the root remains" 1 (Grouping.num_levels u);
  Alcotest.(check bool) "leaf order survives ungroup" true
    (List.mem_assoc "Price" u.Grouping.leaf_order)

let () =
  Alcotest.run "sheet_grouping"
    [ ( "definitions",
        [ Alcotest.test_case "definition 1 structure" `Quick
            test_definition1_levels;
          Alcotest.test_case "add_level (Def. 3)" `Quick
            test_add_level_validation;
          Alcotest.test_case "order case 1: destroy" `Quick
            test_order_case1_destroys;
          Alcotest.test_case "order case 2: flip" `Quick
            test_order_case2_flips_direction;
          Alcotest.test_case "order case 3: leaf" `Quick
            test_order_case3_leaf;
          Alcotest.test_case "sort-key emulation" `Quick
            test_sort_keys_emulation;
          Alcotest.test_case "rename/ungroup" `Quick
            test_rename_and_ungroup ] ) ]
