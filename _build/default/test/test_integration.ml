(* End-to-end integration scenarios: long multi-feature sessions that
   cross every library boundary (script -> engine -> materialize ->
   render/persist/plan/sql), asserting intermediate states as the
   interface would show them. *)

open Sheet_rel
open Sheet_core

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let run s script =
  match Script.run_silent s script with
  | Ok s -> s
  | Error msg -> Alcotest.failf "script failed: %s" msg

let cardinality s = Relation.cardinality (Session.materialized s)

(* The full Sam scenario followed by a dealership merger: two
   dealerships' inventories are combined, analyzed, modified, saved to
   disk, reloaded, and cross-checked against the SQL engine. *)
let test_dealership_scenario () =
  let lot_a = Sample_cars.relation in
  let lot_b = Sample_cars.scaled ~rows:20 ~seed:99 in
  let s = Session.create ~name:"lot_a" lot_a in
  Store.save (Session.store s) ~name:"lot_b"
    (Spreadsheet.of_relation ~name:"lot_b" lot_b);

  (* merge the two lots *)
  let s = run s "union lot_b" in
  Alcotest.(check int) "merged inventory" 29 (cardinality s);

  (* organize and analyze *)
  let s =
    run s
      {|group Model asc
agg avg Price level 2 as ap
agg count as n level 2
formula delta = Price - ap
order delta desc level 2|}
  in
  let rel = Session.materialized s in
  Alcotest.(check bool) "analysis columns present" true
    (Schema.mem (Relation.schema rel) "ap"
    && Schema.mem (Relation.schema rel) "n"
    && Schema.mem (Relation.schema rel) "delta");

  (* the group tree agrees with the group counts *)
  let tree = Group_tree.build (Session.current s) in
  Alcotest.(check int) "tree groups == materialize groups"
    (Materialize.group_count (Session.current s) ~level:2)
    (Group_tree.group_count tree ~level:2);

  (* filter on the analysis, then rewrite history *)
  let s = run s "select delta <= 0" in
  let below = cardinality s in
  Alcotest.(check bool) "some cars at or below their average" true
    (below > 0 && below < 29);
  let sel = List.hd (Session.selections_on s "delta") in
  let s =
    match
      Session.replace_selection s ~id:sel.Query_state.id
        (Expr_parse.parse_string_exn "delta > 0")
    with
    | Ok s -> s
    | Error e -> Alcotest.fail (Errors.to_string e)
  in
  Alcotest.(check int) "complement after modification" (29 - below)
    (cardinality s);

  (* the compiled plan agrees with the interpreter at every step *)
  Alcotest.(check bool) "plan == interpreter" true
    (Relation.equal
       (Plan.execute (Plan.of_sheet (Session.current s)))
       (Materialize.full (Session.current s)));

  (* persist, reload, continue *)
  let path = Filename.temp_file "musiq_integration" ".sheet" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let s = run s (Printf.sprintf "export %s" path) in
      let reloaded = Persist.load ~path in
      Alcotest.(check bool) "reloaded equals live" true
        (Relation.equal
           (Materialize.full (Session.current s))
           (Materialize.full reloaded));
      (* the history survives as state: drop the modified selection *)
      let sel =
        List.hd (Query_state.selections_on reloaded.Spreadsheet.state "delta")
      in
      match Engine.remove_selection reloaded sel.Query_state.id with
      | Ok sheet ->
          Alcotest.(check int) "selection removable after reload" 29
            (Relation.cardinality (Materialize.full sheet))
      | Error e -> Alcotest.fail (Errors.to_string e))

(* Sheet results cross-checked against SQL for a workload mixing every
   unary operator. *)
let test_cross_engine_consistency () =
  let s = Session.create ~name:"cars" Sample_cars.relation in
  let s =
    run s
      {|select Year >= 2005
formula kmi = Mileage / 1000
select kmi < 80
group Model asc
agg count as n level 2
hide ID
hide Mileage|}
  in
  (* the inverse translator is refused (visible non-grouped columns)… *)
  (match Sheet_sql.Sql_of_sheet.compile ~table:"cars" (Session.current s) with
  | Error (`Not_single_block reason) ->
      Alcotest.(check bool) "reason mentions projection" true
        (contains reason "project")
  | Ok _ -> Alcotest.fail "should not be single-block yet");
  (* …until the per-row columns are hidden *)
  let s = run s "hide Price\nhide Year\nhide Condition\nhide kmi" in
  match Sheet_sql.Sql_of_sheet.to_string ~table:"cars" (Session.current s) with
  | Error m -> Alcotest.fail m
  | Ok sql ->
      let cat =
        Sheet_sql.Catalog.of_list [ ("cars", Sample_cars.relation) ]
      in
      let sql_rel = Sheet_sql.Sql_executor.run_exn cat sql in
      let sheet_rel = Rel_algebra.distinct (Session.materialized s) in
      Alcotest.(check bool)
        (Printf.sprintf "sheet == sql via inverse translation (%s)" sql)
        true
        (Relation.equal_unordered_data
           (Relation.normalize sql_rel)
           (Relation.normalize sheet_rel))

(* A REPL-like loop: every informational command runs on a busy
   session without errors. *)
let test_informational_surface () =
  let s = Session.create ~name:"cars" Sample_cars.relation in
  let s =
    run s
      "group Model asc\nagg avg Price level 2\nselect Year >= 2005\nhide ID"
  in
  List.iter
    (fun cmd ->
      match Script.run_line s cmd with
      | Ok { Script.output = Some text; _ } ->
          Alcotest.(check bool) (cmd ^ " produces output") true
            (String.length text > 0)
      | Ok { Script.output = None; _ } ->
          Alcotest.failf "%s produced no output" cmd
      | Error msg -> Alcotest.failf "%s failed: %s" cmd msg)
    [ "print"; "print 3"; "status"; "history"; "selections Year";
      "describe"; "tree"; "explain" ]

let () =
  Alcotest.run "sheet_integration"
    [ ( "scenarios",
        [ Alcotest.test_case "dealership merger" `Quick
            test_dealership_scenario;
          Alcotest.test_case "cross-engine consistency" `Quick
            test_cross_engine_consistency;
          Alcotest.test_case "informational surface" `Quick
            test_informational_surface ] ) ]
