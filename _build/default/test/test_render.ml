(* Tests of the textual rendering: header decorations, group
   separators, truncation, status line. *)

open Sheet_core

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let run_script s script =
  match Script.run_silent s script with
  | Ok s -> s
  | Error msg -> Alcotest.failf "script failed: %s" msg

let session () = Session.create ~name:"cars" Sheet_rel.Sample_cars.relation

let test_plain_render () =
  let text = Render.to_string (Session.current (session ())) in
  let lines = String.split_on_char '\n' text in
  (* header + 9 rows + 3 rules + trailing newline *)
  Alcotest.(check int) "13 lines + trailing" 14 (List.length lines);
  Alcotest.(check bool) "has ID header" true (contains text " ID |");
  Alcotest.(check bool) "no arrows when unordered" false (contains text "^")

let test_decorations () =
  let s =
    run_script (session ())
      "group Model desc\norder Price asc\nagg avg Price level 2"
  in
  let text = Render.to_string (Session.current s) in
  Alcotest.(check bool) "group level marker" true (contains text "Model *1 v");
  Alcotest.(check bool) "ascending arrow on Price" true
    (contains text "Price ^");
  Alcotest.(check bool) "computed marker" true (contains text "Avg_Price =")

let test_group_separators () =
  let s = run_script (session ()) "group Model desc" in
  let text = Render.to_string (Session.current s) in
  (* rules: top, under header, after Jetta group, after Civic group *)
  let rules =
    List.length
      (List.filter
         (fun line -> String.length line > 0 && line.[0] = '+')
         (String.split_on_char '\n' text))
  in
  Alcotest.(check int) "4 horizontal rules" 4 rules

let test_truncation () =
  let text =
    Render.to_string ~max_rows:3 (Session.current (session ()))
  in
  Alcotest.(check bool) "ellipsis line" true (contains text "(6 more rows)");
  let full = Render.to_string ~max_rows:100 (Session.current (session ())) in
  Alcotest.(check bool) "no ellipsis when it fits" false
    (contains full "more rows")

let test_hidden_columns_not_rendered () =
  let s = run_script (session ()) "hide Mileage" in
  let text = Render.to_string (Session.current s) in
  Alcotest.(check bool) "Mileage gone" false (contains text "Mileage")

let test_status_line () =
  let s = run_script (session ()) "group Model asc\nselect Year = 2005" in
  let status = Render.status_line (Session.current s) in
  Alcotest.(check bool) "row count" true (contains status "4 rows");
  Alcotest.(check bool) "version" true (contains status "v2");
  Alcotest.(check bool) "grouping shown" true (contains status "Model")

let test_html_export () =
  let s =
    run_script (session ())
      "group Model desc\nagg avg Price level 2\nhide Mileage"
  in
  let html = Render_html.to_html (Session.current s) in
  Alcotest.(check bool) "document shell" true
    (contains html "<!DOCTYPE html>" && contains html "</html>");
  Alcotest.(check bool) "group badge" true (contains html "g1");
  Alcotest.(check bool) "computed header present" true
    (contains html "Avg_Price");
  Alcotest.(check bool) "hidden column absent" false
    (contains html "Mileage");
  Alcotest.(check bool) "data cell" true (contains html "Jetta");
  (* escaping *)
  let rel =
    Sheet_rel.Relation.make
      (Sheet_rel.Schema.of_list [ ("x", Sheet_rel.Value.TString) ])
      [ Sheet_rel.Row.of_list [ Sheet_rel.Value.String "<b>&" ] ]
  in
  let html2 =
    Render_html.to_html (Spreadsheet.of_relation ~name:"t" rel)
  in
  Alcotest.(check bool) "escaped" true (contains html2 "&lt;b&gt;&amp;");
  (* script command writes a file *)
  let path = Filename.temp_file "musiq" ".html" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match Script.run_line s (Printf.sprintf "html %s" path) with
      | Ok _ ->
          Alcotest.(check bool) "file written" true (Sys.file_exists path)
      | Error msg -> Alcotest.fail msg)

(* Golden test: the paper's Table II, byte for byte. *)
let table2_golden =
  String.concat "\n"
    [ "+-----+------------+---------+-----------+---------+----------------+";
      "|  ID | Model *1 v | Price ^ | Year *2 ^ | Mileage | Condition *3 ^ |";
      "+-----+------------+---------+-----------+---------+----------------+";
      "| 872 | Jetta      |   15000 |      2005 |   50000 | Excellent      |";
      "| 901 | Jetta      |   16000 |      2005 |   40000 | Excellent      |";
      "+-----+------------+---------+-----------+---------+----------------+";
      "| 304 | Jetta      |   14500 |      2005 |   76000 | Good           |";
      "+-----+------------+---------+-----------+---------+----------------+";
      "| 723 | Jetta      |   17500 |      2006 |   39000 | Excellent      |";
      "| 725 | Jetta      |   18000 |      2006 |   30000 | Excellent      |";
      "+-----+------------+---------+-----------+---------+----------------+";
      "| 423 | Jetta      |   17000 |      2006 |   42000 | Good           |";
      "+-----+------------+---------+-----------+---------+----------------+";
      "| 132 | Civic      |   13500 |      2005 |   86000 | Good           |";
      "+-----+------------+---------+-----------+---------+----------------+";
      "| 879 | Civic      |   15000 |      2006 |   68000 | Good           |";
      "| 322 | Civic      |   16000 |      2006 |   73000 | Good           |";
      "+-----+------------+---------+-----------+---------+----------------+";
      "" ]

let test_table2_golden () =
  let s =
    run_script (session ())
      "group Model desc\ngroup Year asc\norder Price asc\ngroup Year, \
       Model, Condition asc"
  in
  Alcotest.(check string) "Table II byte-for-byte" table2_golden
    (Render.to_string (Session.current s))

let () =
  Alcotest.run "sheet_render"
    [ ( "render",
        [ Alcotest.test_case "plain table" `Quick test_plain_render;
          Alcotest.test_case "header decorations" `Quick test_decorations;
          Alcotest.test_case "group separators" `Quick test_group_separators;
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "hidden columns" `Quick
            test_hidden_columns_not_rendered;
          Alcotest.test_case "status line" `Quick test_status_line;
          Alcotest.test_case "html export" `Quick test_html_export;
          Alcotest.test_case "table2 golden" `Quick test_table2_golden ] ) ]
