(* tpchgen — dump the synthetic TPC-H catalog to CSV files.

   Usage: tpchgen [<output-dir>] [--sf <float>] [--seed <int>] [--views]

   Writes one CSV per base table (and, with --views, per study view)
   into the output directory (default ./tpch-data). The files load
   straight back into the REPL (`sheetmusiq lineitem.csv`) or the SQL
   shell (`sheetsql *.csv`). *)

open Sheet_rel

let () =
  let dir = ref "tpch-data" in
  let sf = ref Sheet_tpch.Tpch_gen.default.Sheet_tpch.Tpch_gen.sf in
  let seed = ref Sheet_tpch.Tpch_gen.default.Sheet_tpch.Tpch_gen.seed in
  let views = ref false in
  let rec parse = function
    | [] -> ()
    | "--sf" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0.0 -> sf := f
        | _ ->
            prerr_endline "tpchgen: --sf expects a positive number";
            exit 2);
        parse rest
    | "--seed" :: v :: rest ->
        (match int_of_string_opt v with
        | Some s -> seed := s
        | None ->
            prerr_endline "tpchgen: --seed expects an integer";
            exit 2);
        parse rest
    | "--views" :: rest ->
        views := true;
        parse rest
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
        dir := arg;
        parse rest
    | arg :: _ ->
        Printf.eprintf "tpchgen: unknown option %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let catalog =
    Sheet_tpch.Tpch_gen.generate { Sheet_tpch.Tpch_gen.sf = !sf; seed = !seed }
  in
  let catalog =
    if !views then Sheet_tpch.Tpch_views.install catalog else catalog
  in
  (try Unix.mkdir !dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (e, _, _) ->
      Printf.eprintf "tpchgen: cannot create %s: %s\n" !dir
        (Unix.error_message e);
      exit 1);
  List.iter
    (fun name ->
      let rel = Sheet_sql.Catalog.find_exn catalog name in
      let path = Filename.concat !dir (name ^ ".csv") in
      Csv.write_file path (Csv.of_relation rel);
      Printf.printf "%-24s %6d rows -> %s\n" name
        (Relation.cardinality rel) path)
    (Sheet_sql.Catalog.names catalog);
  Printf.printf "done (sf = %g, seed = %d)\n" !sf !seed
