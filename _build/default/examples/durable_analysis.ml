(* A durable analysis workflow: profile the data, build a query by
   direct manipulation, save the *live* sheet to disk, reload it in a
   "later session", and keep modifying the query where it left off.

   Run with:  dune exec examples/durable_analysis.exe

   This exercises the Save/Open housekeeping operators of Sec. III-C
   backed by real files (Persist), and shows that what is saved is the
   modifiable query state of Sec. V, not a frozen result. *)

open Sheet_rel
open Sheet_core

let run session command =
  match Script.run_silent session command with
  | Ok session -> session
  | Error msg -> failwith (command ^ ": " ^ msg)

let show title session =
  Printf.printf "\n=== %s ===\n\n" title;
  Render.print (Session.current session)

let () =
  let path = Filename.temp_file "musiq_demo" ".sheet" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* --- session one: explore and save --- *)
      let session = Session.create ~name:"cars" Sample_cars.relation in

      Printf.printf "Column profile of the raw data ('describe'):\n\n";
      (match Script.run_line session "describe" with
      | Ok { Script.output = Some text; _ } -> print_string text
      | _ -> ());

      let session =
        run session
          {|select Year >= 2005
select Condition IN ('Good', 'Excellent')
group Model asc
agg avg Price level 2
order Price asc|}
      in
      show "The analysis so far" session;

      let session = run session (Printf.sprintf "export %s" path) in
      Printf.printf "\n(sheet exported to %s)\n" path;
      ignore session;

      (* --- session two: reload and continue --- *)
      let restored = Persist.load ~path in
      let session2 =
        Session.push_sheet
          (Session.create ~name:"scratch" Sample_cars.relation)
          ~label:"Import saved analysis" restored
      in
      show "Reloaded in a fresh session" session2;

      (* the query state survived: list and modify the selections *)
      Printf.printf "\nSelections on Year in the reloaded sheet:\n";
      List.iter
        (fun s ->
          Printf.printf "  #%d: %s\n" s.Query_state.id
            (Expr.to_string s.Query_state.pred))
        (Session.selections_on session2 "Year");

      let year_sel =
        (List.hd (Session.selections_on session2 "Year")).Query_state.id
      in
      let session2 =
        run session2 (Printf.sprintf "replace %d Year = 2006" year_sel)
      in
      show "After modifying the reloaded query (Year >= 2005 -> = 2006)"
        session2;

      Printf.printf "\nGroup tree of the final sheet:\n\n";
      match Script.run_line session2 "tree" with
      | Ok { Script.output = Some text; _ } -> print_string text
      | _ -> ())
