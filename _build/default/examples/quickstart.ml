(* Quickstart: the spreadsheet algebra in five minutes.

   Run with:  dune exec examples/quickstart.exe

   We load the paper's used-car relation (Table I) and perform a small
   direct-manipulation session: every step is one algebra operator,
   and the intermediate result is printed after each — the essence of
   a direct manipulation interface. *)

open Sheet_rel
open Sheet_core

let step session ~what command =
  Printf.printf "\n--- %s\n    (%s)\n\n" what command;
  match Script.run_silent session command with
  | Ok session ->
      Render.print (Session.current session);
      session
  | Error msg ->
      Printf.printf "refused: %s\n" msg;
      session

let () =
  Printf.printf "The used-car database (Table I of the paper):\n\n";
  let session = Session.create ~name:"cars" Sample_cars.relation in
  Render.print (Session.current session);

  (* Organize: group by model and year, order by price. *)
  let session =
    step session ~what:"Group the cars by Model (τ)" "group Model asc"
  in
  let session =
    step session ~what:"Add a second grouping level: Year" "group Year asc"
  in
  let session =
    step session
      ~what:"Order by Price inside the finest groups (λ)"
      "order Price asc"
  in

  (* Manipulate: select and aggregate. *)
  let session =
    step session
      ~what:"Keep cars in Good or Excellent condition (σ)"
      "select Condition IN ('Good', 'Excellent')"
  in
  let session =
    step session
      ~what:"Average price per (Model, Year) group (η) — Table III"
      "agg avg Price level 3"
  in
  let session =
    step session
      ~what:"Keep only cars at or below their group's average (σ over η)"
      "select Price <= Avg_Price"
  in

  (* Modify the query without redoing it (Sec. V). *)
  Printf.printf
    "\n--- Query modification: the first selection was recorded in the \
     query state:\n\n";
  List.iter
    (fun s ->
      Printf.printf "  selection #%d: %s\n" s.Query_state.id
        (Sheet_rel.Expr.to_string s.Query_state.pred))
    (Session.selections_on session "Condition");
  let session =
    step session
      ~what:"Tighten it to Excellent only — history is rewritten"
      "replace 1 Condition = 'Excellent'"
  in

  (* And the history menu. *)
  Printf.printf "\n--- History (all manipulations, undoable):\n\n";
  List.iter
    (fun e -> Printf.printf "  %2d. %s\n" e.Session.index e.Session.label)
    (Session.history session)
