(* Theorem 1 in action: translating SQL into direct manipulation.

   Run with:  dune exec examples/sql_translation.exe

   Takes core single-block SQL queries, shows the operator sequence
   the paper's 7-step procedure produces, runs both the reference SQL
   executor and the spreadsheet plan, and compares the results. *)

open Sheet_rel
open Sheet_core
open Sheet_sql

let catalog =
  Catalog.of_list [ ("cars", Sample_cars.relation) ]

let demonstrate sql =
  Printf.printf "\n=== SQL ===\n%s\n" sql;
  let query = Sql_parser.parse_exn sql in
  match Sql_to_sheet.translate catalog query with
  | Error msg -> Printf.printf "cannot translate: %s\n" msg
  | Ok plan ->
      Printf.printf "\n--- spreadsheet-algebra plan (start on %s) ---\n"
        plan.Sql_to_sheet.first_relation;
      List.iteri
        (fun i op -> Printf.printf "  %2d. %s\n" (i + 1) (Op.describe op))
        plan.Sql_to_sheet.ops;
      (match
         ( Sql_executor.run catalog query,
           Sql_to_sheet.execute catalog query )
       with
      | Ok expected, Ok actual ->
          Printf.printf "\n--- SQL executor result ---\n";
          Table_print.print expected;
          let same =
            Relation.equal_unordered_data
              (Relation.normalize expected)
              (Relation.normalize actual)
          in
          Printf.printf "\nspreadsheet plan result %s the SQL result\n"
            (if same then "MATCHES" else "DIFFERS FROM")
      | Error msg, _ | _, Error msg -> Printf.printf "failed: %s\n" msg)

let () =
  demonstrate
    "SELECT Model, Price FROM cars WHERE Year = 2005 ORDER BY Price DESC";
  demonstrate
    "SELECT Model, Year, avg(Price) AS avg_price, count(*) AS n FROM cars \
     GROUP BY Model, Year ORDER BY Model, Year";
  demonstrate
    "SELECT Model FROM cars GROUP BY Model HAVING avg(Mileage) > 60000";
  demonstrate
    "SELECT Model, sum(Price * 2) AS doubled FROM cars WHERE Condition = \
     'Good' GROUP BY Model"
