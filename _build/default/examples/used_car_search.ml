(* Sam's used-car search — the paper's running scenario, end to end.

   Run with:  dune exec examples/used_car_search.exe

   Sam wants a late-model sedan in good or excellent condition,
   grouped by model and ordered by price; he compares prices against
   the per-group average (Figs. 1-2), then changes his mind about the
   year (Tables IV-V). Along the way we show what the contextual menu
   (Sec. VI) offers at each point. *)

open Sheet_rel
open Sheet_core
open Sheet_ui

let run session command =
  match Script.run_silent session command with
  | Ok session -> session
  | Error msg -> failwith (command ^ ": " ^ msg)

let show title session =
  Printf.printf "\n=== %s ===\n\n" title;
  Render.print (Session.current session)

let show_menu title sheet target =
  Printf.printf "\n--- contextual menu: %s ---\n%s\n" title
    (Context_menu.describe (Context_menu.menu sheet target))

let () =
  let session = Session.create ~name:"cars" Sample_cars.relation in
  show "The dealership's database" session;

  (* Sam right-clicks the Condition header: what can he do? *)
  show_menu "right-click on \"Condition\""
    (Session.current session)
    (Context_menu.Header "Condition");

  (* He cares about Model and Price the most. *)
  let session = run session "group Model asc\ngroup Year asc" in
  let session = run session "order Price asc" in
  let session =
    run session "select Condition IN ('Good', 'Excellent')"
  in
  show "Grouped by Model and Year, good-or-better condition" session;

  (* "Now he wants to know the average price for the Model and Year so
     that he does not overpay" — Fig. 1's aggregation dialog. *)
  show_menu "right-click a Price cell"
    (Session.current session)
    (Context_menu.Cell { column = "Price"; value = Value.Int 15000 });
  let session = run session "agg avg Price level 3" in
  show "With the per-(Model, Year) average price (Table III)" session;

  (* "Now he can filter out all cars more expensive than the average"
     — Fig. 2. *)
  let session = run session "select Price <= Avg_Price" in
  show "Cars at or below their group average" session;

  (* The budget talk: Sam starts over with the Tables IV/V query. *)
  Printf.printf "\n(Starting the Tables IV-V scenario.)\n";
  let session = Session.create ~name:"cars" Sample_cars.relation in
  let session =
    run session
      {|select Year = 2005
select Model = 'Jetta'
select Mileage < 80000
group Condition asc
order Price asc|}
  in
  show "Table IV — before query modification" session;

  (* He right-clicks Year: the menu lists the predicate to modify. *)
  show_menu "right-click on \"Year\""
    (Session.current session)
    (Context_menu.Header "Year");

  let year_sel =
    List.hd (Session.selections_on session "Year")
  in
  let session =
    match
      Session.replace_selection session ~id:year_sel.Query_state.id
        (Expr_parse.parse_string_exn "Year = 2006")
    with
    | Ok s -> s
    | Error e -> failwith (Errors.to_string e)
  in
  show "Table V — after changing Year = 2005 to Year = 2006" session;

  Printf.printf "\nHistory:\n";
  List.iter
    (fun e -> Printf.printf "  %2d. %s\n" e.Session.index e.Session.label)
    (Session.history session)
