(* Decision-support analysis on TPC-H data through the spreadsheet
   algebra.

   Run with:  dune exec examples/tpch_analysis.exe

   Generates the synthetic TPC-H catalog (DESIGN.md §3), installs the
   study views, and walks through three of the study's query tasks by
   direct manipulation — then goes beyond them with a binary-operator
   session (save / join / difference), the part of the algebra the
   study tasks don't need. *)


open Sheet_core
open Sheet_tpch

let run session command =
  match Script.run_silent session command with
  | Ok session -> session
  | Error msg -> failwith (command ^ ": " ^ msg)

let show title session =
  Printf.printf "\n=== %s ===\n\n" title;
  Render.print ~max_rows:12 (Session.current session)

let () =
  let catalog =
    Tpch_views.install (Tpch_gen.generate Tpch_gen.default)
  in
  Printf.printf "Generated TPC-H catalog (sf = %.3f):\n"
    Tpch_gen.default.Tpch_gen.sf;
  List.iter
    (fun (name, n) -> Printf.printf "  %-20s %6d rows\n" name n)
    (Tpch_gen.row_counts catalog);

  let session_on name =
    let session =
      Session.create ~name (Sheet_sql.Catalog.find_exn catalog name)
    in
    (* store every table so binary operators can reach them *)
    List.iter
      (fun n ->
        Store.save (Session.store session) ~name:n
          (Spreadsheet.of_relation ~name:n
             (Sheet_sql.Catalog.find_exn catalog n)))
      (Sheet_sql.Catalog.names catalog);
    session
  in

  (* Study task 1: the pricing summary (TPC-H Q1 analogue). *)
  let t1 = Tpch_tasks.find 1 in
  let session = session_on t1.Tpch_tasks.base in
  let session = run session t1.Tpch_tasks.script in
  show "Task 1 — pricing summary by return flag / line status" session;

  (* Study task 4: returned items by customer. *)
  let t4 = Tpch_tasks.find 4 in
  let session = session_on t4.Tpch_tasks.base in
  let session = run session t4.Tpch_tasks.script in
  show "Task 4 — revenue of returned items per customer" session;

  (* Study task 9: group qualification without writing HAVING. *)
  let t9 = Tpch_tasks.find 9 in
  let session = session_on t9.Tpch_tasks.base in
  let session = run session t9.Tpch_tasks.script in
  show "Task 9 — busy clerks (a HAVING query, zero SQL)" session;

  (* Beyond the tasks: binary operators. Which nations have customers
     but no suppliers? Set difference over projected name sheets. *)
  let session = session_on "customer" in
  let session =
    run session
      {|hide c_custkey
hide c_name
hide c_address
hide c_phone
hide c_acctbal
hide c_mktsegment
hide c_comment
dedup
save customer_nations|}
  in
  Printf.printf
    "\n=== Nations with customers (deduplicated nation keys) ===\n\n";
  Render.print ~max_rows:10 (Session.current session);

  let session = run session "open supplier" in
  let session =
    run session
      {|hide s_suppkey
hide s_name
hide s_address
hide s_phone
hide s_acctbal
hide s_comment
dedup
rename s_nationkey c_nationkey
save supplier_nations|}
  in
  Printf.printf "\n(supplier nations stored; taking the difference)\n";
  let session = run session "open customer_nations" in
  let session = run session "except supplier_nations" in
  show "Customer nations without any supplier" session;

  (* Join the survivors back to readable nation names. *)
  let session = run session "join nation on c_nationkey = n_nationkey" in
  let session =
    run session
      {|hide n_nationkey
hide n_regionkey
hide n_comment
dedup
order n_name asc|}
  in
  show "…with their names" session
