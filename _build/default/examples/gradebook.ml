(* A downstream-user scenario on a fresh domain: course analytics over
   a gradebook CSV — no car dealerships, no TPC-H, just the library as
   an adopter would use it.

   Run with:  dune exec examples/gradebook.exe

   Demonstrates: CSV loading with type inference, column profiling,
   CASE formulas (letter grades), grouping + aggregation, ordering
   groups by an aggregate (order-groups extension), HAVING-style
   selection, and the inverse translation showing the SQL the session
   is equivalent to. *)

open Sheet_rel
open Sheet_core

let gradebook_csv =
  {|student,section,assignment,score
Ada,A,hw1,92
Ada,A,hw2,88
Ada,A,final,95
Grace,A,hw1,78
Grace,A,hw2,84
Grace,A,final,80
Edsger,B,hw1,99
Edsger,B,hw2,97
Edsger,B,final,98
Alan,B,hw1,65
Alan,B,hw2,70
Alan,B,final,58
Barbara,C,hw1,85
Barbara,C,hw2,91
Barbara,C,final,89
Donald,C,hw1,72
Donald,C,hw2,68
Donald,C,final,75
|}

let run session command =
  match Script.run_silent session command with
  | Ok session -> session
  | Error msg -> failwith (command ^ ": " ^ msg)

let show title session =
  Printf.printf "\n=== %s ===\n\n" title;
  Render.print (Session.current session)

let () =
  let rel = Csv.load_relation gradebook_csv in
  let session = Session.create ~name:"gradebook" rel in

  Printf.printf "Column profile (types were inferred from the CSV):\n\n";
  print_string (Profile.render rel);

  (* per-student average, students ranked inside each section *)
  let session =
    run session
      {|group section asc
group student asc
agg avg score level 3 as student_avg
order-groups student_avg desc|}
  in
  show "Per-student averages, best students first within a section"
    session;

  (* letter grades via CASE, then the distribution per section *)
  let session =
    run session
      {|formula letter = CASE WHEN student_avg >= 90 THEN 'A' WHEN student_avg >= 80 THEN 'B' WHEN student_avg >= 70 THEN 'C' ELSE 'F' END|}
  in
  show "With CASE-derived letter grades" session;

  (* which sections average at least 80 overall? HAVING by touch *)
  let session2 =
    run (Session.create ~name:"gradebook" rel)
      {|group section asc
agg avg score level 2 as section_avg
select section_avg >= 80
hide student
hide assignment
hide score|}
  in
  show "Sections averaging >= 80 (a HAVING query, zero SQL)" session2;

  (* ...and the SQL this session is equivalent to *)
  (match
     Sheet_sql.Sql_of_sheet.to_string ~table:"gradebook"
       (Session.current session2)
   with
  | Ok sql -> Printf.printf "\nEquivalent single-block SQL:\n%s\n" sql
  | Error reason -> Printf.printf "\n(not single-block: %s)\n" reason);

  (* prove it: run that SQL against the same data *)
  match
    Sheet_sql.Sql_of_sheet.compile ~table:"gradebook"
      (Session.current session2)
  with
  | Error _ -> ()
  | Ok q ->
      let catalog = Sheet_sql.Catalog.of_list [ ("gradebook", rel) ] in
      (match Sheet_sql.Sql_executor.run catalog q with
      | Ok result ->
          Printf.printf "\nSQL engine agrees:\n";
          Table_print.print result
      | Error msg -> Printf.printf "sql failed: %s\n" msg)
