(* Sheetcol: the columnar image of a row array.

   [of_rows] is a faithful codec, not just an accelerator: [to_rows]
   reproduces the input rows exactly (same constructors, same per-row
   widths), property-tested in test/test_columnar.ml. Ragged inputs
   (possible through [Relation.unsafe_make]) are padded with nulls
   column-wise and their true widths recorded, so the round-trip
   still holds; such images are flagged non-[uniform] and the engine
   never serves predicates from them. *)

module Obs = Sheet_obs.Obs

let c_columns = Obs.Metrics.counter Obs.k_col_columns
let c_dict_entries = Obs.Metrics.counter Obs.k_col_dict_entries

type t = {
  nrows : int;
  cols : Column.t array;
  widths : int array option;
      (* per-row widths when any row's width differs from
         [Array.length cols]; [None] = rectangular *)
}

let nrows t = t.nrows
let width t = Array.length t.cols
let uniform t = t.widths = None
let column t j = t.cols.(j)

let of_rows ?width (rows : Row.t array) : t =
  let n = Array.length rows in
  let w =
    Array.fold_left
      (fun acc row -> max acc (Row.width row))
      (match width with Some w -> max 0 w | None -> 0)
      rows
  in
  let ragged = ref false in
  Array.iter (fun row -> if Row.width row <> w then ragged := true) rows;
  let cols =
    Array.init w (fun j ->
        Column.of_values
          (Array.init n (fun i ->
               let row = rows.(i) in
               if j < Row.width row then Row.get row j else Value.Null)))
  in
  Obs.Metrics.incr ~by:w c_columns;
  Array.iter
    (fun c -> Obs.Metrics.incr ~by:(Column.dict_size c) c_dict_entries)
    cols;
  { nrows = n;
    cols;
    widths =
      (if !ragged then Some (Array.map Row.width rows) else None) }

let row_at t i =
  let w = match t.widths with Some ws -> ws.(i) | None -> width t in
  Array.init w (fun j -> Column.get t.cols.(j) i)

let to_rows t = Array.init t.nrows (row_at t)

let select_cols t positions =
  if not (uniform t) then
    invalid_arg "Columnar.select_cols: ragged image";
  { nrows = t.nrows;
    cols = Array.map (fun j -> t.cols.(j)) positions;
    widths = None }

let append_col t col =
  if not (uniform t) then invalid_arg "Columnar.append_col: ragged image";
  if Column.length col <> t.nrows then
    invalid_arg "Columnar.append_col: length mismatch";
  { t with cols = Array.append t.cols [| col |] }

type stats = {
  columns : int;
  specialized : int;  (* non-Boxed columns *)
  dict_entries : int;
}

let stats t =
  { columns = width t;
    specialized =
      Array.fold_left
        (fun acc c -> if Column.kind_name c = "boxed" then acc else acc + 1)
        0 t.cols;
    dict_entries =
      Array.fold_left (fun acc c -> acc + Column.dict_size c) 0 t.cols }
