(** Rows (tuples) are immutable arrays of values, positionally aligned
    with a {!Schema.t}. *)

type t = Value.t array

val of_list : Value.t list -> t
val to_list : t -> Value.t list
val get : t -> int -> Value.t
val width : t -> int

val append : t -> t -> t
val append1 : t -> Value.t -> t
val remove_at : t -> int -> t
val set_at : t -> int -> Value.t -> t
(** Functional update: returns a fresh row. *)

val project : t -> int list -> t
(** Keep values at the given positions, in the order given. *)

val project_arr : t -> int array -> t
(** {!project} with precompiled positions — no per-row list walk. *)

val compare : t -> t -> int
(** Lexicographic order under {!Value.compare}. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed on real row equality ({!equal} + {!hash}), so
    distinct rows that collide under {!hash} can never merge and
    numerically equal [Int]/[Float] cells key the same slot. *)
