(** Sheetsolve — a small, reusable predicate solver over the
    spreadsheet expression language.

    This is {!Expr_domain}'s interval abstraction promoted into a
    standalone module: each conjunct of a bounded DNF is abstracted
    into one normalized {!constr} per column — an over-approximating
    {!Interval.t} over the non-null values, a finite set of
    {e excluded} values (so equality/disequality atoms like
    [x = 3 AND x <> 3] refute each other), and a flag telling whether
    [NULL] can satisfy the conjunct's literals on that column.

    Everything here is a theorem about {!Expr_eval.eval_pred}'s
    two-valued semantics: comparisons involving [NULL] or incomparable
    types are [false], so a {e positive} atom rejects [NULL] but its
    negation [NOT (x < 10)] {e accepts} it. The solver answers
    "don't know" liberally; a definite verdict is always sound.

    On top of satisfiability sits {!subsumes} — a bounded DNF×DNF
    implication procedure that returns a {!proof} object saying {e
    why} [p] entails [q], usable both by lints (witness columns in
    diagnostics) and by execution (the semantic materialization cache
    in [Sheet_core.Materialize]). *)

type verdict = [ `Maybe | `Unsat of string list ]
(** [`Unsat cols] is a proof that no row satisfies the predicate;
    [cols] are columns whose constraints are contradictory (possibly
    empty when the contradiction is not tied to a column). [`Maybe]
    claims nothing. *)

type constr = {
  itv : Interval.t;  (** over-approximation of the non-null values *)
  excluded : Value.t list;  (** values the column provably avoids *)
  null_ok : bool;  (** can [NULL] satisfy the literals? *)
}
(** The normalized per-column constraint: the concretization is
    [(itv \ excluded)  ∪  (NULL when null_ok)]. *)

type witness = {
  w_col : string;  (** column the implication step pivots on *)
  w_note : string;  (** human-readable "have …, forces …" *)
}

type step =
  | Disjunct_unsat of { disjunct : int; cols : string list }
      (** this disjunct of [p] is itself empty — nothing to entail *)
  | Disjunct_absorbed of {
      disjunct : int;
      into : int;  (** index of the absorbing disjunct of [q] *)
      witnesses : witness list;
    }

type proof =
  | By_cases of step list
      (** one step per disjunct of [p]'s DNF, in order *)
  | By_refutation of string list
      (** [p AND NOT q] is unsatisfiable (global fallback); the list
          names the contradicted columns *)

val check : ?type_of:(string -> Value.vtype option) -> Expr.t -> verdict
(** [type_of] supplies declared column types (from a schema); with
    them the analysis also proves comparisons across incomparable
    types unsatisfiable ([Model < 10] on a string column), tightens
    open integer endpoints ([x > 5 AND x < 6] over ints), and can
    refute small enumerable ranges whose every value is excluded. *)

val satisfiable : ?type_of:(string -> Value.vtype option) -> Expr.t -> bool
(** [false] only on a proof of unsatisfiability. *)

val tautology : ?type_of:(string -> Value.vtype option) -> Expr.t -> bool
(** [true] only when the predicate provably holds on {e every} row —
    including rows with nulls, so [x < 10 OR x >= 10] is {e not} a
    tautology but [x < 10 OR x >= 10 OR x IS NULL] is (given [x]'s
    type). *)

val implies :
  ?type_of:(string -> Value.vtype option) -> Expr.t -> Expr.t -> bool
(** [implies p q]: every row satisfying [p] satisfies [q] (provable).
    Equivalent to [subsumes p q <> None]. *)

val subsumes :
  ?type_of:(string -> Value.vtype option) ->
  Expr.t ->
  Expr.t ->
  proof option
(** [subsumes p q] proves that every row satisfying [p] satisfies
    [q], or returns [None] (which claims nothing). The procedure
    tries disjunct-wise absorption first — each disjunct of [p]'s DNF
    is either unsatisfiable or entailed, literal by literal, by some
    disjunct of [q]'s DNF, with a per-column {!witness} for every
    entailed literal — and falls back to refuting [p AND NOT q]
    wholesale, so it is at least as strong as {!implies} ever was. *)

val equivalent :
  ?type_of:(string -> Value.vtype option) -> Expr.t -> Expr.t -> bool
(** Mutual subsumption: [p] and [q] provably select the same rows
    ([Price < 10000] and [Price <= 9999] over an integer column). *)

val contradiction :
  ?type_of:(string -> Value.vtype option) ->
  Expr.t ->
  Expr.t ->
  string list option
(** [contradiction p q = Some cols] proves no row satisfies both,
    naming the contradicted columns ([x = 3] vs [x <> 3] pivots on
    [x]). *)

val explain : proof -> string
(** Render a proof for diagnostics and the flight recorder. *)

val constr_to_string : constr -> string
(** ["[0, 10) \ {3} or NULL"]-style rendering, for witnesses. *)
