let pad align_right width s =
  let len = String.length s in
  if len >= width then s
  else
    let fill = String.make (width - len) ' ' in
    if align_right then fill ^ s else s ^ fill

let render_cells ?align_right ~header ?(separators_after = []) rows =
  let ncols = List.length header in
  let align =
    match align_right with
    | Some l ->
        assert (List.length l = ncols);
        Array.of_list l
    | None -> Array.make ncols false
  in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Array.iter
      (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-'))
      widths;
    Buffer.add_string buf "+\n"
  in
  let emit_row cells =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad align.(i) widths.(i) cell);
        Buffer.add_char buf ' ')
      cells;
    Buffer.add_string buf "|\n"
  in
  rule ();
  emit_row header;
  rule ();
  List.iteri
    (fun idx row ->
      emit_row row;
      if List.mem idx separators_after then rule ())
    rows;
  rule ();
  Buffer.contents buf

let render (r : Relation.t) =
  let header = Schema.names (Relation.schema r) in
  let align_right =
    List.map
      (fun c -> Value.numeric c.Schema.ty)
      (Schema.columns (Relation.schema r))
  in
  let rows =
    List.map
      (fun row -> List.map Value.to_string (Row.to_list row))
      (Relation.rows r)
  in
  render_cells ~align_right ~header rows

let print r = print_string (render r)
