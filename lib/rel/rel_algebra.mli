(** Relational algebra with multiset semantics.

    These are the relational counterparts (subscript "r" in the paper)
    that the spreadsheet operators are defined against: selection
    [σ_r], projection [π_r], product [×_r], union [∪_r], difference
    [−_r], join [⋈_r], plus sorting, duplicate elimination and
    grouped aggregation used by the SQL executor. *)

exception Algebra_error of string

val select : Expr.t -> Relation.t -> Relation.t
(** [σ_r]: keep rows satisfying the (aggregate-free) predicate.
    Runs columnar (compiled selection vectors over the relation's
    Sheetcol image, morsel-parallel) when the predicate compiles,
    with a row-at-a-time fallback that is observationally identical.
    @raise Algebra_error on an ill-typed predicate. *)

val select_rows :
  ?rel:Relation.t -> Schema.t -> Expr.t list -> Row.t array -> Row.t array
(** Filter a row array through the predicates in order,
    predicate-major (the whole array through the first predicate,
    then the next), each pass morselized. When [rel] is given and
    [Relation.to_array rel] is [data] itself, predicates that compile
    run over [rel]'s columnar image instead. No type checking — for
    replay paths whose predicates were validated at op time. *)

val columnar_filter : Relation.t -> Expr.t list -> Row.t array option
(** The columnar strategy alone: [Some] surviving rows (originals, in
    order) when every predicate compiles against the relation's
    image, [None] otherwise. Exposed for the plan executor's fused
    filter runs. *)

val project : string list -> Relation.t -> Relation.t
(** [π_r]: keep the named columns in the given order; duplicates are
    NOT eliminated (multiset semantics). *)

val product : Relation.t -> Relation.t -> Relation.t
(** [×_r]: clashing right-hand column names get a numeric suffix (see
    {!Schema.concat}). *)

val union : Relation.t -> Relation.t -> Relation.t
(** [∪_r] with bag semantics: the result contains each tuple as many
    times as both operands combined.
    @raise Algebra_error unless the schemas are union-compatible. *)

val diff : Relation.t -> Relation.t -> Relation.t
(** [−_r] with bag semantics: occurrences are subtracted, so
    [{t,t} − {t} = {t}].
    @raise Algebra_error unless the schemas are union-compatible. *)

val join : Expr.t -> Relation.t -> Relation.t -> Relation.t
(** [⋈_r]: product followed by selection on the join condition, which
    may reference columns of both operands (right-hand clashes renamed
    as in {!product}). *)

val equijoin : on:(string * string) -> Relation.t -> Relation.t -> Relation.t
(** Hash equijoin on one column pair [(left_col, right_col)];
    semantically [join (left_col = right_col')] but linear-time, used
    to build large pre-joined views. Result schema as in {!product}. *)

val distinct : Relation.t -> Relation.t
(** Remove duplicate rows, keeping the first occurrence of each. *)

val sort : (string * [ `Asc | `Desc ]) list -> Relation.t -> Relation.t
(** Stable sort by the given key columns; [Null]s sort last in
    ascending order (see {!Value.compare}). *)

val extend : string -> Value.vtype -> (Row.t -> Value.t) -> Relation.t
  -> Relation.t
(** Append a computed column (morsel-parallel; when the input's
    columnar image is already built, the output image is primed with
    the new column). *)

val group_rows : string list -> Relation.t -> (Row.t * Row.t list) list
(** Partition rows by equality on the given columns. Each element is
    (representative key row restricted to the grouping columns, rows
    of the group); groups appear in first-occurrence order. *)

val eval_on : Relation.t -> Row.t -> Expr.t -> Value.t
(** Evaluate an aggregate-free expression on one row of the relation. *)

val aggregate_value : Relation.t -> Row.t list -> Expr.agg_fun ->
  Expr.t option -> Value.t
(** Aggregate [f(arg)] over a set of rows of the relation;
    [Count_star] ignores the argument. *)
