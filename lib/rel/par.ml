(* Morsel-parallel scan scheduling over OCaml 5 domains.

   A scan over [n] rows is split into fixed-size morsels pulled from
   an atomic work counter by [domain_count] domains (the coordinator
   participates). Results are returned per-morsel IN INDEX ORDER, so
   a caller concatenating them gets output bit-identical to a
   sequential pass — determinism comes from the merge order, not from
   scheduling. Below [parallel_threshold] rows (or with one domain)
   the scan runs as a single morsel on the calling domain, so small
   sheets never pay domain spawns.

   Exception policy: every morsel runs to completion or failure, all
   workers are joined, and the error of the LOWEST-indexed failing
   morsel is re-raised — each morsel scans ascending row order, so
   that is the error the sequential pass would have hit first.

   Observability: worker domains must not touch Sheetscope's
   single-writer state, so they only stamp start/duration into
   per-morsel slots; after the join the coordinator feeds the
   par.* counters, the par.morsel histogram, and (under an active
   sink) one pre-timed span event per morsel via [Obs.emit]. *)

module Obs = Sheet_obs.Obs

let g_domains = Obs.Metrics.gauge Obs.k_par_domains
let c_morsels = Obs.Metrics.counter Obs.k_par_morsels
let c_scans = Obs.Metrics.counter Obs.k_par_scans
let h_morsel = Obs.Histogram.histogram Obs.h_par_morsel

let env_domains () =
  match Sys.getenv_opt "SHEETMUSIQ_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)
  | None -> None

(* 0 = not yet resolved; resolution is deferred so tests can set the
   count before the first scan regardless of module init order. *)
let domains = ref 0

let domain_count () =
  if !domains = 0 then
    domains :=
      (match env_domains () with
      | Some n -> n
      | None -> max 1 (Domain.recommended_domain_count ()));
  !domains

let set_domain_count n = domains := max 1 n

let default_parallel_threshold = 32_768
let default_morsel_rows = 8_192

let parallel_threshold = ref default_parallel_threshold
let morsel_rows = ref default_morsel_rows
let set_parallel_threshold n = parallel_threshold := max 1 n
let set_morsel_rows n = morsel_rows := max 1 n

(* [run ~n f] evaluates [f lo hi] over a partition of [0, n) into
   half-open ranges and returns the results in range order. The
   sequential cutover returns [f]'s single result without copying, so
   [concat] on it is zero-cost. *)
let run ~n (f : int -> int -> 'a) : 'a array =
  if n = 0 then [||]
  else begin
    let d = domain_count () in
    Obs.Metrics.set g_domains d;
    let m = !morsel_rows in
    let nm = (n + m - 1) / m in
    if d = 1 || n < !parallel_threshold || nm = 1 then begin
      Obs.Metrics.incr c_morsels;
      [| f 0 n |]
    end
    else begin
      let results : 'a option array = Array.make nm None in
      let errors : exn option array = Array.make nm None in
      let starts = Array.make nm 0 in
      let durs = Array.make nm 0 in
      let next = Atomic.make 0 in
      let work () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= nm then continue := false
          else begin
            let lo = i * m in
            let hi = min n (lo + m) in
            let t0 = Obs.now_ns () in
            (match f lo hi with
            | x -> results.(i) <- Some x
            | exception e -> errors.(i) <- Some e);
            starts.(i) <- t0;
            durs.(i) <- Obs.now_ns () - t0
          end
        done
      in
      let workers =
        Array.init (min (d - 1) (nm - 1)) (fun _ -> Domain.spawn work)
      in
      work ();
      Array.iter Domain.join workers;
      Obs.Metrics.incr c_scans;
      Obs.Metrics.incr ~by:nm c_morsels;
      let emit = Obs.recording () in
      for i = 0 to nm - 1 do
        Obs.Histogram.record h_morsel durs.(i);
        if emit then
          Obs.emit ~kind:"morsel"
            ~rows_in:(min n ((i + 1) * m) - (i * m))
            ~start_ns:starts.(i) ~dur_ns:durs.(i) "par.morsel"
      done;
      let first_error = Array.find_opt Option.is_some errors in
      match first_error with
      | Some (Some e) -> raise e
      | _ ->
          Array.map
            (function Some x -> x | None -> assert false)
            results
    end
  end

(* Merge per-morsel output chunks in morsel order. The single-chunk
   case (sequential cutover) returns the chunk itself. *)
let concat (chunks : 'a array array) : 'a array =
  match Array.length chunks with
  | 0 -> [||]
  | 1 -> chunks.(0)
  | _ ->
      let total = Array.fold_left (fun acc c -> acc + Array.length c) 0 chunks in
      if total = 0 then [||]
      else begin
        let first =
          let rec nonempty i =
            if Array.length chunks.(i) > 0 then chunks.(i).(0)
            else nonempty (i + 1)
          in
          nonempty 0
        in
        let out = Array.make total first in
        let k = ref 0 in
        Array.iter
          (fun c ->
            Array.blit c 0 out !k (Array.length c);
            k := !k + Array.length c)
          chunks;
        out
      end
