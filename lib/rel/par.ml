(* Morsel-parallel scan scheduling over OCaml 5 domains.

   A scan over [n] rows is split into fixed-size morsels pulled from
   an atomic work counter by [domain_count] domains (the coordinator
   participates). Results are returned per-morsel IN INDEX ORDER, so
   a caller concatenating them gets output bit-identical to a
   sequential pass — determinism comes from the merge order, not from
   scheduling.

   Morselization depends only on (n, parallel_threshold, morsel_rows)
   — never on the domain count — so the par.* counters and the
   par.morsel histogram read identically whether the morsels ran on
   one domain or eight (the @par gate replays TPC-H under 1 vs 4
   domains and asserts exactly that). Below [parallel_threshold] rows
   the scan runs as a single morsel on the calling domain, so small
   sheets never pay the machinery; with one domain the calling domain
   simply drains the morsel queue itself, spawning nothing.

   Exception policy: every morsel runs to completion or failure, all
   workers are joined, and the error of the LOWEST-indexed failing
   morsel is re-raised — each morsel scans ascending row order, so
   that is the error the sequential pass would have hit first.

   Observability: since Sheetscope v3 the metric cells are sharded
   per domain and the event ring is mutex-protected, so each worker
   records its own morsels live — histogram sample, morsel counter,
   and (under an active sink) the span event — at the nesting depth
   the coordinator captured before the fan-out. The old post-join
   replay of pre-timed spans is gone. *)

module Obs = Sheet_obs.Obs

let g_domains = Obs.Metrics.gauge Obs.k_par_domains
let c_morsels = Obs.Metrics.counter Obs.k_par_morsels
let c_scans = Obs.Metrics.counter Obs.k_par_scans
let h_morsel = Obs.Histogram.histogram Obs.h_par_morsel

let env_domains () =
  Obs.Env.int_at_least ~min:1
    ~fallback:"Domain.recommended_domain_count" "SHEETMUSIQ_DOMAINS"

(* 0 = not yet resolved; resolution is deferred so tests can set the
   count before the first scan regardless of module init order. *)
let domains = ref 0

let domain_count () =
  if !domains = 0 then
    domains :=
      (match env_domains () with
      | Some n -> n
      | None -> max 1 (Domain.recommended_domain_count ()));
  !domains

let set_domain_count n = domains := max 1 n
let reset_domain_count_for_tests () = domains := 0

let default_parallel_threshold = 32_768
let default_morsel_rows = 8_192

let parallel_threshold = ref default_parallel_threshold
let morsel_rows = ref default_morsel_rows
let set_parallel_threshold n = parallel_threshold := max 1 n
let set_morsel_rows n = morsel_rows := max 1 n

(* [run ~n f] evaluates [f lo hi] over a partition of [0, n) into
   half-open ranges and returns the results in range order. The
   sequential cutover returns [f]'s single result without copying, so
   [concat] on it is zero-cost. *)
let run ~n (f : int -> int -> 'a) : 'a array =
  if n = 0 then [||]
  else begin
    let d = domain_count () in
    Obs.Metrics.set g_domains d;
    let m = !morsel_rows in
    let nm = (n + m - 1) / m in
    if n < !parallel_threshold || nm = 1 then begin
      Obs.Metrics.incr c_morsels;
      [| f 0 n |]
    end
    else begin
      let results : 'a option array = Array.make nm None in
      let errors : exn option array = Array.make nm None in
      let next = Atomic.make 0 in
      let emit = Obs.recording () in
      let depth = Obs.current_depth () in
      let work () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= nm then continue := false
          else begin
            let lo = i * m in
            let hi = min n (lo + m) in
            let t0 = Obs.now_ns () in
            (match f lo hi with
            | x -> results.(i) <- Some x
            | exception e -> errors.(i) <- Some e);
            let dt = Obs.now_ns () - t0 in
            Obs.Histogram.record h_morsel dt;
            Obs.Metrics.incr c_morsels;
            if emit then
              Obs.emit ~kind:"morsel" ~rows_in:(hi - lo) ~depth ~start_ns:t0
                ~dur_ns:dt "par.morsel"
          end
        done
      in
      let workers =
        Array.init (min (d - 1) (nm - 1)) (fun _ -> Domain.spawn work)
      in
      work ();
      Array.iter Domain.join workers;
      Obs.Metrics.incr c_scans;
      let first_error = Array.find_opt Option.is_some errors in
      match first_error with
      | Some (Some e) -> raise e
      | _ ->
          Array.map
            (function Some x -> x | None -> assert false)
            results
    end
  end

(* Merge per-morsel output chunks in morsel order. The single-chunk
   case (sequential cutover) returns the chunk itself. *)
let concat (chunks : 'a array array) : 'a array =
  match Array.length chunks with
  | 0 -> [||]
  | 1 -> chunks.(0)
  | _ ->
      let total = Array.fold_left (fun acc c -> acc + Array.length c) 0 chunks in
      if total = 0 then [||]
      else begin
        let first =
          let rec nonempty i =
            if Array.length chunks.(i) > 0 then chunks.(i).(0)
            else nonempty (i + 1)
          in
          nonempty 0
        in
        let out = Array.make total first in
        let k = ref 0 in
        Array.iter
          (fun c ->
            Array.blit c 0 out !k (Array.length c);
            k := !k + Array.length c)
          chunks;
        out
      end
