type verdict = [ `Maybe | `Unsat of string list ]

(* Cap on the disjunctive normal form; past it the analysis gives up
   (`Maybe) rather than blow up on adversarial inputs. *)
let max_disjuncts = 64

type lit = { atom : Expr.t; positive : bool }

(* Bounded DNF of a predicate under two-valued semantics. [pos] false
   means we are normalizing the negation (Not is pushed to the
   leaves); returns None when the form exceeds [max_disjuncts]. *)
let rec dnf (e : Expr.t) ~pos : lit list list option =
  match (e, pos) with
  | Expr.Not a, _ -> dnf a ~pos:(not pos)
  | Expr.Between (a, lo, hi), _ ->
      (* exactly [a >= lo AND a <= hi] under the two-valued evaluation
         (a NULL or incomparable operand fails either way), and the
         expansion lets negation distribute over the two comparisons *)
      dnf
        (Expr.And (Expr.Cmp (Expr.Ge, a, lo), Expr.Cmp (Expr.Le, a, hi)))
        ~pos
  | Expr.And (a, b), true | Expr.Or (a, b), false ->
      (* conjunction: cross product of the two DNFs *)
      Option.bind (dnf a ~pos) (fun da ->
          Option.bind (dnf b ~pos) (fun db ->
              let prod =
                List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) db) da
              in
              if List.length prod > max_disjuncts then None else Some prod))
  | Expr.Or (a, b), true | Expr.And (a, b), false ->
      Option.bind (dnf a ~pos) (fun da ->
          Option.bind (dnf b ~pos) (fun db ->
              let u = da @ db in
              if List.length u > max_disjuncts then None else Some u))
  | atom, positive -> Some [ [ { atom; positive } ] ]

(* ---------- per-column constraints ---------- *)

type constr = { itv : Interval.t; null_ok : bool }

type contrib =
  | Bottom  (** the literal alone is unsatisfiable *)
  | Top  (** no usable information *)
  | Col_constr of string * constr

let flip_cmp = function
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le
  | (Expr.Eq | Expr.Ne) as op -> op

let negate_cmp = function
  | Expr.Lt -> Expr.Ge
  | Expr.Le -> Expr.Gt
  | Expr.Gt -> Expr.Le
  | Expr.Ge -> Expr.Lt
  | Expr.Eq -> Expr.Ne
  | Expr.Ne -> Expr.Eq

(* Comparability bands of the SQL comparison: sql_compare answers only
   within a band, so a positive atom across bands is always false. *)
let band = function
  | Value.TInt | Value.TFloat -> `Num
  | Value.TBool -> `Bool
  | Value.TString -> `String
  | Value.TDate -> `Date

let comparable a b = band a = band b

(* The constraint contributed by [c OP v] (positive) or
   [NOT (c OP v)] (negative), given what we know of [c]'s type. *)
let cmp_contrib ~type_of col op v ~positive =
  if Value.is_null v then
    (* comparison against NULL: constant false *)
    if positive then Bottom else Top
  else
    match (type_of col, Value.type_of v) with
    | Some ty, Some vty when not (comparable ty vty) ->
        (* e.g. [Model < 10] on a string column: never holds *)
        if positive then Bottom else Top
    | _ ->
        if positive then
          Col_constr (col, { itv = Interval.of_cmp op v; null_ok = false })
        else if type_of col <> None then
          (* within a known band the complement of a comparison is the
             negated comparison — plus NULL, which satisfies any
             negated atom *)
          Col_constr
            (col, { itv = Interval.of_cmp (negate_cmp op) v; null_ok = true })
        else
          (* unknown type: the complement also contains every value of
             other bands, unrepresentable as one interval *)
          Top

let atom_contrib ~type_of { atom; positive } =
  (* fold constant atoms ([1 = 1], ['a' < 'b']) down to their value *)
  let atom =
    if Expr.columns atom = [] && not (Expr.has_agg atom) then
      match Expr_eval.eval ~lookup:(fun _ -> raise Not_found) atom with
      | v -> Expr.Const v
      | exception Expr_eval.Eval_error _ -> atom
    else atom
  in
  match atom with
  | Expr.Const v ->
      (* truthy: Bool true is true; Bool false and Null are false *)
      let holds = match v with Value.Bool b -> b | _ -> false in
      if holds = positive then Top else Bottom
  | Expr.Cmp (op, Expr.Col c, Expr.Const v) ->
      cmp_contrib ~type_of c op v ~positive
  | Expr.Cmp (op, Expr.Const v, Expr.Col c) ->
      cmp_contrib ~type_of c (flip_cmp op) v ~positive
  | Expr.In_list (Expr.Col c, vs) ->
      if not positive then Top
      else begin
        match List.filter (fun v -> not (Value.is_null v)) vs with
        | [] -> Bottom  (* IN over nulls-only/empty list never holds *)
        | v0 :: rest ->
            let min_v, max_v =
              List.fold_left
                (fun (mn, mx) v ->
                  ( (if Value.compare v mn < 0 then v else mn),
                    if Value.compare v mx > 0 then v else mx ))
                (v0, v0) rest
            in
            Col_constr
              ( c,
                { itv =
                    { Interval.lo = Interval.Incl min_v;
                      hi = Interval.Incl max_v };
                  null_ok = false } )
      end
  | Expr.Is_null (Expr.Col c) ->
      if positive then
        Col_constr (c, { itv = Interval.empty; null_ok = true })
      else Col_constr (c, { itv = Interval.full; null_ok = false })
  | Expr.Like (Expr.Col c, _) ->
      if positive then
        Col_constr (c, { itv = Interval.full; null_ok = false })
      else Top
  | _ -> Top

(* Meet the contributions of one conjunct into an environment;
   [`Bottom] short-circuits. *)
let conjunct_env ~type_of lits =
  let rec go env = function
    | [] -> `Env env
    | lit :: rest -> (
        match atom_contrib ~type_of lit with
        | Bottom -> `Bottom
        | Top -> go env rest
        | Col_constr (c, k) ->
            let merged =
              match List.assoc_opt c env with
              | None -> k
              | Some k0 ->
                  { itv = Interval.inter k0.itv k.itv;
                    null_ok = k0.null_ok && k.null_ok }
            in
            go ((c, merged) :: List.remove_assoc c env) rest)
  in
  go [] lits

(* A conjunct is provably unsatisfiable when some column's constraint
   admits neither any non-null value nor NULL. *)
let conjunct_unsat ~type_of lits =
  match conjunct_env ~type_of lits with
  | `Bottom -> Some []
  | `Env env ->
      let contradicted =
        List.filter_map
          (fun (c, k) ->
            if
              (not k.null_ok)
              && Interval.is_empty ?ty:(type_of c) k.itv
            then Some c
            else None)
          env
      in
      if contradicted = [] then None else Some contradicted

let default_type_of _ = None

let check ?(type_of = default_type_of) e : verdict =
  match dnf e ~pos:true with
  | None -> `Maybe
  | Some disjuncts -> (
      let rec go cols = function
        | [] -> `Unsat (List.sort_uniq String.compare cols)
        | conj :: rest -> (
            match conjunct_unsat ~type_of conj with
            | Some cs -> go (cs @ cols) rest
            | None -> `Maybe)
      in
      match disjuncts with
      | [] -> `Unsat []  (* an empty disjunction is false *)
      | _ -> go [] disjuncts)

let satisfiable ?type_of e =
  match check ?type_of e with `Unsat _ -> false | `Maybe -> true

let tautology ?type_of e =
  match check ?type_of (Expr.Not e) with
  | `Unsat _ -> true
  | `Maybe -> false

let implies ?type_of p q =
  match check ?type_of (Expr.And (p, Expr.Not q)) with
  | `Unsat _ -> true
  | `Maybe -> false
