(* Since Sheetsolve absorbed the interval/DNF machinery this module is
   the stable façade the lints and the plan optimizer were written
   against; it delegates wholesale. Verdicts are strictly stronger
   than the pre-Sheetsolve analysis (equality/disequality exclusion,
   small-range enumeration) but remain sound, which is all the
   clients assume. *)

type verdict = [ `Maybe | `Unsat of string list ]

let check ?type_of e = (Sheetsolve.check ?type_of e :> verdict)
let satisfiable = Sheetsolve.satisfiable
let tautology = Sheetsolve.tautology
let implies = Sheetsolve.implies
