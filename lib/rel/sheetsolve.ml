type verdict = [ `Maybe | `Unsat of string list ]

(* Cap on the disjunctive normal form; past it the analysis gives up
   (`Maybe) rather than blow up on adversarial inputs. *)
let max_disjuncts = 64

(* Cap on the excluded-value set of one constraint; past it further
   exclusions are dropped, which only loses precision, never
   soundness. *)
let max_excluded = 64

(* Largest discrete range we enumerate when checking whether every
   value of an interval is excluded. *)
let max_enum = 16

type lit = { atom : Expr.t; positive : bool }

(* Bounded DNF of a predicate under two-valued semantics. [pos] false
   means we are normalizing the negation (Not is pushed to the
   leaves); returns None when the form exceeds [max_disjuncts]. *)
let rec dnf (e : Expr.t) ~pos : lit list list option =
  match (e, pos) with
  | Expr.Not a, _ -> dnf a ~pos:(not pos)
  | Expr.Between (a, lo, hi), _ ->
      (* exactly [a >= lo AND a <= hi] under the two-valued evaluation
         (a NULL or incomparable operand fails either way), and the
         expansion lets negation distribute over the two comparisons *)
      dnf
        (Expr.And (Expr.Cmp (Expr.Ge, a, lo), Expr.Cmp (Expr.Le, a, hi)))
        ~pos
  | Expr.And (a, b), true | Expr.Or (a, b), false ->
      (* conjunction: cross product of the two DNFs *)
      Option.bind (dnf a ~pos) (fun da ->
          Option.bind (dnf b ~pos) (fun db ->
              let prod =
                List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) db) da
              in
              if List.length prod > max_disjuncts then None else Some prod))
  | Expr.Or (a, b), true | Expr.And (a, b), false ->
      Option.bind (dnf a ~pos) (fun da ->
          Option.bind (dnf b ~pos) (fun db ->
              let u = da @ db in
              if List.length u > max_disjuncts then None else Some u))
  | atom, positive -> Some [ [ { atom; positive } ] ]

(* ---------- per-column constraints ---------- *)

type constr = { itv : Interval.t; excluded : Value.t list; null_ok : bool }

let top_constr = { itv = Interval.full; excluded = []; null_ok = true }

type contrib =
  | Bottom  (** the literal alone is unsatisfiable *)
  | Top  (** no usable information *)
  | Col_constr of string * constr

let flip_cmp = function
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le
  | (Expr.Eq | Expr.Ne) as op -> op

let negate_cmp = function
  | Expr.Lt -> Expr.Ge
  | Expr.Le -> Expr.Gt
  | Expr.Gt -> Expr.Le
  | Expr.Ge -> Expr.Lt
  | Expr.Eq -> Expr.Ne
  | Expr.Ne -> Expr.Eq

(* Comparability bands of the SQL comparison: sql_compare answers only
   within a band, so a positive atom across bands is always false. *)
let band = function
  | Value.TInt | Value.TFloat -> `Num
  | Value.TBool -> `Bool
  | Value.TString -> `String
  | Value.TDate -> `Date

let comparable a b = band a = band b

(* The constraint contributed by [c OP v] (positive) or
   [NOT (c OP v)] (negative), given what we know of [c]'s type. *)
let cmp_contrib ~type_of col op v ~positive =
  if Value.is_null v then
    (* comparison against NULL: constant false *)
    if positive then Bottom else Top
  else
    match (type_of col, Value.type_of v) with
    | Some ty, Some vty when not (comparable ty vty) ->
        (* e.g. [Model < 10] on a string column: never holds *)
        if positive then Bottom else Top
    | _ -> (
        if positive then
          match op with
          | Expr.Ne ->
              (* [x <> v] holds only on non-null values other than [v]
                 (incomparable operands fail the comparison), so the
                 exclusion is sound even without type knowledge *)
              Col_constr
                (col, { itv = Interval.full; excluded = [ v ]; null_ok = false })
          | _ ->
              Col_constr
                ( col,
                  { itv = Interval.of_cmp op v; excluded = []; null_ok = false }
                )
        else
          match op with
          | Expr.Eq ->
              (* [NOT (x = v)] admits NULL, incomparables and every
                 value other than [v] — exactly the exclusion, sound
                 without type knowledge *)
              Col_constr
                (col, { itv = Interval.full; excluded = [ v ]; null_ok = true })
          | _ when type_of col <> None ->
              (* within a known band the complement of a comparison is
                 the negated comparison — plus NULL, which satisfies
                 any negated atom *)
              Col_constr
                ( col,
                  { itv = Interval.of_cmp (negate_cmp op) v;
                    excluded = [];
                    null_ok = true } )
          | _ ->
              (* unknown type: the complement also contains every value
                 of other bands, unrepresentable as one interval *)
              Top)

let atom_contrib ~type_of { atom; positive } =
  (* fold constant atoms ([1 = 1], ['a' < 'b']) down to their value *)
  let atom =
    if Expr.columns atom = [] && not (Expr.has_agg atom) then
      match Expr_eval.eval ~lookup:(fun _ -> raise Not_found) atom with
      | v -> Expr.Const v
      | exception Expr_eval.Eval_error _ -> atom
    else atom
  in
  match atom with
  | Expr.Const v ->
      (* truthy: Bool true is true; Bool false and Null are false *)
      let holds = match v with Value.Bool b -> b | _ -> false in
      if holds = positive then Top else Bottom
  | Expr.Cmp (op, Expr.Col c, Expr.Const v) ->
      cmp_contrib ~type_of c op v ~positive
  | Expr.Cmp (op, Expr.Const v, Expr.Col c) ->
      cmp_contrib ~type_of c (flip_cmp op) v ~positive
  | Expr.In_list (Expr.Col c, vs) -> (
      let non_null = List.filter (fun v -> not (Value.is_null v)) vs in
      if positive then
        match non_null with
        | [] -> Bottom  (* IN over nulls-only/empty list never holds *)
        | v0 :: rest ->
            let min_v, max_v =
              List.fold_left
                (fun (mn, mx) v ->
                  ( (if Value.compare v mn < 0 then v else mn),
                    if Value.compare v mx > 0 then v else mx ))
                (v0, v0) rest
            in
            Col_constr
              ( c,
                { itv =
                    { Interval.lo = Interval.Incl min_v;
                      hi = Interval.Incl max_v };
                  excluded = [];
                  null_ok = false } )
      else
        (* [NOT (x IN vs)] admits NULL, incomparables and every value
           equal to none of the [vs] — exactly the exclusion set *)
        Col_constr
          (c, { itv = Interval.full; excluded = non_null; null_ok = true }))
  | Expr.Is_null (Expr.Col c) ->
      if positive then
        Col_constr (c, { itv = Interval.empty; excluded = []; null_ok = true })
      else
        Col_constr (c, { itv = Interval.full; excluded = []; null_ok = false })
  | Expr.Like (Expr.Col c, _) ->
      if positive then
        Col_constr (c, { itv = Interval.full; excluded = []; null_ok = false })
      else Top
  | _ -> Top

(* ---------- constraint algebra ---------- *)

let meet_constr a b =
  let excluded =
    let merged =
      List.fold_left
        (fun acc v ->
          if List.exists (Value.equal v) acc then acc else v :: acc)
        (List.rev a.excluded) b.excluded
    in
    let merged = List.rev merged in
    if List.length merged > max_excluded then
      (* dropping exclusions only loses precision, never soundness *)
      List.filteri (fun i _ -> i < max_excluded) merged
    else merged
  in
  { itv = Interval.inter a.itv b.itv;
    excluded;
    null_ok = a.null_ok && b.null_ok }

(* Enumerate the (non-null) values of a small interval: a closed point
   of any type, or a short integer/date range. [None] means "too big
   or not enumerable", never "empty". *)
let enum_values ?ty itv =
  let itv = Interval.tighten ty itv in
  match (itv.Interval.lo, itv.Interval.hi) with
  | Interval.Incl a, Interval.Incl b when Value.equal a b -> Some [ a ]
  | Interval.Incl (Value.Int a), Interval.Incl (Value.Int b)
    when ty = Some Value.TInt && b >= a && b - a >= 0 && b - a < max_enum ->
      (* [b - a >= 0] guards against wraparound on astronomical ranges *)
      Some (List.init (b - a + 1) (fun i -> Value.Int (a + i)))
  | Interval.Incl (Value.Date a), Interval.Incl (Value.Date b)
    when ty = Some Value.TDate && b >= a && b - a >= 0 && b - a < max_enum ->
      Some (List.init (b - a + 1) (fun i -> Value.Date (a + i)))
  | _ -> None

(* A constraint is provably unsatisfiable when it admits neither NULL
   nor any non-null value: the interval is empty, or it is a small
   enumerable range whose every value is excluded. *)
let constr_unsat ?ty k =
  (not k.null_ok)
  && (Interval.is_empty ?ty k.itv
     ||
     match enum_values ?ty k.itv with
     | Some vs ->
         vs <> []
         && List.for_all
              (fun v -> List.exists (Value.equal v) k.excluded)
              vs
     | None -> false)

(* Meet the contributions of one conjunct into an environment;
   [`Bottom] short-circuits. *)
let conjunct_env ~type_of lits =
  let rec go env = function
    | [] -> `Env env
    | lit :: rest -> (
        match atom_contrib ~type_of lit with
        | Bottom -> `Bottom
        | Top -> go env rest
        | Col_constr (c, k) ->
            let merged =
              match List.assoc_opt c env with
              | None -> k
              | Some k0 -> meet_constr k0 k
            in
            go ((c, merged) :: List.remove_assoc c env) rest)
  in
  go [] lits

(* Columns of an environment whose constraint admits nothing. *)
let env_unsat_cols ~type_of env =
  let contradicted =
    List.filter_map
      (fun (c, k) ->
        if constr_unsat ?ty:(type_of c) k then Some c else None)
      env
  in
  if contradicted = [] then None
  else Some (List.sort_uniq String.compare contradicted)

(* A conjunct is provably unsatisfiable when some column's constraint
   admits neither any non-null value nor NULL. *)
let conjunct_unsat ~type_of lits =
  match conjunct_env ~type_of lits with
  | `Bottom -> Some []
  | `Env env -> env_unsat_cols ~type_of env

let default_type_of _ = None

let check ?(type_of = default_type_of) e : verdict =
  match dnf e ~pos:true with
  | None -> `Maybe
  | Some disjuncts -> (
      let rec go cols = function
        | [] -> `Unsat (List.sort_uniq String.compare cols)
        | conj :: rest -> (
            match conjunct_unsat ~type_of conj with
            | Some cs -> go (cs @ cols) rest
            | None -> `Maybe)
      in
      match disjuncts with
      | [] -> `Unsat []  (* an empty disjunction is false *)
      | _ -> go [] disjuncts)

let satisfiable ?type_of e =
  match check ?type_of e with `Unsat _ -> false | `Maybe -> true

let tautology ?type_of e =
  match check ?type_of (Expr.Not e) with
  | `Unsat _ -> true
  | `Maybe -> false

(* ---------- subsumption with proof objects ---------- *)

type witness = { w_col : string; w_note : string }

type step =
  | Disjunct_unsat of { disjunct : int; cols : string list }
  | Disjunct_absorbed of {
      disjunct : int;
      into : int;
      witnesses : witness list;
    }

type proof = By_cases of step list | By_refutation of string list

let constr_to_string k =
  let base = Interval.to_string k.itv in
  let ex =
    match k.excluded with
    | [] -> ""
    | vs ->
        " \\ {" ^ String.concat ", " (List.map Value.to_string vs) ^ "}"
  in
  let null = if k.null_ok then " or NULL" else "" in
  base ^ ex ^ null

let lit_to_string lit =
  if lit.positive then Expr.to_string lit.atom
  else "NOT (" ^ Expr.to_string lit.atom ^ ")"

(* Does a disjunct of [p] (literals [plits], abstracted as [env])
   entail every literal of one disjunct of [q]? A literal repeated
   verbatim in [p] is entailed syntactically — this keeps subsumption
   reflexive even for atoms the abstraction cannot read (LIKE,
   column-vs-column comparisons). Otherwise the literal is entailed
   when its negation, met into the environment, is contradictory —
   proving env AND NOT lit empty, i.e. env implies lit. This
   direction is sound even though the environment itself
   over-approximates. *)
let absorbed_by ~type_of plits env qconj =
  let syntactic lit =
    List.exists
      (fun pl -> pl.positive = lit.positive && Expr.equal pl.atom lit.atom)
      plits
  in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | lit :: rest -> (
        if syntactic lit then
          go
            ({ w_col =
                 (match Expr.columns lit.atom with c :: _ -> c | [] -> "");
               w_note =
                 Printf.sprintf "%s appears verbatim in p"
                   (lit_to_string lit) }
            :: acc)
            rest
        else
          match
            atom_contrib ~type_of { lit with positive = not lit.positive }
          with
          | Bottom -> go acc rest  (* the literal is a tautology *)
          | Top -> None
          | Col_constr (c, k) ->
              let have =
                Option.value (List.assoc_opt c env) ~default:top_constr
              in
              if constr_unsat ?ty:(type_of c) (meet_constr have k) then
                go
                  ({ w_col = c;
                     w_note =
                       Printf.sprintf "%s in %s forces %s" c
                         (constr_to_string have) (lit_to_string lit) }
                  :: acc)
                  rest
              else None)
  in
  go [] qconj

let find_absorber ~type_of plits env qdisjuncts =
  let rec go j = function
    | [] -> None
    | qconj :: rest -> (
        match absorbed_by ~type_of plits env qconj with
        | Some witnesses -> Some (j, witnesses)
        | None -> go (j + 1) rest)
  in
  go 0 qdisjuncts

let subsumes ?(type_of = default_type_of) p q =
  (* global fallback: refute [p AND NOT q] wholesale — at least as
     strong as the by-cases route on forms the DNF cap rejects *)
  let fallback () =
    match check ~type_of (Expr.And (p, Expr.Not q)) with
    | `Unsat cols -> Some (By_refutation cols)
    | `Maybe -> None
  in
  match (dnf p ~pos:true, dnf q ~pos:true) with
  | Some dp, Some dq ->
      let rec go i acc = function
        | [] -> Some (By_cases (List.rev acc))
        | conj :: rest -> (
            let step =
              match conjunct_env ~type_of conj with
              | `Bottom -> Some (Disjunct_unsat { disjunct = i; cols = [] })
              | `Env env -> (
                  match env_unsat_cols ~type_of env with
                  | Some cols ->
                      Some (Disjunct_unsat { disjunct = i; cols })
                  | None -> (
                      match find_absorber ~type_of conj env dq with
                      | Some (into, witnesses) ->
                          Some
                            (Disjunct_absorbed
                               { disjunct = i; into; witnesses })
                      | None -> None))
            in
            match step with
            | Some s -> go (i + 1) (s :: acc) rest
            | None -> fallback ())
      in
      go 0 [] dp
  | _ -> fallback ()

let implies ?type_of p q = subsumes ?type_of p q <> None

let equivalent ?type_of p q = implies ?type_of p q && implies ?type_of q p

let contradiction ?type_of p q =
  match check ?type_of (Expr.And (p, q)) with
  | `Unsat cols -> Some cols
  | `Maybe -> None

let explain = function
  | By_refutation [] -> "p AND NOT q is unsatisfiable"
  | By_refutation cols ->
      Printf.sprintf "p AND NOT q is unsatisfiable (columns: %s)"
        (String.concat ", " cols)
  | By_cases steps ->
      steps
      |> List.map (function
           | Disjunct_unsat { disjunct; cols = [] } ->
               Printf.sprintf "disjunct %d of p is empty" disjunct
           | Disjunct_unsat { disjunct; cols } ->
               Printf.sprintf "disjunct %d of p is empty (columns: %s)"
                 disjunct (String.concat ", " cols)
           | Disjunct_absorbed { disjunct; into; witnesses } ->
               Printf.sprintf "disjunct %d of p is absorbed by disjunct %d of q%s"
                 disjunct into
                 (match witnesses with
                 | [] -> ""
                 | ws ->
                     ": "
                     ^ String.concat "; "
                         (List.map (fun w -> w.w_note) ws)))
      |> String.concat "\n"
