(* Sheetcol: one type-specialized column of a relation.

   A column is materialized from boxed [Value.t] cells exactly once
   (see Columnar); afterwards predicate compilation (Col_pred) runs
   over the unboxed arrays directly. Specialization requires every
   non-null cell to carry the SAME constructor — an int-typed value
   sitting in a float column stays [Boxed], because the codec must
   reproduce the original constructors bit-for-bit, not merely
   [Value.equal] ones. Nulls are carried out-of-band in a validity
   bitmap (bit set = non-null); all-null and empty columns stay
   [Boxed] rather than guessing a type. *)

type repr =
  | Ints of int array
  | Floats of float array
  | Dates of int array
  | Bools of bool array
  | Strings of { codes : int array; dict : string array }
      (** [dict.(codes.(i))] is row [i]'s string; codes of null rows
          are 0 (masked by the validity bitmap). *)
  | Boxed of Value.t array
      (** Mixed-constructor / all-null fallback; nulls inline,
          validity is [None]. *)

type t = { repr : repr; validity : Bytes.t option }

let length t =
  match t.repr with
  | Ints a | Dates a -> Array.length a
  | Floats a -> Array.length a
  | Bools a -> Array.length a
  | Strings { codes; _ } -> Array.length codes
  | Boxed a -> Array.length a

let valid_bit b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let is_valid t i =
  match t.validity with None -> true | Some b -> valid_bit b i

let get t i =
  match t.validity with
  | Some b when not (valid_bit b i) -> Value.Null
  | _ -> (
      match t.repr with
      | Ints a -> Value.Int a.(i)
      | Floats a -> Value.Float a.(i)
      | Dates a -> Value.Date a.(i)
      | Bools a -> Value.Bool a.(i)
      | Strings { codes; dict } -> Value.String dict.(codes.(i))
      | Boxed a -> a.(i))

let kind_name t =
  match t.repr with
  | Ints _ -> "int"
  | Floats _ -> "float"
  | Dates _ -> "date"
  | Bools _ -> "bool"
  | Strings _ -> "string"
  | Boxed _ -> "boxed"

let dict_size t =
  match t.repr with Strings { dict; _ } -> Array.length dict | _ -> 0

(* Constructor classification for [of_values]: which single
   constructor, if any, covers every non-null cell. *)
type kind = KInt | KFloat | KDate | KBool | KString

let kind_of = function
  | Value.Int _ -> Some KInt
  | Value.Float _ -> Some KFloat
  | Value.Date _ -> Some KDate
  | Value.Bool _ -> Some KBool
  | Value.String _ -> Some KString
  | Value.Null -> None

let of_values (cells : Value.t array) : t =
  let n = Array.length cells in
  let uniform = ref None and mixed = ref false and nulls = ref 0 in
  for i = 0 to n - 1 do
    match kind_of cells.(i) with
    | None -> incr nulls
    | Some k -> (
        match !uniform with
        | None -> uniform := Some k
        | Some k' -> if k <> k' then mixed := true)
  done;
  match !uniform with
  | Some k when not !mixed ->
      let validity =
        if !nulls = 0 then None
        else begin
          let b = Bytes.make ((n + 7) / 8) '\x00' in
          for i = 0 to n - 1 do
            if not (Value.is_null cells.(i)) then
              Bytes.unsafe_set b (i lsr 3)
                (Char.chr
                   (Char.code (Bytes.unsafe_get b (i lsr 3))
                   lor (1 lsl (i land 7))))
          done;
          Some b
        end
      in
      let repr =
        match k with
        | KInt ->
            Ints
              (Array.init n (fun i ->
                   match cells.(i) with Value.Int x -> x | _ -> 0))
        | KFloat ->
            Floats
              (Array.init n (fun i ->
                   match cells.(i) with Value.Float x -> x | _ -> 0.))
        | KDate ->
            Dates
              (Array.init n (fun i ->
                   match cells.(i) with Value.Date x -> x | _ -> 0))
        | KBool ->
            Bools
              (Array.init n (fun i ->
                   match cells.(i) with Value.Bool x -> x | _ -> false))
        | KString ->
            let table = Hashtbl.create 64 in
            let dict = Vec.create () in
            let codes =
              Array.init n (fun i ->
                  match cells.(i) with
                  | Value.String s -> (
                      match Hashtbl.find_opt table s with
                      | Some c -> c
                      | None ->
                          let c = Vec.length dict in
                          Hashtbl.add table s c;
                          Vec.push dict s;
                          c)
                  | _ -> 0)
            in
            Strings { codes; dict = Vec.to_array dict }
      in
      { repr; validity }
  | _ ->
      (* mixed constructors, all-null, or empty: keep the cells boxed
         (the array is built fresh by the caller and owned here) *)
      { repr = Boxed cells; validity = None }
