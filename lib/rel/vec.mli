(** Minimal growable vector (amortized O(1) push); stands in for the
    [Dynarray] module OCaml gains only in 5.2. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val to_array : 'a t -> 'a array
(** Fresh array of the first [length] elements. *)

val iter : ('a -> unit) -> 'a t -> unit

val filter_array : ('a -> bool) -> 'a array -> 'a array
(** Order-preserving filter over a plain array; single pass, one
    final trim copy. *)

val stable_sorted : ('a -> 'a -> int) -> 'a array -> 'a array
(** Stable merge sort into a fresh array; the input is not mutated. *)
