(** Typed atomic values stored in spreadsheet and relation cells.

    The value domain follows the paper's examples: integers, floating
    point numbers, strings, booleans and calendar dates, plus SQL-style
    [Null]. Dates are stored as days since the Unix epoch (negative
    values reach before 1970), which keeps comparison and arithmetic
    trivial. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int  (** days since 1970-01-01 *)

(** Runtime types of values. [Null] inhabits every type. *)
type vtype = TBool | TInt | TFloat | TString | TDate

val type_of : t -> vtype option
(** [type_of v] is [None] for [Null], [Some ty] otherwise. *)

val type_name : vtype -> string

val is_null : t -> bool

val numeric : vtype -> bool
(** [numeric ty] holds for [TInt] and [TFloat]. *)

val subtype : vtype -> vtype -> bool
(** [subtype a b] — a value of type [a] may be used where [b] is
    expected ([TInt] is a subtype of [TFloat]; every type of itself). *)

val unify : vtype -> vtype -> vtype option
(** Least common supertype of two types, if any. *)

val compare : t -> t -> int
(** Total order used for sorting and multiset normalization. [Null]
    sorts after every non-null value; [Int] and [Float] compare
    numerically across constructors; distinct incomparable types
    compare by an arbitrary fixed type rank. *)

val equal : t -> t -> bool
(** Equality consistent with {!compare} (so [Int 1] equals
    [Float 1.0]). *)

val sql_compare : t -> t -> int option
(** SQL-flavoured comparison used by predicates: [None] whenever
    either side is [Null] or the types are incomparable, otherwise
    [Some c] with [c] as {!compare}. *)

val hash : t -> int

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed on value equality ({!equal} + {!hash}), so
    numerically equal [Int]/[Float] values key the same slot and hash
    collisions between distinct values are resolved by the table. *)

val to_float : t -> float option
(** Numeric view of a value, [None] for non-numeric or [Null]. *)

val of_ymd : int -> int -> int -> t
(** [of_ymd y m d] builds a [Date] from a civil calendar date
    (proleptic Gregorian). *)

val ymd_of_days : int -> int * int * int
(** Inverse of the civil-from-days calculation. *)

val to_string : t -> string
(** Display form: dates as [YYYY-MM-DD], floats without trailing
    noise, [Null] as the empty string's placeholder ["NULL"]. *)

val to_csv_string : t -> string
(** CSV cell form (no quoting applied; [Null] is the empty string). *)

val pp : Format.formatter -> t -> unit

val parse_typed : vtype -> string -> t option
(** [parse_typed ty s] parses [s] as a value of type [ty]; the empty
    string parses as [Null]. *)

val parse_guess : string -> t
(** Best-effort parse used by the CSV loader: tries bool, int, float,
    date, falls back to string; empty string is [Null]. *)
