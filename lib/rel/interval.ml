type bound =
  | Unbounded
  | Incl of Value.t
  | Excl of Value.t

type t = { lo : bound; hi : bound }

let full = { lo = Unbounded; hi = Unbounded }

(* Canonical empty: an open degenerate range. Any representation with
   [lo >= hi] (strictly, for open endpoints) is detected by
   {!is_empty}. *)
let empty = { lo = Excl (Value.Bool false); hi = Excl (Value.Bool false) }

let point v = { lo = Incl v; hi = Incl v }

let of_cmp (op : Expr.cmp) (v : Value.t) : t =
  if Value.is_null v then
    (* SQL comparison against NULL never holds *)
    empty
  else
    match op with
    | Expr.Eq -> point v
    | Expr.Ne -> full
    | Expr.Lt -> { lo = Unbounded; hi = Excl v }
    | Expr.Le -> { lo = Unbounded; hi = Incl v }
    | Expr.Gt -> { lo = Excl v; hi = Unbounded }
    | Expr.Ge -> { lo = Incl v; hi = Unbounded }

(* Discrete tightening: over an integer-valued order (ints, dates) an
   open endpoint is equivalent to the closed endpoint one step in. *)
let tighten ty { lo; hi } =
  let discrete =
    match ty with Some Value.TInt | Some Value.TDate -> true | _ -> false
  in
  if not discrete then { lo; hi }
  else
    let lo =
      match lo with
      | Excl (Value.Int n) -> Incl (Value.Int (n + 1))
      | Excl (Value.Date n) -> Incl (Value.Date (n + 1))
      | b -> b
    and hi =
      match hi with
      | Excl (Value.Int n) -> Incl (Value.Int (n - 1))
      | Excl (Value.Date n) -> Incl (Value.Date (n - 1))
      | b -> b
    in
    { lo; hi }

let is_empty ?ty t =
  let { lo; hi } = tighten ty t in
  match (lo, hi) with
  | Unbounded, _ | _, Unbounded -> false
  | Incl a, Incl b -> Value.compare a b > 0
  | Incl a, Excl b | Excl a, Incl b | Excl a, Excl b ->
      Value.compare a b >= 0

(* Lower-bound order: the greater, the tighter. *)
let lo_compare a b =
  match (a, b) with
  | Unbounded, Unbounded -> 0
  | Unbounded, _ -> -1
  | _, Unbounded -> 1
  | (Incl x | Excl x), (Incl y | Excl y) -> (
      match Value.compare x y with
      | 0 -> (
          match (a, b) with
          | Incl _, Excl _ -> -1
          | Excl _, Incl _ -> 1
          | _ -> 0)
      | c -> c)

(* Upper-bound order: the smaller, the tighter. *)
let hi_compare a b =
  match (a, b) with
  | Unbounded, Unbounded -> 0
  | Unbounded, _ -> 1
  | _, Unbounded -> -1
  | (Incl x | Excl x), (Incl y | Excl y) -> (
      match Value.compare x y with
      | 0 -> (
          match (a, b) with
          | Incl _, Excl _ -> 1
          | Excl _, Incl _ -> -1
          | _ -> 0)
      | c -> c)

let inter a b =
  { lo = (if lo_compare a.lo b.lo >= 0 then a.lo else b.lo);
    hi = (if hi_compare a.hi b.hi <= 0 then a.hi else b.hi) }

let subset a b =
  is_empty a || (lo_compare b.lo a.lo <= 0 && hi_compare a.hi b.hi <= 0)

let mem v t =
  (match t.lo with
  | Unbounded -> true
  | Incl x -> Value.compare v x >= 0
  | Excl x -> Value.compare v x > 0)
  && (match t.hi with
     | Unbounded -> true
     | Incl x -> Value.compare v x <= 0
     | Excl x -> Value.compare v x < 0)

let to_string t =
  if is_empty t then "(empty)"
  else
    let lo =
      match t.lo with
      | Unbounded -> "(-inf"
      | Incl v -> "[" ^ Value.to_string v
      | Excl v -> "(" ^ Value.to_string v
    and hi =
      match t.hi with
      | Unbounded -> "+inf)"
      | Incl v -> Value.to_string v ^ "]"
      | Excl v -> Value.to_string v ^ ")"
    in
    lo ^ ", " ^ hi

let pp ppf t = Format.pp_print_string ppf (to_string t)
