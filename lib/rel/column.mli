(** One type-specialized column (Sheetcol).

    The representation is exposed so {!Col_pred} can compile
    predicates directly against the unboxed arrays; everyone else
    should treat values through {!get}. *)

type repr =
  | Ints of int array
  | Floats of float array
  | Dates of int array
  | Bools of bool array
  | Strings of { codes : int array; dict : string array }
      (** Dictionary coding: [dict.(codes.(i))] is row [i]'s string;
          codes under a null bit are 0 and meaningless. *)
  | Boxed of Value.t array
      (** Fallback for mixed-constructor, all-null or empty columns;
          nulls stay inline and [validity] is [None]. *)

type t = { repr : repr; validity : Bytes.t option }
(** [validity]: bit [i] set = row [i] is non-null; [None] = all rows
    valid (or [Boxed]). *)

val of_values : Value.t array -> t
(** Materialize a column. Specializes only when every non-null cell
    carries the same constructor, so {!get} reproduces the input
    exactly (an [Int] in a float-typed column keeps its constructor
    via [Boxed]). The caller cedes ownership of the array. *)

val get : t -> int -> Value.t
(** Row [i]'s value, [Value.Null] under a cleared validity bit. *)

val length : t -> int
val is_valid : t -> int -> bool

val valid_bit : Bytes.t -> int -> bool
(** Raw bitmap test (for compiled predicate loops). *)

val kind_name : t -> string
(** ["int" | "float" | "date" | "bool" | "string" | "boxed"]. *)

val dict_size : t -> int
(** Number of distinct dictionary entries; 0 for non-string columns. *)
