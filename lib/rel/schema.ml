type column = { name : string; ty : Value.vtype }

type t = { cols : column array }

exception Schema_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Schema_error s)) fmt

let check_unique cols =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.name then err "duplicate column %S" c.name
      else Hashtbl.add seen c.name ())
    cols

let make cols =
  check_unique cols;
  { cols = Array.of_list cols }

let of_list l = make (List.map (fun (name, ty) -> { name; ty }) l)

let columns t = Array.to_list t.cols
let names t = Array.to_list (Array.map (fun c -> c.name) t.cols)
let arity t = Array.length t.cols

let find t name =
  let n = Array.length t.cols in
  let rec go i =
    if i >= n then None
    else if t.cols.(i).name = name then Some (i, t.cols.(i))
    else go (i + 1)
  in
  go 0

let mem t name = Option.is_some (find t name)

let index_exn t name =
  match find t name with
  | Some (i, _) -> i
  | None -> err "no such column %S" name

let compile_index t =
  let tbl = Hashtbl.create (max 8 (Array.length t.cols)) in
  Array.iteri (fun i c -> Hashtbl.add tbl c.name i) t.cols;
  fun name ->
    match Hashtbl.find_opt tbl name with
    | Some i -> i
    | None -> err "no such column %S" name

let column_at t i = t.cols.(i)

let type_of t name = Option.map (fun (_, c) -> c.ty) (find t name)

let append t c =
  if mem t c.name then err "column %S already exists" c.name;
  { cols = Array.append t.cols [| c |] }

let remove t name =
  if not (mem t name) then err "no such column %S" name;
  { cols = Array.of_seq (Seq.filter (fun c -> c.name <> name) (Array.to_seq t.cols)) }

let rename t old_name new_name =
  if not (mem t old_name) then err "no such column %S" old_name;
  if old_name <> new_name && mem t new_name then
    err "column %S already exists" new_name;
  { cols =
      Array.map
        (fun c -> if c.name = old_name then { c with name = new_name } else c)
        t.cols }

let restrict t keep =
  make
    (List.map
       (fun name ->
         match find t name with
         | Some (_, c) -> c
         | None -> err "no such column %S" name)
       keep)

let fresh_name t base =
  if not (mem t base) then base
  else
    let rec go i =
      let cand = Printf.sprintf "%s_%d" base i in
      if mem t cand then go (i + 1) else cand
    in
    go 2

let concat_with_mapping a b =
  let mapping = ref [] in
  let result =
    Array.fold_left
      (fun acc c ->
        let name = fresh_name acc c.name in
        mapping := (c.name, name) :: !mapping;
        append acc { c with name })
      a b.cols
  in
  (result, List.rev !mapping)

let concat a b = fst (concat_with_mapping a b)

let union_compatible a b =
  arity a = arity b
  && Array.for_all2 (fun x y -> x.name = y.name && x.ty = y.ty) a.cols b.cols

let equal = union_compatible

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf c -> Format.fprintf ppf "%s:%s" c.name (Value.type_name c.ty)))
    (columns t)
