let is_constant e = Expr.columns e = [] && not (Expr.has_agg e)

let try_fold e =
  if is_constant e then
    match
      Expr_eval.eval ~lookup:(fun _ -> raise Not_found) e
    with
    | v -> Expr.Const v
    | exception Expr_eval.Eval_error _ -> e
  else e

let rec simplify (e : Expr.t) : Expr.t =
  let s = simplify in
  let e =
    match e with
    | Expr.Const _ | Expr.Col _ -> e
    | Expr.Neg a -> Expr.Neg (s a)
    | Expr.Arith (op, a, b) -> Expr.Arith (op, s a, s b)
    | Expr.Concat (a, b) -> Expr.Concat (s a, s b)
    | Expr.Cmp (op, a, b) -> (
        match (s a, s b) with
        (* a comparison against NULL never holds, whatever the other
           side evaluates to *)
        | Expr.Const Value.Null, _ | _, Expr.Const Value.Null ->
            Expr.Const (Value.Bool false)
        | a, b -> Expr.Cmp (op, a, b))
    | Expr.And (a, b) -> (
        match (s a, s b) with
        | Expr.Const (Value.Bool true), x | x, Expr.Const (Value.Bool true)
          ->
            x
        (* NULL is falsy under the two-valued connective semantics *)
        | Expr.Const (Value.Bool false | Value.Null), _
        | _, Expr.Const (Value.Bool false | Value.Null) ->
            Expr.Const (Value.Bool false)
        | a, b when Expr.equal a b -> a  (* idempotence *)
        | a, b -> Expr.And (a, b))
    | Expr.Or (a, b) -> (
        match (s a, s b) with
        | (Expr.Const (Value.Bool true) as t), _
        | _, (Expr.Const (Value.Bool true) as t) ->
            t
        | Expr.Const (Value.Bool false | Value.Null), x
        | x, Expr.Const (Value.Bool false | Value.Null) ->
            x
        | a, b when Expr.equal a b -> a  (* idempotence *)
        | a, b -> Expr.Or (a, b))
    | Expr.Not a -> (
        match s a with
        | Expr.Not inner -> inner
        | Expr.Const (Value.Bool b) -> Expr.Const (Value.Bool (not b))
        | a -> Expr.Not a)
    | Expr.Is_null a -> Expr.Is_null (s a)
    | Expr.Like (a, p) -> Expr.Like (s a, p)
    | Expr.In_list (a, vs) -> Expr.In_list (s a, vs)
    | Expr.Between (a, lo, hi) -> Expr.Between (s a, s lo, s hi)
    | Expr.Fn (g, a) -> Expr.Fn (g, s a)
    | Expr.Case (branches, default) -> (
        (* drop statically-false branches; a statically-true branch
           ends the CASE *)
        let rec walk acc = function
          | [] -> Expr.Case (List.rev acc, Option.map s default)
          | (cond, v) :: rest -> (
              match s cond with
              | Expr.Const (Value.Bool false) -> walk acc rest
              | Expr.Const (Value.Bool true) when acc = [] -> s v
              | Expr.Const (Value.Bool true) ->
                  Expr.Case (List.rev acc, Some (s v))
              | cond -> walk ((cond, s v) :: acc) rest)
        in
        match walk [] branches with
        | Expr.Case ([], Some d) -> d
        | Expr.Case ([], None) -> Expr.Const Value.Null
        | other -> other)
    | Expr.Agg (fn, arg) -> Expr.Agg (fn, Option.map s arg)
  in
  try_fold e
