exception Csv_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Csv_error s)) fmt

let parse_string input =
  let n = String.length input in
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let field_started = ref false in
  let push_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf;
    field_started := false
  in
  let push_row () =
    push_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = '"' then begin
      field_started := true;
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '"' then
          if !i + 1 < n && input.[!i + 1] = '"' then begin
            Buffer.add_char buf '"';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if not !closed then err "unterminated quoted field"
    end
    else if c = ',' then begin
      push_field ();
      incr i
    end
    else if c = '\n' then begin
      push_row ();
      incr i
    end
    else if c = '\r' then incr i
    else begin
      field_started := true;
      Buffer.add_char buf c;
      incr i
    end
  done;
  if Buffer.length buf > 0 || !field_started || !fields <> [] then push_row ();
  List.rev !rows

let infer_type values =
  (* Narrowest vtype accepting every non-empty cell. *)
  let candidates =
    [ Value.TBool; Value.TInt; Value.TFloat; Value.TDate; Value.TString ]
  in
  let fits ty =
    List.for_all
      (fun s -> s = "" || Option.is_some (Value.parse_typed ty s))
      values
  in
  List.find fits candidates

let load_relation ?schema text =
  match parse_string text with
  | [] -> err "empty CSV input"
  | header :: data ->
      let schema =
        match schema with
        | Some s ->
            if Schema.names s <> header then
              err "CSV header does not match the given schema";
            s
        | None ->
            let cols =
              List.mapi
                (fun idx name ->
                  let column = List.map (fun row ->
                      match List.nth_opt row idx with
                      | Some v -> v
                      | None -> err "ragged CSV row") data
                  in
                  (name, infer_type column))
                header
            in
            Schema.of_list cols
      in
      let arity = Schema.arity schema in
      let rows =
        List.map
          (fun record ->
            if List.length record <> arity then err "ragged CSV row";
            Row.of_list
              (List.mapi
                 (fun idx cell ->
                   let c = Schema.column_at schema idx in
                   match Value.parse_typed c.Schema.ty cell with
                   | Some v -> v
                   | None ->
                       err "cell %S does not parse as %s" cell
                         (Value.type_name c.Schema.ty))
                 record))
          data
      in
      Relation.make schema rows

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let of_relation (r : Relation.t) =
  let buf = Buffer.create 1024 in
  let emit_record cells =
    Buffer.add_string buf (String.concat "," (List.map quote_field cells));
    Buffer.add_char buf '\n'
  in
  emit_record (Schema.names (Relation.schema r));
  Relation.iter
    (fun row ->
      emit_record (List.map Value.to_csv_string (Row.to_list row)))
    r;
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)
