(** Relation schemas: ordered lists of named, typed columns.

    Column names are case-sensitive and must be unique within a
    schema. Positions are 0-based. *)

type column = { name : string; ty : Value.vtype }

type t

exception Schema_error of string

val make : column list -> t
(** @raise Schema_error on duplicate column names. *)

val of_list : (string * Value.vtype) list -> t

val columns : t -> column list
val names : t -> string list
val arity : t -> int

val mem : t -> string -> bool
val find : t -> string -> (int * column) option
val index_exn : t -> string -> int
(** @raise Schema_error when the column is absent. *)

val compile_index : t -> string -> int
(** [compile_index t] builds a hash table over the columns once and
    returns an O(1) {!index_exn} — for per-row lookups in inner loops.
    @raise Schema_error when the column is absent. *)

val column_at : t -> int -> column
val type_of : t -> string -> Value.vtype option

val append : t -> column -> t
(** Add a column at the end. @raise Schema_error on a name clash. *)

val remove : t -> string -> t
(** Drop a column by name. @raise Schema_error when absent. *)

val rename : t -> string -> string -> t
(** [rename s old new_]. @raise Schema_error when [old] is absent or
    [new_] clashes. *)

val restrict : t -> string list -> t
(** Keep only the named columns, in the order given. *)

val concat : t -> t -> t
(** Schema of a product/join result; clashing names from the right
    schema are disambiguated with a ["_2"] (then ["_3"], ...) suffix. *)

val concat_with_mapping : t -> t -> t * (string * string) list
(** Like {!concat}, also returning the (original, disambiguated) name
    mapping for the right-hand schema's columns. *)

val union_compatible : t -> t -> bool
(** Same column names and types, in the same order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
