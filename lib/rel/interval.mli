(** Intervals over the total order of {!Value.compare} — the abstract
    domain behind static predicate analysis ({!Expr_domain}).

    An interval denotes a set of {e non-null} values; [Null] (and the
    question of whether a constraint tolerates it) is tracked
    separately by the client, because SQL comparisons never accept
    [Null]. Intervals over-approximate the satisfied set of a
    comparison atom: [x < 10] denotes every value below [Int 10] in
    the total order, which contains all the numbers below ten and is
    therefore a sound superset of the values that actually satisfy the
    comparison.

    Integer endpoints are tightened: an open bound at [Int n] is
    closed to [n±1], so [x > 5 AND x < 6] over an integer column is
    recognized as empty. *)

type bound =
  | Unbounded
  | Incl of Value.t  (** closed endpoint *)
  | Excl of Value.t  (** open endpoint *)

type t = { lo : bound; hi : bound }

val full : t
(** Every non-null value. *)

val empty : t
(** A canonical empty interval. *)

val point : Value.t -> t

val of_cmp : Expr.cmp -> Value.t -> t
(** [of_cmp op v] over-approximates [{x | x op v}] (non-null [x]).
    [Ne] yields {!full} — exclusion of a point is not an interval. *)

val is_empty : ?ty:Value.vtype -> t -> bool
(** Provably empty. [ty], when known to be [TInt] or [TDate],
    enables discrete tightening of open integer endpoints. *)

val tighten : Value.vtype option -> t -> t
(** Close open integer/date endpoints one step in ([x > 5] becomes
    [x >= 6]) when the type is discrete; identity otherwise. Lets
    clients ({!Sheetsolve}) enumerate small discrete ranges. *)

val inter : t -> t -> t

val subset : t -> t -> bool
(** [subset a b]: every value of [a] lies in [b] (conservative:
    [false] when not provable). *)

val mem : Value.t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
