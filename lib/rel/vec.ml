(* Minimal growable vector (OCaml 5.1 has no [Dynarray]). Used by
   operators whose output size is not known up front; [to_array]
   hands the rows to [Relation.unsafe_of_array] with one final copy. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let grown = Array.make (max 8 (2 * cap)) x in
    Array.blit t.data 0 grown 0 t.len;
    t.data <- grown
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let to_array t = Array.sub t.data 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

(* Order-preserving array filter: fill a full-size scratch array and
   trim once — no per-element allocation beyond the final copy. *)
let filter_array keep data =
  let n = Array.length data in
  if n = 0 then [||]
  else begin
    let out = Array.make n data.(0) in
    let k = ref 0 in
    for i = 0 to n - 1 do
      let x = data.(i) in
      if keep x then begin
        out.(!k) <- x;
        incr k
      end
    done;
    if !k = n then out else Array.sub out 0 !k
  end

(* Stable sort into a fresh array. Both branches are merge sorts; the
   stdlib's list sort is measurably faster on small inputs (its merges
   build young immutable cells, no write barrier), while the in-place
   array sort wins once the list's cache behaviour degrades. An index
   permutation loses everywhere: [Array.sort] is heapsort — ~2x the
   comparisons — through a double indirection. *)
let small_sort_cutoff = 4096

let stable_sorted compare data =
  if Array.length data < small_sort_cutoff then
    Array.of_list (List.stable_sort compare (Array.to_list data))
  else begin
    let out = Array.copy data in
    Array.stable_sort compare out;
    out
  end
