(** Multiset relations: a schema plus a bag of rows.

    The paper defines every spreadsheet operator against a relational
    counterpart with multiset semantics (Sec. III-B); this module is
    that substrate. Rows are stored in a flat [Row.t array] built once
    per operator output; the order is incidental — use {!normalize} or
    {!equal} for order-insensitive reasoning. The type is abstract so
    the backing array can never be aliased into a mutated state. *)

type t

exception Relation_error of string

val make : Schema.t -> Row.t list -> t
(** @raise Relation_error when a row's width or value types disagree
    with the schema ([Null] fits every column). *)

val unsafe_make : Schema.t -> Row.t list -> t
(** No validation; for operators whose output is correct by
    construction. *)

val of_array : Schema.t -> Row.t array -> t
(** Validating constructor from an array. The array is owned by the
    relation afterwards and must not be mutated by the caller.
    @raise Relation_error as {!make}. *)

val unsafe_of_array : Schema.t -> Row.t array -> t
(** No validation, no copy: the array is owned by the relation and
    must not be mutated afterwards. This is the fast path every
    operator uses for its output. *)

val empty : Schema.t -> t
val cardinality : t -> int
val schema : t -> Schema.t

val rows : t -> Row.t list
(** Rows as a list — the source-compatible accessor renderers and
    tests use. Memoized: the conversion runs once per relation and
    repeated calls return the same (physically equal) list. *)

val to_array : t -> Row.t array
(** The backing array itself (no copy). Treat it as read-only:
    mutating it breaks relation immutability and the materialization
    cache. *)

val get : t -> int -> Row.t
(** [get t i] is row [i] in storage order. *)

val iter : (Row.t -> unit) -> t -> unit

val with_schema : Schema.t -> t -> t
(** Same rows under a different (same-arity) schema — zero-copy rename. *)

val columnar_view : t -> Columnar.t option
(** The relation's Sheetcol image, built lazily on first use and
    memoized (relations are immutable, so the image can never go
    stale). [None] when the data is ragged (possible only through
    {!unsafe_make}) — the engine then stays on the row path. *)

val columnar_hot : t -> Columnar.t option
(** {!columnar_view} behind a repeated-use heuristic: the first scan
    request on an unbuilt view returns [None] (row path — building
    every column costs more than one scan) and only the second
    builds; relations under 256 rows never opt in (fixed per-scan
    compilation costs exceed a whole row-path pass there). The
    engine's selection paths use this so one-shot intermediate
    relations and tiny demo sheets never pay for machinery they
    cannot amortize. A view built explicitly via {!columnar_view} is
    always served. *)

val columnar_if_built : t -> Columnar.t option
(** The memoized image if a previous {!columnar_view} built one;
    never triggers a build. Operators use this to push column subsets
    and appended columns through projection/extension for free. *)

val unsafe_of_array_with_columnar : Schema.t -> Row.t array -> Columnar.t -> t
(** {!unsafe_of_array} with a pre-built columnar image (which must
    describe exactly [data] under [schema] — correct by construction
    in the operators that derive both together). *)

val column_values : t -> string -> Value.t list
(** All values of a column, in row order. *)

val normalize : t -> t
(** Rows sorted under {!Row.compare}; canonical form of the multiset. *)

val equal : t -> t -> bool
(** Multiset equality: same schema (names and types) and same rows
    regardless of order. *)

val equal_unordered_data : t -> t -> bool
(** Multiset equality of the data only — column names must match but
    types may differ where values still compare equal (used to compare
    SQL results with spreadsheet results, where e.g. an AVG column may
    be [TFloat] on both sides but an int-typed constant column can
    surface as [TInt] vs [TFloat]). *)

val pp : Format.formatter -> t -> unit
