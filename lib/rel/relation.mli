(** Multiset relations: a schema plus a bag of rows.

    The paper defines every spreadsheet operator against a relational
    counterpart with multiset semantics (Sec. III-B); this module is
    that substrate. Rows are stored in a flat [Row.t array] built once
    per operator output; the order is incidental — use {!normalize} or
    {!equal} for order-insensitive reasoning. The type is abstract so
    the backing array can never be aliased into a mutated state. *)

type t

exception Relation_error of string

val make : Schema.t -> Row.t list -> t
(** @raise Relation_error when a row's width or value types disagree
    with the schema ([Null] fits every column). *)

val unsafe_make : Schema.t -> Row.t list -> t
(** No validation; for operators whose output is correct by
    construction. *)

val of_array : Schema.t -> Row.t array -> t
(** Validating constructor from an array. The array is owned by the
    relation afterwards and must not be mutated by the caller.
    @raise Relation_error as {!make}. *)

val unsafe_of_array : Schema.t -> Row.t array -> t
(** No validation, no copy: the array is owned by the relation and
    must not be mutated afterwards. This is the fast path every
    operator uses for its output. *)

val empty : Schema.t -> t
val cardinality : t -> int
val schema : t -> Schema.t

val rows : t -> Row.t list
(** Rows as a fresh list — the source-compatible accessor renderers
    and tests use. O(n) per call; hot paths should use {!to_array}. *)

val to_array : t -> Row.t array
(** The backing array itself (no copy). Treat it as read-only:
    mutating it breaks relation immutability and the materialization
    cache. *)

val get : t -> int -> Row.t
(** [get t i] is row [i] in storage order. *)

val iter : (Row.t -> unit) -> t -> unit

val with_schema : Schema.t -> t -> t
(** Same rows under a different (same-arity) schema — zero-copy rename. *)

val column_values : t -> string -> Value.t list
(** All values of a column, in row order. *)

val normalize : t -> t
(** Rows sorted under {!Row.compare}; canonical form of the multiset. *)

val equal : t -> t -> bool
(** Multiset equality: same schema (names and types) and same rows
    regardless of order. *)

val equal_unordered_data : t -> t -> bool
(** Multiset equality of the data only — column names must match but
    types may differ where values still compare equal (used to compare
    SQL results with spreadsheet results, where e.g. an AVG column may
    be [TFloat] on both sides but an int-typed constant column can
    surface as [TInt] vs [TFloat]). *)

val pp : Format.formatter -> t -> unit
