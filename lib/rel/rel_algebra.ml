module Obs = Sheet_obs.Obs

exception Algebra_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Algebra_error s)) fmt

let lookup_in schema row name = Row.get row (Schema.index_exn schema name)

let eval_on (r : Relation.t) row e =
  Expr_eval.eval ~lookup:(fun name -> lookup_in (Relation.schema r) row name) e

let c_sel_in = Obs.Metrics.counter Obs.k_col_sel_rows_in
let c_sel_out = Obs.Metrics.counter Obs.k_col_sel_rows_out

(* ---------- selection ----------

   Three execution strategies, strongest first:

   1. Columnar: when the relation has a (lazily built, memoized)
      Sheetcol image and every predicate compiles (Col_pred), each
      morsel filters an index selection vector through the compiled
      chain and gathers the surviving row pointers — no Value boxing,
      no per-row name resolution.
   2. Row fallback: predicates are applied predicate-major (the whole
      array through pred 1, then pred 2, ...) with each pass split
      into morsels. This is exactly the historical semantics, error
      order included: a pass raises at its first failing row before
      any later predicate runs.
   3. Both cut over to a single sequential morsel below the Par
      threshold.

   [select_rows] is the shared driver; Materialize's stratified
   replay and the subsumption-serving re-filter call it with the
   relation whose array they are filtering, so they ride the same
   columnar path. *)

let compile_columnar (r : Relation.t) preds =
  match Relation.columnar_hot r with
  | None -> None
  | Some view ->
      let schema = Relation.schema r in
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | p :: rest -> (
            match Col_pred.compile schema view p with
            | Some f -> go (f :: acc) rest
            | None -> None)
      in
      go [] preds

(* Path attribution for the profiler: name which predicates ran as
   compiled selection vectors and which fall back to the row path —
   and why (no columnar image, or the non-total subtree Col_pred
   refuses). Rendering predicates costs a little, so the whole walk
   is skipped unless a profile region is open. *)
let attribute_fallback (r : Relation.t) preds =
  if Obs.Profile.in_region () then
    match Relation.columnar_hot r with
    | None ->
        List.iter
          (fun p ->
            Obs.Profile.note_fallback ~pred:(Expr.to_string p)
              ~reason:"no columnar image")
          preds
    | Some view ->
        let schema = Relation.schema r in
        List.iter
          (fun p ->
            match Col_pred.diagnose schema view p with
            | None -> Obs.Profile.note_compiled (Expr.to_string p)
            | Some subtree ->
                Obs.Profile.note_fallback ~pred:(Expr.to_string p)
                  ~reason:("non-total subtree " ^ subtree))
          preds

let attribute_compiled preds =
  if Obs.Profile.in_region () then
    List.iter (fun p -> Obs.Profile.note_compiled (Expr.to_string p)) preds

(* Columnar filtering of [Relation.to_array r] through [preds];
   [None] when a predicate does not compile (caller falls back to the
   row path). *)
let columnar_filter (r : Relation.t) preds : Row.t array option =
  match compile_columnar r preds with
  | None ->
      attribute_fallback r preds;
      None
  | Some fs ->
      attribute_compiled preds;
      let data = Relation.to_array r in
      let n = Array.length data in
      Obs.Metrics.incr ~by:n c_sel_in;
      let chunks =
        Par.run ~n (fun lo hi ->
            let m = hi - lo in
            let sel = Array.init m (fun i -> lo + i) in
            let k = List.fold_left (fun k f -> f sel k) m fs in
            if k = 0 then [||]
            else begin
              let out = Array.make k data.(Array.unsafe_get sel 0) in
              for j = 0 to k - 1 do
                Array.unsafe_set out j
                  (Array.unsafe_get data (Array.unsafe_get sel j))
              done;
              out
            end)
      in
      let out = Par.concat chunks in
      Obs.Metrics.incr ~by:(Array.length out) c_sel_out;
      Some out

(* One predicate-major row-path pass, morselized. *)
let filter_pass schema pred (data : Row.t array) =
  let index = Schema.compile_index schema in
  let n = Array.length data in
  Par.concat
    (Par.run ~n (fun lo hi ->
         let buf = Array.make (hi - lo) data.(lo) in
         let k = ref 0 in
         for i = lo to hi - 1 do
           let row = Array.unsafe_get data i in
           if
             Expr_eval.eval_pred
               ~lookup:(fun name -> Row.get row (index name))
               pred
           then begin
             Array.unsafe_set buf !k row;
             incr k
           end
         done;
         if !k = hi - lo then buf else Array.sub buf 0 !k))

let select_rows ?rel schema preds (data : Row.t array) =
  match preds with
  | [] -> data
  | _ -> (
      let columnar =
        match rel with
        | Some r when Relation.to_array r == data -> columnar_filter r preds
        | _ ->
            (* no relation handle (or a derived row array): the
               columnar image cannot serve this scan at all *)
            if Obs.Profile.in_region () then
              List.iter
                (fun p ->
                  Obs.Profile.note_fallback ~pred:(Expr.to_string p)
                    ~reason:"detached row array")
                preds;
            None
      in
      match columnar with
      | Some out -> out
      | None -> List.fold_left (fun d p -> filter_pass schema p d) data preds)

let select pred (r : Relation.t) =
  let schema = Relation.schema r in
  (match Expr_check.check_pred schema pred with
  | Ok () -> ()
  | Error msg -> err "selection: %s" msg);
  Relation.unsafe_of_array schema
    (select_rows ~rel:r schema [ pred ] (Relation.to_array r))

let project names (r : Relation.t) =
  let rschema = Relation.schema r in
  let schema = Schema.restrict rschema names in
  let positions =
    Array.of_list (List.map (Schema.index_exn rschema) names)
  in
  let data = Relation.to_array r in
  let out =
    Par.concat
      (Par.run ~n:(Array.length data) (fun lo hi ->
           Array.init (hi - lo) (fun i ->
               Row.project_arr (Array.unsafe_get data (lo + i)) positions)))
  in
  (* a memoized columnar image projects for free: the column subset
     shares the typed arrays *)
  match Relation.columnar_if_built r with
  | Some view ->
      Relation.unsafe_of_array_with_columnar schema out
        (Columnar.select_cols view positions)
  | None -> Relation.unsafe_of_array schema out

let product (a : Relation.t) (b : Relation.t) =
  let schema = Schema.concat (Relation.schema a) (Relation.schema b) in
  let da = Relation.to_array a and db = Relation.to_array b in
  let na = Array.length da and nb = Array.length db in
  if na = 0 || nb = 0 then Relation.empty schema
  else begin
    let out = Array.make (na * nb) da.(0) in
    for i = 0 to na - 1 do
      let ra = da.(i) in
      let base = i * nb in
      for j = 0 to nb - 1 do
        out.(base + j) <- Row.append ra db.(j)
      done
    done;
    Relation.unsafe_of_array schema out
  end

let union (a : Relation.t) (b : Relation.t) =
  if not (Schema.union_compatible (Relation.schema a) (Relation.schema b)) then
    err "union: schemas are not union-compatible";
  Relation.unsafe_of_array (Relation.schema a)
    (Array.append (Relation.to_array a) (Relation.to_array b))

let diff (a : Relation.t) (b : Relation.t) =
  if not (Schema.union_compatible (Relation.schema a) (Relation.schema b)) then
    err "difference: schemas are not union-compatible";
  (* Bag difference: each row of [b] cancels one occurrence in [a],
     earliest first. Keyed on real row equality — O(1) amortized per
     probe, where the old int-keyed bucket lists were rebuilt with
     [List.partition] on every hit. *)
  let db = Relation.to_array b in
  let budget = Row.Tbl.create (max 16 (Array.length db)) in
  Array.iter
    (fun row ->
      match Row.Tbl.find_opt budget row with
      | Some n -> Row.Tbl.replace budget row (n + 1)
      | None -> Row.Tbl.add budget row 1)
    db;
  let keep row =
    match Row.Tbl.find_opt budget row with
    | Some n when n > 0 ->
        Row.Tbl.replace budget row (n - 1);
        false
    | _ -> true
  in
  Relation.unsafe_of_array (Relation.schema a)
    (Vec.filter_array keep (Relation.to_array a))

let join cond (a : Relation.t) (b : Relation.t) =
  let prod = product a b in
  (match Expr_check.check_pred (Relation.schema prod) cond with
  | Ok () -> ()
  | Error msg -> err "join condition: %s" msg);
  select cond prod

let equijoin ~on:(left_col, right_col) (a : Relation.t) (b : Relation.t) =
  let schema = Schema.concat (Relation.schema a) (Relation.schema b) in
  let li = Schema.index_exn (Relation.schema a) left_col in
  let ri = Schema.index_exn (Relation.schema b) right_col in
  let db = Relation.to_array b in
  let index = Value.Tbl.create (max 16 (Array.length db)) in
  Array.iter
    (fun rb ->
      let key = Row.get rb ri in
      if not (Value.is_null key) then
        match Value.Tbl.find_opt index key with
        | Some cell -> cell := rb :: !cell
        | None -> Value.Tbl.add index key (ref [ rb ]))
    db;
  (* Buckets were built by prepending; reverse each once so matches
     come out in right-relation order. *)
  Value.Tbl.iter (fun _ cell -> cell := List.rev !cell) index;
  (* Accumulate into a scratch array seeded at |a| (the exact output
     size for the common key-join), growing by doubling and trimming
     once — the same pattern as Vec.filter_array, but inline so the
     hot loop stays in one function. Building a list first and
     converting loses: the conversion re-stores every element into a
     fresh major-heap array, paying the write barrier twice. *)
  let da = Relation.to_array a in
  let scratch = ref [||] in
  let k = ref 0 in
  let push row =
    if !k >= Array.length !scratch then begin
      let cap =
        if Array.length !scratch = 0 then max 8 (Array.length da)
        else 2 * Array.length !scratch
      in
      let grown = Array.make cap row in
      Array.blit !scratch 0 grown 0 !k;
      scratch := grown
    end;
    !scratch.(!k) <- row;
    incr k
  in
  let rec emit ra = function
    | [] -> ()
    | rb :: rest ->
        push (Row.append ra rb);
        emit ra rest
  in
  (* A [String] key can only equal another [String] (cross-type
     equality exists only between [Int] and [Float]), so when every
     build-side key is a string and there are few of them — the
     dimension-table case — probe a flat string array instead of the
     hash table: no [Value.hash] per left row, and [String.equal]'s
     pointer fast path catches shared key strings. *)
  let string_keys =
    if Value.Tbl.length index > 16 then None
    else
      Value.Tbl.fold
        (fun key cell acc ->
          match (key, acc) with
          | Value.String s, Some (ks, bs) -> Some (s :: ks, !cell :: bs)
          | _ -> None)
        index
        (Some ([], []))
  in
  (match string_keys with
  | Some (ks, bs) ->
      let skeys = Array.of_list ks and sbuckets = Array.of_list bs in
      let nk = Array.length skeys in
      Array.iter
        (fun ra ->
          match Row.get ra li with
          | Value.String s ->
              let rec go i =
                if i < nk then
                  if String.equal (Array.unsafe_get skeys i) s then
                    emit ra (Array.unsafe_get sbuckets i)
                  else go (i + 1)
              in
              go 0
          | _ -> ())
        da
  | None ->
      Array.iter
        (fun ra ->
          let key = Row.get ra li in
          if not (Value.is_null key) then
            match Value.Tbl.find_opt index key with
            | Some cell -> emit ra !cell
            | None -> ())
        da);
  Relation.unsafe_of_array schema
    (if !k = Array.length !scratch then !scratch
     else Array.sub !scratch 0 !k)

let distinct (r : Relation.t) =
  let data = Relation.to_array r in
  let seen = Row.Tbl.create (max 16 (Array.length data)) in
  let keep row =
    if Row.Tbl.mem seen row then false
    else begin
      Row.Tbl.add seen row ();
      true
    end
  in
  Relation.unsafe_of_array (Relation.schema r) (Vec.filter_array keep data)

let sort keys (r : Relation.t) =
  let positions =
    List.map
      (fun (name, dir) -> (Schema.index_exn (Relation.schema r) name, dir))
      keys
  in
  let dirc dir c = match dir with `Asc -> c | `Desc -> -c in
  (* one- and two-key sorts dominate; a specialized comparator skips
     the per-comparison walk over the key list *)
  let compare_rows =
    match positions with
    | [ (i, d) ] ->
        fun ra rb -> dirc d (Value.compare (Row.get ra i) (Row.get rb i))
    | [ (i1, d1); (i2, d2) ] ->
        fun ra rb ->
          let c = dirc d1 (Value.compare (Row.get ra i1) (Row.get rb i1)) in
          if c <> 0 then c
          else dirc d2 (Value.compare (Row.get ra i2) (Row.get rb i2))
    | positions ->
        fun ra rb ->
          let rec go = function
            | [] -> 0
            | (i, dir) :: rest ->
                let c =
                  dirc dir (Value.compare (Row.get ra i) (Row.get rb i))
                in
                if c <> 0 then c else go rest
          in
          go positions
  in
  Relation.unsafe_of_array (Relation.schema r)
    (Vec.stable_sorted compare_rows (Relation.to_array r))

let extend name ty f (r : Relation.t) =
  let schema = Schema.append (Relation.schema r) { Schema.name; ty } in
  let data = Relation.to_array r in
  let prime = Relation.columnar_if_built r <> None in
  (* each morsel evaluates rows in ascending order, so the lowest
     failing morsel's error is the sequential one (see Par) *)
  let chunks =
    Par.run ~n:(Array.length data) (fun lo hi ->
        let m = hi - lo in
        if m = 0 then ([||], [||])
        else begin
          let cells = if prime then Array.make m Value.Null else [||] in
          let rows = Array.make m data.(lo) in
          for i = 0 to m - 1 do
            let row = Array.unsafe_get data (lo + i) in
            let v = f row in
            if prime then Array.unsafe_set cells i v;
            Array.unsafe_set rows i (Row.append1 row v)
          done;
          (rows, cells)
        end)
  in
  let out = Par.concat (Array.map fst chunks) in
  match Relation.columnar_if_built r with
  | Some view ->
      let cells = Par.concat (Array.map snd chunks) in
      Relation.unsafe_of_array_with_columnar schema out
        (Columnar.append_col view (Column.of_values cells))
  | None -> Relation.unsafe_of_array schema out

let group_rows cols (r : Relation.t) =
  let positions =
    Array.of_list (List.map (Schema.index_exn (Relation.schema r)) cols)
  in
  let data = Relation.to_array r in
  let tbl = Row.Tbl.create (max 16 (Array.length data)) in
  let order = Vec.create () in
  Array.iter
    (fun row ->
      let key = Row.project_arr row positions in
      match Row.Tbl.find_opt tbl key with
      | Some cell -> cell := row :: !cell
      | None ->
          let cell = ref [ row ] in
          Row.Tbl.add tbl key cell;
          Vec.push order (key, cell))
    data;
  Array.to_list
    (Array.map (fun (key, cell) -> (key, List.rev !cell)) (Vec.to_array order))

let aggregate_value (r : Relation.t) group_rows g arg =
  let values =
    match (g, arg) with
    | Expr.Count_star, _ -> List.map (fun _ -> Value.Null) group_rows
    | _, Some e -> List.map (fun row -> eval_on r row e) group_rows
    | _, None -> err "aggregate %s needs an argument" (Expr.agg_fun_name g)
  in
  Expr_eval.apply_agg g values
