(** Morsel-parallel scan scheduling over OCaml 5 domains.

    Scans split into fixed-size morsels pulled from an atomic counter
    by [domain_count] domains; per-morsel results come back in morsel
    order, so concatenation is bit-identical to a sequential pass.
    Small inputs (below {!set_parallel_threshold}'s value, default
    32768 rows) or a single domain run as one morsel on the calling
    domain. The domain count resolves from [SHEETMUSIQ_DOMAINS], else
    [Domain.recommended_domain_count ()].

    On a morsel failure every worker is still joined and the
    lowest-indexed morsel's exception is re-raised — the error the
    sequential scan would have hit first. *)

val run : n:int -> (int -> int -> 'a) -> 'a array
(** [run ~n f] evaluates [f lo hi] over a partition of [0, n) into
    half-open morsel ranges; results in range order. [f] runs on
    worker domains: it must not touch Sheetscope sinks or other
    single-writer state (pure reads of shared immutable data are
    fine). Feeds the [par.*] metrics and, under an active sink, one
    pre-timed span per morsel. *)

val concat : 'a array array -> 'a array
(** Merge per-morsel chunks in morsel order; the single-chunk case is
    zero-copy. *)

val domain_count : unit -> int
val set_domain_count : int -> unit
val set_parallel_threshold : int -> unit
val set_morsel_rows : int -> unit

val default_parallel_threshold : int
val default_morsel_rows : int
