(** Morsel-parallel scan scheduling over OCaml 5 domains.

    Scans split into fixed-size morsels pulled from an atomic counter
    by [domain_count] domains; per-morsel results come back in morsel
    order, so concatenation is bit-identical to a sequential pass.
    Morselization depends only on the row count and the
    threshold/morsel-size knobs — never on the domain count — so the
    [par.*] telemetry is identical whatever the parallelism (the
    [@par] gate asserts it). Small inputs (below
    {!set_parallel_threshold}'s value, default 32768 rows) run as one
    morsel on the calling domain. The domain count resolves from
    [SHEETMUSIQ_DOMAINS], else [Domain.recommended_domain_count ()];
    an invalid value warns once through the flight recorder
    ({!Sheet_obs.Obs.Env}).

    On a morsel failure every worker is still joined and the
    lowest-indexed morsel's exception is re-raised — the error the
    sequential scan would have hit first. *)

val run : n:int -> (int -> int -> 'a) -> 'a array
(** [run ~n f] evaluates [f lo hi] over a partition of [0, n) into
    half-open morsel ranges; results in range order. [f] runs on
    worker domains: it may record Sheetscope metrics, histograms and
    completed spans (all domain-safe since v3) but must not open
    spans or touch other single-writer state. Each executing domain
    feeds the [par.*] counters, the [par.morsel] histogram and, under
    an active sink, one live span event per morsel at the
    coordinator's nesting depth. *)

val concat : 'a array array -> 'a array
(** Merge per-morsel chunks in morsel order; the single-chunk case is
    zero-copy. *)

val domain_count : unit -> int
val set_domain_count : int -> unit

val reset_domain_count_for_tests : unit -> unit
(** Forget the resolved count so the next {!domain_count} re-reads
    [SHEETMUSIQ_DOMAINS] — lets tests exercise the env parsing. *)

val set_parallel_threshold : int -> unit
val set_morsel_rows : int -> unit

val default_parallel_threshold : int
val default_morsel_rows : int
