(** Predicate compilation to selection-vector filters (Sheetcol).

    A [filter] consumes the first [k] entries of an ascending index
    array in place and returns the surviving count. Compilation is
    partial by design: only predicate subtrees whose row evaluation
    is total (cannot raise [Eval_error]) compile, so a compiled
    filter is always observationally identical to the row path —
    including two-valued NULL semantics, [Value.sql_compare]'s
    incomparable-types-are-false rule, and NaN-exact float
    comparisons. [None] means "use the row path". *)

type filter = int array -> int -> int

val compile : Schema.t -> Columnar.t -> Expr.t -> filter option
(** Compile against a uniform columnar image whose columns line up
    with the schema positions. Handled forms: boolean constants,
    [And]/[Or]/[Not], [Cmp] between columns and/or constants,
    [Between] with any compilable operands, [In_list] and [Is_null]
    on a column, [Like] on a dictionary-coded string column.
    Anything touching a [Boxed] column returns [None]. *)

val diagnose : Schema.t -> Columnar.t -> Expr.t -> string option
(** [None] when {!compile} succeeds on the whole predicate; otherwise
    the rendering ({!Expr.to_string}) of the smallest subtree that
    blocks compilation — what the profiler's row-path-fallback
    attribution names. *)
