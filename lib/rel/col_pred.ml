(* Compile predicates to selection-vector filters over typed columns.

   A compiled filter [f sel k] takes the first [k] entries of [sel]
   (ascending row indices), keeps the surviving indices in place and
   returns the new count. Compilation is deliberately PARTIAL: only
   subtrees whose row evaluation is total (cannot raise) are
   compiled, so the columnar path can never diverge from the row
   path on error identity — anything else returns [None] and the
   caller falls back to [Expr_eval]. The compiled leaves replicate
   [Expr_eval]'s two-valued NULL semantics exactly:

   - [Cmp] goes through [Value.sql_compare]: NULL or incomparable
     types compare to false. Numeric cross-type comparisons use
     [Float.compare] (NaN-exact, like [Value.compare]).
   - [Between a lo hi] = [a >= lo AND a <= hi] (both bounds always
     evaluate to a total comparison, so the conjunction is
     equivalent).
   - [In_list]/[Like]/[Is_null] on NULL are false.
   - [And]/[Or] short-circuit; compiled operands are pure, so
     sequential filter composition is equivalent.
   - [Like] compiles only against dictionary-coded string columns
     (on any other typed column the row path raises for non-null
     values, so those stay on the row path).

   String predicates evaluate once per DICTIONARY ENTRY into a
   per-code keep table, then test one array load per row. *)

type filter = int array -> int -> int

let keep_none : filter = fun _ _ -> 0
let keep_all : filter = fun _ k -> k

let keep_if (test : int -> bool) : filter =
 fun sel k ->
  let out = ref 0 in
  for i = 0 to k - 1 do
    let idx = Array.unsafe_get sel i in
    if test idx then begin
      Array.unsafe_set sel !out idx;
      incr out
    end
  done;
  !out

(* Guard a test with a column's validity bitmap (NULL fails every
   compiled leaf except IS NULL). *)
let masked (validity : Bytes.t option) test =
  match validity with
  | None -> test
  | Some b -> fun i -> Column.valid_bit b i && test i

let masked2 va vb test =
  match (va, vb) with
  | None, None -> test
  | Some a, None -> fun i -> Column.valid_bit a i && test i
  | None, Some b -> fun i -> Column.valid_bit b i && test i
  | Some a, Some b ->
      fun i -> Column.valid_bit a i && Column.valid_bit b i && test i

let cmp_test (op : Expr.cmp) : int -> bool =
  match op with
  | Expr.Eq -> fun c -> c = 0
  | Expr.Ne -> fun c -> c <> 0
  | Expr.Lt -> fun c -> c < 0
  | Expr.Le -> fun c -> c <= 0
  | Expr.Gt -> fun c -> c > 0
  | Expr.Ge -> fun c -> c >= 0

let flip_cmp : Expr.cmp -> Expr.cmp = function
  | Expr.Eq -> Expr.Eq
  | Expr.Ne -> Expr.Ne
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le

(* column OP constant — mirrors [Value.sql_compare (get col i) v]. *)
let compile_cmp_const op (col : Column.t) (v : Value.t) : filter option =
  let ok = cmp_test op in
  let mask test = Some (keep_if (masked col.Column.validity test)) in
  match (col.Column.repr, v) with
  | Column.Boxed _, _ -> None
  | _, Value.Null -> Some keep_none
  | Column.Ints d, Value.Int k ->
      mask (fun i -> ok (Int.compare (Array.unsafe_get d i) k))
  | Column.Ints d, Value.Float f ->
      mask (fun i ->
          ok (Float.compare (float_of_int (Array.unsafe_get d i)) f))
  | Column.Floats d, Value.Int k ->
      let kf = float_of_int k in
      mask (fun i -> ok (Float.compare (Array.unsafe_get d i) kf))
  | Column.Floats d, Value.Float f ->
      mask (fun i -> ok (Float.compare (Array.unsafe_get d i) f))
  | Column.Dates d, Value.Date k ->
      mask (fun i -> ok (Int.compare (Array.unsafe_get d i) k))
  | Column.Bools d, Value.Bool b ->
      mask (fun i -> ok (Bool.compare (Array.unsafe_get d i) b))
  | Column.Strings { codes; dict }, Value.String s ->
      let keep = Array.map (fun e -> ok (String.compare e s)) dict in
      mask (fun i ->
          Array.unsafe_get keep (Array.unsafe_get codes i))
  | (Column.Ints _ | Column.Floats _ | Column.Dates _ | Column.Bools _
    | Column.Strings _), _ ->
      (* incomparable types: sql_compare = None = false on every row *)
      Some keep_none

(* column OP column. *)
let compile_cmp_cols op (a : Column.t) (b : Column.t) : filter option =
  let ok = cmp_test op in
  let mask test =
    Some (keep_if (masked2 a.Column.validity b.Column.validity test))
  in
  match (a.Column.repr, b.Column.repr) with
  | Column.Boxed _, _ | _, Column.Boxed _ -> None
  | Column.Ints da, Column.Ints db ->
      mask (fun i ->
          ok (Int.compare (Array.unsafe_get da i) (Array.unsafe_get db i)))
  | Column.Ints da, Column.Floats db ->
      mask (fun i ->
          ok
            (Float.compare
               (float_of_int (Array.unsafe_get da i))
               (Array.unsafe_get db i)))
  | Column.Floats da, Column.Ints db ->
      mask (fun i ->
          ok
            (Float.compare (Array.unsafe_get da i)
               (float_of_int (Array.unsafe_get db i))))
  | Column.Floats da, Column.Floats db ->
      mask (fun i ->
          ok (Float.compare (Array.unsafe_get da i) (Array.unsafe_get db i)))
  | Column.Dates da, Column.Dates db ->
      mask (fun i ->
          ok (Int.compare (Array.unsafe_get da i) (Array.unsafe_get db i)))
  | Column.Bools da, Column.Bools db ->
      mask (fun i ->
          ok (Bool.compare (Array.unsafe_get da i) (Array.unsafe_get db i)))
  | Column.Strings sa, Column.Strings sb ->
      mask (fun i ->
          ok
            (String.compare
               sa.dict.(sa.codes.(i))
               sb.dict.(sb.codes.(i))))
  | _ ->
      (* incomparable column types: false on every (non-null) row,
         and false on null rows too *)
      Some keep_none

let compile_in_list (col : Column.t) (vs : Value.t list) : filter option =
  let mask test = Some (keep_if (masked col.Column.validity test)) in
  match col.Column.repr with
  | Column.Boxed _ -> None
  | Column.Ints d ->
      mask (fun i ->
          let x = Array.unsafe_get d i in
          List.exists
            (function
              | Value.Int k -> k = x
              | Value.Float f -> Float.compare (float_of_int x) f = 0
              | _ -> false)
            vs)
  | Column.Floats d ->
      mask (fun i ->
          let x = Array.unsafe_get d i in
          List.exists
            (function
              | Value.Float f -> Float.compare x f = 0
              | Value.Int k -> Float.compare x (float_of_int k) = 0
              | _ -> false)
            vs)
  | Column.Dates d ->
      mask (fun i ->
          let x = Array.unsafe_get d i in
          List.exists (function Value.Date k -> k = x | _ -> false) vs)
  | Column.Bools d ->
      mask (fun i ->
          let x = Array.unsafe_get d i in
          List.exists (function Value.Bool b -> b = x | _ -> false) vs)
  | Column.Strings { codes; dict } ->
      let keep =
        Array.map
          (fun e -> List.exists (Value.equal (Value.String e)) vs)
          dict
      in
      mask (fun i -> Array.unsafe_get keep (Array.unsafe_get codes i))

(* AND: survivors of [fa] feed [fb]. Compiled filters are pure and
   total, so sequential composition matches short-circuit row
   evaluation. *)
let and_filter fa fb : filter = fun sel k -> fb sel (fa sel k)

(* OR: run [fa], recover the rejected candidates (both sequences stay
   ascending subsequences of the input), run [fb] on those, and merge
   the two ascending disjoint index sets back into [sel]. *)
let or_filter fa fb : filter =
 fun sel k ->
  let orig = Array.sub sel 0 k in
  let na = fa sel k in
  let rest = Array.make (max 1 (k - na)) 0 in
  let nr = ref 0 in
  let j = ref 0 in
  for i = 0 to k - 1 do
    let v = Array.unsafe_get orig i in
    if !j < na && Array.unsafe_get sel !j = v then incr j
    else begin
      Array.unsafe_set rest !nr v;
      incr nr
    end
  done;
  let nb = fb rest !nr in
  (* merge sel[0..na) and rest[0..nb), both ascending and disjoint *)
  let merged = Array.make (max 1 (na + nb)) 0 in
  let ia = ref 0 and ib = ref 0 and m = ref 0 in
  let a_at i = Array.unsafe_get sel i and b_at i = Array.unsafe_get rest i in
  while !ia < na || !ib < nb do
    let take_a =
      !ib >= nb || (!ia < na && a_at !ia < b_at !ib)
    in
    if take_a then begin
      Array.unsafe_set merged !m (a_at !ia);
      incr ia
    end
    else begin
      Array.unsafe_set merged !m (b_at !ib);
      incr ib
    end;
    incr m
  done;
  Array.blit merged 0 sel 0 !m;
  !m

(* NOT: complement of the survivors within the candidate set. *)
let not_filter fa : filter =
 fun sel k ->
  let orig = Array.sub sel 0 k in
  let na = fa sel k in
  let survivors = Array.sub sel 0 na in
  let out = ref 0 in
  let j = ref 0 in
  for i = 0 to k - 1 do
    let v = Array.unsafe_get orig i in
    if !j < na && Array.unsafe_get survivors !j = v then incr j
    else begin
      Array.unsafe_set sel !out v;
      incr out
    end
  done;
  !out

let rec compile schema (view : Columnar.t) (e : Expr.t) : filter option =
  let col_of name =
    match Schema.find schema name with
    | Some (i, _) when i < Columnar.width view -> Some (Columnar.column view i)
    | _ -> None
  in
  match e with
  | Expr.Const (Value.Bool true) -> Some keep_all
  | Expr.Const (Value.Bool false) | Expr.Const Value.Null -> Some keep_none
  | Expr.Const _ -> None (* truthy raises on non-bool *)
  | Expr.And (a, b) -> (
      match (compile schema view a, compile schema view b) with
      | Some fa, Some fb -> Some (and_filter fa fb)
      | _ -> None)
  | Expr.Or (a, b) -> (
      match (compile schema view a, compile schema view b) with
      | Some fa, Some fb -> Some (or_filter fa fb)
      | _ -> None)
  | Expr.Not a ->
      Option.map not_filter (compile schema view a)
  | Expr.Cmp (op, Expr.Col a, Expr.Const v) ->
      Option.bind (col_of a) (fun c -> compile_cmp_const op c v)
  | Expr.Cmp (op, Expr.Const v, Expr.Col a) ->
      Option.bind (col_of a) (fun c -> compile_cmp_const (flip_cmp op) c v)
  | Expr.Cmp (op, Expr.Col a, Expr.Col b) ->
      Option.bind (col_of a) (fun ca ->
          Option.bind (col_of b) (fun cb -> compile_cmp_cols op ca cb))
  | Expr.Cmp (op, Expr.Const u, Expr.Const v) -> (
      (* constant comparison: total, fold it now *)
      match Value.sql_compare u v with
      | None -> Some keep_none
      | Some c -> Some (if cmp_test op c then keep_all else keep_none))
  | Expr.Between (a, lo, hi) ->
      (* a BETWEEN lo AND hi = a >= lo AND a <= hi: both comparisons
         are total once compiled, so the conjunction is equivalent to
         the simultaneous form. *)
      compile schema view
        (Expr.And (Expr.Cmp (Expr.Ge, a, lo), Expr.Cmp (Expr.Le, a, hi)))
  | Expr.In_list (Expr.Col a, vs) ->
      Option.bind (col_of a) (fun c -> compile_in_list c vs)
  | Expr.Is_null (Expr.Col a) ->
      Option.bind (col_of a) (fun c ->
          match c.Column.repr with
          | Column.Boxed _ -> None
          | _ -> (
              match c.Column.validity with
              | None -> Some keep_none
              | Some b ->
                  Some (keep_if (fun i -> not (Column.valid_bit b i)))))
  | Expr.Like (Expr.Col a, pattern) ->
      Option.bind (col_of a) (fun c ->
          match c.Column.repr with
          | Column.Strings { codes; dict } ->
              let keep =
                Array.map (fun e -> Expr_eval.like_match ~pattern e) dict
              in
              Some
                (keep_if
                   (masked c.Column.validity (fun i ->
                        Array.unsafe_get keep (Array.unsafe_get codes i))))
          | _ ->
              (* the row path raises on non-string values: not total *)
              None)
  | _ -> None

(* Name the smallest subtree that blocks compilation — the non-total
   (or boxed-column) part the profiler's path attribution reports.
   [None] means [compile] succeeds on the whole predicate. Recursion
   mirrors [compile]'s connective structure so the answer is always a
   genuine blocking leaf, not an enclosing conjunction. *)
let rec diagnose schema (view : Columnar.t) (e : Expr.t) : string option =
  match compile schema view e with
  | Some _ -> None
  | None -> (
      match e with
      | Expr.And (a, b) | Expr.Or (a, b) -> (
          match diagnose schema view a with
          | Some r -> Some r
          | None -> diagnose schema view b)
      | Expr.Not a -> diagnose schema view a
      | Expr.Between (a, lo, hi) ->
          diagnose schema view
            (Expr.And (Expr.Cmp (Expr.Ge, a, lo), Expr.Cmp (Expr.Le, a, hi)))
      | e -> Some (Expr.to_string e))
