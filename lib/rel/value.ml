type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Date of int

type vtype = TBool | TInt | TFloat | TString | TDate

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | String _ -> Some TString
  | Date _ -> Some TDate

let type_name = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TString -> "string"
  | TDate -> "date"

let is_null = function Null -> true | _ -> false

let numeric = function TInt | TFloat -> true | _ -> false

let subtype a b =
  match (a, b) with TInt, TFloat -> true | _ -> a = b

let unify a b =
  if a = b then Some a
  else
    match (a, b) with
    | TInt, TFloat | TFloat, TInt -> Some TFloat
    | _ -> None

(* Fixed rank deciding the order of values of incomparable types, so
   that [compare] is a total order usable for multiset normalization.
   [Null] ranks last: ascending sorts put missing data at the end. *)
let type_rank = function
  | Bool _ -> 0
  | Int _ | Float _ -> 1
  | Date _ -> 2
  | String _ -> 3
  | Null -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | Date x, Date y -> Int.compare x y
  | _ -> Int.compare (type_rank a) (type_rank b)

let equal a b = compare a b = 0

let sql_compare a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Bool _, Bool _
  | Int _, (Int _ | Float _)
  | Float _, (Int _ | Float _)
  | String _, String _
  | Date _, Date _ ->
      Some (compare a b)
  | _ -> None

let hash = function
  | Null -> 0
  | Bool b -> if b then 7 else 3
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s
  | Date d -> 31 * Hashtbl.hash d

(* Hash tables keyed on value equality (consistent with [hash]:
   numerically equal [Int]/[Float] values hash alike). *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal a b = compare a b = 0
  let hash = hash
end)

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

(* Civil-date conversions after Howard Hinnant's algorithms. *)
let days_of_ymd y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let ymd_of_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

let of_ymd y m d = Date (days_of_ymd y m d)

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let to_string = function
  | Null -> "NULL"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> float_to_string f
  | String s -> s
  | Date d ->
      let y, m, dd = ymd_of_days d in
      Printf.sprintf "%04d-%02d-%02d" y m dd

let to_csv_string = function Null -> "" | v -> to_string v

let pp ppf v = Format.pp_print_string ppf (to_string v)

let parse_date s =
  (* Accepts YYYY-MM-DD. *)
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
      | Some y, Some m, Some d
        when m >= 1 && m <= 12 && d >= 1 && d <= 31 && String.length s = 10 ->
          Some (of_ymd y m d)
      | _ -> None)
  | _ -> None

let parse_typed ty s =
  if s = "" then Some Null
  else
    match ty with
    | TBool -> (
        match String.lowercase_ascii s with
        | "true" | "t" | "1" | "yes" -> Some (Bool true)
        | "false" | "f" | "0" | "no" -> Some (Bool false)
        | _ -> None)
    | TInt -> Option.map (fun i -> Int i) (int_of_string_opt s)
    | TFloat -> Option.map (fun f -> Float f) (float_of_string_opt s)
    | TString -> Some (String s)
    | TDate -> parse_date s

let parse_guess s =
  if s = "" then Null
  else
    match String.lowercase_ascii s with
    | "true" -> Bool true
    | "false" -> Bool false
    | _ -> (
        match int_of_string_opt s with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt s with
            | Some f -> Float f
            | None -> (
                match parse_date s with Some d -> d | None -> String s)))
