(* The two memo fields make a relation lazily dual-format: [rows_memo]
   caches the list conversion (satellite of ISSUE 7 — renderers call
   [rows] repeatedly), [col_memo] caches the Sheetcol columnar image.
   Both are derived purely from the immutable [data], so the mutation
   is invisible: any interleaving of builders computes the same
   value. *)
type col_memo =
  | Col_unbuilt
  | Col_built of Columnar.t
  | Col_unavailable  (* ragged data (unsafe_make): never serve columns *)

type t = {
  schema : Schema.t;
  data : Row.t array;
  mutable rows_memo : Row.t list option;
  mutable col_memo : col_memo;
  mutable col_touch : int;
      (* columnar-scan requests served before building (see
         [columnar_hot]) *)
}

exception Relation_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Relation_error s)) fmt

let validate_row schema row =
  let arity = Schema.arity schema in
  if Row.width row <> arity then
    err "row width %d does not match schema arity %d" (Row.width row) arity;
  for i = 0 to arity - 1 do
    let c = Schema.column_at schema i in
    match Value.type_of (Row.get row i) with
    | None -> ()
    | Some ty ->
        if not (Value.subtype ty c.Schema.ty) then
          err "value %s is not of column %s's type %s"
            (Value.to_string (Row.get row i))
            c.Schema.name
            (Value.type_name c.Schema.ty)
  done

let unsafe_of_array schema data =
  { schema; data; rows_memo = None; col_memo = Col_unbuilt; col_touch = 0 }

let of_array schema data =
  Array.iter (validate_row schema) data;
  unsafe_of_array schema data

let make schema rows =
  List.iter (validate_row schema) rows;
  { schema;
    data = Array.of_list rows;
    rows_memo = Some rows;
    col_memo = Col_unbuilt;
    col_touch = 0 }

let unsafe_make schema rows =
  { schema;
    data = Array.of_list rows;
    rows_memo = Some rows;
    col_memo = Col_unbuilt;
    col_touch = 0 }

let empty schema = unsafe_of_array schema [||]
let cardinality t = Array.length t.data
let schema t = t.schema

let rows t =
  match t.rows_memo with
  | Some l -> l
  | None ->
      let l = Array.to_list t.data in
      t.rows_memo <- Some l;
      l

let to_array t = t.data
let get t i = t.data.(i)
let iter f t = Array.iter f t.data

let with_schema schema t = { t with schema }

(* Build (and memoize) the columnar image. Usable only when the data
   is rectangular at the schema's arity — [unsafe_make] can smuggle in
   ragged rows, whose row-path behaviour (index errors) the compiled
   path could not reproduce. *)
let columnar_view t =
  match t.col_memo with
  | Col_built v -> Some v
  | Col_unavailable -> None
  | Col_unbuilt ->
      let arity = Schema.arity t.schema in
      let v = Columnar.of_rows ~width:arity t.data in
      if Columnar.uniform v && Columnar.width v = arity then begin
        t.col_memo <- Col_built v;
        Some v
      end
      else begin
        t.col_memo <- Col_unavailable;
        None
      end

let columnar_if_built t =
  match t.col_memo with Col_built v -> Some v | _ -> None

(* Materializing every column costs more than one row-path scan, so it
   only pays off for relations scanned repeatedly — sheet bases under
   replay, cached subsumers, benchmark fixtures — and is a net loss
   for one-shot intermediates (e.g. inside the SQL executor's
   pipeline, measured at +66% on the TPC-H task bench when built
   eagerly). First scan request: stay on the row path and remember
   the touch; second: build. Below [columnar_min_rows] the fixed
   per-scan costs of the compiled path (predicate compilation, the
   selection vector) exceed a whole row-path pass, so tiny relations
   never opt in — the paper's 6-row demo sheets replay thousands of
   times and would otherwise pay compilation on every materialize. *)
let columnar_min_rows = 256

let columnar_hot t =
  match t.col_memo with
  | Col_built v -> Some v
  | Col_unavailable -> None
  | Col_unbuilt ->
      if Array.length t.data < columnar_min_rows then None
      else if t.col_touch >= 1 then columnar_view t
      else begin
        t.col_touch <- t.col_touch + 1;
        None
      end

let unsafe_of_array_with_columnar schema data view =
  { schema;
    data;
    rows_memo = None;
    col_memo = Col_built view;
    col_touch = 0 }

let column_values t name =
  let i = Schema.index_exn t.schema name in
  Array.to_list (Array.map (fun r -> Row.get r i) t.data)

let sorted_data t =
  let d = Array.copy t.data in
  Array.sort Row.compare d;
  d

let normalize t = unsafe_of_array t.schema (sorted_data t)

let array_equal_rows a b =
  Array.length a = Array.length b
  &&
  let n = Array.length a in
  let rec go i = i >= n || (Row.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let equal a b =
  Schema.equal a.schema b.schema
  && array_equal_rows (sorted_data a) (sorted_data b)

let equal_unordered_data a b =
  Schema.names a.schema = Schema.names b.schema
  && array_equal_rows (sorted_data a) (sorted_data b)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@ %a@]" Schema.pp t.schema
    (Format.pp_print_list Row.pp)
    (rows t)
