type t = { schema : Schema.t; data : Row.t array }

exception Relation_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Relation_error s)) fmt

let validate_row schema row =
  let arity = Schema.arity schema in
  if Row.width row <> arity then
    err "row width %d does not match schema arity %d" (Row.width row) arity;
  for i = 0 to arity - 1 do
    let c = Schema.column_at schema i in
    match Value.type_of (Row.get row i) with
    | None -> ()
    | Some ty ->
        if not (Value.subtype ty c.Schema.ty) then
          err "value %s is not of column %s's type %s"
            (Value.to_string (Row.get row i))
            c.Schema.name
            (Value.type_name c.Schema.ty)
  done

let unsafe_of_array schema data = { schema; data }

let of_array schema data =
  Array.iter (validate_row schema) data;
  { schema; data }

let make schema rows =
  List.iter (validate_row schema) rows;
  { schema; data = Array.of_list rows }

let unsafe_make schema rows = { schema; data = Array.of_list rows }

let empty schema = { schema; data = [||] }
let cardinality t = Array.length t.data
let schema t = t.schema
let rows t = Array.to_list t.data
let to_array t = t.data
let get t i = t.data.(i)
let iter f t = Array.iter f t.data

let with_schema schema t = { t with schema }

let column_values t name =
  let i = Schema.index_exn t.schema name in
  Array.to_list (Array.map (fun r -> Row.get r i) t.data)

let sorted_data t =
  let d = Array.copy t.data in
  Array.sort Row.compare d;
  d

let normalize t = { t with data = sorted_data t }

let array_equal_rows a b =
  Array.length a = Array.length b
  &&
  let n = Array.length a in
  let rec go i = i >= n || (Row.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let equal a b =
  Schema.equal a.schema b.schema
  && array_equal_rows (sorted_data a) (sorted_data b)

let equal_unordered_data a b =
  Schema.names a.schema = Schema.names b.schema
  && array_equal_rows (sorted_data a) (sorted_data b)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@ %a@]" Schema.pp t.schema
    (Format.pp_print_list Row.pp)
    (rows t)
