(** Static satisfiability analysis of predicates by interval
    abstraction — the reasoning engine behind Sheetlint and the plan
    optimizer's predicate pruning.

    A predicate is normalized (two-valued, as {!Expr_eval} evaluates:
    comparisons involving [NULL] or incomparable types are [false],
    connectives see only booleans) into a bounded disjunctive normal
    form; each conjunct is abstracted into one constraint per column:
    an over-approximating {!Interval.t} over the non-null values
    together with a flag telling whether [NULL] can satisfy the
    conjunct's literals on that column. The abstraction is {e sound}:
    every verdict below is a theorem about {!Expr_eval.eval_pred}, at
    the price of answering "don't know" liberally.

    NULL discipline (the part naive interval reasoning gets wrong): a
    {e positive} comparison atom rejects [NULL], but its negation
    [NOT (x < 10)] {e accepts} it — so [NOT (x < 10) AND NOT (x >= 10)]
    is satisfiable (by a null [x]) and [x < 10 OR x >= 10] is not a
    tautology. Both are handled here. *)

type verdict = [ `Maybe | `Unsat of string list ]
(** [`Unsat cols] is a proof that no row satisfies the predicate;
    [cols] are columns whose constraints are contradictory (possibly
    empty when the contradiction is not tied to a column, e.g. a
    constant [FALSE]). [`Maybe] claims nothing. *)

val check :
  ?type_of:(string -> Value.vtype option) -> Expr.t -> verdict
(** [type_of] supplies declared column types (from a schema); with
    them the analysis also proves comparisons across incomparable
    types unsatisfiable ([Model < 10] on a string column) and tightens
    open integer endpoints ([x > 5 AND x < 6] over ints). *)

val satisfiable :
  ?type_of:(string -> Value.vtype option) -> Expr.t -> bool
(** [false] only on a proof of unsatisfiability. *)

val tautology :
  ?type_of:(string -> Value.vtype option) -> Expr.t -> bool
(** [true] only when the predicate provably holds on {e every} row —
    including rows with nulls, so [x < 10 OR x >= 10] is {e not} a
    tautology but [x < 10 OR x >= 10 OR x IS NULL] is (given [x]'s
    type). *)

val implies :
  ?type_of:(string -> Value.vtype option) -> Expr.t -> Expr.t -> bool
(** [implies p q]: every row satisfying [p] satisfies [q] (provable).
    The workhorse of subsumed-predicate lints and conjunct pruning. *)
