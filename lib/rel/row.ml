type t = Value.t array

let of_list = Array.of_list
let to_list = Array.to_list
let get (t : t) i = t.(i)
let width = Array.length

let append = Array.append
let append1 t v = Array.append t [| v |]

let remove_at t i =
  Array.init
    (Array.length t - 1)
    (fun j -> if j < i then t.(j) else t.(j + 1))

let set_at t i v =
  let t' = Array.copy t in
  t'.(i) <- v;
  t'

let project t positions =
  Array.of_list (List.map (fun i -> t.(i)) positions)

let project_arr (t : t) (positions : int array) : t =
  Array.map (fun i -> t.(i)) positions

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let n = min la lb in
  let rec go i =
    if i >= n then Int.compare la lb
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

(* Hash tables keyed on real row equality — [equal] goes through
   [Value.compare], so [Int 3] and [Float 3.0] key the same slot, and
   hash collisions between distinct rows are resolved by the table,
   not by the caller. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Value.pp)
    (to_list t)
