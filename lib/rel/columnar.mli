(** Columnar image of a row array (Sheetcol).

    [to_rows (of_rows rows)] reproduces [rows] exactly — same value
    constructors, same per-row widths — including ragged and
    NULL-heavy inputs (qcheck-tested). Images of ragged inputs are
    non-{!uniform}; the engine only compiles predicates against
    uniform images whose width matches the relation's arity. *)

type t

val of_rows : ?width:int -> Row.t array -> t
(** Materialize columns. [width] (typically the schema arity) sets a
    minimum column count; shorter/longer rows are padded with nulls
    per column and their true widths recorded. Feeds the
    [columnar.*] Obs counters. *)

val to_rows : t -> Row.t array
(** Exact inverse of {!of_rows}. Fresh rows — used by the round-trip
    tests; engine paths keep the original row pointers instead. *)

val nrows : t -> int
val width : t -> int

val uniform : t -> bool
(** Every row had exactly [width t] cells. *)

val column : t -> int -> Column.t

val select_cols : t -> int array -> t
(** Zero-copy column subset (projection push-through).
    @raise Invalid_argument on a non-uniform image. *)

val append_col : t -> Column.t -> t
(** Extend push-through.
    @raise Invalid_argument on a non-uniform image or length
    mismatch. *)

type stats = { columns : int; specialized : int; dict_entries : int }

val stats : t -> stats
