(** Sheetserve wire protocol: newline-delimited JSON, one value per
    line in each direction (DESIGN.md §10).

    The protocol is {e total} in both directions, matching the
    [test_fuzz] discipline of every other parsing entry point in the
    repo: {!decode_request} and {!decode_response} answer [Error] on
    arbitrary bytes and never raise, and the encoders emit exactly one
    line (the bundled JSON printer escapes every control character, so
    a payload cannot smuggle a frame boundary). Encoding round-trips:
    [decode (encode v) = Ok v] for every value free of non-finite
    floats (qcheck-tested), which JSON cannot spell — they encode as
    [null] and decode as {!Sheet_rel.Value.Null}.

    Grammar (one JSON object per line):
    {v
    request  := {"op":"hello","client":<string>}
              | {"op":"open","base":<string>}
              | {"op":"line","text":<string>}
              | {"op":"rows"} | {"op":"status"} | {"op":"ping"}
              | {"op":"quit"}
    response := {"ok":true,"type":"welcome","session":s,"arena":a}
              | {"ok":true,"type":"opened","base":b,"uid":u,"rows":n}
              | {"ok":true,"type":"applied","uid":u[,"output":s]}
              | {"ok":true,"type":"table","uid":u,
                 "columns":[[name,type],...],"rows":[[cell,...],...]}
              | {"ok":true,"type":"stats","sessions":n,"ops":n,
                 "busy_rejections":n}
              | {"ok":true,"type":"pong"} | {"ok":true,"type":"bye"}
              | {"ok":false,"busy":<bool>,"error":<string>}
    cell     := null | <bool> | <int> | <float> | <string>
              | {"date":<days>}
    v} *)

open Sheet_rel

type request =
  | Hello of string
      (** Establish (or re-attach to) the session keyed by this client
          id. Must precede [open]/[line]/[rows] on a connection. *)
  | Open of string
      (** Start a fresh session timeline on the named base relation. *)
  | Line of string  (** One {!Sheet_core.Script} command line. *)
  | Rows  (** The visible materialization of the current sheet. *)
  | Status  (** Server-wide counters. *)
  | Ping
  | Quit  (** End the session and the connection. *)

type response =
  | Welcome of { session : string; arena : int }
      (** [arena] is the session's uid namespace
          ({!Sheet_core.Spreadsheet.in_uid_arena}) — what a serial
          replay must allocate from to reproduce the session's uids
          bit-identically. *)
  | Opened of { base : string; uid : int; rows : int }
  | Applied of { uid : int; output : string option }
  | Table of {
      uid : int;
      columns : (string * Value.vtype) list;
      rows : Value.t list list;
    }
  | Stats of { sessions : int; ops : int; busy_rejections : int }
  | Pong
  | Bye
  | Refused of { busy : bool; reason : string }
      (** [busy = true] marks an admission-control rejection (server
          full or per-session rate cap): the request was well-formed
          and may simply be retried. [busy = false] is a real error —
          parse failure, unknown base, engine refusal. *)

val encode_request : request -> string
(** One line, no trailing newline. *)

val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result

val encode_value : Value.t -> Sheet_obs.Obs_json.t
val decode_value : Sheet_obs.Obs_json.t -> (Value.t, string) result

val vtype_name : Value.vtype -> string
val vtype_of_name : string -> Value.vtype option
