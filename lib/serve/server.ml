open Sheet_rel
open Sheet_core
module Obs = Sheet_obs.Obs

type config = {
  max_sessions : int;
  max_ops_per_s : int;
  lookup : string -> Relation.t option;
  now : unit -> float;
}

let config ?(max_sessions = 256) ?(max_ops_per_s = 0)
    ?(now = Unix.gettimeofday) lookup =
  { max_sessions; max_ops_per_s; lookup; now }

type session_state = {
  client : string;
  arena : int;
  labels : Obs.Labels.t;
  mutable sess : Session.t option;  (* None until [open] *)
  mutable window_start : float;
  mutable window_ops : int;
}

type t = {
  cfg : config;
  table_mutex : Mutex.t;  (* session table, counters, rate windows *)
  engine_mutex : Mutex.t;  (* ambient labels + arenas + engine work *)
  sessions : (string, session_state) Hashtbl.t;
  mutable ops : int;
  mutable busy_rejections : int;
}

(* Arenas are process-global (they key the shared uid namespace), so
   two servers in one test process never reuse each other's. *)
let arena_mutex = Mutex.create ()
let next_arena = ref 0

let fresh_arena () =
  Mutex.lock arena_mutex;
  incr next_arena;
  let a = !next_arena in
  Mutex.unlock arena_mutex;
  a

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create cfg =
  {
    cfg;
    table_mutex = Mutex.create ();
    engine_mutex = Mutex.create ();
    sessions = Hashtbl.create 64;
    ops = 0;
    busy_rejections = 0;
  }

type conn = { mutable bound : string option }

let connect _t = { bound = None }

(* serve.* counters live beside the engine's own telemetry; the Stats
   response reads the server-local fields so gate-time Metrics.reset
   calls cannot skew it. *)
let m_requests = lazy (Obs.Metrics.counter "serve.requests")
let m_ops = lazy (Obs.Metrics.counter "serve.ops")
let m_busy = lazy (Obs.Metrics.counter "serve.busy_rejections")
let m_sessions = lazy (Obs.Metrics.gauge "serve.sessions")

let refused reason = Protocol.Refused { busy = false; reason }

let busy t reason =
  with_lock t.table_mutex (fun () ->
      t.busy_rejections <- t.busy_rejections + 1);
  Obs.Metrics.incr (Lazy.force m_busy);
  Protocol.Refused { busy = true; reason }

(* All engine-visible effects of a request — ambient labels, uid
   arena, apply, materialize — are one critical section, keeping the
   process's single-writer telemetry invariants intact. *)
let with_engine t (st : session_state) f =
  with_lock t.engine_mutex (fun () ->
      Obs.set_ambient_labels st.labels;
      Fun.protect
        ~finally:(fun () -> Obs.set_ambient_labels Obs.Labels.empty)
        (fun () -> Spreadsheet.in_uid_arena st.arena f))

let hello t conn client =
  with_lock t.table_mutex (fun () ->
      match Hashtbl.find_opt t.sessions client with
      | Some st ->
          conn.bound <- Some client;
          Protocol.Welcome { session = client; arena = st.arena }
      | None ->
          if Hashtbl.length t.sessions >= t.cfg.max_sessions then (
            t.busy_rejections <- t.busy_rejections + 1;
            Obs.Metrics.incr (Lazy.force m_busy);
            Protocol.Refused { busy = true; reason = "server full" })
          else begin
            let st =
              {
                client;
                arena = fresh_arena ();
                labels = Obs.Labels.v [ ("session", client) ];
                sess = None;
                window_start = t.cfg.now ();
                window_ops = 0;
              }
            in
            Hashtbl.replace t.sessions client st;
            Obs.Metrics.set (Lazy.force m_sessions)
              (Hashtbl.length t.sessions);
            conn.bound <- Some client;
            Protocol.Welcome { session = client; arena = st.arena }
          end)

let bound_session t conn =
  match conn.bound with
  | None -> None
  | Some client ->
      with_lock t.table_mutex (fun () -> Hashtbl.find_opt t.sessions client)

(* Fixed one-second windows: cheap, and "graceful" in the protocol
   sense — a capped client gets [busy] and retries, never a hang. *)
let rate_admit t (st : session_state) =
  if t.cfg.max_ops_per_s <= 0 then true
  else
    with_lock t.table_mutex (fun () ->
        let now = t.cfg.now () in
        if now -. st.window_start >= 1.0 then begin
          st.window_start <- now;
          st.window_ops <- 0
        end;
        if st.window_ops >= t.cfg.max_ops_per_s then false
        else begin
          st.window_ops <- st.window_ops + 1;
          true
        end)

let open_base t (st : session_state) base =
  match t.cfg.lookup base with
  | None -> refused (Printf.sprintf "unknown base %S" base)
  | Some rel ->
      let sess =
        with_engine t st (fun () -> Session.create ~name:base rel)
      in
      st.sess <- Some sess;
      let sheet = Session.current sess in
      Protocol.Opened
        {
          base;
          uid = sheet.Spreadsheet.uid;
          rows = Relation.cardinality rel;
        }

let run_line t (st : session_state) sess text =
  match with_engine t st (fun () -> Script.run_line sess text) with
  | Error msg -> refused msg
  | Ok { Script.session; output } ->
      st.sess <- Some session;
      with_lock t.table_mutex (fun () -> t.ops <- t.ops + 1);
      Obs.Metrics.incr (Lazy.force m_ops);
      let sheet = Session.current session in
      Protocol.Applied { uid = sheet.Spreadsheet.uid; output }

let rows_of t (st : session_state) sess =
  let rel = with_engine t st (fun () -> Session.materialized sess) in
  let sheet = Session.current sess in
  Protocol.Table
    {
      uid = sheet.Spreadsheet.uid;
      columns =
        List.map
          (fun c -> (c.Schema.name, c.Schema.ty))
          (Schema.columns (Relation.schema rel));
      rows = List.map Row.to_list (Relation.rows rel);
    }

let stats t =
  with_lock t.table_mutex (fun () ->
      Protocol.Stats
        {
          sessions = Hashtbl.length t.sessions;
          ops = t.ops;
          busy_rejections = t.busy_rejections;
        })

let quit t conn =
  (match conn.bound with
  | None -> ()
  | Some client ->
      with_lock t.table_mutex (fun () ->
          Hashtbl.remove t.sessions client;
          Obs.Metrics.set (Lazy.force m_sessions)
            (Hashtbl.length t.sessions)));
  conn.bound <- None;
  Protocol.Bye

let handle_request t conn req =
  Obs.Metrics.incr (Lazy.force m_requests);
  match req with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Status -> stats t
  | Protocol.Hello client -> hello t conn client
  | Protocol.Quit -> quit t conn
  | Protocol.Open base -> (
      match bound_session t conn with
      | None -> refused "hello required before open"
      | Some st -> open_base t st base)
  | Protocol.Line text -> (
      match bound_session t conn with
      | None -> refused "hello required before line"
      | Some st -> (
          match st.sess with
          | None -> refused "open required before line"
          | Some sess ->
              if rate_admit t st then run_line t st sess text
              else busy t "rate limit exceeded"))
  | Protocol.Rows -> (
      match bound_session t conn with
      | None -> refused "hello required before rows"
      | Some st -> (
          match st.sess with
          | None -> refused "open required before rows"
          | Some sess -> rows_of t st sess))

let handle t conn line =
  let resp =
    match Protocol.decode_request line with
    | Error e -> refused ("parse error: " ^ e)
    | Ok req -> handle_request t conn req
  in
  Protocol.encode_response resp

let session_count t =
  with_lock t.table_mutex (fun () -> Hashtbl.length t.sessions)

let live_clients t =
  with_lock t.table_mutex (fun () ->
      Hashtbl.fold (fun c _ acc -> c :: acc) t.sessions []
      |> List.sort String.compare)

let arena_of t client =
  with_lock t.table_mutex (fun () ->
      Option.map
        (fun st -> st.arena)
        (Hashtbl.find_opt t.sessions client))
