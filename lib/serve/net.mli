(** Socket transport for {!Server}: a Unix-domain-socket accept loop
    (stdlib [Unix] + [Thread], one thread per connection) and a tiny
    blocking client.

    Each connection reads newline-terminated request lines and writes
    back one response line per request. Because {!Server.handle} is
    total, a connection only ends on client EOF, [quit], or a socket
    error — malformed bytes produce a [Refused] line and the
    connection keeps serving. [SIGPIPE] is ignored process-wide on
    {!listen} so an abruptly-closed peer surfaces as [EPIPE] (which
    ends just that connection's thread) rather than killing the
    process. *)

type listener

val listen : Server.t -> path:string -> listener
(** Bind a Unix domain socket at [path] (unlinking any stale one),
    start the accept thread, and serve until {!shutdown}. *)

val shutdown : listener -> unit
(** Close the listening socket, wake and join the accept thread, close
    every live connection, and unlink the socket path. Idempotent. *)

(** Blocking client used by the binaries, the gate and the load
    driver. Not thread-safe: one [t] per thread. *)
module Client : sig
  type t

  val connect : path:string -> t
  (** @raise Unix.Unix_error when the server is not listening. *)

  val call : t -> Protocol.request -> (Protocol.response, string) result
  (** Send one request and block for its response line. [Error] on
      EOF, socket trouble, or an undecodable response. *)

  val call_exn : t -> Protocol.request -> Protocol.response
  (** {!call}, raising [Failure] on [Error] — for harness code where
      any transport failure is fatal. *)

  val close : t -> unit
end
