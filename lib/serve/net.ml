type listener = {
  server : Server.t;
  path : string;
  sock : Unix.file_descr;
  mutable running : bool;
  conns_mutex : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable accept_thread : Thread.t option;
}

let ignore_sigpipe () =
  match Sys.os_type with
  | "Unix" -> (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())
  | _ -> ()

let write_line fd line =
  let buf = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length buf in
  let rec go off =
    if off < len then
      let n = Unix.write fd buf off (len - off) in
      go (off + n)
  in
  go 0

let track l fd =
  Mutex.lock l.conns_mutex;
  l.conns <- fd :: l.conns;
  Mutex.unlock l.conns_mutex

let untrack l fd =
  Mutex.lock l.conns_mutex;
  l.conns <- List.filter (fun d -> d != fd) l.conns;
  Mutex.unlock l.conns_mutex

(* One thread per connection: read lines, answer lines. [Server.handle]
   is total, so the only exits are EOF, [quit], or a socket error. *)
let serve_conn l fd =
  let conn = Server.connect l.server in
  let inch = Unix.in_channel_of_descr fd in
  let rec loop () =
    match In_channel.input_line inch with
    | None -> ()
    | Some line ->
        let resp = Server.handle l.server conn line in
        write_line fd resp;
        (* [quit] answers Bye and ends the connection *)
        if
          match Protocol.decode_request line with
          | Ok Protocol.Quit -> true
          | _ -> false
        then ()
        else loop ()
  in
  (try loop () with Unix.Unix_error _ | Sys_error _ | End_of_file -> ());
  untrack l fd;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop l =
  while l.running do
    match Unix.accept l.sock with
    | fd, _ ->
        track l fd;
        ignore (Thread.create (serve_conn l) fd)
    | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> l.running <- false
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> if l.running then Thread.yield ()
  done

let listen server ~path =
  ignore_sigpipe ();
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind sock (ADDR_UNIX path);
  Unix.listen sock 128;
  let l =
    {
      server;
      path;
      sock;
      running = true;
      conns_mutex = Mutex.create ();
      conns = [];
      accept_thread = None;
    }
  in
  l.accept_thread <- Some (Thread.create accept_loop l);
  l

let shutdown l =
  if l.running then begin
    l.running <- false;
    (* closing an fd does not wake a thread blocked in [accept] on it;
       a throwaway connection does *)
    (try
       let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
       (try Unix.connect fd (ADDR_UNIX l.path) with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (match l.accept_thread with Some t -> Thread.join t | None -> ());
    l.accept_thread <- None;
    (try Unix.close l.sock with Unix.Unix_error _ -> ());
    Mutex.lock l.conns_mutex;
    let conns = l.conns in
    l.conns <- [];
    Mutex.unlock l.conns_mutex;
    List.iter
      (fun fd ->
        try Unix.shutdown fd SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    try Unix.unlink l.path with Unix.Unix_error _ -> ()
  end

module Client = struct
  type t = { fd : Unix.file_descr; inch : in_channel }

  let connect ~path =
    ignore_sigpipe ();
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    (try Unix.connect fd (ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; inch = Unix.in_channel_of_descr fd }

  let call c req =
    match
      write_line c.fd (Protocol.encode_request req);
      In_channel.input_line c.inch
    with
    | None -> Error "connection closed by server"
    | Some line -> Protocol.decode_response line
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | exception Sys_error e -> Error e

  let call_exn c req =
    match call c req with
    | Ok resp -> resp
    | Error e -> failwith ("Sheetserve client: " ^ e)

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
end
