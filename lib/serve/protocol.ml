open Sheet_rel
module J = Sheet_obs.Obs_json

type request =
  | Hello of string
  | Open of string
  | Line of string
  | Rows
  | Status
  | Ping
  | Quit

type response =
  | Welcome of { session : string; arena : int }
  | Opened of { base : string; uid : int; rows : int }
  | Applied of { uid : int; output : string option }
  | Table of {
      uid : int;
      columns : (string * Value.vtype) list;
      rows : Value.t list list;
    }
  | Stats of { sessions : int; ops : int; busy_rejections : int }
  | Pong
  | Bye
  | Refused of { busy : bool; reason : string }

(* ---- values ---- *)

let encode_value : Value.t -> J.t = function
  | Value.Null -> J.Null
  | Value.Bool b -> J.Bool b
  | Value.Int i -> J.Int i
  | Value.Float f -> J.Float f
  | Value.String s -> J.String s
  | Value.Date d -> J.Obj [ ("date", J.Int d) ]

let decode_value : J.t -> (Value.t, string) result = function
  | J.Null -> Ok Value.Null
  | J.Bool b -> Ok (Value.Bool b)
  | J.Int i -> Ok (Value.Int i)
  | J.Float f -> Ok (Value.Float f)
  | J.String s -> Ok (Value.String s)
  | J.Obj [ ("date", J.Int d) ] -> Ok (Value.Date d)
  | J.Obj _ -> Error "cell object is not {\"date\":<int>}"
  | J.List _ -> Error "cell cannot be a list"

let vtype_name = function
  | Value.TBool -> "bool"
  | Value.TInt -> "int"
  | Value.TFloat -> "float"
  | Value.TString -> "string"
  | Value.TDate -> "date"

let vtype_of_name = function
  | "bool" -> Some Value.TBool
  | "int" -> Some Value.TInt
  | "float" -> Some Value.TFloat
  | "string" -> Some Value.TString
  | "date" -> Some Value.TDate
  | _ -> None

(* ---- decode helpers (total) ---- *)

let str_field name j =
  match J.member name j with
  | Some (J.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S is not a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name j =
  match J.member name j with
  | Some (J.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S is not an int" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let bool_field name j =
  match J.member name j with
  | Some (J.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S is not a bool" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let ( let* ) = Result.bind

(* ---- requests ---- *)

let encode_request req =
  let obj =
    match req with
    | Hello client -> [ ("op", J.String "hello"); ("client", J.String client) ]
    | Open base -> [ ("op", J.String "open"); ("base", J.String base) ]
    | Line text -> [ ("op", J.String "line"); ("text", J.String text) ]
    | Rows -> [ ("op", J.String "rows") ]
    | Status -> [ ("op", J.String "status") ]
    | Ping -> [ ("op", J.String "ping") ]
    | Quit -> [ ("op", J.String "quit") ]
  in
  J.to_string (J.Obj obj)

let decode_request line =
  let* j = J.parse line in
  let* op = str_field "op" j in
  match op with
  | "hello" ->
      let* client = str_field "client" j in
      Ok (Hello client)
  | "open" ->
      let* base = str_field "base" j in
      Ok (Open base)
  | "line" ->
      let* text = str_field "text" j in
      Ok (Line text)
  | "rows" -> Ok Rows
  | "status" -> Ok Status
  | "ping" -> Ok Ping
  | "quit" -> Ok Quit
  | other -> Error (Printf.sprintf "unknown op %S" other)

(* ---- responses ---- *)

let ok ty fields = J.Obj (("ok", J.Bool true) :: ("type", J.String ty) :: fields)

let encode_response resp =
  let j =
    match resp with
    | Welcome { session; arena } ->
        ok "welcome" [ ("session", J.String session); ("arena", J.Int arena) ]
    | Opened { base; uid; rows } ->
        ok "opened"
          [ ("base", J.String base); ("uid", J.Int uid); ("rows", J.Int rows) ]
    | Applied { uid; output } ->
        ok "applied"
          (("uid", J.Int uid)
          ::
          (match output with
          | None -> []
          | Some s -> [ ("output", J.String s) ]))
    | Table { uid; columns; rows } ->
        ok "table"
          [ ("uid", J.Int uid);
            ( "columns",
              J.List
                (List.map
                   (fun (name, ty) ->
                     J.List [ J.String name; J.String (vtype_name ty) ])
                   columns) );
            ( "rows",
              J.List (List.map (fun r -> J.List (List.map encode_value r)) rows)
            )
          ]
    | Stats { sessions; ops; busy_rejections } ->
        ok "stats"
          [ ("sessions", J.Int sessions);
            ("ops", J.Int ops);
            ("busy_rejections", J.Int busy_rejections)
          ]
    | Pong -> ok "pong" []
    | Bye -> ok "bye" []
    | Refused { busy; reason } ->
        J.Obj
          [ ("ok", J.Bool false);
            ("busy", J.Bool busy);
            ("error", J.String reason)
          ]
  in
  J.to_string j

let decode_column = function
  | J.List [ J.String name; J.String ty ] -> (
      match vtype_of_name ty with
      | Some ty -> Ok (name, ty)
      | None -> Error (Printf.sprintf "unknown column type %S" ty))
  | _ -> Error "column is not [name, type]"

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
      let* y = f x in
      let* ys = map_result f xs in
      Ok (y :: ys)

let decode_row = function
  | J.List cells -> map_result decode_value cells
  | _ -> Error "row is not a list"

let decode_response line =
  let* j = J.parse line in
  let* okp = bool_field "ok" j in
  if not okp then
    let* busy = bool_field "busy" j in
    let* reason = str_field "error" j in
    Ok (Refused { busy; reason })
  else
    let* ty = str_field "type" j in
    match ty with
    | "welcome" ->
        let* session = str_field "session" j in
        let* arena = int_field "arena" j in
        Ok (Welcome { session; arena })
    | "opened" ->
        let* base = str_field "base" j in
        let* uid = int_field "uid" j in
        let* rows = int_field "rows" j in
        Ok (Opened { base; uid; rows })
    | "applied" ->
        let* uid = int_field "uid" j in
        let* output =
          match J.member "output" j with
          | None -> Ok None
          | Some (J.String s) -> Ok (Some s)
          | Some _ -> Error "field \"output\" is not a string"
        in
        Ok (Applied { uid; output })
    | "table" ->
        let* uid = int_field "uid" j in
        let* columns =
          match J.member "columns" j with
          | Some (J.List cols) -> map_result decode_column cols
          | Some _ -> Error "field \"columns\" is not a list"
          | None -> Error "missing field \"columns\""
        in
        let* rows =
          match J.member "rows" j with
          | Some (J.List rows) -> map_result decode_row rows
          | Some _ -> Error "field \"rows\" is not a list"
          | None -> Error "missing field \"rows\""
        in
        Ok (Table { uid; columns; rows })
    | "stats" ->
        let* sessions = int_field "sessions" j in
        let* ops = int_field "ops" j in
        let* busy_rejections = int_field "busy_rejections" j in
        Ok (Stats { sessions; ops; busy_rejections })
    | "pong" -> Ok Pong
    | "bye" -> Ok Bye
    | other -> Error (Printf.sprintf "unknown response type %S" other)
