(** Sheetserve: the concurrent multi-session server core.

    One process serves many interactive spreadsheet sessions
    (DESIGN.md §10). The transport ({!Net}) hands each connection's
    request lines to {!handle}, which is {e total} — any byte
    sequence, in any state, produces exactly one response line and
    never an exception or a wedged connection.

    {2 Concurrency model}

    Two locks, strictly ordered (session table, then engine):

    - the {e session-table lock} protects the client-id → session map,
      admission counters, and per-session rate windows;
    - the {e engine lock} serializes everything that touches the
      single-writer parts of the process — ambient telemetry labels,
      span/profile nesting, uid-arena selection, operator application
      and materialization. Handler threads overlap freely on socket
      I/O and protocol work; engine work is one-at-a-time, and each
      query still fans out over domains internally ([Par.run]), which
      is where the parallelism the paper cares about lives.

    Holding the engine lock across [set_ambient_labels]+apply+
    materialize is what makes per-session labeled series, profiles and
    the shared semantic cache exact under load: every observable
    engine effect of a request is one critical section.

    {2 Sessions and determinism}

    A session is keyed by the client id given in [hello] and survives
    disconnects (re-[hello] re-attaches; [quit] destroys). Each
    session allocates uids from its own arena
    ({!Sheet_core.Spreadsheet.in_uid_arena}), so the uid sequence a
    session observes is a function of its own request stream only —
    replaying the same lines serially (same arena, after
    [reset_uid_arena] + [Materialize.reset_cache]) reproduces rows,
    order {e and uids} bit-identically, which is what the load harness
    asserts.

    {2 Admission control}

    [hello] beyond [max_sessions] live sessions, and any [line] past
    the per-session [max_ops_per_s] budget of the current one-second
    window, are refused with [busy = true] — a well-formed "try again
    later", not an error. *)

open Sheet_rel

type config = {
  max_sessions : int;  (** admission cap on concurrently live sessions *)
  max_ops_per_s : int;
      (** per-session [line] budget per fixed one-second window;
          [<= 0] means unlimited *)
  lookup : string -> Relation.t option;
      (** resolver for [open] — typically [Catalog.find] over the
          TPC-H views *)
  now : unit -> float;
      (** clock for rate windows (injectable for tests; the binaries
          pass [Unix.gettimeofday]) *)
}

val config :
  ?max_sessions:int ->
  ?max_ops_per_s:int ->
  ?now:(unit -> float) ->
  (string -> Relation.t option) ->
  config
(** Defaults: 256 sessions, 0 (unlimited) ops/s, [Unix.gettimeofday]. *)

type t

val create : config -> t
(** A fresh server. Arena ids are allocated from a process-global
    counter, so two servers in one process never share a uid
    namespace. *)

type conn
(** Per-connection state: which client id (if any) this connection has
    bound with [hello]. *)

val connect : t -> conn

val handle : t -> conn -> string -> string
(** One raw request line in, one response line (no trailing newline)
    out. Total: parse failures and engine refusals come back as
    [Refused] responses. *)

val handle_request : t -> conn -> Protocol.request -> Protocol.response
(** {!handle} after decoding — the seam the in-process tests drive. *)

val session_count : t -> int
val live_clients : t -> string list
(** Sorted client ids of live sessions. *)

val arena_of : t -> string -> int option
(** The uid arena of a live client's session. *)

val stats : t -> Protocol.response
(** The [Stats] response: live sessions, successfully applied ops,
    busy rejections. *)
