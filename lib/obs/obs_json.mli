(** A minimal JSON value with an exact printer and a total parser.

    Sheetscope exports Chrome [trace_event] files and the benchmark
    baseline through this module; the parser exists so the repo can
    validate its own exports (the [@obs] gate and the fuzz harness
    round-trip every trace through {!parse}).

    Printing is exact: for any value [v] free of non-finite floats,
    [parse (to_string v) = Ok v] structurally. Non-finite floats have
    no JSON spelling and print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents by two spaces. *)

val parse : string -> (t, string) result
(** Total: malformed input (including nesting deeper than 512 levels)
    comes back as [Error], never an exception. Numbers without a
    fraction or exponent parse as [Int] (falling back to [Float] on
    overflow); all others as [Float]. *)

val equal : t -> t -> bool
(** Structural equality ([Obj] field order matters, as the printer
    preserves it). *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)
