type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* A float must re-read as a float (never as an int) and round-trip
   bit-exactly; %.17g is exact, and a trailing ".0" keeps "1" from
   collapsing into the Int constructor on re-parse. Non-finite floats
   have no JSON spelling and are emitted as null. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let add_indent buf n = Buffer.add_string buf (String.make n ' ')

let to_buffer ?(pretty = false) buf v =
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              add_indent buf ((depth + 1) * 2)
            end;
            go (depth + 1) item)
          items;
        if pretty then begin
          Buffer.add_char buf '\n';
          add_indent buf (depth * 2)
        end;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              add_indent buf ((depth + 1) * 2)
            end;
            escape_string buf k;
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) item)
          fields;
        if pretty then begin
          Buffer.add_char buf '\n';
          add_indent buf (depth * 2)
        end;
        Buffer.add_char buf '}'
  in
  go 0 v

let to_string ?pretty v =
  let buf = Buffer.create 1024 in
  to_buffer ?pretty buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Fail of string

let max_depth = 512

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Fail (Printf.sprintf "at %d: %s" !pos m))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail "expected %C, found %C" c d
    | None -> fail "expected %C, found end of input" c
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "invalid literal"
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some code -> code
    | None -> fail "bad \\u escape %S" h
  in
  let utf8_add buf code =
    (* encode a Unicode scalar value as UTF-8 *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' -> (
                  let code = parse_hex4 () in
                  (* surrogate pair *)
                  if code >= 0xD800 && code <= 0xDBFF then begin
                    if
                      !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                    then begin
                      pos := !pos + 2;
                      let low = parse_hex4 () in
                      if low >= 0xDC00 && low <= 0xDFFF then
                        utf8_add buf
                          (0x10000
                          + ((code - 0xD800) lsl 10)
                          + (low - 0xDC00))
                      else fail "unpaired surrogate"
                    end
                    else fail "unpaired surrogate"
                  end
                  else if code >= 0xDC00 && code <= 0xDFFF then
                    fail "unpaired surrogate"
                  else utf8_add buf code)
              | c -> fail "bad escape \\%C" c));
          go ())
      | Some c ->
          if Char.code c < 0x20 then fail "raw control character in string";
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting deeper than %d" max_depth;
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string_body ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string_body () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            (k, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                List.rev (f :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let equal a b = Stdlib.compare a b = 0

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
