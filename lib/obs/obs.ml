(* Sheetscope: span tracing, a metrics registry, and pluggable sinks.

   Everything here is deliberately single-threaded mutable state, like
   the materialization cache it observes. The off-sink fast path is a
   single mutable-bool test so instrumented code costs nothing when
   nobody is watching (property-tested byte-identical). *)

let src = Logs.Src.create "sheetscope" ~doc:"SheetMusiq instrumentation"

(* ---------- clock ----------

   The wall clock can step backwards (NTP slew, VM migration); a span
   or histogram sample must never report a negative duration. Readings
   are clamped into a monotone timeline: [now_ns] never decreases
   within a process. The raw source is swappable so tests can drive
   time backwards and check the clamp. *)

let wall_clock_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let raw_clock = ref wall_clock_ns
let last_ns = ref 0

let now_ns () =
  let t = !raw_clock () in
  if t > !last_ns then last_ns := t;
  !last_ns

let set_raw_clock_for_tests = function
  | Some f -> raw_clock := f
  | None ->
      raw_clock := wall_clock_ns;
      (* re-anchor so a test clock set far in the future does not pin
         the timeline there *)
      last_ns := wall_clock_ns ()

let epoch_ns = now_ns ()

let time f =
  let t0 = now_ns () in
  let x = f () in
  (x, float_of_int (now_ns () - t0) /. 1e6)

(* ---------- sinks ---------- *)

type sink = Off | Logs | Memory

let current_sink = ref Off

let sink () = !current_sink
let set_sink s = current_sink := s
let recording () = !current_sink <> Off

(* ---------- events and spans ---------- *)

type event = {
  name : string;
  kind : string;
  uid : int;  (** 0 when no sheet is involved *)
  depth : int;
  start_ns : int;  (** relative to process start *)
  dur_ns : int;
  rows_in : int;  (** -1 when unknown *)
  rows_out : int;  (** -1 when unknown *)
}

type span = {
  sid : int;  (* 0 is the dummy span handed out when the sink is off *)
  s_name : string;
  s_kind : string;
  s_uid : int;
  s_depth : int;
  s_start : int;
}

let dummy_span =
  { sid = 0; s_name = ""; s_kind = ""; s_uid = 0; s_depth = 0; s_start = 0 }

let span_counter = ref 0
let open_stack : int list ref = ref []
let violations = ref 0

let ring_capacity = ref 65536
let ring : event Queue.t = Queue.create ()
let dropped_events = ref 0

let record ev =
  match !current_sink with
  | Off -> ()
  | Memory ->
      if Queue.length ring >= !ring_capacity then begin
        ignore (Queue.pop ring);
        incr dropped_events
      end;
      Queue.push ev ring
  | Logs ->
      Logs.app ~src (fun m ->
          m "%*s%s%s %.3f ms%s%s" (2 * ev.depth) "" ev.name
            (if ev.kind = "" then "" else "[" ^ ev.kind ^ "]")
            (float_of_int ev.dur_ns /. 1e6)
            (if ev.rows_out < 0 then ""
             else Printf.sprintf " -> %d rows" ev.rows_out)
            (if ev.uid = 0 then "" else Printf.sprintf " (sheet #%d)" ev.uid))

let span ?(uid = 0) ?(kind = "") name =
  if not (recording ()) then dummy_span
  else begin
    incr span_counter;
    let s =
      { sid = !span_counter;
        s_name = name;
        s_kind = kind;
        s_uid = uid;
        s_depth = List.length !open_stack;
        s_start = now_ns () - epoch_ns }
    in
    open_stack := s.sid :: !open_stack;
    s
  end

let finish ?(rows_in = -1) ?(rows_out = -1) sp =
  if sp.sid <> 0 then begin
    (match !open_stack with
    | top :: rest when top = sp.sid -> open_stack := rest
    | _ ->
        (* closing out of order: count the violation but still remove
           the span so one mistake does not cascade *)
        incr violations;
        open_stack := List.filter (fun id -> id <> sp.sid) !open_stack);
    record
      { name = sp.s_name;
        kind = sp.s_kind;
        uid = sp.s_uid;
        depth = sp.s_depth;
        start_ns = sp.s_start;
        (* the clamped clock makes this non-negative already; the [max]
           guards the invariant even against a hostile test clock *)
        dur_ns = max 0 (now_ns () - epoch_ns - sp.s_start);
        rows_in;
        rows_out }
  end

(* Pre-timed completed spans: the morsel scheduler's worker domains
   must not touch the single-writer ring/stack, so they only stamp
   start/duration into per-morsel slots and the coordinator emits the
   events after the join. [start_ns] is an absolute [now_ns] reading. *)
let emit ?(uid = 0) ?(kind = "") ?(rows_in = -1) ?(rows_out = -1) ~start_ns
    ~dur_ns name =
  if recording () then
    record
      { name;
        kind;
        uid;
        depth = List.length !open_stack;
        start_ns = start_ns - epoch_ns;
        dur_ns = max 0 dur_ns;
        rows_in;
        rows_out }

let with_span ?uid ?kind name f =
  let sp = span ?uid ?kind name in
  match f () with
  | x ->
      finish sp;
      x
  | exception e ->
      finish sp;
      raise e

let open_spans () = List.length !open_stack
let nesting_ok () = !violations = 0
let events () = List.of_seq (Queue.to_seq ring)
let dropped () = !dropped_events

let clear_events () =
  Queue.clear ring;
  open_stack := [];
  violations := 0;
  dropped_events := 0

(* Completed events are well-formed when every pair of overlapping
   intervals nests: the deeper one lies inside the shallower one. *)
let events_well_formed evs =
  let overlap a b =
    a.start_ns < b.start_ns + b.dur_ns && b.start_ns < a.start_ns + a.dur_ns
  in
  let contains outer inner =
    outer.start_ns <= inner.start_ns
    && inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns
  in
  let arr = Array.of_list evs in
  let ok = ref true in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j && a.depth <> b.depth && overlap a b then
            let outer, inner = if a.depth < b.depth then (a, b) else (b, a) in
            if not (contains outer inner) then ok := false)
        arr)
    arr;
  !ok

(* ---------- metrics ---------- *)

module Metrics = struct
  type mkind = Counter | Gauge

  type m = { m_name : string; m_kind : mkind; mutable value : int }

  let registry : (string, m) Hashtbl.t = Hashtbl.create 64

  let find name m_kind =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
        let m = { m_name = name; m_kind; value = 0 } in
        Hashtbl.replace registry name m;
        m

  let counter name = find name Counter
  let gauge name = find name Gauge

  let incr ?(by = 1) m = m.value <- m.value + by
  let set m v = m.value <- v
  let get m = m.value
  let name m = m.m_name
  let is_counter m = m.m_kind = Counter

  let value_of name =
    match Hashtbl.find_opt registry name with
    | Some m -> m.value
    | None -> 0

  let snapshot () =
    Hashtbl.fold (fun name m acc -> (name, m.value) :: acc) registry []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let reset () = Hashtbl.iter (fun _ m -> m.value <- 0) registry

  let to_json () =
    Obs_json.Obj
      (List.map (fun (name, v) -> (name, Obs_json.Int v)) (snapshot ()))

  let render () =
    let snap = snapshot () in
    if snap = [] then "(no metrics recorded)"
    else
      String.concat "\n"
        (List.map (fun (name, v) -> Printf.sprintf "%-32s %10d" name v) snap)
end

(* ---------- latency histograms ----------

   Third metric family (DESIGN.md §8): log-bucketed latency
   histograms. Bucket boundaries are fixed — four per decade from
   100 ns to 10 s — so recording is O(1) (a binary search over 33
   ints), histograms of the same shape merge by adding bucket counts,
   and two processes' histograms are comparable. Count and sum are
   exact; p50/p90/p99 are bucket estimates (linear interpolation
   inside the bucket holding the rank, never above the observed max);
   max is exact. Like counters — and unlike spans — histograms always
   record, sink or no sink: one record costs a few int increments. *)

module Histogram = struct
  (* 100 ns * 10^(i/4) for i = 0..32: 100 ns, 178 ns, 316 ns, 562 ns,
     1 us, ... 10 s. Bucket i covers (boundaries[i-1], boundaries[i]]
     (bucket 0 starts at 0); one extra bucket catches > 10 s. *)
  let boundaries =
    Array.init 33 (fun i ->
        int_of_float (Float.round (1e2 *. (10. ** (float_of_int i /. 4.)))))

  let num_buckets = Array.length boundaries + 1

  type h = {
    h_name : string;
    counts : int array;
    mutable count : int;
    mutable sum_ns : int;
    mutable max_ns : int;
  }

  let make name =
    { h_name = name;
      counts = Array.make num_buckets 0;
      count = 0;
      sum_ns = 0;
      max_ns = 0 }

  let registry : (string, h) Hashtbl.t = Hashtbl.create 32

  let histogram name =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
        let h = make name in
        Hashtbl.replace registry name h;
        h

  (* smallest i with v <= boundaries.(i); the overflow bucket past the
     last boundary *)
  let bucket_index v =
    let n = Array.length boundaries in
    if v <= boundaries.(0) then 0
    else if v > boundaries.(n - 1) then n
    else begin
      let lo = ref 1 and hi = ref (n - 1) in
      while !hi > !lo do
        let mid = (!lo + !hi) / 2 in
        if v <= boundaries.(mid) then hi := mid else lo := mid + 1
      done;
      !hi
    end

  (* inclusive upper edge of a bucket; [max_int] for the overflow *)
  let bucket_hi i =
    if i < Array.length boundaries then boundaries.(i) else max_int

  (* exclusive lower edge (0 for the first bucket) *)
  let bucket_lo i = if i = 0 then 0 else boundaries.(i - 1)

  let record h ns =
    let ns = if ns < 0 then 0 else ns in
    let i = bucket_index ns in
    h.counts.(i) <- h.counts.(i) + 1;
    h.count <- h.count + 1;
    h.sum_ns <- h.sum_ns + ns;
    if ns > h.max_ns then h.max_ns <- ns

  let count h = h.count
  let sum_ns h = h.sum_ns
  let max_ns h = h.max_ns
  let name h = h.h_name

  let merge a b =
    { h_name = a.h_name;
      counts = Array.init num_buckets (fun i -> a.counts.(i) + b.counts.(i));
      count = a.count + b.count;
      sum_ns = a.sum_ns + b.sum_ns;
      max_ns = max a.max_ns b.max_ns }

  (* data equality — the name is not compared, so merge commutativity
     is testable on differently-named operands *)
  let equal a b =
    a.count = b.count && a.sum_ns = b.sum_ns && a.max_ns = b.max_ns
    && a.counts = b.counts

  (* Estimate the [phi]-quantile (0 < phi <= 1): locate the bucket
     holding the ceil(phi*count)-th smallest sample, interpolate
     linearly inside it, and never exceed the exact max. *)
  let percentile h phi =
    if h.count = 0 then 0.
    else begin
      let rank =
        max 1 (min h.count (int_of_float (ceil (phi *. float_of_int h.count))))
      in
      let i = ref 0 and before = ref 0 in
      while !before + h.counts.(!i) < rank do
        before := !before + h.counts.(!i);
        incr i
      done;
      let lo = float_of_int (bucket_lo !i) in
      let hi =
        Float.min
          (float_of_int (min (bucket_hi !i) h.max_ns))
          (float_of_int h.max_ns)
      in
      let hi = Float.max hi lo in
      let in_bucket = float_of_int h.counts.(!i) in
      lo +. ((hi -. lo) *. float_of_int (rank - !before) /. in_bucket)
    end

  type snapshot = {
    s_name : string;
    s_count : int;
    s_sum_ns : int;
    s_max_ns : int;
    s_p50_ns : float;
    s_p90_ns : float;
    s_p99_ns : float;
    s_buckets : (int * int) list;  (* (inclusive upper edge, count), nonzero only *)
  }

  let snapshot_of h =
    { s_name = h.h_name;
      s_count = h.count;
      s_sum_ns = h.sum_ns;
      s_max_ns = h.max_ns;
      s_p50_ns = percentile h 0.50;
      s_p90_ns = percentile h 0.90;
      s_p99_ns = percentile h 0.99;
      s_buckets =
        List.filter_map
          (fun i ->
            if h.counts.(i) = 0 then None
            else Some (bucket_hi i, h.counts.(i)))
          (List.init num_buckets Fun.id) }

  let snapshots () =
    Hashtbl.fold (fun _ h acc -> snapshot_of h :: acc) registry []
    |> List.sort (fun a b -> String.compare a.s_name b.s_name)

  let reset () =
    Hashtbl.iter
      (fun _ h ->
        Array.fill h.counts 0 num_buckets 0;
        h.count <- 0;
        h.sum_ns <- 0;
        h.max_ns <- 0)
      registry

  let json_of_snapshot s =
    Obs_json.Obj
      [ ("count", Obs_json.Int s.s_count);
        ("sum_ns", Obs_json.Int s.s_sum_ns);
        ("max_ns", Obs_json.Int s.s_max_ns);
        ("p50_ns", Obs_json.Float s.s_p50_ns);
        ("p90_ns", Obs_json.Float s.s_p90_ns);
        ("p99_ns", Obs_json.Float s.s_p99_ns);
        ("buckets",
         Obs_json.List
           (List.map
              (fun (le, n) ->
                Obs_json.List [ Obs_json.Int le; Obs_json.Int n ])
              s.s_buckets)) ]

  let to_json () =
    Obs_json.Obj
      (List.map (fun s -> (s.s_name, json_of_snapshot s)) (snapshots ()))

  let pp_ns f =
    if f >= 1e9 then Printf.sprintf "%7.2f s " (f /. 1e9)
    else if f >= 1e6 then Printf.sprintf "%7.2f ms" (f /. 1e6)
    else if f >= 1e3 then Printf.sprintf "%7.2f us" (f /. 1e3)
    else Printf.sprintf "%7.0f ns" f

  let render () =
    let snaps = snapshots () in
    if snaps = [] then "(no histograms recorded)"
    else
      String.concat "\n"
        (Printf.sprintf "%-28s %8s  %10s %10s %10s %10s" "histogram" "count"
           "p50" "p90" "p99" "max"
        :: List.map
             (fun s ->
               Printf.sprintf "%-28s %8d  %10s %10s %10s %10s" s.s_name
                 s.s_count (pp_ns s.s_p50_ns) (pp_ns s.s_p90_ns)
                 (pp_ns s.s_p99_ns)
                 (pp_ns (float_of_int s.s_max_ns)))
             snaps)
end

(* Well-known metric names: registered up front so a snapshot always
   carries the full record, zeros included. *)
let k_engine_ops = "engine.ops"
let k_engine_errors = "engine.errors"
let k_cache_requests = "materialize.cache_requests"
let k_cache_hits = "materialize.cache_hits"
let k_cache_hits_subsumed = "materialize.cache_hits_subsumed"
let k_cache_misses = "materialize.cache_misses"
let k_cache_evictions = "materialize.cache_evictions"
let k_cache_seeds = "materialize.cache_seeds"
let k_full_replays = "materialize.full_replays"
let k_incremental_derivations = "incremental.derivations"
let k_incremental_fallbacks = "incremental.full_fallbacks"
let k_plan_nodes = "plan.nodes_executed"
let k_plan_rows_in = "plan.rows_in"
let k_plan_rows_out = "plan.rows_out"
let k_undo_depth = "session.undo_depth"
let k_redo_depth = "session.redo_depth"
let k_sql_translations = "sql.translations"
let k_sql_inverse_translations = "sql.inverse_translations"
let k_sql_executions = "sql.executions"

(* Sheetcol / morsel-parallelism names. [k_par_domains] is a gauge
   (the resolved domain count of the most recent parallel region);
   the rest are counters fed by the columnar scan driver. *)
let k_par_domains = "par.domains"
let k_par_morsels = "par.morsels"
let k_par_scans = "par.scans"
let k_col_columns = "columnar.columns_materialized"
let k_col_dict_entries = "columnar.dict_entries"
let k_col_sel_rows_in = "columnar.sel_rows_in"
let k_col_sel_rows_out = "columnar.sel_rows_out"

(* Well-known histogram names. [h_engine_apply] counts every
   [Engine.apply] (per-kind series ride alongside under
   "engine.apply.<kind>"); the plan interpreter records one sample per
   node under "plan.node.<kind>". *)
let h_engine_apply = "engine.apply"
let h_materialize_full = "materialize.full"
let h_materialize_stratum = "materialize.stratum"
let h_incremental_derive = "incremental.derive"
let h_plan_node_prefix = "plan.node."
let h_sql_run = "sql.run"
let h_par_morsel = "par.morsel"

let () =
  List.iter
    (fun k -> ignore (Metrics.counter k))
    [ k_engine_ops; k_engine_errors; k_cache_requests; k_cache_hits;
      k_cache_hits_subsumed; k_cache_misses;
      k_cache_evictions; k_cache_seeds; k_full_replays;
      k_incremental_derivations; k_incremental_fallbacks; k_plan_nodes;
      k_plan_rows_in; k_plan_rows_out; k_sql_translations;
      k_sql_inverse_translations; k_sql_executions; k_par_morsels;
      k_par_scans; k_col_columns; k_col_dict_entries; k_col_sel_rows_in;
      k_col_sel_rows_out ];
  List.iter
    (fun k -> ignore (Metrics.gauge k))
    [ k_undo_depth; k_redo_depth; k_par_domains ];
  List.iter
    (fun k -> ignore (Histogram.histogram k))
    [ h_engine_apply; h_materialize_full; h_materialize_stratum;
      h_incremental_derive; h_sql_run; h_par_morsel ];
  List.iter
    (fun kind -> ignore (Histogram.histogram (h_plan_node_prefix ^ kind)))
    [ "scan"; "project"; "filter"; "distinct"; "extend"; "extend-agg";
      "sort" ]

type core_stats = {
  engine_ops : int;
  engine_errors : int;
  cache_requests : int;
  cache_hits : int;
  cache_hits_subsumed : int;
  cache_misses : int;
  cache_evictions : int;
  cache_seeds : int;
  full_replays : int;
  incremental_derivations : int;
  incremental_fallbacks : int;
  plan_nodes : int;
  plan_rows_in : int;
  plan_rows_out : int;
  undo_depth : int;
  redo_depth : int;
  sql_translations : int;
  sql_inverse_translations : int;
  sql_executions : int;
}

let core_stats () =
  let v = Metrics.value_of in
  { engine_ops = v k_engine_ops;
    engine_errors = v k_engine_errors;
    cache_requests = v k_cache_requests;
    cache_hits = v k_cache_hits;
    cache_hits_subsumed = v k_cache_hits_subsumed;
    cache_misses = v k_cache_misses;
    cache_evictions = v k_cache_evictions;
    cache_seeds = v k_cache_seeds;
    full_replays = v k_full_replays;
    incremental_derivations = v k_incremental_derivations;
    incremental_fallbacks = v k_incremental_fallbacks;
    plan_nodes = v k_plan_nodes;
    plan_rows_in = v k_plan_rows_in;
    plan_rows_out = v k_plan_rows_out;
    undo_depth = v k_undo_depth;
    redo_depth = v k_redo_depth;
    sql_translations = v k_sql_translations;
    sql_inverse_translations = v k_sql_inverse_translations;
    sql_executions = v k_sql_executions }

(* ---------- session flight recorder ----------

   A bounded ring of structured events describing what a session did
   — operators applied and rejected, undo/redo, materialization-cache
   traffic, SQL translations, and "slow op" markers for anything over
   the threshold — so a slow or wedged session can be diagnosed after
   the fact. Always on (the ring is small and a record is one
   allocation), independent of the span sink; the SHEETSCOPE_SLOW_MS
   environment knob (default 100) sets the slow-op threshold. *)

module Flightrec = struct
  type event = {
    at_ns : int;  (* relative to process start *)
    f_kind : string;
    f_label : string;
    f_uid : int;  (* 0 when no sheet is involved *)
    f_dur_ns : int;  (* -1 when unknown *)
  }

  let capacity = ref 512
  let ring : event Queue.t = Queue.create ()
  let dropped_events = ref 0

  let default_slow_ms = 100.

  let slow_ms_of_env () =
    match Sys.getenv_opt "SHEETSCOPE_SLOW_MS" with
    | Some s -> (
        match float_of_string_opt (String.trim s) with
        | Some ms when ms >= 0. -> ms
        | _ -> default_slow_ms)
    | None -> default_slow_ms

  let slow_threshold = ref (int_of_float (slow_ms_of_env () *. 1e6))

  let slow_threshold_ns () = !slow_threshold
  let set_slow_threshold_ms ms =
    slow_threshold := int_of_float (Float.max 0. ms *. 1e6)

  let set_capacity n = capacity := max 1 n

  let record ?(uid = 0) ?(dur_ns = -1) ~kind label =
    if Queue.length ring >= !capacity then begin
      ignore (Queue.pop ring);
      incr dropped_events
    end;
    Queue.push
      { at_ns = now_ns () - epoch_ns;
        f_kind = kind;
        f_label = label;
        f_uid = uid;
        f_dur_ns = dur_ns }
      ring

  let events () = List.of_seq (Queue.to_seq ring)
  let dropped () = !dropped_events

  let clear () =
    Queue.clear ring;
    dropped_events := 0

  let event_to_json ev =
    Obs_json.Obj
      (List.concat
         [ [ ("at_ns", Obs_json.Int ev.at_ns);
             ("kind", Obs_json.String ev.f_kind);
             ("label", Obs_json.String ev.f_label) ];
           (if ev.f_uid = 0 then [] else [ ("uid", Obs_json.Int ev.f_uid) ]);
           (if ev.f_dur_ns < 0 then []
            else [ ("dur_ns", Obs_json.Int ev.f_dur_ns) ]) ])

  let to_json () =
    Obs_json.Obj
      [ ("schema", Obs_json.String "sheetscope-flightrec/v1");
        ("slow_threshold_ms",
         Obs_json.Float (float_of_int !slow_threshold /. 1e6));
        ("dropped", Obs_json.Int !dropped_events);
        ("events", Obs_json.List (List.map event_to_json (events ()))) ]

  let render ?limit () =
    let evs = events () in
    let evs =
      match limit with
      | Some n when List.length evs > n ->
          let skip = List.length evs - n in
          List.filteri (fun i _ -> i >= skip) evs
      | _ -> evs
    in
    if evs = [] then "(flight recorder empty)"
    else
      String.concat "\n"
        (List.map
           (fun ev ->
             Printf.sprintf "%10.3f s  %-14s %s%s%s"
               (float_of_int ev.at_ns /. 1e9)
               ev.f_kind ev.f_label
               (if ev.f_dur_ns < 0 then ""
                else
                  Printf.sprintf "  (%.3f ms)"
                    (float_of_int ev.f_dur_ns /. 1e6))
               (if ev.f_uid = 0 then ""
                else Printf.sprintf "  [sheet #%d]" ev.f_uid))
           evs)
end

(* ---------- Chrome trace_event export ---------- *)

let event_to_json ev =
  let args =
    List.concat
      [ (if ev.uid = 0 then [] else [ ("uid", Obs_json.Int ev.uid) ]);
        (if ev.rows_in < 0 then []
         else [ ("rows_in", Obs_json.Int ev.rows_in) ]);
        (if ev.rows_out < 0 then []
         else [ ("rows_out", Obs_json.Int ev.rows_out) ]);
        [ ("depth", Obs_json.Int ev.depth) ] ]
  in
  Obs_json.Obj
    [ ("name", Obs_json.String ev.name);
      ("cat", Obs_json.String (if ev.kind = "" then "sheetmusiq" else ev.kind));
      ("ph", Obs_json.String "X");
      ("ts", Obs_json.Float (float_of_int ev.start_ns /. 1e3));
      ("dur", Obs_json.Float (float_of_int ev.dur_ns /. 1e3));
      ("pid", Obs_json.Int 1);
      ("tid", Obs_json.Int 1);
      ("args", Obs_json.Obj args) ]

let to_chrome_trace evs =
  Obs_json.Obj
    [ ("traceEvents", Obs_json.List (List.map event_to_json evs));
      ("displayTimeUnit", Obs_json.String "ms");
      ("otherData",
       Obs_json.Obj
         [ ("exporter", Obs_json.String "sheetscope");
           (* ring truncation and nesting violations surfaced here so a
              truncated trace is visibly truncated, not silently thin *)
           ("dropped_events", Obs_json.Int !dropped_events);
           ("open_spans", Obs_json.Int (List.length !open_stack));
           ("nesting_ok", Obs_json.Bool (!violations = 0));
           ("metrics", Metrics.to_json ());
           ("histograms", Histogram.to_json ()) ]) ]

let chrome_trace_string () = Obs_json.to_string ~pretty:true (to_chrome_trace (events ()))

(* One human-readable page: counters/gauges, latency histograms, and
   the trace/recorder health lines (so a truncated ring or a nesting
   violation shows up in `metrics`, not only in exported JSON). *)
let metrics_report () =
  String.concat "\n"
    [ Metrics.render ();
      "";
      Histogram.render ();
      "";
      Printf.sprintf "%-32s %10d" "trace.dropped_events" !dropped_events;
      Printf.sprintf "%-32s %10d" "trace.open_spans"
        (List.length !open_stack);
      Printf.sprintf "%-32s %10s" "trace.nesting_ok"
        (if !violations = 0 then "true" else "false");
      Printf.sprintf "%-32s %10d" "flightrec.events"
        (Queue.length Flightrec.ring);
      Printf.sprintf "%-32s %10d" "flightrec.dropped"
        (Flightrec.dropped ()) ]

let save_chrome_trace ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace_string ()))
